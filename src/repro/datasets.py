"""Synthetic stand-ins for the paper's measured datasets.

The paper's counting evaluation (§5, §12.1) rests on CFO measurements of
**155 real transponders** collected in a campus parking lot. We obviously
cannot re-measure those tags; instead we synthesize a population of 155
carriers from the summary statistics the paper itself reports (footnote 7:
mean 914.84 MHz, standard deviation 0.21 MHz, truncated to the
914.3-915.5 MHz tag band), under a fixed seed so that every test, example
and benchmark in this repository sees the *same* "measured" population.

This substitution is faithful because every result that consumes the
dataset (Eq 7/9 probabilities, Fig 11 counting accuracy) depends only on
the carriers' distribution over FFT bins, which the summary statistics
determine.
"""

from __future__ import annotations

import numpy as np

from .constants import EMPIRICAL_POPULATION_SIZE, READER_LO_HZ
from .phy.oscillator import EmpiricalCfoModel, TruncatedGaussianCfoModel
from .utils import as_rng

__all__ = [
    "empirical_carriers_hz",
    "empirical_cfo_dataset",
    "empirical_cfos_hz",
    "DATASET_SEED",
]

#: Fixed seed defining the canonical synthetic population.
DATASET_SEED = 0x0CA_0A0E


def empirical_carriers_hz(
    n: int = EMPIRICAL_POPULATION_SIZE, seed: int = DATASET_SEED
) -> np.ndarray:
    """The synthetic "155 measured transponders" carrier frequencies [Hz].

    Deterministic: the same ``(n, seed)`` always returns the same array.
    """
    model = TruncatedGaussianCfoModel()
    return np.sort(model.sample_carriers(n, as_rng(seed)))


def empirical_cfos_hz(
    n: int = EMPIRICAL_POPULATION_SIZE,
    seed: int = DATASET_SEED,
    lo_hz: float = READER_LO_HZ,
) -> np.ndarray:
    """The population's CFOs relative to the reader LO [Hz], in [0, 1.2 MHz]."""
    return empirical_carriers_hz(n, seed) - lo_hz


def empirical_cfo_dataset(
    n: int = EMPIRICAL_POPULATION_SIZE, seed: int = DATASET_SEED
) -> EmpiricalCfoModel:
    """An :class:`EmpiricalCfoModel` over the canonical synthetic population."""
    return EmpiricalCfoModel.from_array(empirical_carriers_hz(n, seed))
