"""Traffic-radar speed enforcement baseline (§1, §4).

"About 10% to 30% of the speeding tickets based on traffic radars are
estimated to be incorrect. The errors are mostly due to the fact that
radars cannot associate a speed with a particular car" [6]. The radar
measures a beam-wide Doppler speed quite accurately; the *officer*
attributes it to a car. This model reproduces that split: speed error is
small, attribution error grows with the number of cars in the beam.

Caraoke's speed pipeline (localize *the transponder*, twice) never has
the attribution problem — the benchmark quantifies the difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..utils import as_rng

__all__ = ["RadarTicketOutcome", "RadarGun"]


@dataclass(frozen=True)
class RadarTicketOutcome:
    """One enforcement event."""

    measured_speed_m_s: float
    targeted_car: int
    ticketed_car: int

    @property
    def correct_car(self) -> bool:
        return self.targeted_car == self.ticketed_car


@dataclass
class RadarGun:
    """A Doppler gun plus a human attributing the reading to a car.

    Attributes:
        speed_sigma_m_s: measurement noise of the gun itself (~1 mph).
        base_confusion: attribution error probability with a second car
            present; grows with each additional car in the beam, saturating
            at ``max_confusion`` (the [6] range: 10-30 %).
    """

    speed_sigma_m_s: float = 0.45
    base_confusion: float = 0.10
    per_car_confusion: float = 0.04
    max_confusion: float = 0.30
    # repro: allow[determinism] — default rng only feeds the closed-form confusion model; stochastic enforce()/MC paths in tests/examples pass a seeded rng
    rng: np.random.Generator = field(default_factory=lambda: as_rng(None), repr=False)

    def __post_init__(self) -> None:
        self.rng = as_rng(self.rng)
        if not 0 <= self.base_confusion <= self.max_confusion <= 1:
            raise ConfigurationError("confusion probabilities out of order")

    def confusion_probability(self, cars_in_beam: int) -> float:
        """P(ticket goes to the wrong car) given beam occupancy."""
        if cars_in_beam < 1:
            raise ConfigurationError("need at least one car in the beam")
        if cars_in_beam == 1:
            return 0.0
        p = self.base_confusion + self.per_car_confusion * (cars_in_beam - 2)
        return float(min(p, self.max_confusion))

    def enforce(self, speeds_m_s: np.ndarray, target_index: int) -> RadarTicketOutcome:
        """Measure the fastest beam return and ticket a (maybe wrong) car."""
        speeds_m_s = np.asarray(speeds_m_s, dtype=np.float64)
        if speeds_m_s.ndim != 1 or speeds_m_s.size == 0:
            raise ConfigurationError("need a non-empty 1-D speed array")
        if not 0 <= target_index < speeds_m_s.size:
            raise ConfigurationError("target index out of range")
        measured = float(
            speeds_m_s[target_index] + self.rng.normal(0.0, self.speed_sigma_m_s)
        )
        p_wrong = self.confusion_probability(speeds_m_s.size)
        ticketed = target_index
        if speeds_m_s.size > 1 and self.rng.random() < p_wrong:
            others = [i for i in range(speeds_m_s.size) if i != target_index]
            ticketed = int(self.rng.choice(others))
        return RadarTicketOutcome(
            measured_speed_m_s=measured,
            targeted_car=target_index,
            ticketed_car=ticketed,
        )

    def wrong_ticket_rate(self, cars_in_beam: int, trials: int = 1000) -> float:
        """Monte-Carlo wrong-car rate at a given beam occupancy."""
        if trials <= 0:
            raise ConfigurationError("trials must be positive")
        wrong = 0
        speeds = np.full(cars_in_beam, 15.0)
        for _ in range(trials):
            outcome = self.enforce(speeds, target_index=0)
            wrong += not outcome.correct_car
        return wrong / trials
