"""Comparators the paper positions Caraoke against.

* :mod:`repro.baselines.naive_counter` — FFT peak counting without the
  multi-tag bin test (the Eq 7 regime of §5).
* :mod:`repro.baselines.camera` — video vehicle counting with the error
  modes §1/§4 cite (illumination, wind, occlusion: few % to 26 %).
* :mod:`repro.baselines.radar` — traffic radar: accurate speed, no car
  association, hence 10-30 % of tickets hit the wrong car (§4).
* :mod:`repro.baselines.bandpass_decoder` — the band-pass-filter decoder
  §8 dismisses, implemented so its failure is measurable.
"""

from .naive_counter import NaiveCounter
from .camera import CameraConditions, CameraCounter
from .radar import RadarGun, RadarTicketOutcome
from .bandpass_decoder import BandpassDecoder

__all__ = [
    "NaiveCounter",
    "CameraConditions",
    "CameraCounter",
    "RadarGun",
    "RadarTicketOutcome",
    "BandpassDecoder",
]
