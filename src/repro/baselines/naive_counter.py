"""The naive collision counter: FFT peaks, no multi-tag bin test (§5).

This is the estimator Eq 7 analyzes: count the spikes, assume one tag per
spike. It systematically undercounts once the birthday effect puts two
tags in one 1.95 kHz bin — the §5 benchmark contrasts it with the full
Caraoke counter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.cfo import DEFAULT_SEARCH_HI_HZ, DEFAULT_SEARCH_LO_HZ
from ..dsp.peaks import find_spectral_peaks
from ..dsp.spectrum import fft_spectrum
from ..phy.waveform import Waveform

__all__ = ["NaiveCounter"]


@dataclass
class NaiveCounter:
    """Count spectral peaks; each peak is assumed to be exactly one tag."""

    min_snr_db: float = 15.0
    search_lo_hz: float = DEFAULT_SEARCH_LO_HZ
    search_hi_hz: float = DEFAULT_SEARCH_HI_HZ

    def count(self, wave: Waveform) -> int:
        """Number of spikes above the detection threshold."""
        spectrum = fft_spectrum(wave)
        peaks = find_spectral_peaks(
            spectrum, self.search_lo_hz, self.search_hi_hz, min_snr_db=self.min_snr_db
        )
        return len(peaks)

    def count_bins(self, cfos_hz: np.ndarray, resolution_hz: float) -> int:
        """Idealized variant: distinct occupied FFT bins of known CFOs.

        Used by the §5 probability benchmark to isolate the birthday
        effect from radio effects.
        """
        cfos_hz = np.asarray(cfos_hz, dtype=np.float64)
        if cfos_hz.size == 0:
            return 0
        bins = np.floor(cfos_hz / resolution_hz).astype(np.int64)
        return int(np.unique(bins).size)
