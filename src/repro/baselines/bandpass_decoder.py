"""The band-pass-filter decoder that §8 dismisses — implemented to fail.

"At first glance, it might seem that one can decode a transponder's
signal by using a band-pass filter centered around the transponder's CFO
peak. This solution however does not work because OOK has a relatively
wide spectrum — i.e., the data is spread as opposed to being concentrated
around the peak."

This baseline isolates the target's spike with a narrow complex FIR and
demodulates what comes out. A filter narrow enough to reject neighbouring
tags (CFOs can sit a few kHz away) also rejects nearly all of the
target's *data* sidebands (the Manchester spectrum peaks ~370 kHz from
the carrier), so the chip stream is destroyed; a filter wide enough to
pass the data passes the other tags too. The decoding benchmark sweeps
the bandwidth to show there is no workable middle ground.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import PACKET_BITS
from ..dsp.filters import apply_fir, design_complex_bandpass
from ..errors import CrcError, ModulationError, PacketError
from ..phy.modulation import OokModulator
from ..phy.packet import TransponderPacket
from ..phy.waveform import Waveform

__all__ = ["BandpassDecoder"]


@dataclass
class BandpassDecoder:
    """Filter-around-the-spike decoding (the §8 strawman).

    Attributes:
        half_bandwidth_hz: one-sided passband width around the target CFO.
        n_taps: FIR length.
    """

    half_bandwidth_hz: float = 25e3
    n_taps: int = 257

    def recover_bits(self, capture: Waveform, target_cfo_hz: float) -> np.ndarray:
        """Best-effort bit recovery through the band-pass filter."""
        taps = design_complex_bandpass(
            capture.sample_rate_hz, target_cfo_hz, self.half_bandwidth_hz, self.n_taps
        )
        filtered = apply_fir(capture, taps)
        # Down-convert the surviving band to baseband and demodulate OOK
        # by magnitude (the filter destroyed coherent chip edges anyway).
        t = filtered.times()
        baseband = filtered.samples * np.exp(-2j * np.pi * target_cfo_hz * t)
        envelope = np.abs(baseband)
        envelope -= envelope.mean()
        modulator = OokModulator(sample_rate_hz=capture.sample_rate_hz)
        try:
            return modulator.demodulate_soft(envelope, n_bits=PACKET_BITS)
        except ModulationError:
            return np.zeros(PACKET_BITS, dtype=np.uint8)

    def decode(self, capture: Waveform, target_cfo_hz: float) -> TransponderPacket | None:
        """Attempt a full packet decode; virtually always returns None."""
        bits = self.recover_bits(capture, target_cfo_hz)
        try:
            return TransponderPacket.from_bits(bits)
        except (CrcError, PacketError):
            return None

    def bit_error_rate(
        self, capture: Waveform, target_cfo_hz: float, true_bits: np.ndarray
    ) -> float:
        """BER against ground truth (the §8 benchmark's metric)."""
        bits = self.recover_bits(capture, target_cfo_hz)
        true_bits = np.asarray(true_bits, dtype=np.uint8)
        return float(np.mean(bits != true_bits))
