"""Camera-based vehicle counting baseline (§1, §4).

The paper motivates Caraoke's counting by the documented weaknesses of
video detection at intersections: counting errors range "between a few
percent to 26%, depending on illumination, wind, occlusions, etc."
(Medina et al. [43]), and lenses need manual cleaning every 6 weeks to 6
months [16]. This model reproduces those error modes so the counting
benchmark can place Caraoke's 2% average error next to the camera's
condition-dependent one.

Error rates are drawn from the ranges reported in [43] for video
detection systems at signalized intersections; each condition biases the
counter differently (occlusion under-counts; headlight blooming at night
double-counts; wind-induced camera motion does both).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..utils import as_rng

__all__ = ["CameraConditions", "CameraCounter"]


@dataclass(frozen=True)
class CameraConditions:
    """Environment knobs that drive video-detection error.

    Attributes:
        illumination: "day", "dusk" or "night".
        wind: camera sway; 0 (calm) .. 1 (storm).
        occlusion: fraction of vehicles visually blocked by others.
        dirty_lens: weeks since the last lens cleaning / 26 (0..1).
    """

    illumination: str = "day"
    wind: float = 0.0
    occlusion: float = 0.1
    dirty_lens: float = 0.0

    def __post_init__(self) -> None:
        if self.illumination not in ("day", "dusk", "night"):
            raise ConfigurationError(f"unknown illumination {self.illumination!r}")
        for name, value in (("wind", self.wind), ("occlusion", self.occlusion),
                            ("dirty_lens", self.dirty_lens)):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")


#: Per-vehicle miss and double-count probabilities by illumination,
#: anchored to the [43] error ranges (few % in daylight, up to ~26% in
#: adverse night/wind conditions).
_BASE_MISS = {"day": 0.02, "dusk": 0.06, "night": 0.10}
_BASE_DOUBLE = {"day": 0.01, "dusk": 0.03, "night": 0.09}


@dataclass
class CameraCounter:
    """Per-vehicle Bernoulli error model for a video counter."""

    conditions: CameraConditions = field(default_factory=CameraConditions)
    # repro: allow[determinism] — default rng only feeds the closed-form error-model demos; every stochastic count() in tests/examples passes a seeded rng
    rng: np.random.Generator = field(default_factory=lambda: as_rng(None), repr=False)

    def __post_init__(self) -> None:
        self.rng = as_rng(self.rng)

    def miss_probability(self) -> float:
        """P(a present vehicle is not counted)."""
        c = self.conditions
        p = _BASE_MISS[c.illumination]
        p += 0.5 * c.occlusion  # occluded vehicles merge into one blob
        p += 0.05 * c.wind + 0.08 * c.dirty_lens
        return float(min(p, 0.9))

    def double_probability(self) -> float:
        """P(a vehicle is counted twice: blooming, sway re-detection)."""
        c = self.conditions
        p = _BASE_DOUBLE[c.illumination]
        p += 0.10 * c.wind + 0.04 * c.dirty_lens
        return float(min(p, 0.9))

    def count(self, true_count: int) -> int:
        """One noisy measurement of ``true_count`` vehicles."""
        if true_count < 0:
            raise ConfigurationError("true count must be non-negative")
        miss = self.miss_probability()
        double = self.double_probability()
        seen = self.rng.random(true_count) >= miss
        doubles = self.rng.random(true_count) < double
        return int(np.sum(seen) + np.sum(seen & doubles))

    def expected_error_fraction(self) -> float:
        """|E[count] - true| / true in expectation (bias magnitude)."""
        miss = self.miss_probability()
        double = self.double_probability()
        return float(abs((1.0 - miss) * (1.0 + double) - 1.0))
