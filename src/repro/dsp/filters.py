"""FIR band-pass filtering.

§8 opens by dismissing the obvious decoder — "band-pass filter centered
around the transponder's CFO peak" — because OOK data is spread over the
whole band rather than concentrated at the peak. We implement that filter
anyway (windowed-sinc lowpass modulated to the CFO) so the baseline
decoder in :mod:`repro.baselines.bandpass_decoder` can demonstrate the
failure quantitatively.
"""

from __future__ import annotations

import numpy as np
from scipy.signal import fftconvolve

from ..errors import ConfigurationError
from ..phy.waveform import Waveform

__all__ = ["design_complex_bandpass", "apply_fir"]


def design_complex_bandpass(
    sample_rate_hz: float,
    center_hz: float,
    half_bandwidth_hz: float,
    n_taps: int = 129,
) -> np.ndarray:
    """Complex band-pass FIR: Hamming-windowed sinc shifted to ``center_hz``.

    Args:
        sample_rate_hz: sample rate of the target signal.
        center_hz: passband center (the target tag's CFO).
        half_bandwidth_hz: one-sided passband width.
        n_taps: odd filter length.

    Returns:
        Complex tap array of length ``n_taps`` with unit passband gain.
    """
    if n_taps < 3 or n_taps % 2 == 0:
        raise ConfigurationError(f"n_taps must be odd and >= 3, got {n_taps}")
    if not 0 < half_bandwidth_hz < sample_rate_hz / 2:
        raise ConfigurationError(
            f"half bandwidth {half_bandwidth_hz} outside (0, fs/2)"
        )
    m = np.arange(n_taps) - (n_taps - 1) / 2.0
    fc = half_bandwidth_hz / sample_rate_hz
    lowpass = 2.0 * fc * np.sinc(2.0 * fc * m) * np.hamming(n_taps)
    lowpass /= lowpass.sum()
    return lowpass * np.exp(2j * np.pi * center_hz / sample_rate_hz * m)


def apply_fir(wave: Waveform, taps: np.ndarray) -> Waveform:
    """Filter a waveform, compensating the FIR group delay.

    Uses 'same'-mode convolution and keeps ``t0`` aligned so chip timing
    downstream is unchanged (the taps must be symmetric-length, i.e. odd).
    """
    taps = np.asarray(taps)
    if taps.size % 2 == 0:
        raise ConfigurationError("taps must have odd length for delay compensation")
    filtered = fftconvolve(wave.samples, taps, mode="same")
    return Waveform(filtered, wave.sample_rate_hz, wave.t0_s)
