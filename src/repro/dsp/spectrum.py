"""Windowed FFTs and single-frequency DFT probes.

Caraoke works in the frequency domain: the FFT of a 512 µs collision has
one spike per colliding tag (Fig 4), at the tag's CFO, whose complex value
is half the tag's channel (Eq 5). Resolution is set by the window length
(Eq 6): the full response gives 1/512 µs = 1.953 kHz bins.

Two access patterns are provided: a full :class:`Spectrum` (peak *search*)
and :func:`single_bin_dft`, an exact DFT at one arbitrary — not necessarily
bin-centered — frequency (channel readout, the §5 time-shift test, and CFO
refinement all probe single known frequencies).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SpectrumError
from ..phy.waveform import Waveform

__all__ = ["Spectrum", "fft_spectrum", "single_bin_dft"]

_WINDOWS = {
    "rect": lambda n: np.ones(n),
    "hann": lambda n: np.hanning(n),
    "hamming": lambda n: np.hamming(n),
}


@dataclass
class Spectrum:
    """FFT of a waveform window, with frequency bookkeeping.

    Attributes:
        values: complex FFT output, ``values[k]`` at frequency ``k * bin_hz``
            (frequencies at or above ``sample_rate/2`` alias to negative).
        sample_rate_hz: the input sample rate.
        window_start_s: absolute time of the first input sample.
        n_input: number of time samples transformed (before zero padding).
    """

    values: np.ndarray
    sample_rate_hz: float
    window_start_s: float
    n_input: int

    @property
    def n_bins(self) -> int:
        return int(self.values.size)

    @property
    def bin_hz(self) -> float:
        """Bin spacing. Equals 1/T for an unpadded window (Eq 6)."""
        return self.sample_rate_hz / self.n_bins

    @property
    def resolution_hz(self) -> float:
        """True spectral resolution 1/T, independent of zero padding."""
        return self.sample_rate_hz / self.n_input

    def freqs_hz(self) -> np.ndarray:
        """Frequency of each bin in [0, sample_rate)."""
        return np.arange(self.n_bins) * self.bin_hz

    def magnitude(self) -> np.ndarray:
        return np.abs(self.values)

    def power(self) -> np.ndarray:
        return np.abs(self.values) ** 2

    def bin_of(self, freq_hz: float) -> int:
        """Nearest bin index for a frequency in [0, sample_rate)."""
        if not 0 <= freq_hz < self.sample_rate_hz:
            raise SpectrumError(
                f"frequency {freq_hz} outside [0, {self.sample_rate_hz})"
            )
        return int(round(freq_hz / self.bin_hz)) % self.n_bins

    def freq_of(self, bin_index: int) -> float:
        return (bin_index % self.n_bins) * self.bin_hz


def fft_spectrum(
    wave: Waveform,
    window: str = "rect",
    n_fft: int | None = None,
    offset_samples: int = 0,
    length_samples: int | None = None,
) -> Spectrum:
    """FFT of (a window of) a waveform.

    Args:
        wave: input waveform.
        window: "rect", "hann" or "hamming". The tag peaks are narrowband
            tones riding on wideband OOK data; the rectangular window keeps
            the paper's 1/T resolution and is the default.
        n_fft: zero-padded FFT size (>= window length).
        offset_samples: start of the analysis window within the waveform —
            this is the time shift tau of the §5 multi-tag bin test.
        length_samples: analysis window length (defaults to the rest).

    Returns:
        A :class:`Spectrum`.
    """
    if length_samples is None:
        length_samples = wave.n_samples - offset_samples
    segment = wave.window(offset_samples, length_samples)
    try:
        taper = _WINDOWS[window](segment.n_samples)
    except KeyError:
        raise SpectrumError(f"unknown window {window!r}; options: {sorted(_WINDOWS)}")
    n_fft = n_fft or segment.n_samples
    if n_fft < segment.n_samples:
        raise SpectrumError(f"n_fft={n_fft} shorter than window {segment.n_samples}")
    values = np.fft.fft(segment.samples * taper, n=n_fft)
    return Spectrum(
        values=values,
        sample_rate_hz=wave.sample_rate_hz,
        window_start_s=segment.t0_s,
        n_input=segment.n_samples,
    )


def single_bin_dft(
    wave: Waveform,
    freq_hz: float,
    offset_samples: int = 0,
    length_samples: int | None = None,
    absolute_time: bool = True,
) -> complex:
    """Exact normalized DFT of a waveform window at one frequency.

    Computes ``mean(x[n] * exp(-j 2 pi f t_n))`` over the window. With
    ``absolute_time`` the phase reference is the world clock, which makes
    values comparable across antennas and across windows — exactly what the
    channel readout (Eq 5), the AoA phase difference (§6), and the
    time-shift magnitude test (§5) need.

    The normalization is ``1/n``, so a pure tone ``A*exp(j 2 pi f t)``
    returns ``A`` and the tag's OOK signal returns ``h/2`` (Eq 5): callers
    recover the channel as ``2 * single_bin_dft(...)``.
    """
    if length_samples is None:
        length_samples = wave.n_samples - offset_samples
    segment = wave.window(offset_samples, length_samples)
    t = segment.times() if absolute_time else np.arange(segment.n_samples) / wave.sample_rate_hz
    probe = np.exp(-2j * np.pi * freq_hz * t)
    return complex(np.mean(segment.samples * probe))
