"""Array processing: steering vectors, Bartlett and MUSIC spectra (Fig 14).

§12.2 validates Caraoke's low-multipath assumption by rotating an antenna
on a 70 cm arm (a synthetic aperture), measuring the tag's channel at each
arm position, and reconstructing the angular power profile with "standard
phased array processing ... and the MUSIC algorithm". Both reconstructions
live here; they operate on arbitrary element geometries, so they serve the
circular SAR as well as the reader's triangle.

Convention: a far-field source at azimuth theta arrives from direction
``d = (cos theta, sin theta, 0)``; the steering phase at element position
``p`` is ``exp(+j 2 pi (p . d) / lambda)`` (element closer to the source
leads in phase).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = ["steering_matrix", "bartlett_spectrum", "music_spectrum"]


def steering_matrix(
    positions_m: np.ndarray, wavelength_m: float, angles_rad: np.ndarray
) -> np.ndarray:
    """Steering vectors for K elements at G azimuths: (K, G) complex.

    Args:
        positions_m: (K, 3) element positions.
        wavelength_m: carrier wavelength.
        angles_rad: (G,) azimuth grid in radians, measured in the x-y plane.
    """
    positions_m = np.atleast_2d(np.asarray(positions_m, dtype=np.float64))
    if positions_m.shape[1] != 3:
        raise ConfigurationError("positions must be (K, 3)")
    angles_rad = np.atleast_1d(np.asarray(angles_rad, dtype=np.float64))
    directions = np.stack(
        [np.cos(angles_rad), np.sin(angles_rad), np.zeros_like(angles_rad)], axis=0
    )  # (3, G)
    phases = 2.0 * np.pi / wavelength_m * (positions_m @ directions)  # (K, G)
    return np.exp(1j * phases)


def bartlett_spectrum(
    measurements: np.ndarray,
    positions_m: np.ndarray,
    wavelength_m: float,
    angles_rad: np.ndarray,
) -> np.ndarray:
    """Classic delay-and-sum angular power profile, normalized to its max.

    Args:
        measurements: (K,) single snapshot or (K, S) snapshots of per-element
            channel values.
        positions_m: (K, 3) element positions.
        wavelength_m: carrier wavelength.
        angles_rad: azimuth grid.

    Returns:
        (G,) non-negative profile with max 1 (all-zero if no signal).
    """
    x = np.asarray(measurements, dtype=np.complex128)
    if x.ndim == 1:
        x = x[:, None]
    steering = steering_matrix(positions_m, wavelength_m, angles_rad)  # (K, G)
    k = x.shape[0]
    power = np.mean(np.abs(steering.conj().T @ x) ** 2, axis=1) / (k * k)
    peak = float(power.max())
    return power / peak if peak > 0 else power


def music_spectrum(
    measurements: np.ndarray,
    positions_m: np.ndarray,
    wavelength_m: float,
    angles_rad: np.ndarray,
    n_sources: int = 1,
    forward_backward: bool = False,
) -> np.ndarray:
    """MUSIC pseudo-spectrum, normalized to its max.

    Eigendecomposes the sample covariance of the snapshots; the noise
    subspace (all but the ``n_sources`` strongest eigenvectors) is nearly
    orthogonal to steering vectors of true arrival directions, producing
    sharp pseudo-spectrum peaks there.

    With a single snapshot the covariance is rank one; MUSIC then behaves
    like a high-resolution matched projection, which suffices for the
    Fig 14 profile where one LoS path dominates. ``forward_backward``
    averaging can be enabled to decorrelate coherent paths on (conjugate-)
    symmetric geometries.
    """
    x = np.asarray(measurements, dtype=np.complex128)
    if x.ndim == 1:
        x = x[:, None]
    k, s = x.shape
    if not 1 <= n_sources < k:
        raise ConfigurationError(f"n_sources must be in [1, {k - 1}], got {n_sources}")
    covariance = (x @ x.conj().T) / s
    if forward_backward:
        exchange = np.eye(k)[::-1]
        covariance = 0.5 * (covariance + exchange @ covariance.conj() @ exchange)
    eigenvalues, eigenvectors = np.linalg.eigh(covariance)
    noise_subspace = eigenvectors[:, : k - n_sources]  # ascending eigenvalues
    steering = steering_matrix(positions_m, wavelength_m, angles_rad)
    projections = noise_subspace.conj().T @ steering  # (K - n_sources, G)
    denom = np.sum(np.abs(projections) ** 2, axis=0)
    pseudo = 1.0 / np.maximum(denom, 1e-18)
    return pseudo / pseudo.max()
