"""Circular synthetic-aperture channel collection (§12.2, Fig 14).

The paper augments a reader with an antenna on a rotating arm of radius
70 cm; as the arm turns, the tag's channel is measured at each position,
emulating a large circular array. The resulting angular profile exposes
how much energy arrives via multipath versus the line of sight.

:class:`CircularSAR` generates the arm positions and collects channel
measurements through any channel model; :func:`angular_peak_ratio` reduces
a profile to the paper's headline statistic (strongest peak over second
strongest — measured at 27x on average).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import SAR_RADIUS_M, WAVELENGTH_M
from ..errors import ConfigurationError
from ..utils import as_rng
from .beamforming import bartlett_spectrum, music_spectrum

__all__ = ["ArrayMeasurement", "CircularSAR", "angular_peak_ratio"]


@dataclass
class ArrayMeasurement:
    """Per-element channel measurements plus the geometry that made them."""

    positions_m: np.ndarray
    values: np.ndarray
    wavelength_m: float

    def __post_init__(self) -> None:
        self.positions_m = np.atleast_2d(np.asarray(self.positions_m, dtype=np.float64))
        self.values = np.asarray(self.values, dtype=np.complex128)
        if self.positions_m.shape[0] != self.values.size:
            raise ConfigurationError("one value per element required")

    def bartlett_profile(self, angles_rad: np.ndarray) -> np.ndarray:
        return bartlett_spectrum(self.values, self.positions_m, self.wavelength_m, angles_rad)

    def music_profile(self, angles_rad: np.ndarray, n_sources: int = 1) -> np.ndarray:
        return music_spectrum(
            self.values, self.positions_m, self.wavelength_m, angles_rad, n_sources
        )


@dataclass(frozen=True)
class CircularSAR:
    """A rotating-arm antenna: K positions on a horizontal circle.

    Attributes:
        center_m: (3,) arm pivot in world coordinates.
        radius_m: arm length (70 cm in the paper).
        n_positions: measurement stops per revolution.
        wavelength_m: carrier wavelength.
    """

    center_m: np.ndarray
    radius_m: float = SAR_RADIUS_M
    n_positions: int = 180
    wavelength_m: float = WAVELENGTH_M

    def __post_init__(self) -> None:
        object.__setattr__(self, "center_m", np.asarray(self.center_m, dtype=np.float64))
        if self.center_m.shape != (3,):
            raise ConfigurationError("center must be a 3-vector")
        if self.radius_m <= 0 or self.n_positions < 8:
            raise ConfigurationError("need a positive radius and >= 8 positions")

    def positions(self) -> np.ndarray:
        """(K, 3) antenna positions around the circle."""
        psi = 2.0 * np.pi * np.arange(self.n_positions) / self.n_positions
        offsets = self.radius_m * np.stack(
            [np.cos(psi), np.sin(psi), np.zeros_like(psi)], axis=1
        )
        return self.center_m + offsets

    def measure(
        self,
        tag_position_m: np.ndarray,
        channel,
        phase_noise_std_rad: float = 0.0,
        amplitude_noise_std: float = 0.0,
        rng=None,
    ) -> ArrayMeasurement:
        """Measure the tag's channel at every arm position.

        Per-stop phase/amplitude noise models the residual error of the
        sequential channel measurements (each stop is a separate query
        whose random tag phase the rig must calibrate out).
        """
        rng = as_rng(rng)
        positions = self.positions()
        values = channel.coefficients(np.asarray(tag_position_m, dtype=np.float64), positions)
        if phase_noise_std_rad > 0:
            values = values * np.exp(1j * rng.normal(0.0, phase_noise_std_rad, values.size))
        if amplitude_noise_std > 0:
            values = values * (1.0 + rng.normal(0.0, amplitude_noise_std, values.size))
        return ArrayMeasurement(positions, values, self.wavelength_m)


def angular_peak_ratio(
    profile: np.ndarray, angles_rad: np.ndarray, min_separation_rad: float = np.deg2rad(10.0)
) -> float:
    """Power ratio of the strongest to second-strongest profile peak.

    Peaks are local maxima (with circular wraparound) separated by at least
    ``min_separation_rad``; if no second peak exists the ratio is infinite.
    This is the statistic the paper reports as 27x (Fig 14 discussion).
    """
    profile = np.asarray(profile, dtype=np.float64)
    angles_rad = np.asarray(angles_rad, dtype=np.float64)
    if profile.size != angles_rad.size:
        raise ConfigurationError("profile and angle grid must align")
    n = profile.size
    is_max = (profile >= np.roll(profile, 1)) & (profile > np.roll(profile, -1))
    candidates = sorted(np.flatnonzero(is_max), key=lambda i: -profile[i])
    kept: list[int] = []
    for idx in candidates:
        far_enough = True
        for other in kept:
            delta = abs(angles_rad[idx] - angles_rad[other])
            delta = min(delta, 2.0 * np.pi - delta)
            if delta < min_separation_rad:
                far_enough = False
                break
        if far_enough:
            kept.append(idx)
        if len(kept) >= 2:
            break
    if len(kept) < 2:
        return float("inf")
    return float(profile[kept[0]] / profile[kept[1]])
