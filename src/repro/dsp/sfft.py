"""Sparse FFT for frequency-sparse collision spectra (§10).

A collision of m tags is m narrow spikes in a large spectrum — exactly the
frequency-sparse regime where sub-linear Fourier algorithms apply. The
Caraoke hardware uses the sFFT of Hassanieh et al. to cut compute and
power; this module implements the *exactly-sparse* flavour built from:

1. **Aliasing bucketization**: subsampling the time signal by L folds the
   N-bin spectrum onto B = N/L buckets; each spike lands in bucket
   ``k mod B``.
2. **Phase-offset location**: the same bucketization computed from the
   signal shifted by one sample multiplies each spike by ``exp(j2 pi k/N)``;
   for a singleton bucket, the phase ratio of the two bucket values reveals
   the spike's (possibly fractional) frequency directly.
3. **Voting across random circular shifts** to reject buckets where two
   spikes collided and to stabilize the estimates.

The implementation is honest about its domain: it targets signals whose
energy is dominated by a handful of tones (our collisions) and trades the
heavy flat-window machinery of the full sFFT for a refinement pass using
exact single-frequency DFT probes. Complexity is
``O(shifts * B log B + k * N_probe)`` versus ``O(N log N)`` for the FFT.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, SpectrumError
from ..utils import as_rng

__all__ = ["SparseTone", "sparse_fft_peaks"]


@dataclass(frozen=True)
class SparseTone:
    """One recovered spectral component.

    Attributes:
        freq_bin: fractional bin index in [0, N).
        amplitude: complex amplitude (same normalization as ``fft/N``).
        votes: number of subsampling shifts that agreed on this tone.
    """

    freq_bin: float
    amplitude: complex
    votes: int

    def freq_hz(self, sample_rate_hz: float, n_samples: int) -> float:
        return self.freq_bin * sample_rate_hz / n_samples


def _bucketize(x: np.ndarray, stride: int, n_buckets: int, shift: int) -> np.ndarray:
    """FFT of ``n_buckets`` samples of the stride-decimated signal.

    Decimating by ``stride`` folds the spectrum modulo ``fs/stride``; the
    B-point FFT then bins the folded band. Two tones collide only when
    their *folded* frequencies fall in the same bucket, so passes with
    different strides see different collision patterns — the off-grid-safe
    stand-in for the full sFFT's random spectral permutations (index
    permutations shatter tones that are not exactly on the N-point grid).

    Raises:
        SpectrumError: if the capture cannot supply ``n_buckets`` samples
            at this stride/shift — a short FFT would silently misindex
            every bucket (bucket k would no longer mean folded bin k).
    """
    segment = x[shift::stride][:n_buckets]
    if segment.size != n_buckets:
        raise SpectrumError(
            f"bucketization needs {n_buckets} samples but only {segment.size} "
            f"fit (N={x.size}, stride={stride}, shift={shift})"
        )
    return np.fft.fft(segment) / n_buckets


def _probe_indices(n: int, rng, n_sub: int = 4096) -> np.ndarray:
    """A random arithmetic progression of sample indices (mod n).

    Probing a *known* frequency needs no contiguous window; a random odd
    stride turns other tones' leakage into low-level noise while keeping
    the probe O(n_sub) — this is what keeps verification sub-linear.
    """
    if n <= n_sub:
        return np.arange(n)
    step = int(rng.integers(1, n // 2)) * 2 + 1  # odd, so it cycles mod 2^a
    start = int(rng.integers(0, n))
    return (start + step * np.arange(n_sub)) % n


def _scalloping_factors(offset_buckets: np.ndarray, n_buckets: int) -> np.ndarray:
    """Complex Dirichlet response of tones ``offset_buckets`` off their
    bucket centers: magnitude loss *and* phase rotation, elementwise."""
    delta = np.asarray(offset_buckets, dtype=np.float64)
    magnitude = np.sin(np.pi * delta) / (n_buckets * np.sin(np.pi * delta / n_buckets))
    phase = -np.pi * delta * (n_buckets - 1) / n_buckets
    return np.where(
        np.abs(delta) < 1e-9, 1.0 + 0.0j, magnitude * np.exp(1j * phase)
    )


def sparse_fft_peaks(
    x: np.ndarray,
    max_tones: int,
    n_buckets: int | None = None,
    n_shifts: int = 3,
    magnitude_floor_ratio: float = 0.05,
    rng=None,
    widen: bool = True,
    probe_samples: int | None = None,
) -> list[SparseTone]:
    """Recover the dominant tones of a frequency-sparse signal.

    Args:
        x: complex time signal of length N (N divisible by the bucket count).
        max_tones: recover at most this many tones.
        n_buckets: bucket count B; defaults to the smallest power of two
            >= 8 * max_tones (keeps the per-bucket collision probability low).
        n_shifts: independent random-offset bucketizations to vote across.
        magnitude_floor_ratio: buckets weaker than this fraction of the
            strongest bucket are treated as empty.
        rng: seedable randomness for the shift choices.
        widen: when fewer than ``max_tones`` tones survive, retry with
            doubled bucket counts (guaranteed recovery, up to a full FFT
            at B == N). Callers that only need the dominant tones of a
            scene *sparser* than ``max_tones`` — e.g. a density probe —
            pass ``False`` to keep the call strictly sub-linear.
        probe_samples: sample budget of the parabolic *refinement*
            probes (default 4096, i.e. the whole capture for N <= 4096).
            Smaller budgets keep the refinement sub-linear; the final
            amplitude estimate — which downstream ranking leans on —
            always probes at the full default budget.

    Returns:
        Recovered tones sorted by descending magnitude.

    Raises:
        ConfigurationError: if N is not divisible by the bucket count.
    """
    x = np.asarray(x, dtype=np.complex128)
    n = x.size
    if n == 0:
        raise SpectrumError("empty input")
    if n_buckets is None:
        n_buckets = 8
        while n_buckets < 8 * max_tones:
            n_buckets *= 2
        n_buckets = min(n_buckets, n)
    if n % n_buckets:
        raise ConfigurationError(f"N={n} not divisible by B={n_buckets}")
    stride = n // n_buckets
    rng = as_rng(rng)

    # Each pass uses a random base offset and its own decimation stride;
    # folding happens modulo fs/stride, so tone pairs that collide at one
    # stride separate at another. Within a pass, the tone frequency is
    # recovered by MULTI-SCALE phase refinement: the bucket's phase
    # advances by 2*pi*k*tau/N under a tau-sample shift, so doubling tau
    # repeatedly halves the frequency uncertainty (a two-sample phase
    # ratio alone has error ~ N / (2 pi SNR) bins — useless at realistic
    # per-bucket SNR).
    strides = []
    candidate = min(stride, max(n // (2 * n_buckets), 2))
    while len(strides) < max(n_shifts, 1) and candidate >= 2:
        strides.append(candidate)
        candidate -= 1
    votes: list[tuple[float, complex]] = []
    for pass_stride in strides:
        span = (n_buckets - 1) * pass_stride
        headroom = n - span - 2
        if headroom < 2:
            continue
        tau_max = 1
        while tau_max * 2 <= headroom // 2:
            tau_max *= 2
        base = int(rng.integers(0, max(min(pass_stride, headroom - tau_max), 1)))
        z0 = _bucketize(x, pass_stride, n_buckets, base)
        mags = np.abs(z0)
        floor = magnitude_floor_ratio * float(mags.max()) if mags.max() > 0 else 0.0
        occupied = np.flatnonzero(mags > floor)
        # Strongest buckets first; cap the work at a few times max_tones.
        occupied = occupied[np.argsort(-mags[occupied])][: 4 * max_tones]
        if occupied.size == 0:
            continue
        # Bucketize at every shift scale once; all candidate buckets share them.
        taus = []
        tau = 1
        while tau <= tau_max:
            taus.append(tau)
            tau *= 2
        z_shifted = {t: _bucketize(x, pass_stride, n_buckets, base + t) for t in taus}
        # The whole candidate chain — coarse phase-ratio estimate,
        # multi-scale refinement, aliasing consistency, scalloping
        # correction — runs vectorized over the occupied buckets; a
        # bucket failing any gate is masked out instead of `continue`d
        # (its k stops mattering once masked, so the masked updates are
        # equivalent to the per-bucket early exit).
        z0o = z0[occupied]
        with np.errstate(invalid="ignore", divide="ignore"):
            ratio = z_shifted[1][occupied] / z0o
            mag_ratio = np.abs(ratio)
            ok = (np.abs(z0o) != 0.0) & (0.5 < mag_ratio) & (mag_ratio < 2.0)
            # Scale 1 gives the coarse, ambiguity-free estimate.
            k = (np.angle(ratio) / (2.0 * np.pi) * n) % n
            # Successive refinement: each scale corrects k within its
            # unambiguous window N / (2 tau).
            for t in taus[1:]:
                measured = np.angle(z_shifted[t][occupied] / z0o)
                predicted = 2.0 * np.pi * k * t / n
                delta = (measured - predicted + np.pi) % (2.0 * np.pi) - np.pi
                correction = delta * n / (2.0 * np.pi * t)
                ok &= np.abs(correction) <= n / (2.0 * t)
                k = np.where(ok, (k + correction) % n, k)
            # Consistency: a tone at k must alias into bucket b under this
            # pass's folding (modulo fs/stride, binned to n_buckets).
            folded = ((k * pass_stride / n) % 1.0) * n_buckets
            signed_offset = (
                folded - occupied + n_buckets / 2.0
            ) % n_buckets - n_buckets / 2.0
            ok &= np.abs(signed_offset) <= 1.0
            factor = _scalloping_factors(signed_offset, n_buckets)
            ok &= np.abs(factor) >= 0.2
            amplitude = z0o * np.exp(-2j * np.pi * k * base / n) / factor
        for i in np.flatnonzero(ok):
            votes.append((float(k[i]), complex(amplitude[i])))

    # Cluster votes within one full-FFT bin of each other. Strongest
    # first; each vote merges into the first (oldest) cluster within
    # reach, with centers compared vectorized against the whole cluster
    # list at once.
    votes.sort(key=lambda item: -abs(item[1]))
    centers = np.empty(len(votes))
    amps = np.empty(len(votes), dtype=np.complex128)
    weights = np.zeros(len(votes), dtype=np.int64)
    n_clusters = 0
    for k, amplitude in votes:
        hit = -1
        if n_clusters:
            d = np.abs(centers[:n_clusters] - k)
            hits = np.flatnonzero(np.minimum(d, n - d) <= 1.5)
            if hits.size:
                hit = int(hits[0])
        if hit >= 0:
            w = weights[hit]
            centers[hit] = (centers[hit] * w + k) / (w + 1)
            amps[hit] = (amps[hit] * w + amplitude) / (w + 1)
            weights[hit] = w + 1
        else:
            centers[n_clusters] = k
            amps[n_clusters] = amplitude
            weights[n_clusters] = 1
            n_clusters += 1
    clusters: list[list[float | complex | int]] = [
        [float(centers[i]), complex(amps[i]), int(weights[i])]
        for i in range(n_clusters)
    ]

    # Verification + estimation: every surviving candidate's frequency is
    # touched up and its amplitude re-estimated with *subsampled* probes
    # (random arithmetic progressions, O(n_sub) each) — unbiased at a
    # known frequency, and near-zero at a ghost's frequency (ghosts come
    # from partially collided buckets whose phase-ratio estimate points
    # at empty spectrum). All candidates refine in lockstep: one
    # (3, C, n_sub) probe tensor per parabolic round instead of a
    # Python loop of single probes.
    refine_indices = _probe_indices(n, rng, n_sub=probe_samples or 4096)
    indices = (
        refine_indices
        if probe_samples is None
        else _probe_indices(n, rng, n_sub=4096)
    )
    tones: list[SparseTone] = []
    cand = clusters[: 4 * max_tones]
    if cand:
        # Clusters below the magnitude floor are bucket-noise ghosts;
        # probing them would dominate the verification cost (and they
        # could not survive the relative-magnitude filter below anyway).
        top_coarse = max(abs(c[1]) for c in cand)
        cand = [c for c in cand if abs(c[1]) >= magnitude_floor_ratio * top_coarse]
    if cand:
        ks = np.array([float(c[0]) % n for c in cand])
        coarse_amp = np.array([complex(c[1]) for c in cand])
        vote_counts = np.array([int(c[2]) for c in cand])
        xr = x[refine_indices]
        xi = x[indices]
        span = 0.5
        for _ in range(2):
            kk = ks[None, :, None] + np.array([-span, 0.0, span])[:, None, None]
            probes = np.exp(-2j * np.pi * kk * refine_indices[None, None, :] / n)
            mags = np.abs(np.mean(xr[None, None, :] * probes, axis=2))
            denom = mags[0] - 2.0 * mags[1] + mags[2]
            moved = denom != 0.0
            offset = np.zeros(ks.size)
            offset[moved] = 0.5 * (mags[0, moved] - mags[2, moved]) / denom[moved]
            ks = ks + np.clip(offset, -1.0, 1.0) * span
            span /= 2.0
        ks %= n
        probed = np.mean(
            xi[None, :] * np.exp(-2j * np.pi * ks[:, None] * indices[None, :] / n),
            axis=1,
        )
        # Ghosts: the spectrum is empty at the candidate's frequency.
        keep = np.abs(probed) >= 0.4 * np.abs(coarse_amp)
        for i in np.flatnonzero(keep):
            tones.append(
                SparseTone(float(ks[i]), complex(probed[i]), int(vote_counts[i]))
            )

    # Drop ghosts (validated amplitude collapses) and duplicates.
    if tones:
        strongest = max(abs(tone.amplitude) for tone in tones)
        tones = [t_ for t_ in tones if abs(t_.amplitude) >= 0.1 * strongest]
    deduped: list[SparseTone] = []
    kept_bins = np.empty(len(tones))
    for tone in sorted(tones, key=lambda t_: -abs(t_.amplitude)):
        if deduped:
            d = np.abs(kept_bins[: len(deduped)] - tone.freq_bin)
            if float(np.minimum(d, n - d).min()) <= 1.0:
                continue
        kept_bins[len(deduped)] = tone.freq_bin
        deduped.append(tone)

    # Fallback: if bucket collisions swallowed tones, retry with more
    # buckets (collision probability shrinks as 1/B; at B == N this is a
    # full FFT, so termination is guaranteed).
    if widen and len(deduped) < max_tones and n_buckets < n:
        wider = sparse_fft_peaks(
            x,
            max_tones=max_tones,
            n_buckets=min(2 * n_buckets, n),
            n_shifts=n_shifts,
            magnitude_floor_ratio=magnitude_floor_ratio,
            rng=rng,
            probe_samples=probe_samples,
        )
        for tone in wider:
            if all(
                min(abs(tone.freq_bin - d.freq_bin), n - abs(tone.freq_bin - d.freq_bin)) > 1.0
                for d in deduped
            ):
                deduped.append(tone)
        if deduped:
            strongest = max(abs(tone.amplitude) for tone in deduped)
            deduped = [t_ for t_ in deduped if abs(t_.amplitude) >= 0.1 * strongest]

    deduped.sort(key=lambda t_: -abs(t_.amplitude))
    return deduped[:max_tones]
