"""Spectral peak detection for collision spectra (Fig 4).

A collision spectrum is a set of narrow CFO spikes standing on a wideband
floor made of every tag's OOK data sidelobes plus thermal noise. The
detector therefore estimates the floor *robustly* (median — the spikes are
sparse outliers) and keeps local maxima that clear the floor by a margin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SpectrumError
from ..utils import db_to_amplitude
from .spectrum import Spectrum

__all__ = [
    "SpectralPeak",
    "estimate_noise_floor",
    "local_noise_floor",
    "band_floors",
    "parabolic_offset",
    "find_peaks_in_magnitudes",
    "find_spectral_peaks",
]


@dataclass(frozen=True)
class SpectralPeak:
    """One detected spectral spike.

    Attributes:
        bin_index: FFT bin of the local maximum.
        freq_hz: refined (sub-bin) frequency estimate.
        value: complex FFT value at the maximum bin.
        magnitude: |value|.
        floor: the floor estimate the detection was made against.
    """

    bin_index: int
    freq_hz: float
    value: complex
    magnitude: float
    floor: float

    @property
    def snr(self) -> float:
        """Peak magnitude over the floor (amplitude ratio)."""
        return self.magnitude / self.floor if self.floor > 0 else np.inf


def estimate_noise_floor(magnitudes: np.ndarray) -> float:
    """Robust floor: scaled median of the magnitude spectrum.

    For Rayleigh-distributed noise-bin magnitudes the median is
    ``sigma * sqrt(ln 4)``; dividing it out returns the Rayleigh scale, a
    stable reference even when a few percent of bins hold signal spikes.
    """
    magnitudes = np.asarray(magnitudes, dtype=np.float64)
    if magnitudes.size == 0:
        raise SpectrumError("cannot estimate a floor from zero bins")
    return float(np.median(magnitudes) / np.sqrt(np.log(4.0)))


def parabolic_offset(left: float, center: float, right: float) -> float:
    """Sub-bin offset of a peak from three magnitude samples, in bins.

    Fits a parabola through (-1, left), (0, center), (1, right); the vertex
    abscissa refines the tone frequency to a fraction of a bin, which the
    decoder needs (a CFO error of half a bin rotates the target by pi over
    the 512 us response and breaks coherent combining, §8).
    """
    denom = left - 2.0 * center + right
    if denom == 0.0:
        return 0.0
    offset = 0.5 * (left - right) / denom
    return float(np.clip(offset, -0.5, 0.5))


def local_noise_floor(
    magnitudes: np.ndarray, window_bins: int = 65, guard_bins: int = 3
) -> np.ndarray:
    """Per-bin floor: median of surrounding bins, excluding a guard band.

    The collision floor is *colored* — each tag's OOK data spectrum has
    sinc-shaped lobes around its own carrier — so a global floor
    under-estimates near strong tags and sprays false peaks there. This is
    an ordered-statistic CFAR: for every bin, the floor is the median of
    ``window_bins`` neighbours with the closest ``guard_bins`` (which may
    contain the peak itself) excluded.
    """
    magnitudes = np.asarray(magnitudes, dtype=np.float64)
    n = magnitudes.size
    if window_bins % 2 == 0 or window_bins < 2 * guard_bins + 3:
        raise SpectrumError(
            f"window_bins must be odd and > 2*guard_bins+2, got {window_bins}"
        )
    half = window_bins // 2
    scale = np.sqrt(np.log(4.0))
    floors = np.empty(n)
    # Interior bins all share one window/guard shape, so their medians
    # come from a single strided view and one axis-wise median — the
    # per-bin Python loop was the counting chain's hot spot (§5 runs
    # this twice per capture over the whole CFO band). Edge bins keep
    # the scalar path; their clipped windows have irregular shapes.
    interior_lo, interior_hi = half, n - half  # k with a full window
    if interior_hi > interior_lo:
        windows = np.lib.stride_tricks.sliding_window_view(magnitudes, window_bins)
        keep = np.concatenate(
            [
                np.arange(0, half - guard_bins),
                np.arange(half + guard_bins + 1, window_bins),
            ]
        )
        floors[interior_lo:interior_hi] = (
            np.median(windows[:, keep], axis=1) / scale
        )
    for k in (*range(min(interior_lo, n)), *range(max(interior_hi, interior_lo, 0), n)):
        lo = max(0, k - half)
        hi = min(n, k + half + 1)
        neighbourhood = np.concatenate(
            [magnitudes[lo : max(lo, k - guard_bins)], magnitudes[min(hi, k + guard_bins + 1) : hi]]
        )
        if neighbourhood.size == 0:
            neighbourhood = magnitudes[lo:hi]
        floors[k] = _median(neighbourhood) / scale
    return floors


def _median(values: np.ndarray) -> float:
    """``np.median`` of a 1-D array without its dispatch overhead.

    The edge bins of :func:`local_noise_floor` each need one small
    median; going through ``np.median`` costs ~45 us of wrapper per
    call, which multiplied by the window width dominated the §5 CFAR
    floor. This replicates its arithmetic exactly — partition on the
    middle index (both middles when even, averaged as ``sum / 2``, the
    same float op ``np.mean`` performs) — so floors are bit-identical.
    """
    n = values.size
    mid = n // 2
    if n % 2:
        return float(np.partition(values, mid)[mid])
    part = np.partition(values, [mid - 1, mid])
    return float((part[mid - 1] + part[mid]) / 2.0)


def _band_bounds(
    n_bins: int, bin_hz: float, search_lo_hz: float, search_hi_hz: float
) -> tuple[int, int]:
    """The inclusive FFT-bin bounds of a search band."""
    if search_hi_hz <= search_lo_hz:
        raise SpectrumError(f"empty search band [{search_lo_hz}, {search_hi_hz}]")
    lo_bin = max(0, int(np.floor(search_lo_hz / bin_hz)))
    hi_bin = min(n_bins - 1, int(np.ceil(search_hi_hz / bin_hz)))
    if hi_bin <= lo_bin:
        raise SpectrumError("search band narrower than one bin")
    return lo_bin, hi_bin


def band_floors(
    magnitudes: np.ndarray,
    bin_hz: float,
    search_lo_hz: float,
    search_hi_hz: float,
) -> np.ndarray:
    """The CFAR floor of a search band, reusable across detection passes.

    :func:`find_peaks_in_magnitudes` recomputes the local floor on every
    call; a caller that probes the *same* magnitudes at several
    thresholds (the §5 counter's density probe followed by its decision
    pass) computes the floor once here and hands it back via ``floors``.
    """
    magnitudes = np.asarray(magnitudes, dtype=np.float64)
    lo_bin, hi_bin = _band_bounds(magnitudes.size, bin_hz, search_lo_hz, search_hi_hz)
    return local_noise_floor(magnitudes[lo_bin : hi_bin + 1])


def find_peaks_in_magnitudes(
    magnitudes: np.ndarray,
    bin_hz: float,
    search_lo_hz: float,
    search_hi_hz: float,
    min_snr_db: float = 12.0,
    min_separation_bins: int = 2,
    max_peaks: int | None = None,
    values: np.ndarray | None = None,
    floors: np.ndarray | None = None,
) -> list[SpectralPeak]:
    """Detect spikes in a magnitude spectrum against a local (CFAR) floor.

    This is the magnitude-domain core of :func:`find_spectral_peaks`; it
    also serves multi-query counting, where the detection statistic is the
    *average* magnitude spectrum over several captures (incoherent
    averaging suppresses the data-floor variance while tag spikes persist).

    Args:
        magnitudes: magnitude per FFT bin (frequencies ``k * bin_hz``).
        bin_hz: FFT bin spacing.
        search_lo_hz / search_hi_hz: band to search (the 1.2 MHz CFO span).
        min_snr_db: required peak amplitude margin over the local floor.
        min_separation_bins: greedy non-max suppression radius; adjacent
            tags 2+ bins apart survive as distinct peaks.
        max_peaks: optional cap (strongest first).
        values: optional complex spectrum aligned with ``magnitudes``.
        floors: optional precomputed CFAR floor for the search band (from
            :func:`band_floors` over the same magnitudes/band) — skips
            the per-call floor estimate when one caller scans the same
            spectrum at several thresholds.

    Returns:
        Peaks sorted by ascending frequency.
    """
    magnitudes = np.asarray(magnitudes, dtype=np.float64)
    lo_bin, hi_bin = _band_bounds(magnitudes.size, bin_hz, search_lo_hz, search_hi_hz)

    band = magnitudes[lo_bin : hi_bin + 1]
    if floors is None:
        floors = local_noise_floor(band)
    elif floors.size != band.size:
        raise SpectrumError(
            f"precomputed floors cover {floors.size} bins, band has {band.size}"
        )
    thresholds = floors * db_to_amplitude(min_snr_db)

    # Local maxima above their local threshold.
    candidates = []
    for k in range(1, band.size - 1):
        if band[k] >= thresholds[k] and band[k] >= band[k - 1] and band[k] > band[k + 1]:
            candidates.append(k)
    # Band edges can hold real peaks too.
    if band.size >= 2 and band[0] >= thresholds[0] and band[0] > band[1]:
        candidates.insert(0, 0)
    if band.size >= 2 and band[-1] >= thresholds[-1] and band[-1] > band[-2]:
        candidates.append(band.size - 1)

    # Greedy non-maximum suppression, strongest first.
    candidates.sort(key=lambda k: -band[k])
    kept: list[int] = []
    for k in candidates:
        if all(abs(k - other) >= min_separation_bins for other in kept):
            kept.append(k)
        if max_peaks is not None and len(kept) >= max_peaks:
            break

    peaks = []
    for k in sorted(kept):
        absolute = lo_bin + k
        left = magnitudes[absolute - 1] if absolute > 0 else magnitudes[absolute]
        right = (
            magnitudes[absolute + 1]
            if absolute < magnitudes.size - 1
            else magnitudes[absolute]
        )
        offset = parabolic_offset(left, magnitudes[absolute], right)
        peaks.append(
            SpectralPeak(
                bin_index=absolute,
                freq_hz=(absolute + offset) * bin_hz,
                value=complex(values[absolute]) if values is not None else 0j,
                magnitude=float(magnitudes[absolute]),
                floor=float(floors[absolute - lo_bin]),
            )
        )
    return peaks


def find_spectral_peaks(
    spectrum: Spectrum,
    search_lo_hz: float,
    search_hi_hz: float,
    min_snr_db: float = 12.0,
    min_separation_bins: int = 2,
    max_peaks: int | None = None,
) -> list[SpectralPeak]:
    """Detect CFO spikes within a frequency band of one spectrum (Fig 4)."""
    return find_peaks_in_magnitudes(
        spectrum.magnitude(),
        spectrum.bin_hz,
        search_lo_hz,
        search_hi_hz,
        min_snr_db=min_snr_db,
        min_separation_bins=min_separation_bins,
        max_peaks=max_peaks,
        values=spectrum.values,
    )
