"""Signal processing: spectra, peak picking, sparse FFT, beamforming, SAR."""

from .spectrum import Spectrum, fft_spectrum, single_bin_dft
from .peaks import SpectralPeak, estimate_noise_floor, find_spectral_peaks, parabolic_offset
from .sfft import SparseTone, sparse_fft_peaks
from .filters import apply_fir, design_complex_bandpass
from .beamforming import bartlett_spectrum, music_spectrum, steering_matrix
from .sar import ArrayMeasurement, CircularSAR, angular_peak_ratio

__all__ = [
    "Spectrum",
    "fft_spectrum",
    "single_bin_dft",
    "SpectralPeak",
    "estimate_noise_floor",
    "find_spectral_peaks",
    "parabolic_offset",
    "SparseTone",
    "sparse_fft_peaks",
    "apply_fir",
    "design_complex_bandpass",
    "bartlett_spectrum",
    "music_spectrum",
    "steering_matrix",
    "ArrayMeasurement",
    "CircularSAR",
    "angular_peak_ratio",
]
