"""Reader hardware models: ADC, power states, solar harvest, battery."""

from .adc import ADC
from .power import DutyCycle, PowerModel, PowerState
from .solar import IrradianceProfile, SolarPanel, clear_day, cloudy_day, night_only
from .battery import Battery, simulate_energy_budget

__all__ = [
    "ADC",
    "DutyCycle",
    "PowerModel",
    "PowerState",
    "IrradianceProfile",
    "SolarPanel",
    "clear_day",
    "cloudy_day",
    "night_only",
    "Battery",
    "simulate_energy_budget",
]
