"""Rechargeable storage and the §12.5 energy budget.

§12.5: "the energy harvested from solar during 3 hours can be stored in a
rechargeable battery and run the device for a week regardless of weather
condition." At 500 mW harvest, 3 h is 5.4 kJ; at the 9 mW duty-cycled
average, a week is 5.44 kJ — the claim is tight and the simulation here
reproduces it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import PowerModelError
from .power import DutyCycle, PowerModel
from .solar import IrradianceProfile, SolarPanel

__all__ = ["Battery", "simulate_energy_budget"]


@dataclass
class Battery:
    """An energy reservoir with charge/discharge efficiency.

    Attributes:
        capacity_j: maximum stored energy.
        charge_j: current stored energy.
        charge_efficiency: fraction of input energy actually stored.
    """

    capacity_j: float
    charge_j: float = 0.0
    charge_efficiency: float = 0.95

    def __post_init__(self) -> None:
        if self.capacity_j <= 0:
            raise PowerModelError("capacity must be positive")
        if not 0 < self.charge_efficiency <= 1:
            raise PowerModelError("charge efficiency must be in (0, 1]")
        if not 0 <= self.charge_j <= self.capacity_j:
            raise PowerModelError("initial charge outside [0, capacity]")

    @property
    def state_of_charge(self) -> float:
        return self.charge_j / self.capacity_j

    def store(self, energy_j: float) -> float:
        """Charge; returns the energy actually stored (after clipping)."""
        if energy_j < 0:
            raise PowerModelError("cannot store negative energy")
        stored = min(energy_j * self.charge_efficiency, self.capacity_j - self.charge_j)
        self.charge_j += stored
        return stored

    def draw(self, energy_j: float) -> bool:
        """Discharge; returns False (and empties) on brown-out."""
        if energy_j < 0:
            raise PowerModelError("cannot draw negative energy")
        if energy_j > self.charge_j:
            self.charge_j = 0.0
            return False
        self.charge_j -= energy_j
        return True


@dataclass
class BudgetResult:
    """Outcome of an energy-budget simulation."""

    survived: bool
    uptime_s: float
    final_charge_j: float
    min_state_of_charge: float
    harvested_j: float
    consumed_j: float
    trace_t_s: np.ndarray = field(repr=False, default_factory=lambda: np.zeros(0))
    trace_soc: np.ndarray = field(repr=False, default_factory=lambda: np.zeros(0))


def simulate_energy_budget(
    battery: Battery,
    panel: SolarPanel,
    profile: IrradianceProfile,
    power: PowerModel,
    duty: DutyCycle,
    duration_s: float,
    step_s: float = 60.0,
) -> BudgetResult:
    """Co-simulate harvest, storage and duty-cycled consumption.

    The reader draws its duty-cycled average continuously (the battery
    smooths the 10 ms bursts); the panel charges whenever irradiance is
    non-zero. The run stops early on brown-out.

    Returns:
        A :class:`BudgetResult` with survival, uptime and the SoC trace.
    """
    if duration_s <= 0 or step_s <= 0:
        raise PowerModelError("duration and step must be positive")
    draw_w = power.average_power_w(duty)
    t = 0.0
    harvested = consumed = 0.0
    min_soc = battery.state_of_charge
    times = [0.0]
    socs = [battery.state_of_charge]
    while t < duration_s:
        dt = min(step_s, duration_s - t)
        harvest_j = panel.output_w(profile, t) * dt
        harvested += battery.store(harvest_j)
        need_j = draw_w * dt
        consumed += need_j
        alive = battery.draw(need_j)
        t += dt
        min_soc = min(min_soc, battery.state_of_charge)
        times.append(t)
        socs.append(battery.state_of_charge)
        if not alive:
            return BudgetResult(
                survived=False,
                uptime_s=t,
                final_charge_j=battery.charge_j,
                min_state_of_charge=min_soc,
                harvested_j=harvested,
                consumed_j=consumed,
                trace_t_s=np.array(times),
                trace_soc=np.array(socs),
            )
    return BudgetResult(
        survived=True,
        uptime_s=duration_s,
        final_charge_j=battery.charge_j,
        min_state_of_charge=min_soc,
        harvested_j=harvested,
        consumed_j=consumed,
        trace_t_s=np.array(times),
        trace_soc=np.array(socs),
    )
