"""The reader's ADC (§11): 12-bit, differential inputs.

Quantization sits between the RF front end and every algorithm, so the
model is exact: mid-tread uniform quantization of I and Q with clipping
at the full scale, plus an automatic-gain convention that places the
signal RMS a configurable backoff below full scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..phy.waveform import Waveform

__all__ = ["ADC"]


@dataclass(frozen=True)
class ADC:
    """Uniform mid-tread quantizer for complex baseband.

    Attributes:
        n_bits: resolution (12 in the Caraoke reader).
        full_scale: absolute clip level per I/Q rail.
        agc_backoff_db: when ``quantize_agc`` is used, the input RMS is
            scaled to sit this many dB below full scale (headroom for the
            OOK envelope and collisions).
    """

    n_bits: int = 12
    full_scale: float = 1.0
    agc_backoff_db: float = 12.0

    def __post_init__(self) -> None:
        if not 2 <= self.n_bits <= 24:
            raise ConfigurationError(f"n_bits must be in [2, 24], got {self.n_bits}")
        if self.full_scale <= 0:
            raise ConfigurationError("full scale must be positive")

    @property
    def n_levels(self) -> int:
        return 1 << self.n_bits

    @property
    def step(self) -> float:
        """Quantization step per rail."""
        return 2.0 * self.full_scale / self.n_levels

    def quantize_real(self, samples: np.ndarray) -> np.ndarray:
        """Quantize one rail, clipping at the full scale."""
        clipped = np.clip(samples, -self.full_scale, self.full_scale - self.step)
        return np.round(clipped / self.step) * self.step

    def quantize(self, samples: np.ndarray) -> np.ndarray:
        """Quantize a complex stream (I and Q independently)."""
        samples = np.asarray(samples, dtype=np.complex128)
        return self.quantize_real(samples.real) + 1j * self.quantize_real(samples.imag)

    def quantize_waveform(self, wave: Waveform, agc: bool = True) -> tuple[Waveform, float]:
        """Digitize a waveform; returns (digitized, gain applied).

        With ``agc`` the input is scaled so its RMS sits ``agc_backoff_db``
        below full scale before quantization — the returned gain lets
        callers undo the scaling if they need absolute units.
        """
        gain = 1.0
        if agc:
            rms = wave.rms()
            if rms > 0:
                target = self.full_scale * 10.0 ** (-self.agc_backoff_db / 20.0)
                gain = target / rms
        digitized = self.quantize(wave.samples * gain)
        return Waveform(digitized, wave.sample_rate_hz, wave.t0_s), gain

    def clip_fraction(self, samples: np.ndarray) -> float:
        """Fraction of samples whose I or Q rail clipped."""
        samples = np.asarray(samples, dtype=np.complex128)
        limit = self.full_scale - self.step
        clipped = (np.abs(samples.real) > limit) | (np.abs(samples.imag) > limit)
        return float(np.mean(clipped)) if samples.size else 0.0

    def theoretical_sqnr_db(self) -> float:
        """Ideal quantization SNR for a full-scale sine: 6.02 b + 1.76."""
        return 6.02 * self.n_bits + 1.76
