"""Solar harvesting (§10, §12.5).

The reader carries a 6 x 7.5 cm monocrystalline panel delivering 500 mW
in full sun. Day/night and weather are modelled as an irradiance profile
in [0, 1] scaling the panel's peak output; §12.5's claim — three hours of
sun charge a battery that runs the reader for a week — is reproduced by
the energy-budget simulation in :mod:`repro.hw.battery`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..constants import SOLAR_PEAK_W
from ..errors import ConfigurationError

__all__ = ["IrradianceProfile", "SolarPanel", "clear_day", "cloudy_day", "night_only"]

SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class IrradianceProfile:
    """Relative irradiance (0..1) as a function of time-of-day."""

    fn: Callable[[float], float]
    label: str = ""

    def at(self, t_s: float) -> float:
        value = float(self.fn(t_s % SECONDS_PER_DAY))
        return float(np.clip(value, 0.0, 1.0))


def clear_day(sunrise_s: float = 6 * 3600.0, sunset_s: float = 18 * 3600.0) -> IrradianceProfile:
    """A half-sine solar day between sunrise and sunset."""
    if sunset_s <= sunrise_s:
        raise ConfigurationError("sunset must follow sunrise")

    def fn(t: float) -> float:
        if not sunrise_s <= t <= sunset_s:
            return 0.0
        phase = (t - sunrise_s) / (sunset_s - sunrise_s)
        return float(np.sin(np.pi * phase))

    return IrradianceProfile(fn, "clear-day")


def cloudy_day(attenuation: float = 0.15) -> IrradianceProfile:
    """A clear day scaled down by heavy cloud cover."""
    if not 0.0 <= attenuation <= 1.0:
        raise ConfigurationError("attenuation must be in [0, 1]")
    base = clear_day()
    return IrradianceProfile(lambda t: attenuation * base.at(t), "cloudy-day")


def night_only() -> IrradianceProfile:
    """No harvest at all (worst case for battery sizing)."""
    return IrradianceProfile(lambda t: 0.0, "night")


@dataclass(frozen=True)
class SolarPanel:
    """A panel delivering ``peak_w`` at unit irradiance.

    Attributes:
        peak_w: full-sun output (500 mW for the OSEPP SC10050).
        efficiency_derating: wiring/regulator losses multiplier.
    """

    peak_w: float = SOLAR_PEAK_W
    efficiency_derating: float = 1.0

    def __post_init__(self) -> None:
        if self.peak_w <= 0 or not 0 < self.efficiency_derating <= 1:
            raise ConfigurationError("invalid panel parameters")

    def output_w(self, profile: IrradianceProfile, t_s: float) -> float:
        """Instantaneous harvest at time ``t_s``."""
        return self.peak_w * self.efficiency_derating * profile.at(t_s)

    def energy_j(
        self, profile: IrradianceProfile, start_s: float, end_s: float, step_s: float = 60.0
    ) -> float:
        """Harvested energy over an interval (trapezoidal integration)."""
        if end_s <= start_s:
            raise ConfigurationError("end must follow start")
        t = np.arange(start_s, end_s + step_s, step_s)
        p = np.array([self.output_w(profile, float(ti)) for ti in t])
        return float(np.trapezoid(p, t))
