"""Reader power model (§10, §12.5).

Measured on the PCB: **900 mW active** (query + receive + process),
**69 µW sleep** (master clock + sleep timer only). The micro-controller
duty-cycles: each wake-up runs a ~10 ms active burst (up to 10 queries),
then sleeps until the next measurement. At one measurement per second
the average is ~9 mW — 56x below the 500 mW solar panel.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..constants import ACTIVE_BURST_S, ACTIVE_POWER_W, SLEEP_POWER_W
from ..errors import PowerModelError

__all__ = ["PowerState", "DutyCycle", "PowerModel"]


class PowerState(enum.Enum):
    ACTIVE = "active"
    SLEEP = "sleep"


@dataclass(frozen=True)
class DutyCycle:
    """A periodic schedule: ``active_s`` of work every ``period_s``."""

    active_s: float = ACTIVE_BURST_S
    period_s: float = 1.0

    def __post_init__(self) -> None:
        if self.active_s < 0 or self.period_s <= 0:
            raise PowerModelError("invalid duty cycle")
        if self.active_s > self.period_s:
            raise PowerModelError(
                f"active time {self.active_s}s exceeds period {self.period_s}s"
            )

    @property
    def fraction_active(self) -> float:
        return self.active_s / self.period_s


@dataclass
class PowerModel:
    """Two-state power consumer with an explicit event timeline.

    Attributes:
        active_power_w / sleep_power_w: the paper's measured draws.
    """

    active_power_w: float = ACTIVE_POWER_W
    sleep_power_w: float = SLEEP_POWER_W
    state: PowerState = PowerState.SLEEP
    _state_since_s: float = 0.0
    _energy_j: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.active_power_w <= self.sleep_power_w:
            raise PowerModelError("active power must exceed sleep power")

    def power_w(self, state: PowerState | None = None) -> float:
        """Draw in a given state (current state by default)."""
        state = state or self.state
        return self.active_power_w if state is PowerState.ACTIVE else self.sleep_power_w

    def transition(self, to_state: PowerState, at_s: float) -> None:
        """Switch states, accounting energy for the elapsed interval."""
        if at_s < self._state_since_s:
            raise PowerModelError(
                f"time went backwards: {at_s} < {self._state_since_s}"
            )
        self._energy_j += self.power_w() * (at_s - self._state_since_s)
        self.state = to_state
        self._state_since_s = at_s

    def energy_j(self, now_s: float) -> float:
        """Total energy consumed up to ``now_s``."""
        if now_s < self._state_since_s:
            raise PowerModelError("cannot query energy in the past")
        return self._energy_j + self.power_w() * (now_s - self._state_since_s)

    # -- closed forms (§12.5) ----------------------------------------------------

    def average_power_w(self, duty: DutyCycle) -> float:
        """Mean draw under a duty cycle.

        At the paper's numbers (10 ms active, 1 s period): 0.01 * 900 mW +
        0.99 * 69 µW ~= 9 mW.
        """
        f = duty.fraction_active
        return f * self.active_power_w + (1.0 - f) * self.sleep_power_w

    def harvest_margin(self, duty: DutyCycle, harvest_w: float) -> float:
        """How many times the harvest exceeds the average draw (the 56x)."""
        average = self.average_power_w(duty)
        if average <= 0:
            raise PowerModelError("average power must be positive")
        return harvest_w / average

    def simulate_schedule(self, duty: DutyCycle, duration_s: float) -> float:
        """Run the explicit state machine for a duration; returns joules.

        Cross-checks the closed form: the event-driven and analytic
        energies must agree (a test asserts this).
        """
        model = PowerModel(self.active_power_w, self.sleep_power_w)
        t = 0.0
        while t < duration_s:
            model.transition(PowerState.ACTIVE, t)
            burst_end = min(t + duty.active_s, duration_s)
            model.transition(PowerState.SLEEP, burst_end)
            t += duty.period_s
        return model.energy_j(duration_s)
