"""Caraoke reproduction: smart-city services from e-toll transponder collisions.

Reproduces *Caraoke: An E-Toll Transponder Network for Smart Cities*
(Abari, Vasisht, Katabi, Chandrakasan — SIGCOMM 2015): counting,
localizing, speed-measuring and decoding unmodified e-toll transponders
from their wireless collisions, by exploiting per-tag carrier frequency
offsets in the Fourier domain.

Public API highlights
---------------------

* :mod:`repro.phy` — transponders, packets, OOK/Manchester modulation.
* :mod:`repro.channel` — propagation, antennas, collision synthesis.
* :mod:`repro.dsp` — spectra, peaks, sparse FFT, beamforming, SAR.
* :mod:`repro.core` — the paper's algorithms: counting (§5),
  localization (§6), speed (§7), decoding (§8), reader MAC (§9).
* :mod:`repro.sim` — event-driven streets: traffic, parking, mobility.
* :mod:`repro.hw` — ADC, power, solar and battery models (§10, §12.5).
* :mod:`repro.baselines` — naive counting, traffic cameras, radar guns,
  band-pass decoding.
"""

from . import constants, errors, utils
from .datasets import empirical_carriers_hz, empirical_cfo_dataset, empirical_cfos_hz
from .errors import CaraokeError

__version__ = "1.0.0"

__all__ = [
    "constants",
    "errors",
    "utils",
    "CaraokeError",
    "empirical_carriers_hz",
    "empirical_cfo_dataset",
    "empirical_cfos_hz",
    "__version__",
]
