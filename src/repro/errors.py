"""Exception hierarchy for the Caraoke reproduction.

All library errors derive from :class:`CaraokeError`, so callers can catch
one type at an API boundary. Subclasses mark which stage of the pipeline
failed.
"""

from __future__ import annotations


class CaraokeError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(CaraokeError):
    """A component was constructed with inconsistent or invalid parameters."""


class PacketError(CaraokeError):
    """A transponder packet could not be built or parsed."""


class CrcError(PacketError):
    """A packet failed its CRC check."""


class ModulationError(CaraokeError):
    """Chip/bit streams do not form a valid Manchester/OOK signal."""


class SpectrumError(CaraokeError):
    """A spectral operation received an unusable window or signal."""


class DecodingError(CaraokeError):
    """The coherent-combining decoder could not recover a packet."""


class LocalizationError(CaraokeError):
    """AoA or position could not be computed for the given geometry."""


class GeometryError(CaraokeError):
    """Degenerate geometric configuration (e.g. no curve intersection)."""


class SimulationError(CaraokeError):
    """The discrete-event simulation reached an inconsistent state."""


class PowerModelError(CaraokeError):
    """The hardware power/energy model was driven outside its envelope."""
