"""Reader-side medium access (§9).

Tags have no MAC, so the *readers* must avoid stepping on each other.
Two interference cases:

1. **Query x query** — harmless: queries are bare sinewaves near the
   carrier, and a sum of sinewaves is still a valid trigger. Readers
   never defer to other queries' energy alone being present *before*
   their own; they only need rule 2.
2. **Query x tag response** — harmful and avoidable: a response can only
   exist if some query ended within the last turnaround window. A reader
   that observes the channel idle for ``query + turnaround = 120 us`` is
   guaranteed no response is in flight or imminent, and may transmit.

The resulting protocol is CSMA with a fixed 120 µs listen window and *no
contention window* (query collisions being acceptable, there is nothing
to randomize away).

Energy a reader hears can be *classified*: a query is a bare sinewave, a
tag response is OOK-modulated. :class:`CsmaState` therefore records what
kind each busy interval was, and :class:`ReaderMac` exploits it under the
default §9 policy (``defer_to_queries=False``): another reader's query in
flight does not block transmission — only response energy and the
response *window* each heard query opens do. A query heard ending at
``e`` implies any triggered responses occupy exactly
``[e + turnaround, e + turnaround + response]``; the reader's own query
must not overlap that window. Setting ``defer_to_queries=True`` models
the conservative reader that treats all energy alike (the ablation
baseline): it simply waits for 120 µs of total silence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..constants import (
    CSMA_LISTEN_S,
    QUERY_DURATION_S,
    RESPONSE_DURATION_S,
    TURNAROUND_S,
)
from ..errors import ConfigurationError

__all__ = ["CsmaState", "ReaderMac"]


def _merge(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Union of intervals, merged (abutting intervals coalesce)."""
    merged: list[tuple[float, float]] = []
    for lo, hi in sorted(intervals):
        if merged and lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged


def _idle_since(intervals: list[tuple[float, float]], t_s: float) -> float:
    """Continuous idle time at ``t_s`` over a set of busy intervals."""
    last_end = None
    for lo, hi in intervals:
        if lo <= t_s < hi:
            return 0.0
        if hi <= t_s:
            last_end = hi if last_end is None else max(last_end, hi)
    return float("inf") if last_end is None else t_s - last_end


@dataclass
class CsmaState:
    """What a reader has heard: merged busy intervals on the medium.

    ``busy_intervals`` is the merged union of *all* energy, regardless of
    kind (the conservative picture). Intervals added with
    ``kind="query"`` are additionally remembered individually, so the
    aggressive §9 policy can subtract them from the carrier sense and
    honor only the response windows they open.
    """

    busy_intervals: list[tuple[float, float]] = field(default_factory=list)
    _query_spans: list[tuple[float, float]] = field(default_factory=list, repr=False)

    @classmethod
    def from_heard(
        cls, intervals: list[tuple[float, float, str]]
    ) -> "CsmaState":
        """Build a state from many heard intervals in one pass.

        Equivalent to repeated :meth:`add_busy` calls but merges once
        (O(n log n) instead of O(n^2)) — carrier sensing rebuilds the
        state per query, so bulk construction is the hot path.
        """
        state = cls()
        state._query_spans = [
            (start, end) for start, end, kind in intervals if kind == "query"
        ]
        state.busy_intervals = _merge([(start, end) for start, end, _ in intervals])
        return state

    def add_busy(self, start_s: float, end_s: float, kind: str = "unknown") -> None:
        """Record a heard transmission, merging overlaps.

        Args:
            start_s / end_s: the transmission interval.
            kind: ``"query"`` if the energy was classified as another
                reader's query sinewave; ``"response"`` or ``"unknown"``
                otherwise. Unknown energy is treated like a response
                (the §9 blanket rule applies to anything a reader cannot
                rule out).
        """
        if end_s <= start_s:
            raise ConfigurationError(f"empty interval [{start_s}, {end_s}]")
        if kind not in ("query", "response", "unknown"):
            raise ConfigurationError(f"unknown transmission kind {kind!r}")
        if kind == "query":
            self._query_spans.append((start_s, end_s))
        self.busy_intervals = _merge(self.busy_intervals + [(start_s, end_s)])

    def idle_since(self, t_s: float) -> float:
        """How long the medium has been continuously idle at time ``t_s``.

        Counts energy of every kind. Returns +inf if nothing was ever
        heard before ``t_s``.
        """
        return _idle_since(self.busy_intervals, t_s)

    def response_energy_intervals(self) -> list[tuple[float, float]]:
        """Busy intervals after subtracting energy classified as queries.

        What remains is response energy plus anything unclassifiable —
        the energy the §9 listen rule must actually defer to.
        """
        queries = _merge(self._query_spans)
        out: list[tuple[float, float]] = []
        for lo, hi in self.busy_intervals:
            cursor = lo
            for q_lo, q_hi in queries:
                if q_hi <= cursor or q_lo >= hi:
                    continue
                if q_lo > cursor:
                    out.append((cursor, q_lo))
                cursor = max(cursor, q_hi)
                if cursor >= hi:
                    break
            if cursor < hi:
                out.append((cursor, hi))
        return out

    def response_idle_since(self, t_s: float) -> float:
        """Continuous idle time at ``t_s`` counting only non-query energy."""
        return _idle_since(self.response_energy_intervals(), t_s)

    def query_spans(self) -> list[tuple[float, float]]:
        """The individual intervals classified as queries, as heard.

        Includes *announced* queries whose start lies in the future: a
        decode burst's 1 ms cadence (§12.4) is protocol-deterministic,
        so a reader that heard the burst begin knows where its remaining
        queries fall and can keep its own response slot clear of them.
        """
        return list(self._query_spans)

    def response_windows(
        self,
        turnaround_s: float = TURNAROUND_S,
        response_s: float = RESPONSE_DURATION_S,
    ) -> list[tuple[float, float]]:
        """The response slot each heard query opens (§3 timing).

        Every query ending at ``e`` triggers any in-range tags to respond
        over exactly ``[e + turnaround, e + turnaround + response]``; a
        reader that heard the query knows the window even before any
        response energy arrives.
        """
        return [
            (hi + turnaround_s, hi + turnaround_s + response_s)
            for _, hi in self._query_spans
        ]


@dataclass
class ReaderMac:
    """The §9 CSMA policy: listen 120 µs, then transmit.

    Attributes:
        listen_s: required continuous idle time (query + turnaround).
        query_s: duration of the query this reader would transmit.
        defer_to_queries: if False (the default, per §9), energy
            identified as *another reader's query* does not block
            transmission — query collisions are benign, so the reader
            only defers to response energy and to the response windows
            heard queries open. Enabling it models a conservative reader
            (every kind of energy restarts the 120 µs listen window) for
            the ablation benchmark.
        obs: nullable observability hook (see :mod:`repro.obs`):
            counts carrier-sense verdicts by outcome. Verdict counts are
            a function of sim time and seeded state only.
    """

    listen_s: float = CSMA_LISTEN_S
    query_s: float = QUERY_DURATION_S
    defer_to_queries: bool = False
    obs: object = None

    def can_transmit(self, now_s: float, state: CsmaState) -> bool:
        """Whether a reader may begin its query at ``now_s``.

        The default §9 policy requires three things: 120 µs with no
        response-or-unknown energy; the query itself clear of every
        response window heard queries have opened (rule 2 — the harmful
        case); and the *own* response slot the query triggers clear of
        every known query interval, including announced future burst
        queries — otherwise the reader would invite its tags to respond
        straight into a transmission it already knows is coming.
        """
        verdict = self._can_transmit(now_s, state)
        if self.obs is not None:
            self.obs.count(
                "mac.carrier_sense", outcome="allow" if verdict else "defer"
            )
        return verdict

    def _can_transmit(self, now_s: float, state: CsmaState) -> bool:
        if self.defer_to_queries:
            return state.idle_since(now_s) >= self.listen_s
        if state.response_idle_since(now_s) < self.listen_s:
            return False
        tx_end = now_s + self.query_s
        if any(
            now_s < w_hi and w_lo < tx_end for w_lo, w_hi in state.response_windows()
        ):
            return False
        slot_lo = tx_end + TURNAROUND_S
        slot_hi = slot_lo + RESPONSE_DURATION_S
        return not any(
            q_lo < slot_hi and slot_lo < q_hi for q_lo, q_hi in state.query_spans()
        )

    def next_opportunity(self, now_s: float, state: CsmaState) -> float:
        """Earliest time >= now at which transmission becomes allowed."""
        if self.can_transmit(now_s, state):
            return now_s
        busy = (
            state.busy_intervals
            if self.defer_to_queries
            else state.response_energy_intervals()
        )
        windows = [] if self.defer_to_queries else state.response_windows()
        spans = [] if self.defer_to_queries else state.query_spans()
        candidates = [hi + self.listen_s for _, hi in busy]
        candidates += [w_hi for _, w_hi in windows]
        # A query interval blocking the response slot clears once the
        # slot start passes the interval end: query + turnaround earlier.
        candidates += [q_hi - self.query_s - TURNAROUND_S for _, q_hi in spans]
        ends = [hi for _, hi in busy] + [w_hi for _, w_hi in windows]
        ends += [q_hi + self.listen_s for _, q_hi in spans]
        if ends:
            candidates.append(max(ends) + self.listen_s)  # always admissible
        for t in sorted(c for c in candidates if c > now_s):
            if self.can_transmit(t, state):
                return t
        return now_s  # unreachable when blocked; defensive

    def response_window(self, t_query_s: float) -> tuple[float, float]:
        """The response slot a query starting at ``t_query_s`` opens.

        §3 timing: tags answer exactly ``turnaround`` after the query
        ends, for one response duration. This is both the window the
        querying reader captures and the window every *other* in-range
        reader overhears — the cross-pole response pool keys trigger
        windows off it, and harvesting stations use it to keep overheard
        windows clear of their own capture slots.
        """
        start = t_query_s + self.query_s + TURNAROUND_S
        return (start, start + RESPONSE_DURATION_S)

    def guaranteed_safe(self, idle_observed_s: float) -> bool:
        """§9's argument, as a predicate: after ``query + turnaround`` of
        silence no tag response can start, because any response needs a
        query to have ended within the last turnaround window."""
        return idle_observed_s >= self.listen_s
