"""Reader-side medium access (§9).

Tags have no MAC, so the *readers* must avoid stepping on each other.
Two interference cases:

1. **Query x query** — harmless: queries are bare sinewaves near the
   carrier, and a sum of sinewaves is still a valid trigger. Readers
   never defer to other queries' energy alone being present *before*
   their own; they only need rule 2.
2. **Query x tag response** — harmful and avoidable: a response can only
   exist if some query ended within the last turnaround window. A reader
   that observes the channel idle for ``query + turnaround = 120 us`` is
   guaranteed no response is in flight or imminent, and may transmit.

The resulting protocol is CSMA with a fixed 120 µs listen window and *no
contention window* (query collisions being acceptable, there is nothing
to randomize away).
"""

from __future__ import annotations

from dataclasses import dataclass, field


from ..constants import CSMA_LISTEN_S
from ..errors import ConfigurationError

__all__ = ["CsmaState", "ReaderMac"]


@dataclass
class CsmaState:
    """What a reader has heard: merged busy intervals on the medium."""

    busy_intervals: list[tuple[float, float]] = field(default_factory=list)

    def add_busy(self, start_s: float, end_s: float) -> None:
        """Record a heard transmission, merging overlaps."""
        if end_s <= start_s:
            raise ConfigurationError(f"empty interval [{start_s}, {end_s}]")
        merged = []
        new_lo, new_hi = start_s, end_s
        for lo, hi in sorted(self.busy_intervals):
            if hi < new_lo or lo > new_hi:
                merged.append((lo, hi))
            else:
                new_lo, new_hi = min(lo, new_lo), max(hi, new_hi)
        merged.append((new_lo, new_hi))
        self.busy_intervals = sorted(merged)

    def idle_since(self, t_s: float) -> float:
        """How long the medium has been continuously idle at time ``t_s``.

        Returns +inf if nothing was ever heard before ``t_s``.
        """
        last_end = None
        for lo, hi in self.busy_intervals:
            if lo <= t_s < hi:
                return 0.0
            if hi <= t_s:
                last_end = hi if last_end is None else max(last_end, hi)
        return float("inf") if last_end is None else t_s - last_end


@dataclass
class ReaderMac:
    """The §9 CSMA policy: listen 120 µs, then transmit.

    Attributes:
        listen_s: required continuous idle time (query + turnaround).
        defer_to_queries: if False (the default, per §9), energy
            identified as *another reader's query* does not block
            transmission — query collisions are benign. Enabling it
            models a conservative reader for the ablation benchmark.
    """

    listen_s: float = CSMA_LISTEN_S
    defer_to_queries: bool = False

    def can_transmit(self, now_s: float, state: CsmaState) -> bool:
        """Whether a reader may begin its query at ``now_s``."""
        return state.idle_since(now_s) >= self.listen_s

    def next_opportunity(self, now_s: float, state: CsmaState) -> float:
        """Earliest time >= now at which transmission becomes allowed."""
        if self.can_transmit(now_s, state):
            return now_s
        horizon = now_s
        for lo, hi in state.busy_intervals:
            if hi > horizon - self.listen_s:
                horizon = max(horizon, hi + self.listen_s)
        return horizon

    def guaranteed_safe(self, idle_observed_s: float) -> bool:
        """§9's argument, as a predicate: after ``query + turnaround`` of
        silence no tag response can start, because any response needs a
        query to have ended within the last turnaround window."""
        return idle_observed_s >= self.listen_s
