"""Localizing tags from collision phase differences (§6, Fig 5-7).

Pipeline: for each tag's CFO spike, read the complex channel at two
antennas (Eq 5 per antenna); their phase ratio gives the spatial angle
``alpha`` via ``cos(alpha) = delta_phi * lambda / (2 pi d)`` (Eq 10). The
three-antenna triangle measures alpha on all three baselines and trusts
the one nearest broadside (§6). One reader constrains the tag to a cone;
its road-plane section is a conic (hyperbola untilted, ellipse at 60°
tilt); two readers intersect their conics and the on-road solution is the
car (Fig 7, footnote 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..channel.antenna import AntennaPair, TriangleArray
from ..channel.collision import ReceivedCollision
from ..channel.geometry import RoadSegment, aoa_cone_conic, intersect_conics
from ..constants import PAIR_USABLE_MAX_DEG, PAIR_USABLE_MIN_DEG, WAVELENGTH_M
from ..errors import GeometryError, LocalizationError
from ..utils import wrap_angle
from .cfo import estimate_channel, extract_collision_peaks

__all__ = [
    "aoa_from_phase",
    "phase_from_aoa",
    "AoAEstimate",
    "AoAEstimator",
    "ReaderGeometry",
    "TwoReaderLocalizer",
    "LaneProjectionLocalizer",
]


def aoa_from_phase(
    delta_phi_rad: float,
    spacing_m: float,
    wavelength_m: float = WAVELENGTH_M,
    strict: bool = False,
) -> float:
    """Invert Eq 10: ``alpha = arccos(delta_phi * lambda / (2 pi d))``.

    Noise can push the implied cosine slightly outside [-1, 1]; by default
    it is clamped (the estimate saturates at end-fire), with ``strict``
    such measurements raise :class:`LocalizationError` instead.
    """
    if spacing_m <= 0:
        raise LocalizationError(f"spacing must be positive, got {spacing_m}")
    cos_alpha = delta_phi_rad * wavelength_m / (2.0 * np.pi * spacing_m)
    if abs(cos_alpha) > 1.0:
        if strict:
            raise LocalizationError(
                f"phase {delta_phi_rad:.3f} rad implies |cos(alpha)| = "
                f"{abs(cos_alpha):.3f} > 1"
            )
        cos_alpha = float(np.clip(cos_alpha, -1.0, 1.0))
    return float(np.arccos(cos_alpha))


def phase_from_aoa(
    alpha_rad: float, spacing_m: float, wavelength_m: float = WAVELENGTH_M
) -> float:
    """Forward Eq 10: the phase difference a tag at angle alpha produces."""
    return float(2.0 * np.pi * spacing_m / wavelength_m * np.cos(alpha_rad))


@dataclass
class AoAEstimate:
    """Per-tag AoA measurement from one reader.

    Attributes:
        cfo_hz: the tag's spike frequency (its identity within the capture).
        alphas_rad: spatial angle per antenna pair.
        best_pair_index: the pair whose angle is nearest 90° (§6).
        channels: per-antenna channel estimates at the spike.
    """

    cfo_hz: float
    alphas_rad: tuple[float, ...]
    best_pair_index: int
    channels: np.ndarray = field(default_factory=lambda: np.zeros(0, complex))

    @property
    def alpha_rad(self) -> float:
        """The selected pair's spatial angle."""
        return self.alphas_rad[self.best_pair_index]

    @property
    def alpha_deg(self) -> float:
        return float(np.rad2deg(self.alpha_rad))

    def in_usable_band(self) -> bool:
        """Whether the selected angle is within the 60-120° sweet spot."""
        return PAIR_USABLE_MIN_DEG <= self.alpha_deg <= PAIR_USABLE_MAX_DEG


@dataclass
class AoAEstimator:
    """Measures spatial angles for every tag in a collision (§6).

    Attributes:
        array: the reader's antenna triangle.
        wavelength_m: carrier wavelength.
        min_snr_db: spike detection threshold (forwarded to peak search).
    """

    array: TriangleArray
    wavelength_m: float = WAVELENGTH_M
    min_snr_db: float = 15.0

    def estimate_from_channels(
        self, cfo_hz: float, channels: np.ndarray
    ) -> AoAEstimate:
        """AoA from per-antenna channel estimates at one spike.

        The channels may come from any Eq 5 readout of the same capture —
        a direct spectral read, the shared
        :func:`~repro.core.cfo.extract_collision_peaks` pass, or the
        decoder's per-antenna accumulators
        (:attr:`~repro.core.decoding.DecodeResult.channels`): only the
        cross-antenna *ratios* enter Eq 10, and any per-response or
        reference phase common to all entries cancels there.
        """
        channels = np.asarray(channels, dtype=np.complex128)
        if channels.size < 3:
            raise LocalizationError(
                f"triangle AoA needs 3 antenna channels, got {channels.size}"
            )
        channels = channels[:3]
        if np.any(np.abs(channels) == 0.0):
            raise LocalizationError("zero channel estimate; no signal at the CFO")
        alphas = []
        for pair, (i, j) in zip(self.array.pairs(), self.array.pair_indices()):
            delta_phi = float(np.angle(channels[j] / channels[i]))
            alphas.append(aoa_from_phase(delta_phi, pair.spacing_m, self.wavelength_m))
        best = int(np.argmin([abs(a - np.pi / 2.0) for a in alphas]))
        return AoAEstimate(
            cfo_hz=float(cfo_hz),
            alphas_rad=tuple(alphas),
            best_pair_index=best,
            channels=channels,
        )

    def estimate_for_cfo(self, collision: ReceivedCollision, cfo_hz: float) -> AoAEstimate:
        """AoA of the tag whose spike sits at (or near) ``cfo_hz``.

        Reads the channel at each antenna, then forms the phase difference
        per pair. All three pairs are computed; the one nearest broadside
        is selected, emulating the antenna switch of Fig 6.
        """
        if collision.n_antennas < 3:
            raise LocalizationError(
                f"triangle AoA needs 3 antenna captures, got {collision.n_antennas}"
            )
        channels = np.array(
            [estimate_channel(wave, cfo_hz) for wave in collision.antennas[:3]]
        )
        return self.estimate_from_channels(cfo_hz, channels)

    def estimate_from_decode(self, result) -> AoAEstimate:
        """AoA straight from a decode outcome — no extra spectral pass.

        The decoder already read every antenna's channel (Eq 5) for each
        capture it combined; a
        :attr:`~repro.core.decoding.DecodeResult.channels` vector carries
        that evidence coherently summed across captures, so its phase
        differences *are* the AoA measurement, averaged over the whole
        decode burst (§8 meets §6: localization falls out of decoding).
        """
        if result.channels is None:
            raise LocalizationError("decode result carries no channel estimates")
        return self.estimate_from_channels(result.cfo_hz, result.channels)

    def estimate_all(
        self, collision: ReceivedCollision, cfos_hz: list[float] | None = None
    ) -> list[AoAEstimate]:
        """Measure each tag's AoA via the shared collision readout.

        Spikes are detected on the average magnitude spectrum across
        every antenna (no element is privileged) and each spike's channel
        is read per antenna at one refined frequency — the same Eq 5 pass
        the rest of the chain uses.  Passing ``cfos_hz`` (e.g. the
        counting pass's accepted spikes) skips detection entirely.
        """
        if cfos_hz is not None:
            return [self.estimate_for_cfo(collision, float(f)) for f in cfos_hz]
        peaks = extract_collision_peaks(collision, min_snr_db=self.min_snr_db)
        return [
            self.estimate_from_channels(p.cfo_hz, p.channels) for p in peaks
        ]

    def best_pair(self, estimate: AoAEstimate) -> AntennaPair:
        """The physical pair selected for an estimate."""
        return self.array.pairs()[estimate.best_pair_index]


@dataclass
class ReaderGeometry:
    """Where a reader sits relative to the road it watches."""

    array: TriangleArray
    road: RoadSegment

    @property
    def pole_position_m(self) -> np.ndarray:
        return self.array.center_m

    @property
    def pole_height_m(self) -> float:
        return float(self.array.center_m[2] - self.road.z_m)


@dataclass
class TwoReaderLocalizer:
    """Intersects AoA conics from two readers into an (x, y) on the road.

    §6: one AoA confines the car to a conic on the road plane; a second
    reader (typically across the street) adds another; their intersection
    points are computed numerically and candidates off the pavement are
    rejected (they are "on the sidewalk", footnote 10).
    """

    first: ReaderGeometry
    second: ReaderGeometry
    road_margin_m: float = 1.5
    #: Height of the windshield-mounted transponder above the road. The
    #: AoA cone is intersected with the *transponder* plane (footnote 14:
    #: pole, antennas and tag are treated as coplanar geometry), then the
    #: (x, y) is reported on the road.
    tag_height_m: float = 1.0

    def locate(
        self,
        estimate_a: AoAEstimate,
        estimate_b: AoAEstimate,
        estimator_a: AoAEstimator,
        estimator_b: AoAEstimator,
        hint_xy: np.ndarray | None = None,
    ) -> np.ndarray:
        """Locate one tag from its AoA at both readers.

        Args:
            hint_xy: optional prior (x, y); when several candidates
                survive the road filter, the one nearest the hint wins
                (e.g. a coarse position from timing, or the previous fix
                of a tracked car).

        Returns:
            (x, y) world coordinates on the road plane.

        Raises:
            GeometryError: if the conics do not intersect on the road.
        """
        road = self.first.road
        pair_a = estimator_a.best_pair(estimate_a)
        pair_b = estimator_b.best_pair(estimate_b)
        plane_z = road.z_m + self.tag_height_m
        conic_a = aoa_cone_conic(
            pair_a.midpoint_m, pair_a.axis, estimate_a.alpha_rad, plane_z
        )
        conic_b = aoa_cone_conic(
            pair_b.midpoint_m, pair_b.axis, estimate_b.alpha_rad, plane_z
        )
        x_range = (road.x_min_m - self.road_margin_m, road.x_max_m + self.road_margin_m)
        points = intersect_conics(conic_a, conic_b, x_range)
        on_road = [p for p in points if road.contains(p, margin_m=self.road_margin_m)]
        if not on_road:
            raise GeometryError(
                f"no conic intersection on the road (found {len(points)} points total)"
            )
        # If several candidates survive (grazing geometries), prefer the
        # hint when given, otherwise keep the one closest to the road
        # centerline — farther ones are curb-side mirror artifacts.
        if hint_xy is not None and len(on_road) > 1:
            hint = np.asarray(hint_xy, dtype=np.float64)
            best = min(on_road, key=lambda p: float(np.linalg.norm(p - hint)))
        else:
            best = min(on_road, key=lambda p: abs(p[1] - road.y_center_m))
        return np.asarray(best, dtype=np.float64)


@dataclass
class LaneProjectionLocalizer:
    """Single-reader road fix: intersect the AoA cone with known lanes.

    One reader's AoA confines a tag to a cone around the measured antenna
    baseline; a full 2-D fix normally takes a second reader's conic
    (:class:`TwoReaderLocalizer`, Fig 7). On an instrumented road the
    unknown is effectively one-dimensional, though: cars sit in known
    lanes (or marked parking spots), so intersecting the cone with each
    lane line ``y = lane, z = tag height`` reduces localization to a
    quadratic in the along-road coordinate x. At most two candidates
    survive per lane; road limits, the cone's half-space, and an optional
    hint (e.g. the car's previous fix) disambiguate.

    This is what lets a :class:`~repro.core.network.ReaderNetwork` station
    mint positioned observations from a *single* pole per approach.

    Attributes:
        road: the road segment the lanes belong to.
        lane_ys_m: cross-road coordinates of the lane centers to try.
        tag_height_m: windshield transponder height above the road.
        road_margin_m: tolerance outside the road edge (footnote 10).
        max_phase_error_deg: per-baseline tolerance between the phase a
            candidate would produce and the measured one. Phase noise is
            roughly uniform across pairs (unlike angle noise, which blows
            up toward end-fire), so the gate is applied in phase space: a
            candidate exceeding it on any baseline is a ghost (e.g. a tag
            that is really outside this reader's road segment) and is
            rejected rather than reported.
    """

    road: RoadSegment
    lane_ys_m: tuple[float, ...]
    tag_height_m: float = 1.0
    road_margin_m: float = 1.5
    max_phase_error_deg: float = 15.0

    def locate(
        self,
        estimate: AoAEstimate,
        estimator: AoAEstimator,
        hint_xy: np.ndarray | None = None,
    ) -> np.ndarray:
        """Locate one tag from its AoA at this reader alone.

        Args:
            estimate: the tag's AoA measurement.
            estimator: the estimator that produced it (provides the
                physical pair geometry behind ``best_pair_index``).
            hint_xy: optional prior (x, y); the candidate nearest the
                hint wins. Without a hint, candidates are scored by
                consistency with *all three* measured baselines (the
                selected pair fixes a cone; the other two pairs vote
                between its lane intersections).

        Returns:
            (x, y) world coordinates on the road plane.

        Raises:
            GeometryError: if the cone misses every lane on the road.
        """
        pair = estimator.best_pair(estimate)
        apex = pair.midpoint_m
        axis = pair.axis
        cos_a = float(np.cos(estimate.alpha_rad))
        z = self.road.z_m + self.tag_height_m
        candidates: list[np.ndarray] = []
        for lane_y in self.lane_ys_m:
            dy = lane_y - apex[1]
            dz = z - apex[2]
            # |(p - apex) . axis| = |p - apex| cos(alpha) with p = (x, y, z)
            # becomes a quadratic in X = x - apex_x.
            c1 = axis[1] * dy + axis[2] * dz
            c2 = dy * dy + dz * dz
            a = axis[0] ** 2 - cos_a**2
            b = 2.0 * axis[0] * c1
            c = c1 * c1 - c2 * cos_a**2
            if abs(a) < 1e-12:
                if abs(b) < 1e-12:
                    continue
                roots = [-c / b]
            else:
                disc = b * b - 4.0 * a * c
                if disc < 0:
                    continue
                sq = float(np.sqrt(disc))
                roots = [(-b - sq) / (2.0 * a), (-b + sq) / (2.0 * a)]
            for x_rel in roots:
                # The measured alpha fixes which nappe of the double cone.
                along = axis[0] * x_rel + c1
                if cos_a * along < -1e-9:
                    continue
                point = np.array([apex[0] + x_rel, lane_y])
                if self.road.contains(point, margin_m=self.road_margin_m):
                    candidates.append(point)
        pairs = estimator.array.pairs()
        self_wl = estimator.wavelength_m

        def phase_errors_rad(point_xy: np.ndarray) -> np.ndarray:
            p = np.array([point_xy[0], point_xy[1], z])
            # Wrap each difference into (-pi, pi]: near end-fire the true
            # phase sits next to +-pi and noise can flip the measured
            # sign — a tiny physical error that would otherwise read ~2pi.
            return np.array(
                [
                    abs(
                        float(
                            wrap_angle(
                                phase_from_aoa(alpha, pair_k.spacing_m, self_wl)
                                - phase_from_aoa(
                                    pair_k.true_spatial_angle_rad(p),
                                    pair_k.spacing_m,
                                    self_wl,
                                )
                            )
                        )
                    )
                    for alpha, pair_k in zip(estimate.alphas_rad, pairs)
                ]
            )

        # A real tag matches all three measured baselines to within phase
        # noise; a ghost (wrong lane, or a tag outside this road segment
        # whose cone happens to graze it) only matches the selected one.
        ceiling = float(np.deg2rad(self.max_phase_error_deg))
        scored = [(p, phase_errors_rad(p)) for p in candidates]
        scored = [(p, errors) for p, errors in scored if errors.max() <= ceiling]
        if not scored:
            raise GeometryError(
                f"AoA cone (alpha={estimate.alpha_deg:.1f} deg) intersects "
                f"no lane of {self.lane_ys_m} on the road consistently "
                f"with all baselines"
            )
        if hint_xy is not None:
            hint = np.asarray(hint_xy, dtype=np.float64)
            return min(
                (p for p, _ in scored),
                key=lambda p: float(np.linalg.norm(p - hint)),
            )
        return min(scored, key=lambda item: float(np.sum(item[1] ** 2)))[0]
