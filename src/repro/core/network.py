"""A network of Caraoke readers feeding the city backend (§12.5).

One reader observes one approach; a *city* deployment is many readers
streaming measurements into shared services (§1: red-light enforcement,
parking billing, find-my-car). This module is that batch layer:

* :class:`ReaderStation` — one pole: a :class:`~repro.core.reader.CaraokeReader`,
  the collision stream it listens to (``query_fn``), a localizer that turns
  AoA into road positions, and an :class:`IdentityCache` so a tag decoded
  once is not re-decoded every round (§7: tag CFOs are stable over minutes).
* :class:`ReaderNetwork` — drives every station through measurement
  rounds. Each round counts (§5), localizes (§6) and — for CFOs whose
  account id is not yet known — opens a batched
  :class:`~repro.core.decoding.DecodeSession` that identifies *all*
  unknown tags from one shared capture stream (§12.4). The resulting
  :class:`~repro.apps.services.TagObservation` records are fanned out to
  every subscribed service.

The network never reads simulation ground truth: stations consume
collisions through ``query_fn`` exactly like a live radio front-end.

The :class:`IdentityCache` defined here is the per-pole identity store
the whole city stack builds on: the corridor engine forwards its
entries between neighbor poles (pull handoff), the mesh pushes them
ahead of predicted arrivals, and the city-wide
:class:`~repro.sim.city.directory.IdentityDirectory` composes one as
its bounded fingerprint index.

Example::

    network = ReaderNetwork()
    network.add_station(ReaderStation("pole-1", reader, sim.query,
                                      localizer=lane_localizer))
    finder = network.subscribe(CarFinder())
    network.step(timestamp_s=0.0)
    finder.locate(account_id)
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

import numpy as np

from ..errors import CaraokeError
from .decoding import (
    DecodeResult,
    deprecated_antenna_index,
    validate_combining,
    validate_opportunistic,
)
from .reader import ReaderReport

__all__ = [
    "IdentityCache",
    "ReaderStation",
    "StationReport",
    "ReaderNetwork",
    "resolve_cached_ids",
    "decode_aoa",
]


def _tag_observation():
    # Deferred: repro.apps pulls in repro.sim, whose medium module needs
    # repro.core (this package) for the MAC — importing apps here at
    # module scope would close that cycle during package init.
    from ..apps.services import TagObservation

    return TagObservation


@dataclass
class IdentityCache:
    """Resolves CFO spikes to account ids decoded earlier (§7).

    A tag's CFO is its short-term fingerprint: stable over minutes, far
    apart between tags relative to the FFT resolution. Once a spike has
    been decoded, later sightings within ``tolerance_hz`` reuse the id —
    and each hit refreshes the stored CFO so slow oscillator drift is
    tracked instead of aged out.

    The table is bounded two ways: ``max_entries`` caps its size with
    least-recently-seen eviction (a city-scale stream sees every passing
    car once; an unbounded table would grow forever), and ``max_age_s``
    ages out entries not sighted recently (a stale fingerprint is also a
    mis-attribution hazard, see below). Both are off by default so small
    deployments keep the decode-once behavior indefinitely.

    Limitation: the fingerprint is not cryptographic. If tag A leaves
    and an unrelated tag B with a CFO within ``tolerance_hz`` of A's
    arrives before A's entry ages out, B's first sighting is attributed
    to A. :meth:`ReaderNetwork.process_station` guards the in-round
    version of this (two simultaneous spikes can never share one cached
    id), but billing-grade pipelines should re-decode periodically.

    Attributes:
        tolerance_hz: maximum spike movement between sightings.
        max_entries: size bound; storing beyond it evicts the entry with
            the oldest last-seen time. None = unbounded.
        max_age_s: entries unseen for longer than this are dropped by
            :meth:`prune` (and by any ``lookup``/``store`` given a
            ``now_s``). None = no aging.
    """

    tolerance_hz: float = 3000.0
    max_entries: int | None = None
    max_age_s: float | None = None
    _cfos_by_id: dict[int, float] = field(default_factory=dict)
    _last_seen_s: dict[int, float] = field(default_factory=dict, repr=False)
    _sorted_cfos: list[float] = field(default_factory=list, repr=False)
    _sorted_ids: list[int] = field(default_factory=list, repr=False)
    _dirty: bool = field(default=False, repr=False)

    def _reindex(self) -> None:
        if self._dirty or len(self._sorted_cfos) != len(self._cfos_by_id):
            pairs = sorted((cfo, tag_id) for tag_id, cfo in self._cfos_by_id.items())
            self._sorted_cfos = [cfo for cfo, _ in pairs]
            self._sorted_ids = [tag_id for _, tag_id in pairs]
            self._dirty = False

    def lookup(
        self,
        cfo_hz: float,
        now_s: float | None = None,
        exclude=frozenset(),
    ) -> int | None:
        """The nearest cached account id not in ``exclude``, or None.

        Binary search over a lazily rebuilt sorted index, expanding
        outward from the insertion point in distance order — O(log n +
        skipped) per spike instead of a scan of every account the
        station ever decoded. Passing ``now_s`` first ages out stale
        entries (no-op unless ``max_age_s`` is set), so an expired
        fingerprint can never claim a fresh spike. ``exclude`` lets a
        caller resolving several simultaneous spikes skip accounts a
        nearer spike already claimed.
        """
        if now_s is not None:
            self.prune(now_s)
        if not self._cfos_by_id:
            return None
        self._reindex()
        cfos, ids = self._sorted_cfos, self._sorted_ids
        left = bisect.bisect_left(cfos, cfo_hz) - 1
        right = left + 1
        while left >= 0 or right < len(cfos):
            left_delta = cfo_hz - cfos[left] if left >= 0 else float("inf")
            right_delta = cfos[right] - cfo_hz if right < len(cfos) else float("inf")
            if right_delta <= left_delta:
                delta, candidate = right_delta, ids[right]
                right += 1
            else:
                delta, candidate = left_delta, ids[left]
                left -= 1
            if delta > self.tolerance_hz:
                return None
            if candidate not in exclude:
                return candidate
        return None

    def store(self, cfo_hz: float, tag_id: int, now_s: float = 0.0) -> list[int]:
        """Record (or refresh) a decoded spike at time ``now_s``.

        Exceeding ``max_entries`` evicts least-recently-seen entries
        (ties broken by id, for determinism) until the bound holds.
        Returns the evicted account ids (usually empty) so layered
        services keeping per-account state alongside the fingerprint
        index — e.g. the city mesh's
        :class:`~repro.sim.city.directory.IdentityDirectory` sighting
        trails — can drop theirs in the same step and stay consistent.
        """
        self._cfos_by_id[tag_id] = float(cfo_hz)
        self._last_seen_s[tag_id] = max(
            float(now_s), self._last_seen_s.get(tag_id, float("-inf"))
        )
        self._dirty = True
        evicted: list[int] = []
        if self.max_entries is not None:
            while len(self._cfos_by_id) > max(1, int(self.max_entries)):
                victim = min(
                    (t for t in self._cfos_by_id if t != tag_id),
                    key=lambda t: (self._last_seen_s.get(t, float("-inf")), t),
                )
                self.evict(victim)
                evicted.append(victim)
        return evicted

    def evict(self, tag_id: int) -> bool:
        """Forget one account's fingerprint; returns whether it existed."""
        if tag_id not in self._cfos_by_id:
            return False
        del self._cfos_by_id[tag_id]
        self._last_seen_s.pop(tag_id, None)
        self._dirty = True
        return True

    def prune(self, now_s: float) -> int:
        """Age out entries unseen since ``now_s - max_age_s``; returns count."""
        return len(self.prune_ids(now_s))

    def prune_ids(self, now_s: float) -> list[int]:
        """Like :meth:`prune`, but returns *which* accounts aged out
        (sorted), for callers keeping per-account state alongside."""
        if self.max_age_s is None:
            return []
        stale = sorted(
            tag_id
            for tag_id, seen_s in self._last_seen_s.items()
            if now_s - seen_s > self.max_age_s
        )
        for tag_id in stale:
            self.evict(tag_id)
        return stale

    def cached_cfo(self, tag_id: int) -> float | None:
        """The stored fingerprint for an account, if any."""
        return self._cfos_by_id.get(tag_id)

    def last_seen_s(self, tag_id: int) -> float | None:
        """When an account's fingerprint was last refreshed, if cached."""
        if tag_id not in self._cfos_by_id:
            return None
        return self._last_seen_s.get(tag_id)

    def ids(self) -> list[int]:
        """Every cached account id, sorted (a stable audit order)."""
        return sorted(self._cfos_by_id)

    def __contains__(self, tag_id: int) -> bool:
        return tag_id in self._cfos_by_id

    def __len__(self) -> int:
        return len(self._cfos_by_id)


def resolve_cached_ids(
    cache: IdentityCache, cfos: list[float], now_s: float | None = None
) -> tuple[dict[float, int], list[float]]:
    """Resolve spikes against an :class:`IdentityCache`, one-to-one.

    Each cached account may claim at most one spike per round (its
    nearest); a second spike within tolerance is a *different* tag and
    must be decoded, not silently attributed to the cached account. A
    spike that loses an account to a nearer rival is re-matched against
    the remaining accounts (its true owner may simply be second-nearest)
    before being declared unknown. Claimed spikes refresh the winning
    account's fingerprint.

    Returns:
        ``(ids, unknown)`` — resolved ``{cfo: tag_id}`` plus the spikes
        no cached account could claim, in first-seen order.
    """
    spikes = [float(cfo) for cfo in cfos]
    owner: dict[int, int] = {}  # tag_id -> index of its winning spike
    exclusions: dict[int, set[int]] = {}  # spike index -> lost accounts
    unresolved: set[int] = set()
    queue = list(range(len(spikes)))
    while queue:
        index = queue.pop(0)
        tag_id = cache.lookup(
            spikes[index],
            now_s=now_s,
            exclude=exclusions.get(index, frozenset()),
        )
        if tag_id is None:
            unresolved.add(index)
            continue
        rival = owner.get(tag_id)
        if rival is None:
            owner[tag_id] = index
            continue
        cached = cache.cached_cfo(tag_id)
        if abs(spikes[index] - cached) < abs(spikes[rival] - cached):
            owner[tag_id] = index
            loser = rival
        else:
            loser = index
        # The loser may still match another account; re-queue it with
        # this one struck off (the set growth bounds the loop).
        exclusions.setdefault(loser, set()).add(tag_id)
        queue.append(loser)
    ids: dict[float, int] = {}
    for tag_id, index in owner.items():
        ids[spikes[index]] = tag_id
        cache.store(spikes[index], tag_id, now_s=0.0 if now_s is None else now_s)
    return ids, [spikes[i] for i in sorted(unresolved)]


def decode_aoa(station, decode_results: dict | None, cfo: float):
    """AoA minted from decode-time channel evidence, if any.

    A CFO the measurement pass produced no AoA for (e.g. it was detected
    only once decoding sharpened it) can still be localized: the decode
    result's per-antenna channel evidence carries the Eq 10 phase
    differences for free. Returns None when the evidence is missing,
    single-antenna, or degenerate.
    """
    if not decode_results:
        return None
    result = decode_results.get(cfo)
    if result is None or result.n_antennas < 3:
        return None
    try:
        return station.reader.estimator.estimate_from_channels(
            result.cfo_hz, result.channels
        )
    except CaraokeError:
        return None


@dataclass
class ReaderStation:
    """One pole of the network: reader + collision stream + localizer.

    Attributes:
        name: stable identifier (used in reports and examples).
        reader: the processing chain for this pole.
        query_fn: ``query_fn(t_s) -> ReceivedCollision`` — the pole's
            radio front-end (e.g. ``StaticCollisionSimulator.query``).
        combining: decode policy — ``"mrc"`` (default: maximum-ratio
            across every antenna) or ``"single"`` (one-antenna ablation).
        opportunistic: overheard-capture policy for the station's decode
            sessions — ``"accept"`` (default) combines captures donated
            by a shared-medium layer (e.g. the city corridor's response
            pool) as free evidence; ``"ignore"`` drops them (ablation).
        antenna_index: **deprecated** alias selecting
            ``combining="single"`` on that antenna.
        localizer: object with ``locate(estimate, estimator, hint_xy=None)
            -> (x, y)`` — typically a
            :class:`~repro.core.localization.LaneProjectionLocalizer`;
            None disables positioning (and therefore observations).
        identities: per-station CFO -> account-id cache.
        hint_horizon_s: last-fix hints older than this are neither used
            (a car returning hours later should be re-localized from its
            measurement alone, not pulled toward where it parked last
            time) nor kept (the table stays bounded by the recently
            active population, like the red-light detector's tracks).
    """

    name: str
    reader: object
    query_fn: object
    combining: str = "mrc"
    opportunistic: str = "accept"
    localizer: object | None = None
    identities: IdentityCache = field(default_factory=IdentityCache)
    hint_horizon_s: float = 300.0
    _last_fixes: dict[int, tuple[np.ndarray, float]] = field(
        default_factory=dict, repr=False
    )
    antenna_index: int | None = None

    def __post_init__(self) -> None:
        if self.antenna_index is not None:
            self.antenna_index = deprecated_antenna_index(
                self.antenna_index, "ReaderStation"
            )
            self.combining = "single"
        validate_combining(self.combining)
        validate_opportunistic(self.opportunistic)

    def recall_fix(self, tag_id: int, now_s: float) -> np.ndarray | None:
        """The tag's last fix, if recent enough to serve as a hint."""
        entry = self._last_fixes.get(tag_id)
        if entry is None or now_s - entry[1] > self.hint_horizon_s:
            return None
        return entry[0]

    def record_fix(self, tag_id: int, fix: np.ndarray, now_s: float) -> None:
        """Remember a fix for hinting the tag's next localization."""
        self._last_fixes[tag_id] = (np.asarray(fix, dtype=np.float64), now_s)

    def prune_fixes(self, now_s: float) -> int:
        """Forget fixes past the hint horizon; returns how many."""
        stale = [
            tag_id
            for tag_id, (_, seen_s) in self._last_fixes.items()
            if now_s - seen_s > self.hint_horizon_s
        ]
        for tag_id in stale:
            del self._last_fixes[tag_id]
        return len(stale)


@dataclass
class StationReport:
    """Everything one station produced in one measurement round.

    Attributes:
        station: the station's name.
        timestamp_s: round timestamp.
        report: the count/AoA upload (§12.5).
        decode_results: fresh decodes this round, keyed by CFO — empty
            when every spike's id came from the identity cache.
        observations: positioned, identified sightings handed to services.
    """

    station: str
    timestamp_s: float
    report: ReaderReport
    decode_results: dict[float, DecodeResult] = field(default_factory=dict)
    observations: list = field(default_factory=list)

    @property
    def n_tags(self) -> int:
        return self.report.n_tags


class ReaderNetwork:
    """Batch-processes collision streams from many reader stations.

    Attributes:
        stations: the poles in the network.
        services: subscribers receiving every
            :class:`~repro.apps.services.TagObservation` (any object with
            an ``observe(observation)`` method — the §1 services qualify).
        max_queries: decode budget per identification burst.
        decode: disable to run count/localize-only rounds (no air time
            spent on repeated queries).
    """

    def __init__(self, max_queries: int = 64, decode: bool = True):
        self.stations: list[ReaderStation] = []
        self.services: list[object] = []
        self.max_queries = int(max_queries)
        self.decode = bool(decode)

    def add_station(self, station: ReaderStation) -> ReaderStation:
        """Register a station; returns it for chaining."""
        self.stations.append(station)
        return station

    def subscribe(self, service: object) -> object:
        """Fan observations into ``service.observe``; returns the service."""
        self.services.append(service)
        return service

    # -- processing ---------------------------------------------------------------

    def step(self, timestamp_s: float) -> list[StationReport]:
        """Run one measurement round at every station and dispatch."""
        reports = [
            self.process_station(station, timestamp_s) for station in self.stations
        ]
        for report in reports:
            self.dispatch(report.observations)
        return reports

    def run(self, timestamps_s: list[float]) -> list[StationReport]:
        """Run a round per timestamp; returns all station reports."""
        reports: list[StationReport] = []
        for t in timestamps_s:
            reports.extend(self.step(float(t)))
        return reports

    def process_station(
        self, station: ReaderStation, timestamp_s: float
    ) -> StationReport:
        """One station, one round: count, identify, localize.

        The counting capture doubles as the decode session's first
        capture, so identification adds air time only beyond the
        measurement query itself (§12.4).
        """
        collision = station.query_fn(timestamp_s)
        station.prune_fixes(timestamp_s)
        report = station.reader.observe(collision, timestamp_s=timestamp_s)
        cfos = [float(c) for c in report.count.cfos_hz()]
        ids, unknown = resolve_cached_ids(station.identities, cfos, now_s=timestamp_s)

        decode_results: dict[float, DecodeResult] = {}
        if unknown and self.decode:
            # Stations configured through the deprecated alias forward it
            # conditionally (the station __post_init__ already warned and
            # pinned combining="single"); clean stations never touch it.
            extra = (
                {}
                if station.antenna_index is None
                else {"antenna_index": station.antenna_index}
            )
            session = station.reader.decode_session(
                lambda t: station.query_fn(timestamp_s + t),
                combining=station.combining,
                opportunistic=station.opportunistic,
                **extra,
            )
            # Reuse the measurement capture as the first decode capture
            # (the whole collision: MRC combines every antenna of it).
            session.seed_capture(collision)
            decode_results = session.decode_all(unknown, max_queries=self.max_queries)
            for cfo, result in decode_results.items():
                if result.success:
                    ids[cfo] = result.packet.tag_id
                    station.identities.store(cfo, result.packet.tag_id, now_s=timestamp_s)

        observations = self._positioned(
            station, report, ids, timestamp_s, decode_results
        )
        return StationReport(
            station=station.name,
            timestamp_s=timestamp_s,
            report=report,
            decode_results=decode_results,
            observations=observations,
        )

    def dispatch(self, observations: list) -> None:
        """Hand every observation to every subscribed service."""
        for observation in observations:
            for service in self.services:
                service.observe(observation)

    # -- internals ---------------------------------------------------------------

    def _positioned(
        self,
        station: ReaderStation,
        report: ReaderReport,
        ids: dict[float, int],
        timestamp_s: float,
        decode_results: dict[float, DecodeResult] | None = None,
    ) -> list:
        """Pair identified CFOs with their AoA and project to the road."""
        if station.localizer is None:
            return []
        observation_cls = _tag_observation()
        estimates = {estimate.cfo_hz: estimate for estimate in report.aoas}
        observations = []
        for cfo, tag_id in sorted(ids.items()):
            estimate = estimates.get(cfo)
            if estimate is None:
                estimate = decode_aoa(station, decode_results, cfo)
            if estimate is None:
                continue
            # End-fire measurements are unusable (§6: d(alpha)/d(phase)
            # blows up outside the 60-120 degree band); another station
            # with better geometry will cover the tag instead.
            if not estimate.in_usable_band():
                continue
            try:
                fix = station.localizer.locate(
                    estimate,
                    station.reader.estimator,
                    hint_xy=station.recall_fix(tag_id, timestamp_s),
                )
            except CaraokeError:
                continue
            station.record_fix(tag_id, fix, timestamp_s)
            observations.append(
                observation_cls(
                    tag_id=tag_id,
                    position_m=fix,
                    timestamp_s=timestamp_s,
                    station=station.name,
                )
            )
        return observations
