"""Closed-form counting analysis (§5, Eq 6, 7, 9).

The §5 analysis treats counting as a balls-in-bins problem: m colliding
tags land in N = 615 FFT bins (1.2 MHz span / 1.95 kHz resolution).

* The **naive** estimator (count peaks) is correct only when all m bins
  are distinct — the birthday probability of Eq 7.
* The **upgraded** estimator (peaks, with 2-in-a-bin detection) fails only
  when some bin holds >= 3 tags; Eq 9 union-bounds that. We also provide
  the exact occupancy probability for comparison.
* Monte-Carlo helpers evaluate both estimators under *any* CFO
  distribution — the paper's empirical population is noticeably less
  favourable than uniform (99.9/99.5/95.3 % vs the uniform bound's
  99.9/99.9/99.7 % for m = 5/10/20).
"""

from __future__ import annotations

from math import comb, exp, lgamma, log

import numpy as np

from ..constants import CFO_BIN_COUNT, CFO_SPAN_HZ, FFT_RESOLUTION_HZ, READER_LO_HZ
from ..errors import ConfigurationError
from ..phy.oscillator import CfoModel
from ..utils import as_rng

__all__ = [
    "fft_resolution_hz",
    "n_cfo_bins",
    "p_no_miss_naive",
    "p_no_miss_paper_bound",
    "p_no_miss_exact",
    "expected_count_naive",
    "simulate_no_miss_probability",
    "simulate_counting_accuracy",
]


def fft_resolution_hz(window_s: float) -> float:
    """Eq 6: FFT bin width is the reciprocal of the analysis window."""
    if window_s <= 0:
        raise ConfigurationError(f"window must be positive, got {window_s}")
    return 1.0 / window_s


def n_cfo_bins(span_hz: float = CFO_SPAN_HZ, resolution_hz: float = FFT_RESOLUTION_HZ) -> int:
    """Number of FFT bins the CFO span occupies (N = 615 in the paper)."""
    if span_hz <= 0 or resolution_hz <= 0:
        raise ConfigurationError("span and resolution must be positive")
    return int(np.ceil(span_hz / resolution_hz))


def p_no_miss_naive(m: int, n_bins: int = CFO_BIN_COUNT) -> float:
    """Eq 7: P(all m tags in distinct bins) = N!/(N-m)! / N^m.

    Evaluated as a product for numerical stability; this is the success
    probability of the naive peak-counting estimator.
    """
    _validate(m, n_bins)
    if m > n_bins:
        return 0.0
    log_p = sum(log(1.0 - i / n_bins) for i in range(1, m))
    return exp(log_p)


def p_no_miss_paper_bound(m: int, n_bins: int = CFO_BIN_COUNT) -> float:
    """Eq 9: the paper's union lower bound for the upgraded estimator.

    ``1 - N * C(m,3) * N^(m-3) / N^m = 1 - C(m,3) / N^2`` — one term per
    possible bin holding a specific triple.
    """
    _validate(m, n_bins)
    if m < 3:
        return 1.0
    return max(0.0, 1.0 - comb(m, 3) / (n_bins * n_bins))


def p_no_miss_exact(m: int, n_bins: int = CFO_BIN_COUNT) -> float:
    """Exact P(no bin holds >= 3 of m uniform tags).

    Sums over the number b of bins holding exactly two tags:

    ``P = sum_b C(N, b) * C(N - b, m - 2b) * m! / 2^b / N^m``

    (choose the double bins, choose the single bins, count the assignments
    of labelled tags). Computed in log space.
    """
    _validate(m, n_bins)
    if m < 3:
        return 1.0  # a bin needs three tags to break the estimator
    if m > 2 * n_bins:
        return 0.0
    log_nm = m * log(n_bins)
    total = 0.0
    for b in range(0, m // 2 + 1):
        singles = m - 2 * b
        if singles + b > n_bins:
            continue
        log_term = (
            _log_comb(n_bins, b)
            + _log_comb(n_bins - b, singles)
            + lgamma(m + 1)
            - b * log(2.0)
            - log_nm
        )
        total += exp(log_term)
    return min(1.0, total)


def expected_count_naive(m: int, n_bins: int = CFO_BIN_COUNT) -> float:
    """Expected number of occupied bins: ``N (1 - (1 - 1/N)^m)``.

    The naive estimator's mean output; its shortfall vs m quantifies the
    systematic undercount at high density.
    """
    _validate(m, n_bins)
    return n_bins * (1.0 - (1.0 - 1.0 / n_bins) ** m)


def _validate(m: int, n_bins: int) -> None:
    if m < 0:
        raise ConfigurationError(f"m must be non-negative, got {m}")
    if n_bins <= 0:
        raise ConfigurationError(f"n_bins must be positive, got {n_bins}")


def _log_comb(n: int, k: int) -> float:
    return lgamma(n + 1) - lgamma(k + 1) - lgamma(n - k + 1)


# -- Monte Carlo under arbitrary CFO distributions ---------------------------


def _bin_draws(
    model: CfoModel,
    m: int,
    n_bins: int,
    runs: int,
    rng,
    lo_hz: float,
    resolution_hz: float,
) -> np.ndarray:
    """Draw carrier populations and map them to FFT bin indices: (runs, m)."""
    rng = as_rng(rng)
    carriers = np.stack([model.sample_carriers(m, rng) for _ in range(runs)])
    bins = np.floor((carriers - lo_hz) / resolution_hz).astype(np.int64)
    return np.clip(bins, 0, n_bins - 1)


def simulate_no_miss_probability(
    model: CfoModel,
    m: int,
    estimator: str = "upgraded",
    runs: int = 10_000,
    n_bins: int = CFO_BIN_COUNT,
    resolution_hz: float = FFT_RESOLUTION_HZ,
    lo_hz: float = READER_LO_HZ,
    rng=None,
) -> float:
    """Monte-Carlo P(no tag missed) under a CFO distribution.

    ``estimator="naive"`` requires all bins distinct; ``"upgraded"``
    tolerates doubles but fails on any bin with >= 3 tags (§5). This is
    how the paper evaluates its empirical CFO population.
    """
    if estimator not in ("naive", "upgraded"):
        raise ConfigurationError(f"unknown estimator {estimator!r}")
    bins = _bin_draws(model, m, n_bins, runs, rng, lo_hz, resolution_hz)
    successes = 0
    for row in bins:
        counts = np.bincount(row, minlength=n_bins)
        if estimator == "naive":
            successes += int((counts <= 1).all())
        else:
            successes += int((counts <= 2).all())
    return successes / bins.shape[0]


def simulate_counting_accuracy(
    model: CfoModel,
    m: int,
    runs: int = 10_000,
    n_bins: int = CFO_BIN_COUNT,
    resolution_hz: float = FFT_RESOLUTION_HZ,
    lo_hz: float = READER_LO_HZ,
    rng=None,
) -> float:
    """Mean accuracy (estimate/true, as %) of the *ideal* upgraded counter.

    "Ideal" = bin occupancy observed perfectly; doubles count as 2, any
    occupancy >= 3 still counts as 2 (the §5 rule). This isolates the CFO
    birthday effect from radio effects; the full-pipeline Fig 11 benchmark
    layers the radio on top.
    """
    bins = _bin_draws(model, m, n_bins, runs, rng, lo_hz, resolution_hz)
    estimates = np.empty(bins.shape[0])
    for i, row in enumerate(bins):
        counts = np.bincount(row, minlength=n_bins)
        estimates[i] = np.sum(np.minimum(counts, 2))
    return float(np.mean(estimates / m) * 100.0)
