"""CFO estimation and channel readout from collision spectra (§3, Eq 5).

Every downstream Caraoke function starts the same way: FFT the collision,
find a tag's spike, refine its frequency to a fraction of a bin, and read
the complex value there — which equals ``h/2``, half the tag's channel
(Eq 5, using the Manchester DC null). This module packages those steps.

Sub-bin refinement matters most to the decoder: a residual CFO error of
``delta`` rotates the target by ``2*pi*delta*T`` across the 512 µs
response; at half a bin (977 Hz) that is a full pi rotation — fatal for
coherent combining — whereas the ~10 Hz residual after refinement is
negligible (§8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import CFO_SPAN_HZ
from ..dsp.peaks import find_peaks_in_magnitudes, find_spectral_peaks
from ..dsp.spectrum import fft_spectrum, single_bin_dft
from ..errors import SpectrumError
from ..phy.waveform import Waveform

__all__ = [
    "CfoPeak",
    "CollisionPeak",
    "refine_frequency",
    "estimate_channel",
    "extract_cfo_peaks",
    "extract_collision_peaks",
]

#: Default search band: the 1.2 MHz CFO span plus a small margin.
DEFAULT_SEARCH_LO_HZ = 2e3
DEFAULT_SEARCH_HI_HZ = CFO_SPAN_HZ + 50e3


@dataclass(frozen=True)
class CfoPeak:
    """One tag's refined spike: frequency plus channel readout.

    Attributes:
        cfo_hz: refined carrier frequency offset.
        channel: complex channel estimate ``h`` (2x the spectral value,
            Eq 5); includes the tag's random response phase.
        magnitude: spectral magnitude at the peak bin (detection units).
        snr: peak amplitude over the local noise floor.
    """

    cfo_hz: float
    channel: complex
    magnitude: float
    snr: float


def refine_frequency(
    wave: Waveform,
    freq_hz: float,
    span_hz: float,
    n_iterations: int = 3,
) -> float:
    """Refine a tone frequency by iterated parabolic search on |DFT(f)|.

    Evaluates the exact single-frequency DFT at ``f - span, f, f + span``,
    fits a parabola to the magnitudes, jumps to its vertex, and repeats
    with half the span. Three iterations from a half-bin span land within
    a few Hz on clean tones. The three probes of each iteration are
    evaluated in one broadcast pass.
    """
    if span_hz <= 0:
        raise SpectrumError(f"span must be positive, got {span_hz}")
    f = float(freq_hz)
    span = float(span_hz)
    t = wave.times()
    scale = 1.0 / max(wave.n_samples, 1)
    for _ in range(n_iterations):
        # probe(f +- span) = probe(f) * probe(+-span): two exps serve all
        # three probe frequencies of this iteration.
        y = wave.samples * np.exp(-2j * np.pi * f * t)
        shift = np.exp(-2j * np.pi * span * t)
        mags = (
            abs(np.sum(y * np.conj(shift))) * scale,
            abs(np.sum(y)) * scale,
            abs(np.sum(y * shift)) * scale,
        )
        denom = mags[0] - 2.0 * mags[1] + mags[2]
        if denom == 0.0:
            break
        offset = 0.5 * (mags[0] - mags[2]) / denom
        f += float(np.clip(offset, -1.0, 1.0)) * span
        span /= 2.0
    return f


def estimate_channel(wave: Waveform, cfo_hz: float) -> complex:
    """Read the tag's channel off the spectrum: ``h = 2 * R(cfo)`` (Eq 5).

    The factor 2 undoes the OOK DC term (``s(t)`` has mean 1/2). The phase
    reference is absolute time, so estimates from different antennas of the
    same capture are directly comparable — their ratio is the AoA phase
    difference of §6.
    """
    return 2.0 * single_bin_dft(wave, cfo_hz)


@dataclass(frozen=True)
class CollisionPeak:
    """One tag's spike read across *every* antenna of a collision.

    The shared Eq 5 readout: detection happens on the average magnitude
    spectrum over all antennas (incoherent averaging suppresses the data
    floor while the spike persists at every element), and the channel is
    read per antenna at the one refined frequency — the same numbers the
    decoder compensates with and localization turns into Eq 10 phase
    differences.

    Attributes:
        cfo_hz: refined carrier frequency offset.
        channels: complex channel estimate ``h`` per antenna (Eq 5, 2x
            the spectral value); includes the response's random phase,
            which is common across antennas and cancels in ratios.
        magnitude: average spectral magnitude at the peak bin.
        snr: peak amplitude over the local floor of the average spectrum.
    """

    cfo_hz: float
    channels: np.ndarray
    magnitude: float
    snr: float

    @property
    def n_antennas(self) -> int:
        return int(self.channels.size)


def extract_collision_peaks(
    collision,
    search_lo_hz: float = DEFAULT_SEARCH_LO_HZ,
    search_hi_hz: float = DEFAULT_SEARCH_HI_HZ,
    min_snr_db: float = 10.0,
    max_peaks: int | None = None,
    refine: bool = True,
) -> list[CollisionPeak]:
    """Detect spikes across a collision's antennas and read every channel.

    The multi-antenna counterpart of :func:`extract_cfo_peaks`: instead of
    privileging one element, the detection statistic is the average
    magnitude spectrum over all antennas, each spike's frequency is
    refined on the antenna where it is strongest, and the Eq 5 channel is
    read from *every* antenna at that one frequency.

    Args:
        collision: a :class:`~repro.channel.collision.ReceivedCollision`.
        search_lo_hz / search_hi_hz: CFO band to search.
        min_snr_db: detection threshold over the local (CFAR) floor.
        max_peaks: optional cap on returned peaks (strongest kept).
        refine: skip sub-bin refinement when only occupancy matters.

    Returns:
        Peaks sorted by ascending CFO.
    """
    spectra = [fft_spectrum(wave) for wave in collision.antennas]
    n_bins = min(spectrum.n_bins for spectrum in spectra)
    magnitudes = np.stack([spectrum.magnitude()[:n_bins] for spectrum in spectra])
    avg_mag = magnitudes.mean(axis=0)
    raw = find_peaks_in_magnitudes(
        avg_mag,
        spectra[0].bin_hz,
        search_lo_hz,
        search_hi_hz,
        min_snr_db=min_snr_db,
        max_peaks=max_peaks,
    )
    peaks = []
    for peak in raw:
        freq = peak.freq_hz
        if refine:
            strongest = int(np.argmax(magnitudes[:, peak.bin_index]))
            freq = refine_frequency(
                collision.antennas[strongest],
                freq,
                span_hz=spectra[strongest].resolution_hz / 2.0,
            )
        channels = np.array(
            [estimate_channel(wave, freq) for wave in collision.antennas]
        )
        peaks.append(
            CollisionPeak(
                cfo_hz=freq,
                channels=channels,
                magnitude=peak.magnitude,
                snr=peak.snr,
            )
        )
    return sorted(peaks, key=lambda p: p.cfo_hz)


def extract_cfo_peaks(
    wave: Waveform,
    search_lo_hz: float = DEFAULT_SEARCH_LO_HZ,
    search_hi_hz: float = DEFAULT_SEARCH_HI_HZ,
    min_snr_db: float = 10.0,
    max_peaks: int | None = None,
    refine: bool = True,
) -> list[CfoPeak]:
    """Full pipeline: FFT -> detect spikes -> refine -> read channels.

    Args:
        wave: one antenna's collision capture.
        search_lo_hz / search_hi_hz: CFO band to search.
        min_snr_db: detection threshold over the local (CFAR) floor.
        max_peaks: optional cap on returned peaks (strongest kept).
        refine: skip sub-bin refinement when only occupancy matters.

    Returns:
        Peaks sorted by ascending CFO.
    """
    spectrum = fft_spectrum(wave)
    raw = find_spectral_peaks(
        spectrum, search_lo_hz, search_hi_hz, min_snr_db=min_snr_db, max_peaks=max_peaks
    )
    peaks = []
    for peak in raw:
        freq = peak.freq_hz
        if refine:
            freq = refine_frequency(wave, freq, span_hz=spectrum.resolution_hz / 2.0)
        peaks.append(
            CfoPeak(
                cfo_hz=freq,
                channel=estimate_channel(wave, freq),
                magnitude=peak.magnitude,
                snr=peak.snr,
            )
        )
    return sorted(peaks, key=lambda p: p.cfo_hz)
