"""The paper's contribution: counting, localizing, decoding from collisions.

* :mod:`repro.core.cfo` — per-tag CFO refinement and channel readout (§3).
* :mod:`repro.core.counting` — the §5 collision counter.
* :mod:`repro.core.theory` — Eq 7 / Eq 9 closed forms and occupancy math.
* :mod:`repro.core.localization` — AoA and two-reader positioning (§6).
* :mod:`repro.core.speed` — speed estimation and §7 error bounds.
* :mod:`repro.core.decoding` — coherent-combining ID decoder (§8).
* :mod:`repro.core.reader` — the CaraokeReader facade.
* :mod:`repro.core.network` — multi-reader batch processing (§12.5).
* :mod:`repro.core.mac` — reader-side CSMA rules (§9).
"""

from .cfo import (
    CfoPeak,
    CollisionPeak,
    estimate_channel,
    extract_cfo_peaks,
    extract_collision_peaks,
    refine_frequency,
)
from .counting import BinClass, BinObservation, CollisionCounter, CountEstimate
from .theory import (
    expected_count_naive,
    p_no_miss_exact,
    p_no_miss_naive,
    p_no_miss_paper_bound,
    simulate_no_miss_probability,
)
from .localization import (
    AoAEstimate,
    AoAEstimator,
    LaneProjectionLocalizer,
    ReaderGeometry,
    TwoReaderLocalizer,
    aoa_from_phase,
    phase_from_aoa,
)
from .speed import (
    CrossPoleSpeedTracker,
    SpeedEstimate,
    SpeedEstimator,
    SpeedObservation,
    max_position_error_m,
    max_speed_error_fraction,
)
from .decoding import CoherentDecoder, DecodeResult, DecodeSession, MultiTargetCombiner
from .reader import CaraokeReader, ReaderReport
from .network import (
    IdentityCache,
    ReaderNetwork,
    ReaderStation,
    StationReport,
    resolve_cached_ids,
)
from .mac import CsmaState, ReaderMac

__all__ = [
    "CfoPeak",
    "CollisionPeak",
    "estimate_channel",
    "extract_cfo_peaks",
    "extract_collision_peaks",
    "refine_frequency",
    "BinClass",
    "BinObservation",
    "CollisionCounter",
    "CountEstimate",
    "expected_count_naive",
    "p_no_miss_exact",
    "p_no_miss_naive",
    "p_no_miss_paper_bound",
    "simulate_no_miss_probability",
    "AoAEstimate",
    "AoAEstimator",
    "LaneProjectionLocalizer",
    "ReaderGeometry",
    "TwoReaderLocalizer",
    "aoa_from_phase",
    "phase_from_aoa",
    "CrossPoleSpeedTracker",
    "SpeedEstimate",
    "SpeedEstimator",
    "SpeedObservation",
    "max_position_error_m",
    "max_speed_error_fraction",
    "CoherentDecoder",
    "DecodeResult",
    "DecodeSession",
    "MultiTargetCombiner",
    "CaraokeReader",
    "ReaderReport",
    "IdentityCache",
    "ReaderNetwork",
    "ReaderStation",
    "StationReport",
    "resolve_cached_ids",
    "CsmaState",
    "ReaderMac",
]
