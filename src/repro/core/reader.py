"""The Caraoke reader facade (§4, §10).

A :class:`CaraokeReader` bundles the reader-side processing chain —
counting (§5), AoA (§6) and decoding (§8) — behind one object tied to a
deployment geometry. It *processes* collisions; producing them is the
channel/simulation layer's job (readers are handed a ``query_fn``), which
keeps the algorithms testable against hand-built captures.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from ..channel.collision import ReceivedCollision
from ..constants import QUERY_PERIOD_S
from .counting import CollisionCounter, CountEstimate
from .decoding import CoherentDecoder, DecodeResult, DecodeSession
from .localization import AoAEstimate, AoAEstimator, ReaderGeometry

__all__ = ["ReaderReport", "CaraokeReader"]


@dataclass
class ReaderReport:
    """What a reader uploads per measurement (§12.5: "channels and CFOs").

    Attributes:
        timestamp_s: reader-local time of the query.
        count: the §5 estimate of tags in range.
        aoas: per-tag AoA measurements.
    """

    timestamp_s: float
    count: CountEstimate
    aoas: list[AoAEstimate] = field(default_factory=list)

    @property
    def n_tags(self) -> int:
        return self.count.count

    def payload_bits(self) -> int:
        """Approximate uplink cost: CFO (4 B) + channel (8 B) per spike,
        plus a header — the "few kbits" of §12.5 footnote 15."""
        return 64 + len(self.count.observations) * 96


@dataclass
class CaraokeReader:
    """One pole-mounted reader: geometry + processing chain.

    Attributes:
        geometry: antenna array and the road it watches.
        counter: the counting engine (§5).
        estimator: the AoA engine (§6); built from the geometry if omitted.
        sample_rate_hz: ADC rate of the captures this reader processes.
    """

    geometry: ReaderGeometry
    sample_rate_hz: float
    counter: CollisionCounter = field(default_factory=CollisionCounter)
    estimator: AoAEstimator | None = None
    query_period_s: float = QUERY_PERIOD_S

    def __post_init__(self) -> None:
        if self.estimator is None:
            self.estimator = AoAEstimator(self.geometry.array)

    # -- per-collision processing -----------------------------------------------

    def count(self, collision: ReceivedCollision) -> CountEstimate:
        """§5: how many tags are in this collision."""
        return self.counter.count(collision.antenna(0))

    def aoas(self, collision: ReceivedCollision) -> list[AoAEstimate]:
        """§6: spatial angle of every detected tag."""
        return self.estimator.estimate_all(collision)

    def observe(self, collision: ReceivedCollision, timestamp_s: float | None = None) -> ReaderReport:
        """Count + localize in one pass, sharing the spike detection.

        The count's accepted spikes seed the AoA measurements, mirroring
        the hardware pipeline (one sFFT pass feeds everything, §10).
        """
        estimate = self.count(collision)
        aoas = []
        if collision.n_antennas >= 3:
            for cfo in estimate.cfos_hz():
                aoas.append(self.estimator.estimate_for_cfo(collision, float(cfo)))
        return ReaderReport(
            timestamp_s=collision.t0_s if timestamp_s is None else timestamp_s,
            count=estimate,
            aoas=aoas,
        )

    # -- decoding ------------------------------------------------------------------

    def decode_session(
        self,
        query_fn,
        combining: str = "mrc",
        opportunistic: str = "accept",
        antenna_index: int | None = None,
        obs=None,
    ) -> DecodeSession:
        """Open a repeated-query decode session (§8).

        Args:
            query_fn: ``query_fn(t_s) -> ReceivedCollision`` — typically
                ``StaticCollisionSimulator.query`` or a live radio.
            combining: ``"mrc"`` (default: maximum-ratio across every
                antenna) or ``"single"`` (one-antenna ablation baseline).
            opportunistic: ``"accept"`` (default: captures donated via
                ``DecodeSession.donate_capture`` — windows overheard from
                other readers — are combined as free evidence) or
                ``"ignore"`` (donations dropped; the ablation baseline).
            antenna_index: **deprecated** alias selecting
                ``combining="single"`` on that antenna.
            obs: nullable observability hook (see :mod:`repro.obs`),
                threaded into the session and its combiner.
        """
        decoder = CoherentDecoder(self.sample_rate_hz, self.query_period_s)
        # The deprecated alias is forwarded only when actually set, so
        # DecodeSession owns the single deprecation warning and clean
        # callers never touch the legacy keyword.
        extra = {} if antenna_index is None else {"antenna_index": antenna_index}
        return DecodeSession(
            query_fn=query_fn,
            decoder=decoder,
            combining=combining,
            opportunistic=opportunistic,
            obs=obs,
            **extra,
        )

    def decode_all_in_range(
        self,
        query_fn,
        max_queries: int = 64,
        combining: str = "mrc",
        antenna_index: int | None = None,
    ) -> dict[float, DecodeResult]:
        """Count first, then decode every detected tag (§12.4 workflow).

        All detected tags are decoded as one batch from a single shared
        capture stream; the counting capture is the batch's first capture.
        ``combining`` is ``"mrc"`` (default: maximum-ratio across every
        antenna) or ``"single"`` (one-antenna ablation baseline);
        ``antenna_index`` is the **deprecated** alias selecting
        ``combining="single"`` on that antenna.
        """
        extra = {} if antenna_index is None else {"antenna_index": antenna_index}
        session = self.decode_session(query_fn, combining=combining, **extra)
        session._ensure_captures(1)
        estimate = self.counter.count(session.readout_capture(0))
        cfos = [float(c) for c in estimate.cfos_hz()]
        if not cfos:
            return {}
        return session.decode_all(cfos, max_queries=max_queries)
