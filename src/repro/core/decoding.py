"""Decoding transponder IDs from collisions by coherent combining (§8).

A band-pass filter around the tag's CFO cannot decode OOK — the data
energy is spread across the band, not parked at the spike (§8 opening; the
failing baseline lives in :mod:`repro.baselines.bandpass_decoder`).
Instead, Caraoke queries repeatedly. Each response j of the target tag
arrives with a fresh channel-plus-phase ``h_j`` (tags restart their
oscillator phase randomly) which the reader *measures from the spike
itself* (Eq 5), then compensates:

    ``acc(t) += r_j(t) * exp(-j 2 pi cfo t) / h_j``

The target's chips add coherently (amplitude N after N queries) while
every other tag adds with i.i.d. random phases (amplitude ~ sqrt(N)), so
the target's SNR grows ~N and eventually its 256 bits demodulate and pass
the CRC — the stopping rule of §12.4. Expected cost: interferer power
relative to the target sets N, hence decode time grows with the number of
colliding tags (Fig 16: ~4 ms at 2 tags, ~16 ms at 5, tens of ms at 10).

Two execution paths implement the same math:

* :meth:`CoherentDecoder.decode` — the direct, per-capture reference
  algorithm, kept deliberately simple (it *is* §8 as written).
* :class:`MultiTargetCombiner` — the production path used by
  :class:`DecodeSession` and the :mod:`repro.core.network` batch layer.
  It is **incremental** (per-target accumulators advance one capture at a
  time and never re-sum their prefix), attempts demodulation only at
  *new* capture counts, and is **batched** across targets: each capture's
  channel estimates for every target come from one matrix-vector product
  and every target's CFO phasor is built in one broadcast pass.

A key algebraic identity makes the batched path cheap.  The compensated
capture is ``r_j(t) exp(-j 2 pi f t) / h_j`` with absolute time
``t = t0_j + tau``.  The channel estimate is read off the capture itself,
``h_j = 2 mean(r_j(t) exp(-j 2 pi f t))`` (Eq 5), so the absolute-time
rotation ``exp(-j 2 pi f t0_j)`` cancels between numerator and channel:
the accumulator factors as ``phasor(tau) * sum_j r_j(tau) / (2 q_j)``
where ``q_j = mean(r_j(tau) phasor(tau))`` is a single dot product per
(capture, target) and ``phasor`` is computed once per target.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..constants import PACKET_BITS, QUERY_PERIOD_S
from ..errors import CrcError, DecodingError, ModulationError, PacketError
from ..phy.modulation import OokModulator
from ..phy.packet import TransponderPacket
from ..phy.waveform import Waveform
from .cfo import estimate_channel, refine_frequency

__all__ = ["DecodeResult", "CoherentDecoder", "MultiTargetCombiner", "DecodeSession"]


@dataclass
class DecodeResult:
    """Outcome of decoding one target tag.

    Attributes:
        packet: the recovered packet, or None if the budget ran out.
        n_queries: collisions combined before the CRC passed.
        cfo_hz: the refined CFO used for compensation.
        identification_time_s: queries x query period — the Fig 16 metric.
    """

    packet: TransponderPacket | None
    n_queries: int
    cfo_hz: float
    query_period_s: float = QUERY_PERIOD_S

    @property
    def success(self) -> bool:
        return self.packet is not None

    @property
    def identification_time_s(self) -> float:
        return self.n_queries * self.query_period_s

    @property
    def identification_time_ms(self) -> float:
        return self.identification_time_s * 1e3


class CoherentDecoder:
    """Combines repeated collision captures to decode one tag (§8)."""

    def __init__(self, sample_rate_hz: float, query_period_s: float = QUERY_PERIOD_S):
        self.sample_rate_hz = sample_rate_hz
        self.query_period_s = query_period_s
        self._modulator = OokModulator(sample_rate_hz=sample_rate_hz)

    def decode(
        self,
        captures: list[Waveform],
        target_cfo_hz: float,
        refine: bool = True,
        min_queries: int = 1,
    ) -> DecodeResult:
        """Decode by accumulating captures until the packet checks out.

        This is the reference single-target algorithm; it recomputes the
        compensation of every capture from scratch. Repeated-query
        pipelines should use :class:`DecodeSession` (or
        :class:`MultiTargetCombiner` directly), which share work across
        targets and retries.

        Args:
            captures: single-antenna captures, one per query, all aligned
                to their response start.
            target_cfo_hz: the target's spike frequency (from counting).
            refine: sub-bin refine the CFO on the first capture.
            min_queries: don't attempt demodulation before this many.

        Returns:
            A :class:`DecodeResult`; ``packet`` is None if all captures
            were consumed without a CRC pass.
        """
        if not captures:
            raise DecodingError("no captures supplied")
        cfo = target_cfo_hz
        if refine:
            cfo = self.refine_cfo(captures[0], cfo)
        accumulator = np.zeros(captures[0].n_samples, dtype=np.complex128)
        for j, capture in enumerate(captures, start=1):
            accumulator += self._compensated(capture, cfo)
            if j < min_queries:
                continue
            packet = self._try_demodulate(accumulator)
            if packet is not None:
                return DecodeResult(
                    packet=packet, n_queries=j, cfo_hz=cfo, query_period_s=self.query_period_s
                )
        return DecodeResult(
            packet=None, n_queries=len(captures), cfo_hz=cfo, query_period_s=self.query_period_s
        )

    def decode_many(
        self,
        captures: list[Waveform],
        target_cfos_hz: list[float],
        refine: bool = True,
        min_queries: int = 1,
    ) -> dict[float, DecodeResult]:
        """Decode many targets from one shared capture list, batched.

        The vectorized counterpart of calling :meth:`decode` once per
        target: one :class:`MultiTargetCombiner` recombines the same
        captures for every target, so each capture is read once and each
        target's compensation is a broadcast, not a Python loop.

        Returns:
            ``{requested cfo: DecodeResult}`` — same per-target outcomes
            (packets and query counts) as the reference path.
        """
        if not captures:
            raise DecodingError("no captures supplied")
        combiner = MultiTargetCombiner(self, captures[0].n_samples)
        refined = [
            self.refine_cfo(captures[0], cfo) if refine else float(cfo)
            for cfo in target_cfos_hz
        ]
        keys = combiner.add_targets(refined)
        combiner.advance(keys, captures, len(captures), min_queries=min_queries)
        return {
            cfo: combiner.result(key) for cfo, key in zip(target_cfos_hz, keys)
        }

    def refine_cfo(self, capture: Waveform, cfo_hz: float) -> float:
        """Sub-bin refine a spike frequency on one capture (§3)."""
        return refine_frequency(
            capture, cfo_hz, span_hz=capture.sample_rate_hz / capture.n_samples / 2.0
        )

    # -- internals ---------------------------------------------------------------

    def _compensated(self, capture: Waveform, cfo_hz: float) -> np.ndarray:
        """One capture, CFO-removed and divided by its own channel estimate."""
        h = estimate_channel(capture, cfo_hz)
        if h == 0:
            raise DecodingError("zero channel estimate for target")
        t = capture.times()
        return capture.samples * np.exp(-2j * np.pi * cfo_hz * t) / h

    def _try_demodulate(
        self, accumulator: np.ndarray | None = None, bits: np.ndarray | None = None
    ) -> TransponderPacket | None:
        """Matched-filter, Manchester-decode and CRC-check the average.

        One call is one demodulation attempt. Batched callers that have
        already matched-filtered and sliced a whole cohort pass ``bits``
        directly; the outcome is identical to passing the accumulator.
        """
        try:
            if bits is None:
                bits = self._modulator.demodulate_soft(accumulator, n_bits=PACKET_BITS)
            return TransponderPacket.from_bits(bits)
        except (CrcError, PacketError, ModulationError):
            return None


class MultiTargetCombiner:
    """Incremental, batched coherent recombination of shared captures.

    Holds one accumulator row per target over a single stream of captures
    (§12.4: the *same* collisions are recombined per target). Advancing a
    target by one capture costs one dot product (its channel estimate) and
    one vector add; nothing is ever re-summed, and demodulation is only
    attempted at capture counts not tried before — so a session that
    doubles its budget past a failure never repeats work.

    Targets are identified by integer keys from :meth:`add_target` /
    :meth:`add_targets`. All per-target state lives in ``(T, N)`` matrices
    so a cohort of targets advances through a capture with one
    matrix-vector product and one broadcast add.
    """

    def __init__(self, decoder: CoherentDecoder, n_samples: int):
        if n_samples <= 0:
            raise DecodingError("combiner needs a positive capture length")
        self.decoder = decoder
        self.n_samples = int(n_samples)
        self._tau = np.arange(self.n_samples) / decoder.sample_rate_hz
        self.cfos_hz = np.zeros(0, dtype=np.float64)
        self._phasors = np.zeros((0, self.n_samples), dtype=np.complex128)
        self._acc = np.zeros((0, self.n_samples), dtype=np.complex128)
        self.n_combined = np.zeros(0, dtype=np.int64)
        self.n_attempted = np.zeros(0, dtype=np.int64)
        self._results: list[DecodeResult | None] = []

    @property
    def n_targets(self) -> int:
        return len(self._results)

    def add_targets(self, cfos_hz: list[float]) -> list[int]:
        """Register targets; their CFO phasors are built in one broadcast."""
        if not len(cfos_hz):
            return []
        cfos = np.asarray(cfos_hz, dtype=np.float64)
        first = self.n_targets
        phasors = np.exp(-2j * np.pi * cfos[:, None] * self._tau[None, :])
        self.cfos_hz = np.concatenate([self.cfos_hz, cfos])
        self._phasors = np.vstack([self._phasors, phasors])
        self._acc = np.vstack(
            [self._acc, np.zeros((cfos.size, self.n_samples), dtype=np.complex128)]
        )
        self.n_combined = np.concatenate(
            [self.n_combined, np.zeros(cfos.size, dtype=np.int64)]
        )
        self.n_attempted = np.concatenate(
            [self.n_attempted, np.zeros(cfos.size, dtype=np.int64)]
        )
        self._results.extend([None] * cfos.size)
        return list(range(first, self.n_targets))

    def add_target(self, cfo_hz: float) -> int:
        """Register one target (already-refined CFO); returns its key."""
        return self.add_targets([float(cfo_hz)])[0]

    def decoded(self, key: int) -> bool:
        """Whether the target's packet has passed its CRC."""
        return self._results[key] is not None

    def result(self, key: int, max_queries: int | None = None) -> DecodeResult:
        """The target's outcome so far.

        A success is returned as recorded; otherwise a failure result is
        minted reporting how many captures were combined (capped at
        ``max_queries`` when given, mirroring a budget-limited run).
        """
        recorded = self._results[key]
        if recorded is not None:
            return recorded
        n = int(self.n_combined[key])
        if max_queries is not None:
            n = min(n, int(max_queries))
        return DecodeResult(
            packet=None,
            n_queries=n,
            cfo_hz=float(self.cfos_hz[key]),
            query_period_s=self.decoder.query_period_s,
        )

    def advance(
        self,
        keys: list[int],
        captures: list[Waveform],
        upto: int,
        min_queries: int = 1,
    ) -> None:
        """Advance targets through ``captures[:upto]``, incrementally.

        Each target combines only captures beyond its own prefix and
        attempts demodulation only at capture counts above its previous
        attempt — the §12.4 stopping rule without quadratic re-work.
        """
        upto = min(int(upto), len(captures))
        keys = list(dict.fromkeys(keys))  # duplicates would double-combine
        pending = [
            k for k in keys if self._results[k] is None and self.n_combined[k] < upto
        ]
        if not pending:
            return
        # Decoded targets ride along in the combine cohorts: their rows
        # keep accumulating (harmless — their result is recorded) so that
        # lockstep batches stay on the full-matrix fast path instead of
        # falling back to gather/scatter indexing as targets finish.
        cohorts = list(keys)
        start = int(min(self.n_combined[k] for k in pending))
        for j in range(start, upto):
            cohort = np.array(
                [k for k in cohorts if self.n_combined[k] == j], dtype=np.intp
            )
            if cohort.size:
                self._combine(cohort, captures[j])
                count = j + 1
                if count >= min_queries:
                    self._attempt(cohort, count)
                    pending = [k for k in pending if self._results[k] is None]
                    if not pending:
                        return

    # -- internals ---------------------------------------------------------------

    def _combine(self, cohort: np.ndarray, capture: Waveform) -> None:
        """Fold one capture into every cohort accumulator (batched)."""
        x = capture.samples
        if x.size != self.n_samples:
            raise DecodingError(
                f"capture length {x.size} does not match combiner ({self.n_samples})"
            )
        # One matvec gives every target's channel readout q = mean(x * phasor);
        # the absolute-time rotation cancels against Eq 5's channel estimate,
        # so the compensated capture is x / (2 q) (see module docstring).
        whole = cohort.size == self.n_targets
        phasors = self._phasors if whole else self._phasors[cohort]
        q = phasors @ x / self.n_samples
        if np.any(q == 0):
            raise DecodingError("zero channel estimate for target")
        contribution = x[None, :] / (2.0 * q[:, None])
        if whole:
            self._acc += contribution
        else:
            self._acc[cohort] += contribution
        self.n_combined[cohort] += 1

    def _attempt(self, cohort: np.ndarray, count: int) -> None:
        """Try demodulation for cohort members that haven't tried ``count``.

        The matched filter and Manchester comparison run once for the
        whole cohort (matrix ops); packet parsing — one demodulation
        attempt per target — still goes through the decoder's
        ``_try_demodulate`` funnel.
        """
        pending = [
            int(k)
            for k in cohort
            if self._results[int(k)] is None and self.n_attempted[int(k)] < count
        ]
        if not pending:
            return
        idx = np.asarray(pending, dtype=np.intp)
        modulator = self.decoder._modulator
        spc = modulator.samples_per_chip
        n_chips = 2 * PACKET_BITS
        if self.n_samples < n_chips * spc:
            # Captures too short for a packet: the per-target reference
            # path raises (and swallows) the same ModulationError.
            bit_rows = None
        else:
            rows = (self._phasors[idx] * self._acc[idx]).real
            soft = (
                np.add.reduce(
                    rows[:, : n_chips * spc].reshape(idx.size, n_chips, spc), axis=2
                )
                / spc
            )
            bit_rows = (soft[:, 0::2] > soft[:, 1::2]).astype(np.uint8)
        for i, k in enumerate(pending):
            self.n_attempted[k] = count
            if bit_rows is None:
                packet = self.decoder._try_demodulate(self._phasors[k] * self._acc[k])
            else:
                packet = self.decoder._try_demodulate(bits=bit_rows[i])
            if packet is not None:
                self._results[k] = DecodeResult(
                    packet=packet,
                    n_queries=count,
                    cfo_hz=float(self.cfos_hz[k]),
                    query_period_s=self.decoder.query_period_s,
                )


@dataclass
class DecodeSession:
    """Decode *every* tag in range from one shared stream of queries (§12.4).

    The paper notes that decoding all colliding tags costs no more air
    time than decoding one: the same collisions are recombined per target
    with different CFO/channel compensation. The session issues queries
    through a callable (e.g. ``StaticCollisionSimulator.query``) and feeds
    one shared capture list to a :class:`MultiTargetCombiner`, so:

    * captures are issued lazily and reused across targets *and* budget
      doublings (a failed target retried with a larger ``max_queries``
      resumes where it stopped);
    * demodulation is attempted exactly once per (target, capture count);
    * targets decoded together advance through each capture as one batch.

    The session is a cache of decoding evidence: once a target's packet
    has passed its CRC, later calls return that result even if asked with
    a smaller ``max_queries``.

    Attributes:
        query_fn: ``query_fn(t_s) -> ReceivedCollision``.
        decoder: the coherent decoder to use.
        antenna_index: which antenna's capture stream to decode from.
        refine: sub-bin refine each target's CFO on the first capture.
    """

    query_fn: object
    decoder: CoherentDecoder
    antenna_index: int = 0
    captures: list[Waveform] = field(default_factory=list)
    _next_query_s: float = 0.0
    refine: bool = True
    _combiner: MultiTargetCombiner | None = field(default=None, repr=False)
    _target_keys: dict[float, int] = field(default_factory=dict, repr=False)

    def _ensure_captures(self, n: int) -> None:
        while len(self.captures) < n:
            collision = self.query_fn(self._next_query_s)
            self._next_query_s += self.decoder.query_period_s
            self.captures.append(collision.antenna(self.antenna_index))

    def _keys_for(self, target_cfos_hz: list[float]) -> list[int]:
        """Target keys for the requested CFOs, registering new ones."""
        fresh = list(
            dict.fromkeys(
                cfo for cfo in target_cfos_hz if cfo not in self._target_keys
            )
        )
        if fresh:
            self._ensure_captures(1)
            if self._combiner is None:
                self._combiner = MultiTargetCombiner(
                    self.decoder, self.captures[0].n_samples
                )
            refined = [
                self.decoder.refine_cfo(self.captures[0], cfo) if self.refine else cfo
                for cfo in fresh
            ]
            for cfo, key in zip(fresh, self._combiner.add_targets(refined)):
                self._target_keys[cfo] = key
        return [self._target_keys[cfo] for cfo in target_cfos_hz]

    def decode_target(self, target_cfo_hz: float, max_queries: int = 64) -> DecodeResult:
        """Decode one tag, issuing further queries only as needed.

        The capture budget grows geometrically; captures already issued
        (e.g. for a previous target) are reused for free, and so is all
        combining already done for this target.
        """
        return self._run(self._keys_for([target_cfo_hz]), max_queries)[0]

    def decode_all(
        self, target_cfos_hz: list[float], max_queries: int = 64
    ) -> dict[float, DecodeResult]:
        """Decode every listed tag from the shared capture stream.

        All targets advance through each capture together, so the whole
        batch costs one pass over the stream regardless of how many tags
        are being identified.
        """
        keys = self._keys_for(list(target_cfos_hz))
        results = self._run(keys, max_queries)
        return dict(zip(target_cfos_hz, results))

    def seed_capture(self, capture: Waveform) -> None:
        """Feed an already-received capture into the shared stream.

        Lets a caller that has queried for other reasons (e.g. a
        counting/AoA measurement round) donate that capture to the
        decode stream, so identification reuses its air time (§12.4).
        """
        self.captures.append(capture)
        self._next_query_s += self.decoder.query_period_s

    def _run(self, keys: list[int], max_queries: int) -> list[DecodeResult]:
        if not keys:
            return []
        combiner = self._combiner
        # A decode attempt always consumes at least one query on the air;
        # budgets below that would misreport the air time actually spent.
        max_queries = max(1, int(max_queries))
        n = 1
        while True:
            self._ensure_captures(n)
            combiner.advance(keys, self.captures, n)
            if all(combiner.decoded(k) for k in keys) or n >= max_queries:
                return [combiner.result(k, max_queries=max_queries) for k in keys]
            n = min(2 * n, max_queries)

    @property
    def total_air_time_s(self) -> float:
        """Air time consumed so far (queries issued x period)."""
        return len(self.captures) * self.decoder.query_period_s
