"""Decoding transponder IDs from collisions by coherent combining (§8).

A band-pass filter around the tag's CFO cannot decode OOK — the data
energy is spread across the band, not parked at the spike (§8 opening; the
failing baseline lives in :mod:`repro.baselines.bandpass_decoder`).
Instead, Caraoke queries repeatedly. Each response j of the target tag
arrives with a fresh channel-plus-phase ``h_j`` (tags restart their
oscillator phase randomly) which the reader *measures from the spike
itself* (Eq 5), then compensates:

    ``acc(t) += r_j(t) * exp(-j 2 pi cfo t) / h_j``

The target's chips add coherently (amplitude N after N queries) while
every other tag adds with i.i.d. random phases (amplitude ~ sqrt(N)), so
the target's SNR grows ~N and eventually its 256 bits demodulate and pass
the CRC — the stopping rule of §12.4. Expected cost: interferer power
relative to the target sets N, hence decode time grows with the number of
colliding tags (Fig 16: ~4 ms at 2 tags, ~16 ms at 5, tens of ms at 10).

The reader captures on *three* antennas (Fig 6), and §8 notes the
captures can also be combined *across* antennas: each antenna's channel
comes from the same Eq 5 readout, so the K compensated copies of one
response are maximum-ratio combined into a single row before it enters
the accumulator.  With per-antenna channels ``h_a`` the MRC reduction is

    ``y_j(t) = sum_a conj(h_{j,a}) r_{j,a}(t) / sum_a |h_{j,a}|^2``

— unbiased in the target's chips (like ``r/h``) with noise variance cut
by ``sum_a |h_a|^2 / |h_0|^2`` (~K for comparable antennas), which shows
up directly as ~K-fold fewer queries on the Fig 16 workload.

Two execution paths implement the same math:

* :meth:`CoherentDecoder.decode` — the direct, per-capture reference
  algorithm, kept deliberately simple (it *is* §8 as written,
  single-antenna).
* :class:`MultiTargetCombiner` — the production path used by
  :class:`DecodeSession` and the :mod:`repro.core.network` batch layer.
  It is **incremental** (per-(target, antenna) accumulator rows advance
  one capture at a time and never re-sum their prefix), attempts
  demodulation only at *new* capture counts, and is **batched** across
  targets: each capture's channel estimates for every (target, antenna)
  come from one matrix product and every target's CFO phasor is built in
  one broadcast pass.  Its ``combining`` policy selects ``"mrc"``
  (default: all antennas, maximum-ratio) or ``"single"`` (one antenna —
  the pre-multi-antenna numerics, kept bit-for-bit as the ablation
  baseline).

A key algebraic identity makes the batched path cheap.  The compensated
capture is ``r_j(t) exp(-j 2 pi f t) / h_j`` with absolute time
``t = t0_j + tau``.  The channel estimate is read off the capture itself,
``h_j = 2 mean(r_j(t) exp(-j 2 pi f t))`` (Eq 5), so the absolute-time
rotation ``exp(-j 2 pi f t0_j)`` cancels between numerator and channel:
the accumulator factors as ``phasor(tau) * sum_j r_j(tau) / (2 q_j)``
where ``q_j = mean(r_j(tau) phasor(tau))`` is a single dot product per
(capture, target, antenna) and ``phasor`` is computed once per target.
The same cancellation holds per antenna, so the MRC reduction needs only
the ``q_{j,a}`` matrix — no second pass over the samples.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from ..constants import PACKET_BITS, QUERY_PERIOD_S
from ..errors import ConfigurationError, CrcError, DecodingError, ModulationError, PacketError
from ..phy.modulation import OokModulator
from ..phy.packet import TransponderPacket
from ..phy.waveform import Waveform
from .cfo import estimate_channel, refine_frequency

__all__ = ["DecodeResult", "CoherentDecoder", "MultiTargetCombiner", "DecodeSession"]

#: Valid cross-antenna combining policies.
COMBINING_POLICIES = ("mrc", "single")

#: Valid overheard-capture policies.
OPPORTUNISTIC_POLICIES = ("accept", "ignore")

#: A donated capture is combined for a target only when the target's
#: spike power at the capture exceeds this multiple of the per-bin
#: noise-plus-interference floor (~10.8 dB). An overheard window need
#: not contain the target at all (the tag may be out of the donor
#: query's range), and a target-absent capture would be combined
#: through a noise-dominated Eq 5 estimate — the probe keeps that
#: garbage out. Present-but-weak spikes that pass are further
#: inverse-variance weighted against the target's own captures (see
#: ``MultiTargetCombiner._combine``), so they shave variance instead of
#: amplifying their noise into the accumulator.
OVERHEARD_PROBE_THRESHOLD = 12.0


def validate_combining(combining: str) -> str:
    """Validate a combining policy: ``"mrc"`` (all antennas, maximum-ratio)
    or ``"single"`` (one-antenna ablation baseline)."""
    if combining not in COMBINING_POLICIES:
        raise ConfigurationError(
            f"unknown combining policy {combining!r}; options: {COMBINING_POLICIES}"
        )
    return combining


def validate_opportunistic(opportunistic: str) -> str:
    """Validate an opportunistic overheard-capture policy: ``"accept"``
    (combine donated windows as free evidence) or ``"ignore"`` (ablation
    baseline, drops them bit-for-bit)."""
    if opportunistic not in OPPORTUNISTIC_POLICIES:
        raise ConfigurationError(
            f"unknown opportunistic policy {opportunistic!r}; "
            f"options: {OPPORTUNISTIC_POLICIES}"
        )
    return opportunistic


def deprecated_antenna_index(antenna_index, owner: str) -> int:
    warnings.warn(
        f"{owner}'s antenna_index is deprecated: it now maps to the "
        "combining='single' ablation policy; multi-antenna MRC "
        "(combining='mrc') is the default pipeline",
        DeprecationWarning,
        stacklevel=3,
    )
    return int(antenna_index)


@dataclass
class DecodeResult:
    """Outcome of decoding one target tag.

    Attributes:
        packet: the recovered packet, or None if the budget ran out.
        n_queries: collisions combined before the CRC passed.
        cfo_hz: the refined CFO used for compensation.
        identification_time_s: queries x query period — the Fig 16 metric.
        channels: per-antenna channel evidence accumulated while decoding
            (None before any capture was combined).  Entry ``a`` is
            ``sum_j q_{j,a} conj(q_{j,0})`` over the combined captures —
            each response's random phase cancels against the reference
            antenna, so the terms add coherently and *cross-antenna
            ratios* converge on the true channel ratios ``h_a / h_b``.
            Those ratios are exactly the Eq 10 phase differences, which is
            what lets localization consume decode output directly instead
            of re-reading spectra.
        n_overheard: overheard (donated) captures combined on top of the
            ``n_queries`` own captures. They are free evidence — air time
            another reader already spent — so they never enter
            :attr:`identification_time_s`.
    """

    packet: TransponderPacket | None
    n_queries: int
    cfo_hz: float
    query_period_s: float = QUERY_PERIOD_S
    channels: np.ndarray | None = None
    n_overheard: int = 0

    @property
    def success(self) -> bool:
        return self.packet is not None

    @property
    def n_antennas(self) -> int:
        """How many antennas contributed channel evidence."""
        return 0 if self.channels is None else int(self.channels.size)

    @property
    def identification_time_s(self) -> float:
        return self.n_queries * self.query_period_s

    @property
    def identification_time_ms(self) -> float:
        return self.identification_time_s * 1e3


class CoherentDecoder:
    """Combines repeated collision captures to decode one tag (§8)."""

    def __init__(self, sample_rate_hz: float, query_period_s: float = QUERY_PERIOD_S):
        self.sample_rate_hz = sample_rate_hz
        self.query_period_s = query_period_s
        self._modulator = OokModulator(sample_rate_hz=sample_rate_hz)

    def decode(
        self,
        captures: list[Waveform],
        target_cfo_hz: float,
        refine: bool = True,
        min_queries: int = 1,
    ) -> DecodeResult:
        """Decode by accumulating captures until the packet checks out.

        This is the reference single-target, single-antenna algorithm; it
        recomputes the compensation of every capture from scratch.
        Repeated-query pipelines should use :class:`DecodeSession` (or
        :class:`MultiTargetCombiner` directly), which share work across
        targets, antennas and retries.

        Args:
            captures: single-antenna captures, one per query, all aligned
                to their response start.
            target_cfo_hz: the target's spike frequency (from counting).
            refine: sub-bin refine the CFO on the first capture.
            min_queries: don't attempt demodulation before this many.

        Returns:
            A :class:`DecodeResult`; ``packet`` is None if all captures
            were consumed without a CRC pass.
        """
        if not captures:
            raise DecodingError("no captures supplied")
        cfo = target_cfo_hz
        if refine:
            cfo = self.refine_cfo(captures[0], cfo)
        accumulator = np.zeros(captures[0].n_samples, dtype=np.complex128)
        for j, capture in enumerate(captures, start=1):
            accumulator += self._compensated(capture, cfo)
            if j < min_queries:
                continue
            packet = self._try_demodulate(accumulator)
            if packet is not None:
                return DecodeResult(
                    packet=packet, n_queries=j, cfo_hz=cfo, query_period_s=self.query_period_s
                )
        return DecodeResult(
            packet=None, n_queries=len(captures), cfo_hz=cfo, query_period_s=self.query_period_s
        )

    def decode_many(
        self,
        captures: list[Waveform],
        target_cfos_hz: list[float],
        refine: bool = True,
        min_queries: int = 1,
    ) -> dict[float, DecodeResult]:
        """Decode many targets from one shared capture list, batched.

        The vectorized counterpart of calling :meth:`decode` once per
        target: one :class:`MultiTargetCombiner` recombines the same
        captures for every target, so each capture is read once and each
        target's compensation is a broadcast, not a Python loop.  The
        captures are single-antenna waveforms, so the combiner runs the
        ``"single"`` policy and reproduces :meth:`decode` exactly.

        Returns:
            ``{requested cfo: DecodeResult}`` — same per-target outcomes
            (packets and query counts) as the reference path.
        """
        if not captures:
            raise DecodingError("no captures supplied")
        combiner = MultiTargetCombiner(self, captures[0].n_samples, combining="single")
        refined = [
            self.refine_cfo(captures[0], cfo) if refine else float(cfo)
            for cfo in target_cfos_hz
        ]
        keys = combiner.add_targets(refined)
        combiner.advance(keys, captures, len(captures), min_queries=min_queries)
        return {
            cfo: combiner.result(key) for cfo, key in zip(target_cfos_hz, keys)
        }

    def refine_cfo(self, capture: Waveform, cfo_hz: float) -> float:
        """Sub-bin refine a spike frequency on one capture (§3)."""
        return refine_frequency(
            capture, cfo_hz, span_hz=capture.sample_rate_hz / capture.n_samples / 2.0
        )

    # -- internals ---------------------------------------------------------------

    def _compensated(self, capture: Waveform, cfo_hz: float) -> np.ndarray:
        """One capture, CFO-removed and divided by its own channel estimate."""
        h = estimate_channel(capture, cfo_hz)
        if h == 0:
            raise DecodingError("zero channel estimate for target")
        t = capture.times()
        return capture.samples * np.exp(-2j * np.pi * cfo_hz * t) / h

    def _try_demodulate(
        self, accumulator: np.ndarray | None = None, bits: np.ndarray | None = None
    ) -> TransponderPacket | None:
        """Matched-filter, Manchester-decode and CRC-check the average.

        One call is one demodulation attempt. Batched callers that have
        already matched-filtered and sliced a whole cohort pass ``bits``
        directly; the outcome is identical to passing the accumulator.
        """
        try:
            if bits is None:
                bits = self._modulator.demodulate_soft(accumulator, n_bits=PACKET_BITS)
            return TransponderPacket.from_bits(bits)
        except (CrcError, PacketError, ModulationError):
            return None


class MultiTargetCombiner:
    """Incremental, batched coherent recombination of shared captures.

    Holds one accumulator row per (target, antenna) over a single stream
    of captures (§12.4: the *same* collisions are recombined per target).
    Advancing a target by one capture costs one dot product per antenna
    (its channel estimates) and one broadcast add; nothing is ever
    re-summed, and demodulation is only attempted at capture counts not
    tried before — so a session that doubles its budget past a failure
    never repeats work.

    ``combining`` selects how a capture's antennas enter the rows:

    * ``"mrc"`` (default) — every antenna of the
      :class:`~repro.channel.collision.ReceivedCollision` contributes;
      per capture, the per-antenna Eq 5 readouts weight the compensated
      copies maximum-ratio, so the reduced cohort row is the
      minimum-variance unbiased estimate of the target's chips.
    * ``"single"`` — exactly one antenna (``antenna_index``) feeds one
      row per target, reproducing the pre-multi-antenna pipeline
      bit-for-bit (the ablation baseline).

    Targets are identified by integer keys from :meth:`add_target` /
    :meth:`add_targets`. All per-target state lives in ``(T, A, N)``
    arrays so a cohort of targets advances through a capture with one
    matrix product and one broadcast add.  Bare :class:`Waveform`
    captures are accepted as one-antenna collisions.
    """

    def __init__(
        self,
        decoder: CoherentDecoder,
        n_samples: int,
        combining: str = "mrc",
        antenna_index: int = 0,
        obs=None,
    ):
        if n_samples <= 0:
            raise DecodingError("combiner needs a positive capture length")
        self.decoder = decoder
        self.n_samples = int(n_samples)
        self.combining = validate_combining(combining)
        self.antenna_index = int(antenna_index)
        #: Nullable observability hook (see :mod:`repro.obs`): counts
        #: demodulation attempts and CRC passes.
        self.obs = obs
        self._tau = np.arange(self.n_samples) / decoder.sample_rate_hz
        self.cfos_hz = np.zeros(0, dtype=np.float64)
        self._phasors = np.zeros((0, self.n_samples), dtype=np.complex128)
        #: Antenna rows per target; fixed by the first combined capture.
        self.n_antennas: int | None = None
        self._acc: np.ndarray | None = None  # (T, A, N)
        #: Latest capture's per-antenna Eq 5 readout ``h = 2 q`` (T, A).
        self._latest_channels: np.ndarray | None = None
        #: Cross-antenna channel evidence ``sum_j q_{j,a} conj(q_{j,0})``.
        self._channel_acc: np.ndarray | None = None
        self.n_combined = np.zeros(0, dtype=np.int64)
        #: Overheard (donated) captures combined per target, on top of
        #: the shared main stream counted by ``n_combined``.
        self.n_extra = np.zeros(0, dtype=np.int64)
        #: Summed spike power of own-stream captures per target — the
        #: baseline donated captures are inverse-variance weighted
        #: against (see :meth:`advance_extra`).
        self._own_power = np.zeros(0, dtype=np.float64)
        self.n_attempted = np.zeros(0, dtype=np.int64)
        self._results: list[DecodeResult | None] = []

    @property
    def n_targets(self) -> int:
        return len(self._results)

    def add_targets(self, cfos_hz: list[float]) -> list[int]:
        """Register targets; their CFO phasors are built in one broadcast."""
        if not len(cfos_hz):
            return []
        cfos = np.asarray(cfos_hz, dtype=np.float64)
        first = self.n_targets
        phasors = np.exp(-2j * np.pi * cfos[:, None] * self._tau[None, :])
        self.cfos_hz = np.concatenate([self.cfos_hz, cfos])
        self._phasors = np.vstack([self._phasors, phasors])
        if self._acc is not None:
            a = self._acc.shape[1]
            self._acc = np.concatenate(
                [self._acc, np.zeros((cfos.size, a, self.n_samples), dtype=np.complex128)]
            )
            self._latest_channels = np.vstack(
                [self._latest_channels, np.zeros((cfos.size, a), dtype=np.complex128)]
            )
            self._channel_acc = np.vstack(
                [self._channel_acc, np.zeros((cfos.size, a), dtype=np.complex128)]
            )
        self.n_combined = np.concatenate(
            [self.n_combined, np.zeros(cfos.size, dtype=np.int64)]
        )
        self.n_extra = np.concatenate(
            [self.n_extra, np.zeros(cfos.size, dtype=np.int64)]
        )
        self._own_power = np.concatenate(
            [self._own_power, np.zeros(cfos.size, dtype=np.float64)]
        )
        self.n_attempted = np.concatenate(
            [self.n_attempted, np.zeros(cfos.size, dtype=np.int64)]
        )
        self._results.extend([None] * cfos.size)
        return list(range(first, self.n_targets))

    def add_target(self, cfo_hz: float) -> int:
        """Register one target (already-refined CFO); returns its key."""
        return self.add_targets([float(cfo_hz)])[0]

    def decoded(self, key: int) -> bool:
        """Whether the target's packet has passed its CRC."""
        return self._results[key] is not None

    def evidence_count(self, key: int) -> int:
        """Captures combined for the target: own stream plus overheard."""
        return int(self.n_combined[key] + self.n_extra[key])

    def channel_estimates(self, key: int) -> np.ndarray | None:
        """Per-antenna Eq 5 channel readout from the *latest* capture.

        ``h_a = 2 q_a`` including that response's random phase — directly
        comparable to the synthesis ground truth
        (:class:`~repro.channel.collision.TruthEntry.channels`) of the
        capture it was read from.  None before any capture was combined.
        """
        if self._latest_channels is None or self.n_combined[key] == 0:
            return None
        return self._latest_channels[key].copy()

    def accumulated_channels(self, key: int) -> np.ndarray | None:
        """Cross-antenna channel evidence summed over combined captures.

        See :attr:`DecodeResult.channels` for the semantics (per-response
        phases cancel against antenna 0, so ratios estimate ``h_a/h_b``
        with SNR growing in the number of captures).
        """
        if self._channel_acc is None or self.n_combined[key] == 0:
            return None
        return self._channel_acc[key].copy()

    def result(self, key: int, max_queries: int | None = None) -> DecodeResult:
        """The target's outcome so far.

        A success is returned as recorded; otherwise a failure result is
        minted reporting how many captures were combined (capped at
        ``max_queries`` when given, mirroring a budget-limited run).
        """
        recorded = self._results[key]
        if recorded is not None:
            return recorded
        n = int(self.n_combined[key])
        if max_queries is not None:
            n = min(n, int(max_queries))
        return DecodeResult(
            packet=None,
            n_queries=n,
            cfo_hz=float(self.cfos_hz[key]),
            query_period_s=self.decoder.query_period_s,
            channels=self.accumulated_channels(key),
            n_overheard=int(self.n_extra[key]),
        )

    def advance(
        self,
        keys: list[int],
        captures: list,
        upto: int,
        min_queries: int = 1,
    ) -> None:
        """Advance targets through ``captures[:upto]``, incrementally.

        ``captures`` holds :class:`~repro.channel.collision.ReceivedCollision`
        objects (a bare :class:`Waveform` is treated as a one-antenna
        collision).  Each target combines only captures beyond its own
        prefix and attempts demodulation only at capture counts above its
        previous attempt — the §12.4 stopping rule without quadratic
        re-work.
        """
        upto = min(int(upto), len(captures))
        keys = list(dict.fromkeys(keys))  # duplicates would double-combine
        pending = [
            k for k in keys if self._results[k] is None and self.n_combined[k] < upto
        ]
        if not pending:
            return
        # Decoded targets ride along in the combine cohorts: their rows
        # keep accumulating (harmless — their result is recorded) so that
        # lockstep batches stay on the full-matrix fast path instead of
        # falling back to gather/scatter indexing as targets finish.
        cohorts = list(keys)
        start = int(min(self.n_combined[k] for k in pending))
        for j in range(start, upto):
            cohort = np.array(
                [k for k in cohorts if self.n_combined[k] == j], dtype=np.intp
            )
            if cohort.size:
                self._combine(cohort, captures[j])
                self.n_combined[cohort] += 1
                count = j + 1
                if count >= min_queries:
                    self._attempt(cohort)
                    pending = [k for k in pending if self._results[k] is None]
                    if not pending:
                        return

    def advance_extra(self, keys: list[int], capture) -> list[int]:
        """Fold one *donated* capture into targets' rows as free evidence.

        Donated captures (e.g. a window overheard from a neighboring
        reader's query) advance the demod accumulators like main-stream
        captures — inverse-variance weighted, see :meth:`_combine` — but
        are tallied separately in ``n_extra`` (no air time, never in a
        result's ``n_queries``) and contribute nothing to the
        cross-antenna channel evidence (their geometry is stale by up to
        the harvest horizon, which would bias the Eq 10 AoA readout).
        Demodulation is attempted at the new total evidence count.
        Already-decoded targets are skipped; returns the keys actually
        advanced.
        """
        cohort = np.array(
            [k for k in dict.fromkeys(keys) if self._results[k] is None],
            dtype=np.intp,
        )
        if not cohort.size:
            return []
        self._combine(cohort, capture, extra=True)
        self.n_extra[cohort] += 1
        self._attempt(cohort)
        return [int(k) for k in cohort]

    # -- internals ---------------------------------------------------------------

    def _antenna_rows(self, capture) -> np.ndarray:
        """The capture's antenna streams as an (A, N) matrix.

        ``"single"`` slices out exactly the configured antenna; ``"mrc"``
        stacks every antenna of the collision.  A bare waveform is one
        antenna either way.
        """
        if isinstance(capture, Waveform):
            rows = capture.samples[None, :]
        elif self.combining == "single":
            rows = capture.antenna(self.antenna_index).samples[None, :]
        else:
            rows = np.stack([wave.samples for wave in capture.antennas])
        if rows.shape[1] != self.n_samples:
            raise DecodingError(
                f"capture length {rows.shape[1]} does not match combiner "
                f"({self.n_samples})"
            )
        return rows

    def _ensure_rows(self, n_antennas: int) -> None:
        """Grow the accumulators to hold at least ``n_antennas`` rows.

        Captures may disagree on antenna count (a legacy one-antenna
        waveform seeded into a three-antenna stream, a degraded element):
        each capture contributes to the rows it has, zero-padded rows
        simply hold no evidence yet, and the MRC weights normalize per
        capture — so mixed streams stay well-defined instead of erroring.
        """
        n_antennas = int(n_antennas)
        if self.n_antennas is None:
            self.n_antennas = n_antennas
            self._acc = np.zeros(
                (self.n_targets, self.n_antennas, self.n_samples), dtype=np.complex128
            )
            self._latest_channels = np.zeros(
                (self.n_targets, self.n_antennas), dtype=np.complex128
            )
            self._channel_acc = np.zeros(
                (self.n_targets, self.n_antennas), dtype=np.complex128
            )
        elif n_antennas > self.n_antennas:
            grow = n_antennas - self.n_antennas
            self._acc = np.concatenate(
                [
                    self._acc,
                    np.zeros(
                        (self.n_targets, grow, self.n_samples), dtype=np.complex128
                    ),
                ],
                axis=1,
            )
            self._latest_channels = np.concatenate(
                [
                    self._latest_channels,
                    np.zeros((self.n_targets, grow), dtype=np.complex128),
                ],
                axis=1,
            )
            self._channel_acc = np.concatenate(
                [
                    self._channel_acc,
                    np.zeros((self.n_targets, grow), dtype=np.complex128),
                ],
                axis=1,
            )
            self.n_antennas = n_antennas

    def _combine(self, cohort: np.ndarray, capture, extra: bool = False) -> None:
        """Fold one capture into every cohort accumulator row (batched).

        ``extra`` marks a donated (overheard) capture: its contribution
        is inverse-variance weighted against the target's mean own-stream
        spike power. An own capture enters at weight 1 (``x / 2q``, whose
        noise scales as ``1/|h|``); a donated capture whose channel is
        ``w`` times weaker in power enters at weight ``min(1, w)``, so
        strong overheard evidence counts like an own query while a weak
        window shaves variance instead of amplifying its noise into the
        accumulator. Own-stream numerics are untouched.
        """
        rows = self._antenna_rows(capture)
        self._ensure_rows(rows.shape[0])
        # One matrix product gives every (target, antenna) channel readout
        # q = mean(x * phasor); the absolute-time rotation cancels against
        # Eq 5's channel estimate (see module docstring). The full-matrix
        # fast path requires the cohort in target order: per-target state
        # (own-power baselines, weights) is indexed by cohort, so a
        # *permuted* whole cohort must take the gather path.
        whole = cohort.size == self.n_targets and np.array_equal(
            cohort, np.arange(self.n_targets)
        )
        phasors = self._phasors if whole else self._phasors[cohort]
        if self.combining == "single":
            x = rows[0]
            q = phasors @ x / self.n_samples
            if np.any(q == 0):
                raise DecodingError("zero channel estimate for target")
            spike_power = np.abs(q) ** 2
            scale = self._extra_weight(cohort, spike_power, extra)
            contribution = x[None, :] / (2.0 * q[:, None])
            if scale is not None:
                contribution = contribution * scale[:, None]
            if whole:
                self._acc[:, 0, :] += contribution
            else:
                self._acc[cohort, 0, :] += contribution
            channels = q[:, None]
        else:
            q = phasors @ rows.T / self.n_samples  # (T_c, A)
            power = np.einsum("ka,ka->k", q, q.conj()).real
            if np.any(power == 0):
                raise DecodingError("zero channel estimate for target")
            scale = self._extra_weight(cohort, power, extra)
            # Maximum-ratio rows: antenna a's compensated copy x_a/(2 q_a)
            # weighted by |q_a|^2 / sum|q|^2 is conj(q_a) x_a / (2 sum|q|^2)
            # — no per-antenna division, so a dead antenna just drops out.
            weights = q.conj() / (2.0 * power[:, None])
            if scale is not None:
                weights = weights * scale[:, None]
            contribution = weights[:, :, None] * rows[None, :, :]
            if whole:
                self._acc[:, : rows.shape[0], :] += contribution
            else:
                self._acc[cohort, : rows.shape[0], :] += contribution
            channels = q
        if extra:
            # Donated captures feed the demod accumulator only. Their
            # channel readouts are valid but *stale geometry* — the tag
            # sat elsewhere when the overheard window was transmitted
            # (up to the harvest horizon ago, metres at city speeds) —
            # so folding them into the cross-antenna evidence would bias
            # the Eq 10 AoA readout localization consumes.
            return
        latest = np.zeros(
            (channels.shape[0], self.n_antennas), dtype=np.complex128
        )
        latest[:, : channels.shape[1]] = 2.0 * channels
        evidence = channels * channels[:, :1].conj()
        if whole:
            self._latest_channels[:] = latest
            self._channel_acc[:, : channels.shape[1]] += evidence
        else:
            self._latest_channels[cohort] = latest
            self._channel_acc[cohort, : channels.shape[1]] += evidence

    def _extra_weight(
        self, cohort: np.ndarray, spike_power: np.ndarray, extra: bool
    ) -> np.ndarray | None:
        """Per-target weight for a donated capture (None = own, weight 1).

        Own captures also feed the running own-power baseline here. A
        donation arriving before any own capture (no baseline yet) enters
        at weight 1.
        """
        if not extra:
            self._own_power[cohort] += spike_power
            return None
        counts = self.n_combined[cohort]
        baseline = np.where(
            counts > 0, self._own_power[cohort] / np.maximum(counts, 1), spike_power
        )
        return np.minimum(1.0, spike_power / np.maximum(baseline, 1e-300))

    def _reduced(self, idx: np.ndarray) -> np.ndarray:
        """MRC-reduce the antenna rows of the indexed targets to (n, N)."""
        if self.combining == "single":
            return self._acc[idx, 0, :]
        if self.n_antennas == 1:
            return self._acc[idx, 0, :]
        return self._acc[idx].sum(axis=1)

    def _attempt(self, cohort: np.ndarray) -> None:
        """Try demodulation for cohort members with new evidence counts.

        A target's count is its total evidence (own stream plus donated
        extras); demodulation is attempted only at counts not tried
        before. The antenna rows are reduced to one cohort row per
        target first; the matched filter and Manchester comparison then
        run once for the whole cohort (matrix ops); packet parsing — one
        demodulation attempt per target — still goes through the
        decoder's ``_try_demodulate`` funnel.
        """
        pending = [
            int(k)
            for k in cohort
            if self._results[int(k)] is None
            and self.n_attempted[int(k)] < self.evidence_count(int(k))
        ]
        if not pending:
            return
        idx = np.asarray(pending, dtype=np.intp)
        reduced = self._reduced(idx)
        modulator = self.decoder._modulator
        spc = modulator.samples_per_chip
        n_chips = 2 * PACKET_BITS
        if self.n_samples < n_chips * spc:
            # Captures too short for a packet: the per-target reference
            # path raises (and swallows) the same ModulationError.
            bit_rows = None
        else:
            rows = (self._phasors[idx] * reduced).real
            soft = (
                np.add.reduce(
                    rows[:, : n_chips * spc].reshape(idx.size, n_chips, spc), axis=2
                )
                / spc
            )
            bit_rows = (soft[:, 0::2] > soft[:, 1::2]).astype(np.uint8)
        for i, k in enumerate(pending):
            self.n_attempted[k] = self.evidence_count(k)
            if bit_rows is None:
                packet = self.decoder._try_demodulate(self._phasors[k] * reduced[i])
            else:
                packet = self.decoder._try_demodulate(bits=bit_rows[i])
            if self.obs is not None:
                self.obs.count(
                    "combiner.attempt",
                    outcome="decoded" if packet is not None else "pending",
                )
            if packet is not None:
                self._results[k] = DecodeResult(
                    packet=packet,
                    n_queries=int(self.n_combined[k]),
                    cfo_hz=float(self.cfos_hz[k]),
                    query_period_s=self.decoder.query_period_s,
                    channels=self.accumulated_channels(k),
                    n_overheard=int(self.n_extra[k]),
                )


@dataclass
class DecodeSession:
    """Decode *every* tag in range from one shared stream of queries (§12.4).

    The paper notes that decoding all colliding tags costs no more air
    time than decoding one: the same collisions are recombined per target
    with different CFO/channel compensation. The session issues queries
    through a callable (e.g. ``StaticCollisionSimulator.query``) and feeds
    the full :class:`~repro.channel.collision.ReceivedCollision` stream to
    a :class:`MultiTargetCombiner`, so:

    * captures are issued lazily and reused across targets *and* budget
      doublings (a failed target retried with a larger ``max_queries``
      resumes where it stopped);
    * demodulation is attempted exactly once per (target, capture count);
    * targets decoded together advance through each capture as one batch;
    * with ``combining="mrc"`` (default) every antenna of every capture
      contributes, cutting the Fig 16 query counts ~K-fold for a K-antenna
      reader; ``combining="single"`` is the one-antenna ablation baseline
      and reproduces the pre-multi-antenna numerics bit-for-bit.

    The session is a cache of decoding evidence: once a target's packet
    has passed its CRC, later calls return that result even if asked with
    a smaller ``max_queries``.

    Attributes:
        query_fn: ``query_fn(t_s) -> ReceivedCollision``.
        decoder: the coherent decoder to use.
        combining: ``"mrc"`` or ``"single"``.
        opportunistic: what to do with *donated* captures offered via
            :meth:`donate_capture` (responses overheard from another
            reader's trigger window). ``"accept"`` (default) combines
            each donation for every pending target whose spike the
            capture detectably contains — free evidence, excluded from
            ``n_queries``/air time; ``"ignore"`` drops donations at the
            door, reproducing the donation-free numerics bit-for-bit
            (the ablation baseline).
        refine: sub-bin refine each target's CFO on the first capture.
        antenna_index: **deprecated** alias — setting it selects
            ``combining="single"`` on that antenna.
        obs: nullable observability hook (see :mod:`repro.obs`): counts
            queries issued, seeded captures, and the CFAR probe's
            accept/reject verdicts on donated windows. Never affects
            decode results.
    """

    query_fn: object
    decoder: CoherentDecoder
    combining: str = "mrc"
    opportunistic: str = "accept"
    probe_threshold: float = OVERHEARD_PROBE_THRESHOLD
    captures: list = field(default_factory=list)
    _next_query_s: float = 0.0
    refine: bool = True
    _combiner: MultiTargetCombiner | None = field(default=None, repr=False)
    _target_keys: dict[float, int] = field(default_factory=dict, repr=False)
    _donations: list = field(default_factory=list, repr=False)
    antenna_index: int | None = None
    obs: object = None

    def __post_init__(self) -> None:
        if self.antenna_index is not None:
            self.antenna_index = deprecated_antenna_index(
                self.antenna_index, "DecodeSession"
            )
            self.combining = "single"
        validate_combining(self.combining)
        validate_opportunistic(self.opportunistic)

    @property
    def _antenna(self) -> int:
        return 0 if self.antenna_index is None else self.antenna_index

    def _ensure_captures(self, n: int) -> None:
        while len(self.captures) < n:
            collision = self.query_fn(self._next_query_s)
            self._next_query_s += self.decoder.query_period_s
            self.captures.append(collision)
            if self.obs is not None:
                self.obs.count("decode.capture", kind="query")

    def readout_capture(self, index: int) -> Waveform:
        """The single waveform used for spike/CFO readout of one capture.

        The ``"single"`` policy reads its configured antenna; ``"mrc"``
        refines on the first antenna (sub-bin refinement needs one clean
        tone, and every antenna sees the same spike frequency).
        """
        capture = self.captures[index]
        if isinstance(capture, Waveform):
            return capture
        if self.combining == "single":
            return capture.antenna(self._antenna)
        return capture.antennas[0]

    def _keys_for(self, target_cfos_hz: list[float]) -> list[int]:
        """Target keys for the requested CFOs, registering new ones."""
        fresh = list(
            dict.fromkeys(
                cfo for cfo in target_cfos_hz if cfo not in self._target_keys
            )
        )
        if fresh:
            self._ensure_captures(1)
            first = self.readout_capture(0)
            if self._combiner is None:
                self._combiner = MultiTargetCombiner(
                    self.decoder,
                    first.n_samples,
                    combining=self.combining,
                    # repro: allow[ablation-api] — combiner-internal antenna selection, not the deprecated session alias
                    antenna_index=self._antenna,
                    obs=self.obs,
                )
            refined = [
                self.decoder.refine_cfo(first, cfo) if self.refine else cfo
                for cfo in fresh
            ]
            for cfo, key in zip(fresh, self._combiner.add_targets(refined)):
                self._target_keys[cfo] = key
        return [self._target_keys[cfo] for cfo in target_cfos_hz]

    def decode_target(self, target_cfo_hz: float, max_queries: int = 64) -> DecodeResult:
        """Decode one tag, issuing further queries only as needed.

        The capture budget grows geometrically; captures already issued
        (e.g. for a previous target) are reused for free, and so is all
        combining already done for this target.
        """
        return self._run(self._keys_for([target_cfo_hz]), max_queries)[0]

    def decode_all(
        self, target_cfos_hz: list[float], max_queries: int = 64
    ) -> dict[float, DecodeResult]:
        """Decode every listed tag from the shared capture stream.

        All targets advance through each capture together, so the whole
        batch costs one pass over the stream regardless of how many tags
        are being identified.
        """
        keys = self._keys_for(list(target_cfos_hz))
        results = self._run(keys, max_queries)
        return dict(zip(target_cfos_hz, results))

    def seed_capture(self, capture) -> None:
        """Feed an already-received capture into the shared stream.

        Lets a caller that has queried for other reasons (e.g. a
        counting/AoA measurement round) donate that capture to the
        decode stream, so identification reuses its air time (§12.4).
        Accepts a full :class:`~repro.channel.collision.ReceivedCollision`
        (preferred — MRC can use every antenna) or a bare
        :class:`Waveform` treated as a one-antenna capture.
        """
        self.captures.append(capture)
        self._next_query_s += self.decoder.query_period_s
        if self.obs is not None:
            self.obs.count("decode.capture", kind="seeded")

    def donate_capture(self, capture) -> bool:
        """Offer an *overheard* capture as free evidence (no air time).

        A capture of another reader's trigger window (e.g. synthesized
        by the city corridor's response pool) may contain this session's
        targets — their responses are the same physical transmissions,
        just received over this pole's geometry. Under
        ``opportunistic="accept"`` the donation is held and, on the next
        decode run, combined for every still-pending target whose spike
        it detectably contains (see :data:`OVERHEARD_PROBE_THRESHOLD`);
        under ``"ignore"`` it is dropped immediately. Donated captures
        never join :attr:`captures` — air-time accounting
        (:attr:`total_air_time_s`, ``DecodeResult.n_queries``) stays
        own-queries-only; their use is visible in
        ``DecodeResult.n_overheard``. Returns whether the donation was
        kept.
        """
        if self.opportunistic != "accept":
            if self.obs is not None:
                self.obs.count("decode.donation", outcome="ignored")
            return False
        self._donations.append(capture)
        if self.obs is not None:
            self.obs.count("decode.donation", outcome="held")
        return True

    #: Half-width (in FFT bins) of the probe's local floor window, and
    #: how many center bins are excluded as the spike's own energy.
    _PROBE_FLOOR_HALF_BINS = 64
    _PROBE_SPIKE_GUARD_BINS = 2
    #: Shoulder offsets (in bins) the probed bin must dominate: energy
    #: *leaking* from another tag's spike a few bins away is always
    #: larger at bins nearer its true peak, so a probe reading that
    #: loses to its own shoulders is leakage, not the target.
    _PROBE_SHOULDER_BINS = (2, 3, 4, 5, 6)

    def _probe_spectra(self, rows: np.ndarray) -> np.ndarray:
        """Per-antenna power spectra of a donated capture (one FFT each,
        shared across every target probed against the capture)."""
        return np.abs(np.fft.fft(rows, axis=1)) ** 2 / rows.shape[1] ** 2

    def _spike_present(
        self,
        capture,
        key: int,
        rows: np.ndarray | None = None,
        spectra: np.ndarray | None = None,
    ) -> bool:
        """Whether a target's spike is detectably in a donated capture.

        The same one-dot readout as Eq 5, turned into a CFAR-style
        detector with two conditions: the target's bin power (summed
        over the antennas the combining policy uses) must exceed
        ``probe_threshold`` times a *local* floor — the median bin power
        in a window around the target bin, spike bins excluded — and it
        must dominate its spectral shoulders. The local median tracks
        whatever sits there (thermal noise *and* other tags' OOK data
        sidebands); the shoulder test rejects *leakage* from a stronger
        tag a few bins away, which can beat any floor while peaking at
        its own bin, not the target's. Tags landing within a bin of each
        other remain indistinguishable — the §5 merge case.
        """
        combiner = self._combiner
        if rows is None:
            rows = combiner._antenna_rows(capture)
        if spectra is None:
            spectra = self._probe_spectra(rows)
        n = combiner.n_samples
        q = rows @ combiner._phasors[key] / n
        spike = float(np.sum(np.abs(q) ** 2))
        bin_index = int(round(float(combiner.cfos_hz[key]) / self.decoder.sample_rate_hz * n))
        half = self._PROBE_FLOOR_HALF_BINS
        guard = self._PROBE_SPIKE_GUARD_BINS
        neighborhood = np.arange(bin_index - half, bin_index + half + 1) % n
        keep = np.ones(neighborhood.size, dtype=bool)
        keep[half - guard : half + guard + 1] = False
        floor = float(np.median(spectra[:, neighborhood[keep]], axis=1).sum())
        if spike <= self.probe_threshold * floor:
            return False
        shoulder_bins = np.array(
            [(bin_index + s) % n for s in self._PROBE_SHOULDER_BINS]
            + [(bin_index - s) % n for s in self._PROBE_SHOULDER_BINS]
        )
        shoulder = float(spectra[:, shoulder_bins].sum(axis=0).max())
        return spike >= shoulder

    def _flush_donations(self, keys: list[int]) -> None:
        """Combine held donations for the pending targets that pass the
        spike probe; donations are consumed (at most one use each)."""
        if not self._donations:
            return
        donations, self._donations = self._donations, []
        for capture in donations:
            pending = [k for k in dict.fromkeys(keys) if not self._combiner.decoded(k)]
            if not pending:
                return
            rows = self._combiner._antenna_rows(capture)
            spectra = self._probe_spectra(rows)
            accepted = [
                k
                for k in pending
                if self._spike_present(capture, k, rows=rows, spectra=spectra)
            ]
            if self.obs is not None:
                self.obs.count("decode.probe", n=len(accepted), outcome="accepted")
                self.obs.count(
                    "decode.probe", n=len(pending) - len(accepted), outcome="rejected"
                )
            if accepted:
                self._combiner.advance_extra(accepted, capture)

    def _run(self, keys: list[int], max_queries: int) -> list[DecodeResult]:
        if not keys:
            return []
        combiner = self._combiner
        # A decode attempt always consumes at least one query on the air;
        # budgets below that would misreport the air time actually spent.
        max_queries = max(1, int(max_queries))
        n = 1
        while True:
            self._ensure_captures(n)
            combiner.advance(keys, self.captures, n)
            self._flush_donations(keys)
            if all(combiner.decoded(k) for k in keys) or n >= max_queries:
                return [combiner.result(k, max_queries=max_queries) for k in keys]
            n = min(2 * n, max_queries)

    @property
    def total_air_time_s(self) -> float:
        """Air time consumed so far (queries issued x period)."""
        return len(self.captures) * self.decoder.query_period_s
