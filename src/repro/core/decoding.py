"""Decoding transponder IDs from collisions by coherent combining (§8).

A band-pass filter around the tag's CFO cannot decode OOK — the data
energy is spread across the band, not parked at the spike (§8 opening; the
failing baseline lives in :mod:`repro.baselines.bandpass_decoder`).
Instead, Caraoke queries repeatedly. Each response j of the target tag
arrives with a fresh channel-plus-phase ``h_j`` (tags restart their
oscillator phase randomly) which the reader *measures from the spike
itself* (Eq 5), then compensates:

    ``acc(t) += r_j(t) * exp(-j 2 pi cfo t) / h_j``

The target's chips add coherently (amplitude N after N queries) while
every other tag adds with i.i.d. random phases (amplitude ~ sqrt(N)), so
the target's SNR grows ~N and eventually its 256 bits demodulate and pass
the CRC — the stopping rule of §12.4. Expected cost: interferer power
relative to the target sets N, hence decode time grows with the number of
colliding tags (Fig 16: ~4 ms at 2 tags, ~16 ms at 5, tens of ms at 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..constants import PACKET_BITS, QUERY_PERIOD_S
from ..errors import CrcError, DecodingError, ModulationError, PacketError
from ..phy.modulation import OokModulator
from ..phy.packet import TransponderPacket
from ..phy.waveform import Waveform
from .cfo import estimate_channel, refine_frequency

__all__ = ["DecodeResult", "CoherentDecoder", "DecodeSession"]


@dataclass
class DecodeResult:
    """Outcome of decoding one target tag.

    Attributes:
        packet: the recovered packet, or None if the budget ran out.
        n_queries: collisions combined before the CRC passed.
        cfo_hz: the refined CFO used for compensation.
        identification_time_s: queries x query period — the Fig 16 metric.
    """

    packet: TransponderPacket | None
    n_queries: int
    cfo_hz: float
    query_period_s: float = QUERY_PERIOD_S

    @property
    def success(self) -> bool:
        return self.packet is not None

    @property
    def identification_time_s(self) -> float:
        return self.n_queries * self.query_period_s

    @property
    def identification_time_ms(self) -> float:
        return self.identification_time_s * 1e3


class CoherentDecoder:
    """Combines repeated collision captures to decode one tag (§8)."""

    def __init__(self, sample_rate_hz: float, query_period_s: float = QUERY_PERIOD_S):
        self.sample_rate_hz = sample_rate_hz
        self.query_period_s = query_period_s
        self._modulator = OokModulator(sample_rate_hz=sample_rate_hz)

    def decode(
        self,
        captures: list[Waveform],
        target_cfo_hz: float,
        refine: bool = True,
        min_queries: int = 1,
    ) -> DecodeResult:
        """Decode by accumulating captures until the packet checks out.

        Args:
            captures: single-antenna captures, one per query, all aligned
                to their response start.
            target_cfo_hz: the target's spike frequency (from counting).
            refine: sub-bin refine the CFO on the first capture.
            min_queries: don't attempt demodulation before this many.

        Returns:
            A :class:`DecodeResult`; ``packet`` is None if all captures
            were consumed without a CRC pass.
        """
        if not captures:
            raise DecodingError("no captures supplied")
        cfo = target_cfo_hz
        if refine:
            cfo = refine_frequency(
                captures[0], cfo, span_hz=captures[0].sample_rate_hz / captures[0].n_samples / 2.0
            )
        accumulator = np.zeros(captures[0].n_samples, dtype=np.complex128)
        for j, capture in enumerate(captures, start=1):
            accumulator += self._compensated(capture, cfo)
            if j < min_queries:
                continue
            packet = self._try_demodulate(accumulator)
            if packet is not None:
                return DecodeResult(
                    packet=packet, n_queries=j, cfo_hz=cfo, query_period_s=self.query_period_s
                )
        return DecodeResult(
            packet=None, n_queries=len(captures), cfo_hz=cfo, query_period_s=self.query_period_s
        )

    # -- internals ---------------------------------------------------------------

    def _compensated(self, capture: Waveform, cfo_hz: float) -> np.ndarray:
        """One capture, CFO-removed and divided by its own channel estimate."""
        h = estimate_channel(capture, cfo_hz)
        if h == 0:
            raise DecodingError("zero channel estimate for target")
        t = capture.times()
        return capture.samples * np.exp(-2j * np.pi * cfo_hz * t) / h

    def _try_demodulate(self, accumulator: np.ndarray) -> TransponderPacket | None:
        """Matched-filter, Manchester-decode and CRC-check the average."""
        try:
            bits = self._modulator.demodulate_soft(accumulator, n_bits=PACKET_BITS)
            return TransponderPacket.from_bits(bits)
        except (CrcError, PacketError, ModulationError):
            return None


@dataclass
class DecodeSession:
    """Decode *every* tag in range from one shared stream of queries (§12.4).

    The paper notes that decoding all colliding tags costs no more air
    time than decoding one: the same collisions are recombined per target
    with different CFO/channel compensation. The session issues queries
    through a callable (e.g. ``StaticCollisionSimulator.query``) and feeds
    one shared capture list to a per-target decoder.

    Attributes:
        query_fn: ``query_fn(t_s) -> ReceivedCollision``.
        decoder: the coherent decoder to use.
        antenna_index: which antenna's capture stream to decode from.
    """

    query_fn: object
    decoder: CoherentDecoder
    antenna_index: int = 0
    captures: list[Waveform] = field(default_factory=list)
    _next_query_s: float = 0.0

    def _ensure_captures(self, n: int) -> None:
        while len(self.captures) < n:
            collision = self.query_fn(self._next_query_s)
            self._next_query_s += self.decoder.query_period_s
            self.captures.append(collision.antenna(self.antenna_index))

    def decode_target(self, target_cfo_hz: float, max_queries: int = 64) -> DecodeResult:
        """Decode one tag, issuing further queries only as needed.

        The capture budget grows geometrically; captures already issued
        (e.g. for a previous target) are reused for free.
        """
        n = 1
        while True:
            self._ensure_captures(n)
            result = self.decoder.decode(self.captures[:n], target_cfo_hz)
            if result.success or n >= max_queries:
                return result
            n = min(2 * n, max_queries)

    def decode_all(
        self, target_cfos_hz: list[float], max_queries: int = 64
    ) -> dict[float, DecodeResult]:
        """Decode every listed tag from the shared capture stream."""
        return {cfo: self.decode_target(cfo, max_queries) for cfo in target_cfos_hz}

    @property
    def total_air_time_s(self) -> float:
        """Air time consumed so far (queries issued x period)."""
        return len(self.captures) * self.decoder.query_period_s
