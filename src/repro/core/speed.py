"""Speed from repeated localization (§7).

A car's speed is the distance between two localizations divided by the
travel time. Position error is bounded by the hyperbola geometry
(footnote 11); timing error is the NTP synchronization between readers
("tens of ms"). §7 works the error budget for a 13-foot pole over two
lanes: at most 8.5 feet of position error, giving <= 5.5 % speed error at
20 mph and <= 6.8 % at 50 mph over a 360-foot baseline — both closed
forms are implemented here alongside the estimator itself.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import (
    ANTENNA_TILT_DEG,
    LANE_WIDTH_M,
    NTP_SYNC_SIGMA_S,
)
from ..errors import ConfigurationError

__all__ = [
    "max_position_error_m",
    "max_speed_error_fraction",
    "SpeedObservation",
    "SpeedEstimate",
    "SpeedEstimator",
]


def max_position_error_m(
    pole_height_m: float,
    n_lanes_same_direction: int,
    lane_width_m: float = LANE_WIDTH_M,
    alpha_deg: float = ANTENNA_TILT_DEG,
) -> float:
    """Footnote 11: worst-case along-road position error from one AoA.

    ``(sqrt(b^2 + (l w)^2) - b) / tan(alpha)`` where b is the antenna
    height, l the number of lanes in the travel direction, w the lane
    width, and alpha the worst usable spatial angle (60°). With b = 13 ft
    and two 12-ft lanes this evaluates to ~8.5 ft, the paper's number.
    """
    if pole_height_m <= 0 or n_lanes_same_direction < 1 or lane_width_m <= 0:
        raise ConfigurationError("invalid geometry for the position error bound")
    across = n_lanes_same_direction * lane_width_m
    alpha = np.deg2rad(alpha_deg)
    if np.tan(alpha) <= 0:
        raise ConfigurationError(f"alpha must be in (0, 90) degrees, got {alpha_deg}")
    return float((np.hypot(pole_height_m, across) - pole_height_m) / np.tan(alpha))


def max_speed_error_fraction(
    speed_m_s: float,
    baseline_m: float,
    position_error_m: float,
    sync_error_s: float,
) -> float:
    """§7: worst-case relative speed error over a two-pole baseline.

    First-order budget: both endpoints may each be off by the position
    error (same sign worst case) and the interval by the synchronization
    error, so ``dv/v <= (2 e_x + v e_t) / D``. Grows with speed — the
    sync term — matching the paper's 5.5 % (20 mph) to 6.8 % (50 mph).
    """
    if speed_m_s <= 0 or baseline_m <= 0:
        raise ConfigurationError("speed and baseline must be positive")
    return float((2.0 * position_error_m + speed_m_s * abs(sync_error_s)) / baseline_m)


@dataclass(frozen=True)
class SpeedObservation:
    """One localization event: where and when a station saw the car."""

    position_m: np.ndarray
    timestamp_s: float
    station: str = ""


@dataclass(frozen=True)
class SpeedEstimate:
    """The result of pairing two observations."""

    speed_m_s: float
    distance_m: float
    elapsed_s: float

    @property
    def speed_mph(self) -> float:
        return self.speed_m_s * 2.2369362920544


@dataclass
class SpeedEstimator:
    """Pairs observations from two pole stations into a speed estimate.

    Attributes:
        min_elapsed_s: guards against degenerate pairs (clock jitter can
            make near-simultaneous observations explode the ratio).
        along_road_only: measure displacement along x (the travel
            direction) rather than Euclidean — matches §7, where speed is
            ``(x2 - x1) / delay``.
    """

    min_elapsed_s: float = 0.2
    along_road_only: bool = True

    def estimate(self, first: SpeedObservation, second: SpeedObservation) -> SpeedEstimate:
        """Speed between two timestamped localizations."""
        elapsed = second.timestamp_s - first.timestamp_s
        if abs(elapsed) < self.min_elapsed_s:
            raise ConfigurationError(
                f"observations only {elapsed * 1e3:.1f} ms apart; too close to divide"
            )
        delta = np.asarray(second.position_m, dtype=np.float64) - np.asarray(
            first.position_m, dtype=np.float64
        )
        distance = abs(float(delta[0])) if self.along_road_only else float(np.linalg.norm(delta))
        return SpeedEstimate(
            speed_m_s=distance / abs(elapsed), distance_m=distance, elapsed_s=abs(elapsed)
        )

    @staticmethod
    def expected_error_fraction(
        speed_m_s: float,
        baseline_m: float,
        position_error_m: float,
        sync_sigma_s: float = NTP_SYNC_SIGMA_S,
    ) -> float:
        """Convenience wrapper over :func:`max_speed_error_fraction`."""
        return max_speed_error_fraction(speed_m_s, baseline_m, position_error_m, sync_sigma_s)
