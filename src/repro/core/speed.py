"""Speed from repeated localization (§7).

A car's speed is the distance between two localizations divided by the
travel time. Position error is bounded by the hyperbola geometry
(footnote 11); timing error is the NTP synchronization between readers
("tens of ms"). §7 works the error budget for a 13-foot pole over two
lanes: at most 8.5 feet of position error, giving <= 5.5 % speed error at
20 mph and <= 6.8 % at 50 mph over a 360-foot baseline — both closed
forms are implemented here alongside the estimator itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..constants import (
    ANTENNA_TILT_DEG,
    LANE_WIDTH_M,
    NTP_SYNC_SIGMA_S,
)
from ..errors import ConfigurationError

__all__ = [
    "max_position_error_m",
    "max_speed_error_fraction",
    "SpeedObservation",
    "SpeedEstimate",
    "SpeedEstimator",
    "CrossPoleSpeedTracker",
]


def max_position_error_m(
    pole_height_m: float,
    n_lanes_same_direction: int,
    lane_width_m: float = LANE_WIDTH_M,
    alpha_deg: float = ANTENNA_TILT_DEG,
) -> float:
    """Footnote 11: worst-case along-road position error from one AoA.

    ``(sqrt(b^2 + (l w)^2) - b) / tan(alpha)`` where b is the antenna
    height, l the number of lanes in the travel direction, w the lane
    width, and alpha the worst usable spatial angle (60°). With b = 13 ft
    and two 12-ft lanes this evaluates to ~8.5 ft, the paper's number.
    """
    if pole_height_m <= 0 or n_lanes_same_direction < 1 or lane_width_m <= 0:
        raise ConfigurationError("invalid geometry for the position error bound")
    across = n_lanes_same_direction * lane_width_m
    alpha = np.deg2rad(alpha_deg)
    if np.tan(alpha) <= 0:
        raise ConfigurationError(f"alpha must be in (0, 90) degrees, got {alpha_deg}")
    return float((np.hypot(pole_height_m, across) - pole_height_m) / np.tan(alpha))


def max_speed_error_fraction(
    speed_m_s: float,
    baseline_m: float,
    position_error_m: float,
    sync_error_s: float,
) -> float:
    """§7: worst-case relative speed error over a two-pole baseline.

    First-order budget: both endpoints may each be off by the position
    error (same sign worst case) and the interval by the synchronization
    error, so ``dv/v <= (2 e_x + v e_t) / D``. Grows with speed — the
    sync term — matching the paper's 5.5 % (20 mph) to 6.8 % (50 mph).
    """
    if speed_m_s <= 0 or baseline_m <= 0:
        raise ConfigurationError("speed and baseline must be positive")
    return float((2.0 * position_error_m + speed_m_s * abs(sync_error_s)) / baseline_m)


@dataclass(frozen=True)
class SpeedObservation:
    """One localization event: where and when a station saw the car.

    ``frame`` names the coordinate frame ``position_m`` lives in. Two
    observations are only comparable within one frame — a city mesh
    gives every corridor its own frame (their global-axis layout gap is
    artifice, not road a car drove), so cross-frame pairs must rebase
    rather than difference positions. The default shared frame keeps
    single-street callers unchanged.
    """

    position_m: np.ndarray
    timestamp_s: float
    station: str = ""
    frame: str = ""


@dataclass(frozen=True)
class SpeedEstimate:
    """The result of pairing two observations."""

    speed_m_s: float
    distance_m: float
    elapsed_s: float

    @property
    def speed_mph(self) -> float:
        return self.speed_m_s * 2.2369362920544


@dataclass
class SpeedEstimator:
    """Pairs observations from two pole stations into a speed estimate.

    Attributes:
        min_elapsed_s: guards against degenerate pairs (clock jitter can
            make near-simultaneous observations explode the ratio).
        along_road_only: measure displacement along x (the travel
            direction) rather than Euclidean — matches §7, where speed is
            ``(x2 - x1) / delay``.
    """

    min_elapsed_s: float = 0.2
    along_road_only: bool = True

    def estimate(self, first: SpeedObservation, second: SpeedObservation) -> SpeedEstimate:
        """Speed between two timestamped localizations."""
        elapsed = second.timestamp_s - first.timestamp_s
        if abs(elapsed) < self.min_elapsed_s:
            raise ConfigurationError(
                f"observations only {elapsed * 1e3:.1f} ms apart; too close to divide"
            )
        delta = np.asarray(second.position_m, dtype=np.float64) - np.asarray(
            first.position_m, dtype=np.float64
        )
        distance = abs(float(delta[0])) if self.along_road_only else float(np.linalg.norm(delta))
        return SpeedEstimate(
            speed_m_s=distance / abs(elapsed), distance_m=distance, elapsed_s=abs(elapsed)
        )

    @staticmethod
    def expected_error_fraction(
        speed_m_s: float,
        baseline_m: float,
        position_error_m: float,
        sync_sigma_s: float = NTP_SYNC_SIGMA_S,
    ) -> float:
        """Convenience wrapper over :func:`max_speed_error_fraction`."""
        return max_speed_error_fraction(speed_m_s, baseline_m, position_error_m, sync_sigma_s)


@dataclass
class CrossPoleSpeedTracker:
    """Streams per-tag sightings into §7 cross-pole speed estimates.

    The §7 estimator pairs exactly two localizations; a deployment sees
    a *stream* of sightings — many rounds at one pole, then the next
    pole. The tracker keeps, per tag, the most recent fix (the anchor)
    and emits an estimate exactly when a sighting arrives from a
    *different* station than the anchor's: speed over the inter-pole
    baseline, from the cross-pole fix timestamps. Sightings at the
    anchor's own station only refresh the anchor (the latest fix at a
    pole is the closest to its cell boundary, so the baseline stays the
    true pole-to-pole distance, not pole-to-wherever-first-heard).

    This is the predictive-handoff trigger used by
    :class:`~repro.sim.city.mesh.CityMesh`: a tag whose fixes at two
    consecutive poles yield a speed has a predictable arrival time at
    the next pole, so its cache entry can be pushed ahead of it. The
    tracker is deliberately self-contained — it needs only
    :class:`SpeedObservation` streams, no mesh or corridor — so the
    trigger is testable against trajectory ground truth alone.

    Attributes:
        estimator: the pairing rule (defaults to §7 along-road speed).
        min_pair_elapsed_s: do not pair fixes closer in time than this.
            §7's error budget is ``(2 e_x + v e_t) / D``: over a short
            baseline the per-fix position error dominates the ratio
            (two fixes 0.2 s apart with meter-level §6 error can read
            tens of m/s for a 13 m/s car), so the tracker waits until
            the car has put real road between the fixes — the same
            reason the paper measures over a 360-foot baseline. Pairs
            that arrive too soon keep the anchor (see :meth:`observe`).
        max_speed_m_s: plausibility cap; a pair reading faster than
            this is discarded (and the anchor rebased) rather than
            stored — an outlier fix or a fingerprint misattribution,
            not a car. None disables.
        max_fix_age_s: an anchor older than this when the cross-pole
            sighting arrives is discarded instead of paired — a car that
            parked for an hour between poles has no meaningful speed
            over that interval.
        max_entries: bound on tracked tags; exceeding it drops the tags
            with the oldest anchors (city streams see every passing car
            once — an unbounded table would grow forever).
    """

    estimator: SpeedEstimator = field(default_factory=SpeedEstimator)
    min_pair_elapsed_s: float = 1.0
    max_speed_m_s: float | None = 60.0
    max_fix_age_s: float = 60.0
    max_entries: int | None = 4096
    _anchor: dict[int, SpeedObservation] = field(default_factory=dict, repr=False)
    _latest: dict[int, SpeedEstimate] = field(default_factory=dict, repr=False)

    def observe(
        self, tag_id: int, observation: SpeedObservation
    ) -> SpeedEstimate | None:
        """Feed one sighting; returns a fresh estimate when it pairs.

        Same-station sightings refresh the anchor. A sighting from a
        *different* station pairs with the anchor — unless it comes too
        soon (:attr:`SpeedEstimator.min_elapsed_s`), in which case the
        anchor is deliberately *kept*: neighboring poles' coverage
        overlaps, so a car in the overlap zone is sighted by both poles
        within one cadence tick, and replacing the anchor on every such
        ping-pong would keep the pair permanently too young to
        estimate. The anchor only moves to the new station once a pair
        is emitted (or the anchor has gone stale past
        ``max_fix_age_s``), so each pole crossing yields one estimate.
        """
        anchor = self._anchor.get(tag_id)
        if anchor is None or anchor.station == observation.station:
            self._anchor[tag_id] = observation
            self._trim()
            return None
        if anchor.frame != observation.frame:
            # Positions in different frames (e.g. two corridors of a
            # mesh) are not differenceable — the car crossed an
            # intersection, not the distance between the frames' layout
            # coordinates. Rebase and wait for the next in-frame pole.
            self._anchor[tag_id] = observation
            return None
        elapsed = observation.timestamp_s - anchor.timestamp_s
        if elapsed < max(self.estimator.min_elapsed_s, self.min_pair_elapsed_s):
            return None  # too short a baseline: keep the anchor, wait
        if elapsed > self.max_fix_age_s:
            self._anchor[tag_id] = observation  # stale anchor: rebase
            return None
        estimate = self.estimator.estimate(anchor, observation)
        self._anchor[tag_id] = observation
        if self.max_speed_m_s is not None and estimate.speed_m_s > self.max_speed_m_s:
            return None  # implausible pair (outlier fix / misattribution)
        self._latest[tag_id] = estimate
        return estimate

    def latest(self, tag_id: int) -> SpeedEstimate | None:
        """The most recent estimate for a tag, if any."""
        return self._latest.get(tag_id)

    def forget(self, tag_id: int) -> None:
        """Drop a tag's anchor and estimate (e.g. its directory entry
        was evicted — a stale anchor must not pair with a re-arrival)."""
        self._anchor.pop(tag_id, None)
        self._latest.pop(tag_id, None)

    def tracked(self) -> list[int]:
        """Every tag currently holding an anchor, sorted."""
        return sorted(self._anchor)

    def _trim(self) -> None:
        if self.max_entries is None:
            return
        while len(self._anchor) > max(1, int(self.max_entries)):
            victim = min(
                self._anchor,
                key=lambda t: (self._anchor[t].timestamp_s, t),
            )
            self.forget(victim)

    def __len__(self) -> int:
        return len(self._anchor)
