"""Counting transponders from collisions (§5).

The estimator: FFT the collision, find the CFO spikes, and — because two
tags occasionally land in the same 1.95 kHz bin — classify every spike as
holding one tag or more than one. A spike holding one tag counts as 1, a
spike holding several counts as 2 (the paper's rule: only
triples-or-more in one bin are miscounted, Eq 9).

Classification is harder than it looks on real collisions, because every
spike is surrounded by (a) the wideband OOK data of *all* tags and (b)
the leakage of *neighbouring resolved spikes*, which can sit only a few
bins away. The counter therefore:

1. detects spikes against a local (CFAR) floor,
2. refines each spike frequency to a fraction of a bin,
3. jointly least-squares fits the complex amplitudes of all detected
   tones over the full window,
4. **cancels the other tones** before applying the per-spike test, and
5. adapts its detection threshold to tag density: in sparse collisions
   the data floor is structured (a couple of chip streams) and only a
   high threshold rejects its excursions; in dense collisions the floor
   Gaussianizes (CLT over many tags) and a lower threshold plus a
   coherence-reality filter recovers the weak tags that matter there.

The reader's duty-cycled burst issues up to 10 queries per wake-up (§10),
so :meth:`CollisionCounter.count_multi` can also combine several captures:
the detection statistic becomes the *average* magnitude spectrum
(incoherent averaging suppresses data-floor variance; spikes persist),
and per-spike statistics concatenate across captures after aligning each
capture's random response phase. A single capture (``count``) reproduces
the paper's one-shot estimator.

Two per-spike tests are provided:

* ``method="coherence"`` (default) — cut the capture into Q disjoint
  sub-windows; a lone tag yields Q identical complex DFT values
  (coherence ~1); co-binned tags beat against each other (coherence
  drops, magnitudes disperse); a data-floor fluke decorrelates. The
  single/multiple decision compares the measured coherence against the
  value a lone tone at the same sub-window SNR would show.
* ``method="shift"`` — the paper's literal Eq 8 test: |FFT| over
  ``[0, W)`` versus ``[tau, tau+W)``; a lone tag's magnitude is
  shift-invariant, co-binned tags beat. Several shifts dodge the
  ``delta_f * tau ~ integer`` blind spot. (Tone cancellation is applied
  here too, otherwise resolved neighbours trip the test.)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from ..dsp.peaks import band_floors, find_peaks_in_magnitudes
from ..dsp.sfft import sparse_fft_peaks
from ..dsp.spectrum import fft_spectrum
from ..errors import ConfigurationError
from ..phy.waveform import Waveform
from ..utils import as_rng
from .cfo import DEFAULT_SEARCH_HI_HZ, DEFAULT_SEARCH_LO_HZ

__all__ = ["BinClass", "BinObservation", "CountEstimate", "CollisionCounter"]

# In-band sFFT tones weaker than this fraction of the strongest one are
# treated as data sidelobes, not carriers (see _sfft_probe_candidates).
_SFFT_STRONG_RATIO = 0.3


class BinClass(enum.Enum):
    """Classification of one detected spectral spike."""

    SINGLE = "single"
    MULTIPLE = "multiple"
    REJECTED = "rejected"


@dataclass(frozen=True)
class BinObservation:
    """Diagnostics for one candidate spike.

    Attributes:
        cfo_hz: refined spike frequency.
        amplitude: jointly fitted complex tone amplitude (h/2 scale, from
            the first capture).
        snr: detection magnitude over the local floor.
        gamma: post-cancellation sub-window amplitude-to-noise ratio.
        coherence: |mean| / mean|.| of the cancelled sub-window values.
        expected_single_coherence: what a lone tone at this gamma shows.
        magnitude_dispersion: std/mean of the sub-window magnitudes.
        label: the verdict.
    """

    cfo_hz: float
    amplitude: complex
    snr: float
    gamma: float
    coherence: float
    expected_single_coherence: float
    magnitude_dispersion: float
    label: BinClass

    @property
    def contributes(self) -> int:
        """How many tags this spike adds to the count estimate."""
        if self.label is BinClass.SINGLE:
            return 1
        if self.label is BinClass.MULTIPLE:
            return 2
        return 0


@dataclass
class CountEstimate:
    """The counter's output for one collision (or burst of collisions)."""

    count: int
    observations: list[BinObservation] = field(default_factory=list)
    dense_mode: bool = False
    n_captures: int = 1

    @property
    def n_single(self) -> int:
        return sum(1 for o in self.observations if o.label is BinClass.SINGLE)

    @property
    def n_multiple(self) -> int:
        return sum(1 for o in self.observations if o.label is BinClass.MULTIPLE)

    @property
    def n_rejected(self) -> int:
        return sum(1 for o in self.observations if o.label is BinClass.REJECTED)

    def cfos_hz(self) -> np.ndarray:
        """CFOs of the accepted spikes (ascending)."""
        return np.array(
            sorted(o.cfo_hz for o in self.observations if o.label is not BinClass.REJECTED)
        )


@dataclass
class CollisionCounter:
    """The §5 estimator.

    Attributes:
        min_snr_db: sparse-regime spike detection threshold over the local
            (CFAR) floor for a single capture. 13 dB holds the false-alarm
            rate of a ~615-bin Rayleigh search to a few percent per
            collision, and the structured low-density data floor demands
            no less.
        dense_snr_db / probe_snr_db / dense_trigger: a cheap probe
            detection at ``probe_snr_db`` measures band crowding; at or
            above ``dense_trigger`` candidates the scene is dense and the
            real pass runs at ``dense_snr_db`` with the coherence-reality
            filter enabled — in dense collisions the floor is Gaussian
            (CLT over many chip streams) so the filter is reliable, and
            the weak tags it recovers dominate the error budget.
        multi_capture_relief_db: detection thresholds drop by this much
            per doubling of averaged captures (incoherent averaging
            tightens the floor tail), floored at ``min_multi_snr_db``.
        method: "coherence" (default) or "shift" (the paper's literal test).
        n_subwindows: disjoint sub-windows per capture for the coherence
            statistic.
        slack_base / slack_gamma / min_slack: the single/multiple coherence
            threshold is ``C_expected(gamma)`` minus a slack that widens
            for noisy spikes and never shrinks below ``min_slack``.
        dispersion_base / dispersion_gamma: the companion magnitude test —
            a lone tone disperses ~``1/(sqrt(2) gamma)``; beyond
            ``dispersion_base + dispersion_gamma / gamma`` the spike is
            beating (two tags whose phases start aligned modulate the
            magnitude while keeping the composite phase — invisible to
            coherence alone).
        accept_gamma: candidates whose jointly-fitted amplitude is below
            this multiple of the local floor are rejected as artifacts
            (sidelobe skirts of strong tones, data-floor flukes).
        reality_coherence / reality_gamma: dense-mode-only rejection: a
            spike below both is a floor fluke, not a tag.
        merge_bins: candidates refined to within this many bins of each
            other are merged before fitting (keeps the basis conditioned).
        shift_samples: window offsets for the "shift" method.
        shift_tolerance: noise-independent floor of the shift test's
            relative-magnitude-change threshold.
        reuse_probe_spectra: compute each burst's per-capture spectra,
            averaged magnitudes and CFAR floors once and share them
            between the density probe and the decision pass (same
            captures -> same spectra -> same floor). Off reproduces the
            recompute-everything behavior, kept for the throughput
            ablation benchmark; the outputs are identical either way.
        probe: how the density probe counts band crowding —
            ``"dense"`` (default: CFAR peak detection on the averaged
            magnitude spectrum at ``probe_snr_db``, the bit-exact
            baseline) or ``"sfft"`` (the paper's §10 sparse-FFT
            recovery on the first capture: aliasing bucketization +
            phase-offset location, sub-linear in the capture length).
            The probe only picks the regime (sparse vs dense detection
            threshold); the decision pass itself is identical under
            both, so the two probes disagree only when their candidate
            counts straddle ``dense_trigger``.
        sfft_max_tones / sfft_seed: the sparse probe's recovery budget
            and its dedicated shift-randomness seed (a fresh seeded
            stream per probe call keeps ``count_multi`` deterministic
            and stateless).
        batch_fit: solve the per-burst joint tone fit as one stacked
            multi-column least squares when the captures share a time
            base (they do whenever a burst re-queries the same scene),
            instead of one ``lstsq`` per capture. Bit-exact either way
            (LAPACK solves multi-RHS columns independently); off is the
            per-capture loop, kept for the throughput ablation.
        obs: nullable observability hook (see :mod:`repro.obs`): counts
            passes by regime and spike verdicts by label. Never affects
            the estimate.
    """

    min_snr_db: float = 15.0
    dense_snr_db: float = 10.0
    probe_snr_db: float = 13.0
    dense_trigger: int = 16
    multi_capture_relief_db: float = 1.5
    min_multi_snr_db: float = 7.5
    fingerprint_corr: float = 0.85
    fingerprint_parent_ratio: float = 3.0
    fingerprint_max_gamma: float = 8.0
    method: str = "coherence"
    n_subwindows: int = 8
    slack_base: float = 0.03
    slack_gamma: float = 0.30
    min_slack: float = 0.055
    max_slack: float = 0.35
    dispersion_base: float = 0.04
    dispersion_gamma: float = 2.2
    accept_gamma: float = 2.5
    reality_coherence: float = 0.75
    reality_gamma: float = 2.3
    merge_bins: float = 1.2
    shift_samples: tuple[int, ...] = (128, 320, 512)
    shift_tolerance: float = 0.18
    search_lo_hz: float = DEFAULT_SEARCH_LO_HZ
    search_hi_hz: float = DEFAULT_SEARCH_HI_HZ
    reuse_probe_spectra: bool = True
    probe: str = "dense"
    sfft_max_tones: int = 24
    sfft_seed: int = 2015
    batch_fit: bool = True
    obs: object = None

    def __post_init__(self) -> None:
        if self.method not in ("coherence", "shift"):
            raise ConfigurationError(f"unknown method {self.method!r}")
        if self.probe not in ("dense", "sfft"):
            raise ConfigurationError(f"unknown probe {self.probe!r}")
        if self.n_subwindows < 3:
            raise ConfigurationError("need at least 3 sub-windows")
        if self.dense_snr_db > self.min_snr_db:
            raise ConfigurationError("dense threshold must not exceed the sparse one")

    # -- public API -------------------------------------------------------------

    def count(self, wave: Waveform) -> CountEstimate:
        """Estimate how many tags collided inside one capture."""
        return self.count_multi([wave])

    def count_multi(self, waves: list[Waveform]) -> CountEstimate:
        """Estimate the tag count from one burst of repeated queries.

        All captures must view the same (static over the ~10 ms burst)
        scene; tags keep their CFOs but re-randomize their phases, which
        the per-spike statistics align out.
        """
        if not waves:
            raise ConfigurationError("need at least one capture")
        # Multi-capture averaging only suppresses *cross-tag* interference
        # (phases re-randomize per response); each tag's own data spectrum
        # repeats identically (same bits every response). The sparse-regime
        # floor is dominated by the latter, so relief applies only to the
        # dense pass, where cross terms dominate.
        relief = self.multi_capture_relief_db * np.log2(len(waves))
        dense_thr = max(self.min_multi_snr_db, self.dense_snr_db - relief)
        # The probe and the decision pass scan the same burst: spectra,
        # averaged magnitudes and the CFAR floor depend only on the
        # captures, so they are computed once and shared (the per-round
        # hot path of the city event engine runs through here).
        shared = self._spectral_state(waves) if self.reuse_probe_spectra else None
        # Regime probe: the raw candidate count at a permissive threshold
        # cleanly separates sparse scenes (few tags + structured-floor
        # flukes) from dense ones (many tags, Gaussianized floor).
        dense = self._probe_candidates(waves, shared) >= self.dense_trigger
        if self.obs is not None:
            self.obs.count("count.pass", regime="dense" if dense else "sparse")
        if dense:
            return self._count_pass(waves, dense_thr, dense_mode=True, shared=shared)
        return self._count_pass(waves, self.min_snr_db, dense_mode=False, shared=shared)

    def _spectral_state(self, waves: list[Waveform]):
        """(spectra, averaged magnitudes, band CFAR floors) of one burst."""
        spectra = [fft_spectrum(w) for w in waves]
        n_bins = min(s.n_bins for s in spectra)
        avg_mag = np.mean([s.magnitude()[:n_bins] for s in spectra], axis=0)
        floors = band_floors(
            avg_mag, spectra[0].bin_hz, self.search_lo_hz, self.search_hi_hz
        )
        return spectra, avg_mag, floors

    def _probe_candidates(self, waves: list[Waveform], shared=None) -> int:
        """Candidate spike count at the permissive probe threshold."""
        if self.probe == "sfft":
            return self._sfft_probe_candidates(waves)
        spectra, avg_mag, floors = (
            shared if shared is not None else self._spectral_state(waves)
        )
        peaks = find_peaks_in_magnitudes(
            avg_mag,
            spectra[0].bin_hz,
            self.search_lo_hz,
            self.search_hi_hz,
            min_snr_db=self.probe_snr_db,
            floors=floors,
        )
        return len(peaks)

    def _sfft_probe_candidates(self, waves: list[Waveform]) -> int:
        """Band crowding via §10 sparse-FFT recovery on the first capture.

        The probe only has to rank the scene against ``dense_trigger``,
        so it runs the exactly-sparse recovery with a bounded tone
        budget and counts how many recovered tones land inside the CFO
        search band. Shift randomness comes from a stream seeded fresh
        per call (``sfft_seed``): deterministic, and no draw ever leaks
        into the burst's main rng stream.
        """
        wave = waves[0]
        n = wave.n_samples
        n_buckets = 8
        while n_buckets < 8 * self.sfft_max_tones:
            n_buckets *= 2
        n_buckets = min(n_buckets, n)
        usable = (n // n_buckets) * n_buckets
        if usable == 0:
            return 0
        tones = sparse_fft_peaks(
            wave.samples[:usable],
            max_tones=self.sfft_max_tones,
            n_buckets=n_buckets,
            rng=as_rng(self.sfft_seed),
            # A density probe only ranks the scene against dense_trigger:
            # no full-FFT widening fallback, and a raised bucket floor
            # (tones this weak cannot clear _SFFT_STRONG_RATIO anyway)
            # keeps the candidate set — and so the verification cost —
            # proportional to the real carrier population.
            widen=False,
            magnitude_floor_ratio=0.15,
            probe_samples=None,
        )
        in_band = []
        for tone in tones:
            freq_hz = tone.freq_hz(wave.sample_rate_hz, usable)
            if freq_hz > wave.sample_rate_hz / 2.0:
                freq_hz -= wave.sample_rate_hz
            if self.search_lo_hz <= freq_hz <= self.search_hi_hz:
                in_band.append(abs(tone.amplitude))
        if not in_band:
            return 0
        # Each tag's OOK data spectrum puts sinc sidelobes around its
        # carrier; the recovered tone list includes the strongest of
        # them. Carriers are mutually comparable while sidelobes sit
        # well below, so only tones within _SFFT_STRONG_RATIO of the
        # strongest in-band tone count toward the density estimate.
        top = max(in_band)
        return sum(1 for a in in_band if a >= _SFFT_STRONG_RATIO * top)

    # -- one detection/classification pass ----------------------------------------

    def _count_pass(
        self, waves: list[Waveform], snr_db: float, dense_mode: bool, shared=None
    ) -> CountEstimate:
        spectra, avg_mag, floors = (
            shared if shared is not None else self._spectral_state(waves)
        )
        bin_hz = spectra[0].bin_hz
        raw_peaks = find_peaks_in_magnitudes(
            avg_mag,
            bin_hz,
            self.search_lo_hz,
            self.search_hi_hz,
            min_snr_db=snr_db,
            floors=floors,
        )
        if not raw_peaks:
            return CountEstimate(
                count=0, observations=[], dense_mode=dense_mode, n_captures=len(waves)
            )

        refined_freqs = self._refine_multi_batch(
            waves, np.array([p.freq_hz for p in raw_peaks]), bin_hz / 2.0
        )
        refined = [
            (float(freq), p.snr, p.floor)
            for freq, p in zip(refined_freqs, raw_peaks)
        ]
        refined = self._merge_candidates(refined, bin_hz)
        freqs = np.array([r[0] for r in refined])
        snrs = np.array([r[1] for r in refined])
        # Normalized local floors: detection floor is in raw-FFT units over
        # n_input samples; single-frequency probes below are 1/n normalized.
        floors_norm = np.array([r[2] for r in refined]) / spectra[0].n_input

        # Joint refinement: a close neighbour's skirt biases the initial
        # per-peak frequency estimate by hundreds of Hz, which then leaks
        # a beating residue through the cancellation. Re-refining each
        # tone on the neighbour-cancelled residual removes the bias.
        freqs = self._joint_refine(waves[0], freqs, bin_hz)

        per_capture = self._fit_tones_burst(waves, freqs)
        # Sub-window values per capture, other tones cancelled, phases
        # aligned on each capture's own fitted amplitude.
        aligned_values = self._aligned_subwindow_values(waves, freqs, per_capture)
        amplitudes = per_capture[0][0]
        mean_abs_amplitude = np.mean(
            [np.abs(amps) for amps, _ in per_capture], axis=0
        )
        # Fingerprinting is a sparse-regime tool: dense collisions have a
        # Gaussianized floor (the reality filter handles it) and many
        # candidates, which would inflate random-correlation rejections.
        fingerprinted = (
            {} if dense_mode else self._phase_fingerprints(per_capture, mean_abs_amplitude)
        )

        observations = []
        for k in range(freqs.size):
            # A candidate whose jointly-fitted amplitude collapses was a
            # sidelobe / floor artifact: its spectrum energy is already
            # explained by the other tones. Reject it before classifying.
            if mean_abs_amplitude[k] < self.accept_gamma * floors_norm[k]:
                label = BinClass.REJECTED
                stats = _stats(mean_abs_amplitude[k] / floors_norm[k], 0.0, 0.0, 0.0)
            elif k in fingerprinted:
                label = BinClass.REJECTED
                stats = _stats(
                    mean_abs_amplitude[k] / floors_norm[k], fingerprinted[k], 0.0, 0.0
                )
            elif self.method == "coherence":
                label, stats = self._classify_coherence(
                    aligned_values[k], floors_norm[k], len(waves), dense_mode
                )
            else:
                label, stats = self._classify_shift(
                    waves[0], k, freqs, per_capture[0][0], per_capture[0][1]
                )
            observations.append(
                BinObservation(
                    cfo_hz=float(freqs[k]),
                    amplitude=complex(amplitudes[k]),
                    snr=float(snrs[k]),
                    label=label,
                    **stats,
                )
            )
        count = sum(o.contributes for o in observations)
        if self.obs is not None:
            for obs_record in observations:
                self.obs.count("count.spike", label=obs_record.label.value)
        return CountEstimate(
            count=count,
            observations=observations,
            dense_mode=dense_mode,
            n_captures=len(waves),
        )

    def _phase_fingerprints(
        self,
        per_capture: list[tuple[np.ndarray, np.ndarray]],
        mean_abs_amplitude: np.ndarray,
    ) -> dict[int, float]:
        """Identify candidates that are data artifacts of a stronger tag.

        A tag transmits the same bits in every response, so a narrowband
        excursion of *its own data spectrum* inherits its per-response
        random phase: across K captures the excursion's fitted phase
        trajectory tracks the parent tag's trajectory. A real tag's
        trajectory is independent of every other tag's. With K >= 3
        captures, a weak candidate whose trajectory correlates strongly
        with a candidate ``fingerprint_parent_ratio`` times stronger is
        rejected. Returns {candidate index: correlation}.
        """
        k_captures = len(per_capture)
        if k_captures < 3:
            return {}
        amp_matrix = np.stack([amps for amps, _ in per_capture])  # (K, m)
        with np.errstate(invalid="ignore", divide="ignore"):
            phasors = amp_matrix / np.abs(amp_matrix)
        phasors = np.nan_to_num(phasors)
        rejected: dict[int, float] = {}
        m = amp_matrix.shape[1]
        for k in range(m):
            if mean_abs_amplitude[k] <= 0:
                continue
            for c in range(m):
                if c == k:
                    continue
                if mean_abs_amplitude[c] < self.fingerprint_parent_ratio * mean_abs_amplitude[k]:
                    continue
                corr = float(np.abs(np.mean(phasors[:, k] * phasors[:, c].conj())))
                if corr >= self.fingerprint_corr:
                    rejected[k] = corr
                    break
        return rejected

    def _joint_refine(
        self, wave: Waveform, freqs: np.ndarray, bin_hz: float
    ) -> np.ndarray:
        """One coordinate-descent pass of neighbour-cancelled refinement."""
        if freqs.size < 2:
            return freqs
        # Only peaks with a close neighbour re-refine; the joint fit that
        # feeds the cancellation is deferred until the first one, so
        # well-separated scenes (most occupied rounds) skip the tone
        # fit entirely.
        amplitudes = probes = None
        refined = freqs.copy()
        for k in range(freqs.size):
            # Only bother when a neighbour sits close enough to bias us.
            gaps = np.abs(np.delete(freqs, k) - freqs[k])
            if gaps.min() > 6.0 * bin_hz:
                continue
            if amplitudes is None:
                amplitudes, probes = self._fit_tones(wave, freqs)
            others = np.delete(np.arange(freqs.size), k)
            residual = wave.samples - (amplitudes[others][:, None] * probes[others].conj()).sum(axis=0)
            residual_wave = Waveform(residual, wave.sample_rate_hz, wave.t0_s)
            refined[k] = _parabolic_refine(residual_wave, freqs[k], bin_hz / 2.0)
        return refined

    def _refine_multi(self, waves: list[Waveform], freq_hz: float, span_hz: float) -> float:
        """Refine one tone frequency on the summed |DFT|^2 across captures."""
        return float(
            self._refine_multi_batch(waves, np.array([float(freq_hz)]), span_hz)[0]
        )

    def _refine_multi_batch(
        self, waves: list[Waveform], freqs_hz: np.ndarray, span_hz: float
    ) -> np.ndarray:
        """Refine every candidate's frequency in one vectorized sweep.

        As in :func:`~repro.core.cfo.refine_frequency`, each iteration's
        three probe frequencies share two complex exponentials
        (``probe(f +- span) = probe(f) * probe(+-span)``); on top of
        that, all P candidates iterate in lockstep (the span schedule is
        frequency-independent), so one iteration costs a single
        ``(P, N)`` demodulation per capture plus one shared shift
        exponential — instead of P separate Python-loop passes.
        Arithmetic is element-for-element the per-peak recursion, so the
        refined frequencies are bit-identical to the scalar loop; a
        candidate whose curvature denominator hits zero freezes (the
        scalar loop's ``break``) while the others keep iterating.
        """
        f = np.array(freqs_hz, dtype=np.float64)
        if f.size == 0:
            return f
        span = float(span_hz)
        times = [wave.times() for wave in waves]
        active = np.ones(f.size, dtype=bool)
        for _ in range(3):
            mags = np.zeros((3, f.size))
            for wave, t in zip(waves, times):
                y = wave.samples[None, :] * np.exp(
                    -2j * np.pi * f[:, None] * t[None, :]
                )
                shift = np.exp(-2j * np.pi * span * t)
                # Builtin abs (C hypot), not np.abs (npy_cabs): the two
                # differ by one ulp on some inputs, and bit-identity with
                # the per-peak recursion requires the former. P is small,
                # so the Python-level loop costs nothing next to the
                # (P, N) demodulation above.
                mags[0] += _abs_sq(np.mean(y * np.conj(shift)[None, :], axis=1))
                mags[1] += _abs_sq(np.mean(y, axis=1))
                mags[2] += _abs_sq(np.mean(y * shift[None, :], axis=1))
            denom = mags[0] - 2.0 * mags[1] + mags[2]
            active = active & (denom != 0.0)
            offset = np.zeros(f.size)
            offset[active] = 0.5 * (mags[0, active] - mags[2, active]) / denom[active]
            f = f + np.where(active, np.clip(offset, -1.0, 1.0) * span, 0.0)
            span /= 2.0
        return f

    def _merge_candidates(
        self, refined: list[tuple[float, float, float]], resolution_hz: float
    ) -> list[tuple[float, float, float]]:
        """Merge candidates whose refined frequencies nearly coincide.

        Refinement can walk two adjacent local maxima onto the same tone;
        fitting both would make the least-squares basis singular. Keep the
        higher-SNR member of any group closer than ``merge_bins`` bins.
        """
        kept: list[tuple[float, float, float]] = []
        for freq, snr, floor in sorted(refined, key=lambda r: -r[1]):
            if all(abs(freq - other[0]) > self.merge_bins * resolution_hz for other in kept):
                kept.append((freq, snr, floor))
        return sorted(kept)

    # -- tone model --------------------------------------------------------------

    def _fit_tones(
        self, wave: Waveform, freqs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Jointly fit complex amplitudes of all detected tones.

        Returns (amplitudes, probes) where ``probes[k] = exp(-j2pi f_k t)``
        (so ``probes[k] * samples`` demodulates tone k) and the model is
        ``samples ~= sum_k amplitudes[k] * conj(probes[k])``.
        """
        t = wave.times()
        probes = np.exp(-2j * np.pi * freqs[:, None] * t[None, :])
        basis = probes.conj().T  # (N, m)
        amplitudes, *_ = np.linalg.lstsq(basis, wave.samples, rcond=None)
        return amplitudes, probes

    def _fit_tones_burst(
        self, waves: list[Waveform], freqs: np.ndarray
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """:meth:`_fit_tones` for a whole burst, one stacked solve.

        Captures of one burst re-query the same static scene, so they
        share the time base (length, rate, start offset) and therefore
        the probe basis. Stacking their samples as the columns of a
        single multi-RHS least squares replaces K ``lstsq`` calls (and
        K basis constructions — the dominant cost, ``m*N`` complex
        exponentials each) with one. Up to 25 tones LAPACK's ``gelsd``
        solves multi-RHS columns through the same code path as a lone
        RHS, so each capture's amplitudes are bit-identical to its own
        per-capture solve; at 26+ columns the divide-and-conquer kernel
        (SMLSIZ = 25) blocks the RHS application differently and drifts
        by an ulp, so wider bases — and bursts whose captures disagree
        on the time base, or ``batch_fit=False``, the ablation — fall
        back to the per-capture loop.
        """
        first = waves[0]
        if (
            not self.batch_fit
            or len(waves) == 1
            or freqs.size > 25
            or any(
                w.n_samples != first.n_samples
                or w.sample_rate_hz != first.sample_rate_hz
                or w.t0_s != first.t0_s
                for w in waves[1:]
            )
        ):
            return [self._fit_tones(w, freqs) for w in waves]
        t = first.times()
        probes = np.exp(-2j * np.pi * freqs[:, None] * t[None, :])
        basis = probes.conj().T  # (N, m)
        stacked = np.stack([w.samples for w in waves], axis=1)  # (N, K)
        amplitudes, *_ = np.linalg.lstsq(basis, stacked, rcond=None)
        return [(amplitudes[:, k], probes) for k in range(len(waves))]

    def _aligned_subwindow_values(
        self,
        waves: list[Waveform],
        freqs: np.ndarray,
        per_capture: list[tuple[np.ndarray, np.ndarray]],
    ) -> np.ndarray:
        """(m, Q * n_captures) cancelled, phase-aligned sub-window DFTs.

        Per capture: ``X[k, q] = mean_q(samples * probes[k])`` minus every
        other tone's exactly-known leakage ``A_j * mean_q(conj(probes[j]) *
        probes[k])``. Each capture's values are then rotated by the
        conjugate phase of its own fitted amplitude so that a lone tag
        lines up across captures despite its per-response random phase.
        """
        q = self.n_subwindows
        chunks = []
        for wave, (amplitudes, probes) in zip(waves, per_capture):
            n = wave.n_samples
            length = n // q
            usable = length * q
            reshaped = probes[:, :usable].reshape(freqs.size, q, length)
            demod = (wave.samples[:usable] * probes[:, :usable]).reshape(
                freqs.size, q, length
            )
            x = demod.mean(axis=2)  # (m, Q)
            # G[k, j, q] = mean_q(probes[k] * conj(probes[j]))
            leak = np.einsum("kqn,jqn->kjq", reshaped, reshaped.conj()) / length
            x_cancelled = x - np.einsum("kjq,j->kq", leak, amplitudes)
            # The k == j term removed its own amplitude; add it back.
            x_cancelled = x_cancelled + amplitudes[:, None]
            phases = np.exp(-1j * np.angle(amplitudes))
            chunks.append(x_cancelled * phases[:, None])
        return np.concatenate(chunks, axis=1)

    # -- classifiers -------------------------------------------------------------

    @staticmethod
    def _expected_single_coherence(gamma: float, n_windows: int) -> float:
        """Coherence a lone tone shows at sub-window SNR ``gamma``.

        With per-window noise of unit scale and tone amplitude gamma:
        ``|mean| ~ sqrt(gamma^2 + 1/Q)`` and ``mean|.| ~ sqrt(gamma^2 + 1)``.
        """
        g2 = gamma * gamma
        return float(np.sqrt((g2 + 1.0 / n_windows) / (g2 + 1.0)))

    def _single_threshold(self, expected: float, gamma: float) -> float:
        """Coherence above which a spike may be a lone tone.

        The tolerance widens as the spike weakens (the coherence statistic
        itself gets noisier) and never falls below ``min_slack`` (residual
        imperfection of neighbour-tone cancellation), calibrated against
        measured single-tone coherence scatter.
        """
        slack = self.slack_base + self.slack_gamma / max(gamma, 0.3)
        slack = min(self.max_slack, max(self.min_slack, slack))
        return expected * (1.0 - slack)

    def _dispersion_threshold(self, gamma: float) -> float:
        """Magnitude dispersion above which a spike holds several tags.

        A lone tone's sub-window magnitudes are ``|A + n_q|`` with
        ``std/mean ~ 1/(sqrt(2) gamma)``; co-binned tags *beat*, and the
        beat shows in the magnitudes even when the composite phase stays
        put (tones that start aligned rotate the magnitude, not the
        phase — coherence alone is blind to them).
        """
        return self.dispersion_base + self.dispersion_gamma / max(gamma, 0.3)

    def _classify_coherence(
        self,
        values: np.ndarray,
        floor_norm: float,
        n_captures: int,
        dense_mode: bool,
    ) -> tuple[BinClass, dict]:
        mags = np.abs(values)
        mean_mag = float(mags.mean())
        sigma_q = max(floor_norm * np.sqrt(self.n_subwindows), 1e-300)
        gamma = mean_mag / sigma_q
        if mean_mag == 0.0:
            return BinClass.REJECTED, _stats(0.0, 0.0, 0.0, 0.0)
        coherence = float(np.abs(values.mean()) / mean_mag)
        dispersion = float(mags.std() / mean_mag)
        expected = self._expected_single_coherence(
            gamma, self.n_subwindows * n_captures
        )
        stats = _stats(gamma, coherence, expected, dispersion)
        if dense_mode and coherence < self.reality_coherence and gamma < self.reality_gamma:
            return BinClass.REJECTED, stats
        if coherence >= self._single_threshold(expected, gamma) and dispersion <= self._dispersion_threshold(gamma):
            return BinClass.SINGLE, stats
        return BinClass.MULTIPLE, stats

    def _classify_shift(
        self,
        wave: Waveform,
        k: int,
        freqs: np.ndarray,
        amplitudes: np.ndarray,
        probes: np.ndarray,
    ) -> tuple[BinClass, dict]:
        """The paper's Eq 8 test (with neighbour-tone cancellation)."""
        max_shift = max(self.shift_samples)
        window = wave.n_samples - max_shift
        if window <= 0:
            raise ConfigurationError("waveform shorter than the largest shift")

        def cancelled_window_mag(offset: int) -> float:
            demod = wave.samples[offset : offset + window] * probes[k, offset : offset + window]
            value = demod.mean()
            for j in range(freqs.size):
                if j == k:
                    continue
                cross = (
                    probes[k, offset : offset + window]
                    * probes[j, offset : offset + window].conj()
                )
                value -= amplitudes[j] * cross.mean()
            return abs(value)

        reference = cancelled_window_mag(0)
        if reference == 0.0:
            return BinClass.REJECTED, _stats(0.0, 0.0, 0.0, 0.0)
        worst = 0.0
        for shift in self.shift_samples:
            shifted = cancelled_window_mag(shift)
            worst = max(worst, abs(shifted - reference) / reference)
        if worst <= self.shift_tolerance:
            return BinClass.SINGLE, _stats(np.nan, 1.0, 1.0, worst)
        return BinClass.MULTIPLE, _stats(np.nan, 0.0, 1.0, worst)


def _abs_sq(values: np.ndarray) -> np.ndarray:
    """``abs(v) ** 2`` per element via the builtin (C ``hypot``) path."""
    return np.array([abs(v) ** 2 for v in values])


def _parabolic_refine(wave: Waveform, freq_hz: float, span_hz: float) -> float:
    """Iterated parabolic |DFT| maximization (local copy avoids the
    counting -> cfo -> counting import cycle for this one helper)."""
    t = wave.times()
    f, span = float(freq_hz), float(span_hz)
    for _ in range(3):
        # One (3, N) demodulation instead of three 1-D passes; builtin
        # abs keeps each probe magnitude bit-identical to the scalar
        # form (same hypot path, see _abs_sq).
        probes = np.exp(
            -2j * np.pi * (f + np.array([-span, 0.0, span]))[:, None] * t[None, :]
        )
        mags = [abs(v) for v in np.mean(wave.samples[None, :] * probes, axis=1)]
        denom = mags[0] - 2.0 * mags[1] + mags[2]
        if denom == 0.0:
            break
        offset = 0.5 * (mags[0] - mags[2]) / denom
        f += float(np.clip(offset, -1.0, 1.0)) * span
        span /= 2.0
    return f


def _stats(gamma: float, coherence: float, expected: float, dispersion: float) -> dict:
    return {
        "gamma": float(gamma),
        "coherence": float(coherence),
        "expected_single_coherence": float(expected),
        "magnitude_dispersion": float(dispersion),
    }
