"""Shared numeric helpers: RNG normalization, dB math, bit packing."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .errors import ConfigurationError

__all__ = [
    "as_rng",
    "db_to_power",
    "power_to_db",
    "db_to_amplitude",
    "amplitude_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
    "bits_to_int",
    "int_to_bits",
    "pack_bits",
    "unpack_bits",
    "prbs_bits",
    "wrap_angle",
]


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a numpy Generator from a seed, an existing Generator, or None.

    Every stochastic component in the library accepts ``rng=`` and funnels it
    through this helper so experiments are reproducible end to end.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def db_to_power(db: float) -> float:
    """Convert a power ratio in dB to a linear ratio."""
    return float(10.0 ** (db / 10.0))


def power_to_db(ratio: float) -> float:
    """Convert a linear power ratio to dB."""
    if ratio <= 0:
        raise ConfigurationError(f"power ratio must be positive, got {ratio}")
    return float(10.0 * np.log10(ratio))


def db_to_amplitude(db: float) -> float:
    """Convert an amplitude ratio in dB to a linear ratio."""
    return float(10.0 ** (db / 20.0))


def amplitude_to_db(ratio: float) -> float:
    """Convert a linear amplitude ratio to dB."""
    if ratio <= 0:
        raise ConfigurationError(f"amplitude ratio must be positive, got {ratio}")
    return float(20.0 * np.log10(ratio))


def dbm_to_watts(dbm: float) -> float:
    """Convert dBm to watts."""
    return float(10.0 ** ((dbm - 30.0) / 10.0))


def watts_to_dbm(watts: float) -> float:
    """Convert watts to dBm."""
    if watts <= 0:
        raise ConfigurationError(f"power must be positive, got {watts}")
    return float(10.0 * np.log10(watts) + 30.0)


def bits_to_int(bits: Sequence[int] | np.ndarray) -> int:
    """Interpret a most-significant-bit-first bit sequence as an integer."""
    array = np.asarray(bits, dtype=np.uint8)
    if array.size == 0:
        return 0
    if array.size <= 64:
        value = 0
        for bit in array.tolist():
            if bit > 1:
                raise ConfigurationError(f"bit values must be 0 or 1, got {bit}")
            value = (value << 1) | bit
        return value
    if np.any(array > 1):
        bad = array[array > 1][0]
        raise ConfigurationError(f"bit values must be 0 or 1, got {bad}")
    padded = np.concatenate([np.zeros((-array.size) % 8, dtype=np.uint8), array])
    return int.from_bytes(np.packbits(padded).tobytes(), "big")


def int_to_bits(value: int, width: int) -> np.ndarray:
    """Encode ``value`` as ``width`` bits, most significant bit first."""
    value = int(value)  # numpy integers have no to_bytes
    if value < 0:
        raise ConfigurationError(f"value must be non-negative, got {value}")
    if value >= (1 << width):
        raise ConfigurationError(f"value {value} does not fit in {width} bits")
    n_bytes = (width + 7) // 8
    unpacked = np.unpackbits(np.frombuffer(value.to_bytes(n_bytes, "big"), dtype=np.uint8))
    return unpacked[8 * n_bytes - width :]


def pack_bits(fields: Iterable[tuple[int, int]]) -> np.ndarray:
    """Concatenate ``(value, width)`` fields into one MSB-first bit array."""
    parts = [int_to_bits(value, width) for value, width in fields]
    if not parts:
        return np.zeros(0, dtype=np.uint8)
    return np.concatenate(parts)


def unpack_bits(bits: np.ndarray, widths: Sequence[int]) -> list[int]:
    """Split an MSB-first bit array into integers of the given widths."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.size != sum(widths):
        raise ConfigurationError(
            f"bit array has {bits.size} bits but widths sum to {sum(widths)}"
        )
    values = []
    offset = 0
    for width in widths:
        values.append(bits_to_int(bits[offset : offset + width]))
        offset += width
    return values


def prbs_bits(n_bits: int, seed: int) -> np.ndarray:
    """Deterministic pseudo-random bit sequence from a 16-bit LFSR.

    Used to fill the factory-fixed packet field so two tags with different
    serial numbers never share payload bits. The LFSR is the maximal-length
    Fibonacci x^16 + x^14 + x^13 + x^11 + 1.
    """
    state = (seed & 0xFFFF) or 0xACE1
    out = np.empty(n_bits, dtype=np.uint8)
    for i in range(n_bits):
        bit = ((state >> 0) ^ (state >> 2) ^ (state >> 3) ^ (state >> 5)) & 1
        state = (state >> 1) | (bit << 15)
        out[i] = state & 1
    return out


def wrap_angle(radians: float | np.ndarray) -> float | np.ndarray:
    """Wrap an angle (or array of angles) to the interval (-pi, pi]."""
    wrapped = np.mod(np.asarray(radians) + np.pi, 2.0 * np.pi) - np.pi
    if np.isscalar(radians) or np.asarray(radians).ndim == 0:
        return float(wrapped)
    return wrapped
