"""Labelled counters, gauges, and histograms with deterministic snapshots.

A metric series is identified by ``(name, sorted label items)`` — e.g.
``air.query{kind=decode, station=p3}``. The registry stores plain
Python numbers; nothing here reads a clock or draws randomness, so a
snapshot is a pure function of what the simulation reported, and two
same-seed runs serialize byte-identically via :meth:`snapshot_json`.

Histograms bucket into a fixed 1-2-5 geometric ladder (1e-6 .. 1e6)
plus an overflow bucket, and track count/sum/min/max exactly.
"""

from __future__ import annotations

import json
from bisect import bisect_left

#: Upper bounds of the histogram buckets: a 1-2-5 ladder spanning
#: microseconds-to-megaseconds (or any other unit the caller uses).
BUCKET_BOUNDS = tuple(
    round(10.0**exp * mult, 9) for exp in range(-6, 7) for mult in (1.0, 2.0, 5.0)
)


def _series_key(name: str, labels: dict) -> tuple:
    return (name, tuple(sorted(labels.items())))


def render_key(name: str, labels: tuple) -> str:
    """``name{k=v, ...}`` — the human/JSON form of a series key."""
    if not labels:
        return name
    inner = ", ".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class _Histogram:
    __slots__ = ("count", "sum", "min", "max", "buckets")

    def __init__(self):
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None
        self.buckets = [0] * (len(BUCKET_BOUNDS) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self.buckets[bisect_left(BUCKET_BOUNDS, value)] += 1

    def merge(self, other: "_Histogram") -> None:
        self.count += other.count
        self.sum += other.sum
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)
        for i, n in enumerate(other.buckets):
            self.buckets[i] += n

    def summary(self) -> dict:
        out = {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": {},
        }
        for bound, n in zip(BUCKET_BOUNDS, self.buckets):
            if n:
                out["buckets"][f"le_{bound:g}"] = n
        if self.buckets[-1]:
            out["buckets"]["le_inf"] = self.buckets[-1]
        return out


class MetricsRegistry:
    """Counters, gauges, and histograms keyed by name + labels."""

    def __init__(self):
        self._counters: dict[tuple, float] = {}
        self._gauges: dict[tuple, float] = {}
        self._histograms: dict[tuple, _Histogram] = {}

    # -- recording -----------------------------------------------------
    def inc(self, name: str, n: float = 1, **labels) -> None:
        key = _series_key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + n

    def set_gauge(self, name: str, value: float, **labels) -> None:
        self._gauges[_series_key(name, labels)] = value

    def observe(self, name: str, value: float, **labels) -> None:
        key = _series_key(name, labels)
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = _Histogram()
        hist.observe(value)

    # -- aggregation ---------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's series into this one, in place.

        Worker shards each record into their own registry; the
        coordinator merges them after the run. Semantics per kind:
        counters and histograms add (series keys are already
        label-sorted tuples, so the union is order-independent);
        gauges are last-writer-wins, and merging shards in a fixed
        order keeps that deterministic — callers must sort shards
        before merging. The merged snapshot of shard registries
        equals the snapshot one shared registry would have produced,
        up to counter float-add ordering.
        """
        for key in sorted(other._counters):
            self._counters[key] = self._counters.get(key, 0) + other._counters[key]
        for key in sorted(other._gauges):
            self._gauges[key] = other._gauges[key]
        for key in sorted(other._histograms):
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = _Histogram()
            hist.merge(other._histograms[key])

    # -- reading -------------------------------------------------------
    def counter(self, name: str, **labels) -> float:
        """The current value of one counter series (0 if never touched)."""
        return self._counters.get(_series_key(name, labels), 0)

    def total(self, name: str) -> float:
        """Sum of a counter across every label combination."""
        return sum(v for (n, _), v in self._counters.items() if n == name)

    def snapshot(self) -> dict:
        """All series, sorted by rendered key — deterministic by design."""

        def table(store, value=lambda v: v):
            return {
                render_key(name, labels): value(v)
                for (name, labels), v in sorted(store.items())
            }

        return {
            "counters": table(self._counters),
            "gauges": table(self._gauges),
            "histograms": table(self._histograms, lambda h: h.summary()),
        }

    def snapshot_json(self) -> str:
        """Canonical serialization: byte-identical across same-seed runs."""
        return json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n"

    def write(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.snapshot_json())
