"""``python -m repro.obs.report`` — render a run's metrics and trace.

Reads the files a run exported (``MetricsRegistry.write`` /
``SpanTracer.write``, or ``examples/city_mesh.py --metrics/--trace``)
and prints a metrics table and a text timeline. ``--check`` validates
the Chrome ``trace_event`` schema and the snapshot shape instead of
rendering — the CI trace smoke runs in that mode.

Usage::

    python -m repro.obs.report --metrics metrics.json --trace trace.json
    python -m repro.obs.report --check --trace trace.json
"""

from __future__ import annotations

import argparse
import json
import sys

#: Phases a valid trace_event entry may carry (the subset the tracer
#: emits: complete spans, instants, and thread-name metadata).
_VALID_PHASES = {"X", "i", "M"}


def validate_trace(doc) -> list[str]:
    """Schema errors in a parsed Chrome trace document ([] = valid)."""
    errors = []
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["top level must be an object with a 'traceEvents' array"]
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' must be an array"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        for field in ("name", "ph", "pid", "tid"):
            if field not in event:
                errors.append(f"{where}: missing {field!r}")
        ph = event.get("ph")
        if ph not in _VALID_PHASES:
            errors.append(f"{where}: unknown phase {ph!r}")
        if ph in ("X", "i") and not isinstance(event.get("ts"), (int, float)):
            errors.append(f"{where}: missing numeric 'ts'")
        if ph == "X" and not isinstance(event.get("dur"), (int, float)):
            errors.append(f"{where}: complete span missing numeric 'dur'")
    return errors


def validate_metrics(doc) -> list[str]:
    """Shape errors in a parsed metrics snapshot ([] = valid)."""
    if not isinstance(doc, dict):
        return ["top level must be an object"]
    errors = []
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(doc.get(section), dict):
            errors.append(f"missing {section!r} table")
    return errors


def render_metrics(doc, out) -> None:
    for section in ("counters", "gauges"):
        table = doc.get(section, {})
        if not table:
            continue
        out.write(f"{section}:\n")
        width = max(len(k) for k in table)
        for key in sorted(table):
            value = table[key]
            shown = f"{value:g}" if isinstance(value, float) else str(value)
            out.write(f"  {key:<{width}}  {shown}\n")
    histograms = doc.get("histograms", {})
    if histograms:
        out.write("histograms:\n")
        for key in sorted(histograms):
            h = histograms[key]
            out.write(
                f"  {key}  count={h['count']} sum={h['sum']:g} "
                f"min={h['min']:g} max={h['max']:g}\n"
            )


def render_trace(doc, out, max_rows: int) -> None:
    events = [e for e in doc.get("traceEvents", []) if e.get("ph") in ("X", "i")]
    tracks = {
        e["tid"]: e["args"]["name"]
        for e in doc.get("traceEvents", [])
        if e.get("ph") == "M" and e.get("name") == "thread_name"
    }
    out.write(f"{len(events)} event(s) on {len(tracks)} track(s)\n")
    events.sort(key=lambda e: (e["ts"], e["tid"], e["name"]))
    clipped = len(events) - max_rows
    for event in events[:max_rows]:
        t_ms = event["ts"] / 1e3
        track = tracks.get(event["tid"], str(event["tid"]))
        suffix = (
            f"  [{event['dur'] / 1e3:.3f} ms]" if event.get("ph") == "X" else ""
        )
        out.write(f"{t_ms:12.3f} ms  {track:>10}  {event['name']}{suffix}\n")
    if clipped > 0:
        out.write(f"... {clipped} more event(s)\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report", description=__doc__.split("\n\n")[0]
    )
    parser.add_argument("--metrics", help="metrics snapshot JSON to render")
    parser.add_argument("--trace", help="Chrome trace_event JSON to render")
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate the file schemas instead of rendering",
    )
    parser.add_argument(
        "--max-rows", type=int, default=60, help="timeline rows to print"
    )
    args = parser.parse_args(argv)
    if not args.metrics and not args.trace:
        parser.error("nothing to do: pass --metrics and/or --trace")

    failures = 0
    if args.metrics:
        with open(args.metrics) as fh:
            metrics_doc = json.load(fh)
        errors = validate_metrics(metrics_doc)
        if args.check:
            for err in errors:
                sys.stderr.write(f"{args.metrics}: {err}\n")
            failures += len(errors)
            if not errors:
                n = sum(len(metrics_doc[s]) for s in ("counters", "gauges", "histograms"))
                print(f"{args.metrics}: valid metrics snapshot ({n} series)")
        else:
            render_metrics(metrics_doc, sys.stdout)
    if args.trace:
        with open(args.trace) as fh:
            trace_doc = json.load(fh)
        errors = validate_trace(trace_doc)
        if args.check:
            for err in errors:
                sys.stderr.write(f"{args.trace}: {err}\n")
            failures += len(errors)
            if not errors:
                n = len(trace_doc["traceEvents"])
                print(f"{args.trace}: valid trace ({n} trace_event entries)")
        else:
            render_trace(trace_doc, sys.stdout, args.max_rows)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
