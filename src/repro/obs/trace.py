"""Sim-time span tracer with Chrome ``trace_event`` export.

Spans are recorded against *simulation* time (seconds from the
scheduler epoch) — the tracer never reads a wall clock, so two
same-seed runs emit byte-identical trace files. Each ``track`` (one
per station, plus ``sim`` for the scheduler) becomes a thread row in
the exported JSON, which loads directly in Perfetto or
``chrome://tracing``.

Span discipline is LIFO per track: :meth:`begin`/:meth:`end` must nest
properly (enforced — a mismatched end raises :class:`TraceError`), or
use :meth:`span` for an already-closed interval and :meth:`instant`
for zero-duration marks.
"""

from __future__ import annotations

import json


class TraceError(RuntimeError):
    """Span discipline violation: unbalanced or time-reversed spans."""


class SpanTracer:
    def __init__(self):
        #: Completed events in record order, already in trace_event form.
        self._events: list[dict] = []
        #: Open ``begin`` frames per track: (name, t_s, labels).
        self._stacks: dict[str, list] = {}
        #: track name -> tid, assigned in first-use order.
        self._tracks: dict[str, int] = {}

    # -- recording -----------------------------------------------------
    def _tid(self, track: str) -> int:
        tid = self._tracks.get(track)
        if tid is None:
            tid = self._tracks[track] = len(self._tracks) + 1
        return tid

    def _event(self, ph, name, t_s, track, dur_s=None, labels=None) -> None:
        event = {
            "name": name,
            "ph": ph,
            "ts": round(t_s * 1e6, 3),  # trace_event timestamps are µs
            "pid": 1,
            "tid": self._tid(track),
            "cat": track,
        }
        if dur_s is not None:
            event["dur"] = round(dur_s * 1e6, 3)
        if labels:
            event["args"] = {k: labels[k] for k in sorted(labels)}
        if ph == "i":
            event["s"] = "t"  # instant scope: thread
        self._events.append(event)

    def begin(self, name: str, t_s: float, *, track: str = "sim", **labels) -> None:
        self._stacks.setdefault(track, []).append((name, float(t_s), labels))

    def end(self, t_s: float, *, track: str = "sim") -> None:
        stack = self._stacks.get(track)
        if not stack:
            raise TraceError(f"end() on track {track!r} with no open span")
        name, start_s, labels = stack.pop()
        if t_s < start_s:
            raise TraceError(
                f"span {name!r} on {track!r} ends at {t_s} before start {start_s}"
            )
        self._event("X", name, start_s, track, dur_s=t_s - start_s, labels=labels)

    def span(
        self, name: str, start_s: float, end_s: float, *, track: str = "sim", **labels
    ) -> None:
        if end_s < start_s:
            raise TraceError(
                f"span {name!r} on {track!r} ends at {end_s} before start {start_s}"
            )
        self._event("X", name, start_s, track, dur_s=end_s - start_s, labels=labels)

    def instant(self, name: str, t_s: float, *, track: str = "sim", **labels) -> None:
        self._event("i", name, t_s, track, labels=labels)

    # -- reading -------------------------------------------------------
    def open_depth(self, track: str = "sim") -> int:
        return len(self._stacks.get(track, ()))

    @property
    def events(self) -> list[dict]:
        return list(self._events)

    def to_chrome(self) -> dict:
        """The exported document: thread-name metadata + all events."""
        for track, stack in self._stacks.items():
            if stack:
                raise TraceError(
                    f"export with {len(stack)} unclosed span(s) on track {track!r}"
                )
        metadata = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": track},
            }
            for track, tid in sorted(self._tracks.items(), key=lambda kv: kv[1])
        ]
        return {"traceEvents": metadata + self._events, "displayTimeUnit": "ms"}

    def to_json(self) -> str:
        """Canonical serialization: byte-identical across same-seed runs."""
        return json.dumps(self.to_chrome(), indent=2, sort_keys=True) + "\n"

    def write(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())

    def timeline(self, max_rows: int = 60) -> str:
        """A text rendering of the recorded spans, in time order."""
        rows = []
        for event in sorted(
            self._events, key=lambda e: (e["ts"], e["tid"], e["name"])
        ):
            t_ms = event["ts"] / 1e3
            track = event["cat"]
            if event["ph"] == "X":
                dur_ms = event.get("dur", 0.0) / 1e3
                rows.append(
                    f"{t_ms:12.3f} ms  {track:>10}  {event['name']}"
                    f"  [{dur_ms:.3f} ms]"
                )
            else:
                rows.append(f"{t_ms:12.3f} ms  {track:>10}  {event['name']}")
        clipped = len(rows) - max_rows
        if clipped > 0:
            rows = rows[:max_rows] + [f"... {clipped} more event(s)"]
        header = f"{len(self._events)} event(s) on {len(self._tracks)} track(s)"
        return "\n".join([header] + rows)
