"""repro.obs — deterministic observability for the city stack.

The package bundles two sim-time instruments behind one facade:

* :class:`MetricsRegistry` — labelled counters, gauges, and histograms
  (``air.query{station=p3}``) that library code reports into.
* :class:`SpanTracer` — a sim-time span recorder exporting Chrome
  ``trace_event`` JSON (loadable in Perfetto / ``chrome://tracing``)
  plus a text timeline.

The contract (see ``docs/OBSERVABILITY.md``):

* **Nullable hook.** Library code takes ``obs=None`` and guards every
  report with ``if obs is not None`` — disabled observability is a
  no-op and must leave simulation results bit-identical.
* **Deterministic.** Everything recorded derives from sim time and
  seeded state only. Nothing in this package (or in any ``obs`` call
  site under ``src/``) may read the wall clock; two same-seed runs
  produce byte-identical snapshots and trace files. The ``obs-policy``
  and ``determinism`` analyzers enforce this.
* **No globals.** There is no module-level registry; an :class:`Obs`
  is constructed at the entry point (example, benchmark, test) and
  threaded through ``obs=`` parameters.

``python -m repro.obs.report`` renders a run's exported metrics
snapshot and trace (see :mod:`repro.obs.report`).
"""

from __future__ import annotations

from .metrics import MetricsRegistry
from .trace import SpanTracer, TraceError

__all__ = ["MetricsRegistry", "Obs", "SpanTracer", "TraceError"]


class Obs:
    """The nullable observability hook: registry + optional tracer.

    An ``Obs`` may carry bound labels (``obs.labeled(station="p3")``)
    that are merged into every metric it reports; the labelled view
    shares the underlying registry and tracer, so a corridor can hand
    each station a station-scoped hook while all evidence lands in one
    snapshot.
    """

    __slots__ = ("metrics", "tracer", "_labels")

    def __init__(self, *, metrics=None, tracer=None, trace=False, labels=None):
        self.metrics = MetricsRegistry() if metrics is None else metrics
        if tracer is None and trace:
            tracer = SpanTracer()
        self.tracer = tracer
        self._labels = dict(labels) if labels else {}

    # -- labelled views ------------------------------------------------
    def labeled(self, **labels) -> "Obs":
        """A view sharing this registry/tracer with ``labels`` bound."""
        merged = dict(self._labels)
        merged.update(labels)
        return Obs(metrics=self.metrics, tracer=self.tracer, labels=merged)

    @property
    def labels(self) -> dict:
        return dict(self._labels)

    # -- metrics -------------------------------------------------------
    def count(self, name: str, n: float = 1, **labels) -> None:
        self.metrics.inc(name, n, **{**self._labels, **labels})

    def gauge(self, name: str, value: float, **labels) -> None:
        self.metrics.set_gauge(name, value, **{**self._labels, **labels})

    def observe(self, name: str, value: float, **labels) -> None:
        self.metrics.observe(name, value, **{**self._labels, **labels})

    # -- sim-time tracing ----------------------------------------------
    def _track(self, track):
        if track is not None:
            return track
        return str(self._labels.get("station", "sim"))

    def span(self, name: str, start_s: float, end_s: float, *, track=None, **labels):
        if self.tracer is not None:
            self.tracer.span(
                name, start_s, end_s, track=self._track(track),
                **{**self._labels, **labels},
            )

    def begin(self, name: str, t_s: float, *, track=None, **labels) -> None:
        if self.tracer is not None:
            self.tracer.begin(
                name, t_s, track=self._track(track), **{**self._labels, **labels}
            )

    def end(self, t_s: float, *, track=None) -> None:
        if self.tracer is not None:
            self.tracer.end(t_s, track=self._track(track))

    def instant(self, name: str, t_s: float, *, track=None, **labels) -> None:
        if self.tracer is not None:
            self.tracer.instant(
                name, t_s, track=self._track(track), **{**self._labels, **labels}
            )
