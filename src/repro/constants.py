"""Physical and protocol constants of the Caraoke system.

Every number here is stated in the paper; the section reference is given
next to each constant. Simulation defaults that the paper does not pin down
(e.g. the complex-baseband sample rate) are marked ``[sim]`` and chosen so
that the paper's derived quantities (FFT resolution, bin count) come out
exactly as printed.
"""

from __future__ import annotations

import math

# --------------------------------------------------------------------------
# Radio band (§3)
# --------------------------------------------------------------------------

#: Speed of light [m/s].
SPEED_OF_LIGHT_M_S = 299_792_458.0

#: Nominal e-toll carrier frequency [Hz] (§3: "both transponder and reader
#: work at 915MHz").
NOMINAL_CARRIER_HZ = 915.0e6

#: Lowest transponder carrier frequency [Hz] (§3: carriers vary between
#: 914.3 MHz and 915.5 MHz).
CARRIER_MIN_HZ = 914.3e6

#: Highest transponder carrier frequency [Hz] (§3).
CARRIER_MAX_HZ = 915.5e6

#: Reader local-oscillator frequency [Hz] [sim]. Placing the LO at the low
#: edge of the tag band maps tag CFOs onto [0, 1.2 MHz], matching Fig 4.
READER_LO_HZ = CARRIER_MIN_HZ

#: Maximum carrier frequency offset between any two tags [Hz] (§1, §5:
#: "CFOs that span 1.2MHz").
CFO_SPAN_HZ = CARRIER_MAX_HZ - CARRIER_MIN_HZ

#: Carrier wavelength [m] at the nominal frequency; ~32.8 cm, i.e. the
#: paper's λ/2 antenna spacing of 6.5 inches (§11).
WAVELENGTH_M = SPEED_OF_LIGHT_M_S / NOMINAL_CARRIER_HZ

#: Empirical carrier-frequency population of 155 real tags (§5 footnote 7):
#: mean 914.84 MHz, standard deviation 0.21 MHz, truncated to the band.
EMPIRICAL_CARRIER_MEAN_HZ = 914.84e6
EMPIRICAL_CARRIER_STD_HZ = 0.21e6
EMPIRICAL_POPULATION_SIZE = 155

# --------------------------------------------------------------------------
# Transponder air protocol (§3, Fig 2)
# --------------------------------------------------------------------------

#: Reader query duration [s] (Fig 2a: 20 µs sinewave).
QUERY_DURATION_S = 20e-6

#: Delay between the end of the query and the start of the tag response [s]
#: (Fig 2a: 100 µs).
TURNAROUND_S = 100e-6

#: Tag response duration [s] (Fig 2a / §5: 512 µs).
RESPONSE_DURATION_S = 512e-6

#: Bits per transponder response (Fig 2b: 256 bits including CRC).
PACKET_BITS = 256

#: Width of the agency-programmable field (Fig 2b: 47 bits).
PROGRAMMABLE_BITS = 47

#: Data rate implied by 256 bits in 512 µs [bit/s].
BIT_RATE_HZ = PACKET_BITS / RESPONSE_DURATION_S

#: Manchester chip rate [chip/s]: two chips per bit.
CHIP_RATE_HZ = 2.0 * BIT_RATE_HZ

#: Chip duration [s] (1 µs).
CHIP_DURATION_S = 1.0 / CHIP_RATE_HZ

#: Interval between successive queries while decoding IDs [s]
#: (§12.4: "queries are separated by 1ms").
QUERY_PERIOD_S = 1e-3

#: How long a reader must sense an idle medium before querying [s]
#: (§9: query 20 µs + turnaround 100 µs = 120 µs).
CSMA_LISTEN_S = QUERY_DURATION_S + TURNAROUND_S

#: Caraoke reader radio range [m] (§9 footnote 13: 100 feet).
READER_RANGE_M = 100 * 0.3048

# --------------------------------------------------------------------------
# Receiver / FFT parameters (§5)
# --------------------------------------------------------------------------

#: Complex-baseband sample rate [Hz] [sim]. 4 MHz covers the 1.2 MHz CFO
#: span plus OOK sidelobes, and makes the 512 µs response exactly 2048
#: samples, so the full-window FFT resolution is the paper's 1.953 kHz.
DEFAULT_SAMPLE_RATE_HZ = 4.0e6

#: Samples in one full response window at the default rate.
RESPONSE_SAMPLES = int(round(RESPONSE_DURATION_S * DEFAULT_SAMPLE_RATE_HZ))

#: FFT resolution over the full response window [Hz] (Eq 6: 1/512 µs).
FFT_RESOLUTION_HZ = 1.0 / RESPONSE_DURATION_S

#: Number of FFT bins the 1.2 MHz CFO span occupies (§5: N = 615).
CFO_BIN_COUNT = math.ceil(CFO_SPAN_HZ / FFT_RESOLUTION_HZ)

# --------------------------------------------------------------------------
# Antenna array (§6, §11, Fig 6)
# --------------------------------------------------------------------------

#: Antenna element separation [m] (§11: λ/2 = 6.5 inches).
ANTENNA_SPACING_M = WAVELENGTH_M / 2.0

#: Tilt of the antenna pair plane relative to the road [deg] (§12.2: the
#: pair used for AoA makes a 60° angle with the plane of the road).
ANTENNA_TILT_DEG = 60.0

#: Spatial-angle band within which a triangle pair is considered usable
#: (§6: "the spatial angle is always close to 90° (i.e., between 60° and
#: 120°)").
PAIR_USABLE_MIN_DEG = 60.0
PAIR_USABLE_MAX_DEG = 120.0

# --------------------------------------------------------------------------
# Deployment geometry (§7, §11, §12)
# --------------------------------------------------------------------------

FEET_PER_METER = 1.0 / 0.3048
METERS_PER_FOOT = 0.3048
MPH_PER_M_S = 2.2369362920544
M_S_PER_MPH = 1.0 / MPH_PER_M_S

#: Pole height used in the experiments [m] (§11: 12.5 feet).
EXPERIMENT_POLE_HEIGHT_M = 12.5 * METERS_PER_FOOT

#: Pole height used in the §7 worked error example [m] (13 feet).
ANALYSIS_POLE_HEIGHT_M = 13.0 * METERS_PER_FOOT

#: Standard lane width [m] (§7 footnote 11: typically 12 feet).
LANE_WIDTH_M = 12.0 * METERS_PER_FOOT

#: Light-pole separation used in the §7 speed analysis [m] (~360 feet).
SPEED_BASELINE_M = 360.0 * METERS_PER_FOOT

#: Pole separation used in the §12.3 speed experiments [m] (200 feet).
SPEED_EXPERIMENT_BASELINE_M = 200.0 * METERS_PER_FOOT

#: NTP synchronization error between readers [s] (§6/§7: "tens of ms").
NTP_SYNC_SIGMA_S = 10e-3

# --------------------------------------------------------------------------
# Reader hardware power model (§10, §12.5)
# --------------------------------------------------------------------------

#: Power drawn in active mode, modem excluded [W] (§12.5: 900 mW).
ACTIVE_POWER_W = 0.900

#: Power drawn in sleep mode [W] (§12.5: 69 µW).
SLEEP_POWER_W = 69e-6

#: Duration of one active burst [s] (§10: "average duration of the active
#: mode to last for 10ms, allowing for a maximum of 10 queries").
ACTIVE_BURST_S = 10e-3

#: Peak solar panel output [W] (§10: 6 cm × 7.5 cm panel, 500 mW).
SOLAR_PEAK_W = 0.500

#: Average reader power at one measurement per second [W] (§12.5: 9 mW).
PAPER_AVERAGE_POWER_W = 9e-3

# --------------------------------------------------------------------------
# SAR multipath rig (§12.2, Fig 14)
# --------------------------------------------------------------------------

#: Radius of the rotating antenna arm [m] (§12.2: 70 cm).
SAR_RADIUS_M = 0.70

#: Paper's measured LoS-to-second-path power ratio (§12.2: "27 times").
PAPER_MULTIPATH_RATIO = 27.0
