"""Line-of-sight propagation (Eq 2).

A pole-mounted outdoor reader has a dominant line-of-sight path to the
windshield tag (§6 footnote 8), so the base channel model is a single
complex coefficient: Friis amplitude decay and the carrier phase of the
path length. Multipath extensions live in :mod:`repro.channel.multipath`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import SPEED_OF_LIGHT_M_S, WAVELENGTH_M
from ..errors import ConfigurationError

__all__ = ["friis_amplitude", "propagation_delay_s", "LosChannel"]


def friis_amplitude(distance_m: float, wavelength_m: float = WAVELENGTH_M) -> float:
    """Free-space amplitude gain ``lambda / (4 pi d)`` for unit-gain antennas."""
    if distance_m <= 0:
        raise ConfigurationError(f"distance must be positive, got {distance_m}")
    return wavelength_m / (4.0 * np.pi * distance_m)


def propagation_delay_s(distance_m: float) -> float:
    """One-way propagation delay."""
    return distance_m / SPEED_OF_LIGHT_M_S


@dataclass(frozen=True)
class LosChannel:
    """Pure line-of-sight channel.

    ``coefficient`` returns the complex h of Eq 2: Friis amplitude times
    ``exp(-j 2 pi d / lambda)``. The phase term is the quantity AoA
    estimation consumes — the *difference* of path phases across a
    lambda/2 baseline encodes cos(alpha) (Eq 10).

    Attributes:
        wavelength_m: carrier wavelength.
        gain: scalar antenna/system amplitude gain product.
    """

    wavelength_m: float = WAVELENGTH_M
    gain: float = 1.0

    def coefficient(self, tx_m: np.ndarray, rx_m: np.ndarray) -> complex:
        """Complex channel from a transmit point to a receive point."""
        tx_m = np.asarray(tx_m, dtype=np.float64)
        rx_m = np.asarray(rx_m, dtype=np.float64)
        d = float(np.linalg.norm(rx_m - tx_m))
        amp = self.gain * friis_amplitude(d, self.wavelength_m)
        phase = -2.0 * np.pi * d / self.wavelength_m
        return complex(amp * np.exp(1j * phase))

    def coefficients(self, tx_m: np.ndarray, rx_positions_m: np.ndarray) -> np.ndarray:
        """Vectorized coefficients from one tx to (K, 3) receive positions."""
        rx_positions_m = np.atleast_2d(np.asarray(rx_positions_m, dtype=np.float64))
        d = np.linalg.norm(rx_positions_m - np.asarray(tx_m, dtype=np.float64), axis=1)
        if np.any(d <= 0):
            raise ConfigurationError("receive position coincides with transmitter")
        amp = self.gain * self.wavelength_m / (4.0 * np.pi * d)
        return amp * np.exp(-2j * np.pi * d / self.wavelength_m)
