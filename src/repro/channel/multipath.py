"""Multipath extensions: ground bounce and discrete scatterers (Fig 14).

The paper argues (and measures, §12.2) that a pole-mounted outdoor reader
is strongly line-of-sight: the SAR-measured profile shows the LoS peak
roughly 27x stronger than the next path. This module provides the ray
model used to synthesize that experiment: a specular ground reflection via
the image method and optional point scatterers (parked cars, walls).

The channel is narrowband relative to the delay spread (512 us symbol vs
tens of ns of excess delay), so each path contributes one complex term
``a * exp(-j 2 pi d / lambda)`` and the composite channel is their sum.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..constants import WAVELENGTH_M
from ..errors import ConfigurationError
from .geometry import unit
from .propagation import friis_amplitude

__all__ = ["PropagationPathResult", "GroundBounce", "PointScatterer", "MultipathChannel"]


@dataclass(frozen=True)
class PropagationPathResult:
    """One resolved ray: complex gain plus its arrival direction at the rx."""

    coefficient: complex
    arrival_direction: np.ndarray
    path_length_m: float
    label: str


@dataclass(frozen=True)
class GroundBounce:
    """Specular reflection off the road surface via the image method.

    Attributes:
        road_z_m: z of the reflecting plane in world coordinates.
        reflection_coefficient: complex Fresnel coefficient; asphalt at
            grazing incidence with mismatched polarization is weak, the
            default -0.25 yields an LoS/bounce power ratio in the regime
            the paper measured.
    """

    road_z_m: float = 0.0
    reflection_coefficient: complex = -0.25

    def resolve(
        self, tx_m: np.ndarray, rx_m: np.ndarray, wavelength_m: float
    ) -> PropagationPathResult | None:
        tx_m = np.asarray(tx_m, dtype=np.float64)
        rx_m = np.asarray(rx_m, dtype=np.float64)
        image = tx_m.copy()
        image[2] = 2.0 * self.road_z_m - image[2]
        d = float(np.linalg.norm(rx_m - image))
        if d <= 0:
            return None
        amp = friis_amplitude(d, wavelength_m) * self.reflection_coefficient
        coeff = amp * np.exp(-2j * np.pi * d / wavelength_m)
        return PropagationPathResult(
            coefficient=complex(coeff),
            arrival_direction=unit(rx_m - image),
            path_length_m=d,
            label="ground-bounce",
        )


@dataclass(frozen=True)
class PointScatterer:
    """A discrete reflector (parked car, signpost, wall corner).

    ``reflectivity`` scales the Friis amplitude of the *total* tx->scatterer
    ->rx path length, so it directly sets the path's strength relative to a
    LoS path of equal length.
    """

    position_m: np.ndarray
    reflectivity: complex = 0.1

    def __post_init__(self) -> None:
        object.__setattr__(self, "position_m", np.asarray(self.position_m, dtype=np.float64))
        if self.position_m.shape != (3,):
            raise ConfigurationError("scatterer position must be a 3-vector")

    def resolve(
        self, tx_m: np.ndarray, rx_m: np.ndarray, wavelength_m: float
    ) -> PropagationPathResult | None:
        tx_m = np.asarray(tx_m, dtype=np.float64)
        rx_m = np.asarray(rx_m, dtype=np.float64)
        d1 = float(np.linalg.norm(self.position_m - tx_m))
        d2 = float(np.linalg.norm(rx_m - self.position_m))
        if d1 <= 0 or d2 <= 0:
            return None
        total = d1 + d2
        amp = friis_amplitude(total, wavelength_m) * self.reflectivity
        coeff = amp * np.exp(-2j * np.pi * total / wavelength_m)
        return PropagationPathResult(
            coefficient=complex(coeff),
            arrival_direction=unit(rx_m - self.position_m),
            path_length_m=total,
            label="scatterer",
        )


@dataclass(frozen=True)
class MultipathChannel:
    """LoS plus a set of secondary rays.

    Drop-in replacement for :class:`LosChannel`: exposes the same
    ``coefficient``/``coefficients`` interface, plus ``resolve_paths`` for
    ground-truth inspection (used to validate the Fig 14 SAR profile).
    """

    wavelength_m: float = WAVELENGTH_M
    gain: float = 1.0
    paths: tuple = field(default_factory=tuple)

    def resolve_paths(self, tx_m: np.ndarray, rx_m: np.ndarray) -> list[PropagationPathResult]:
        """All rays from tx to rx, LoS first."""
        tx_m = np.asarray(tx_m, dtype=np.float64)
        rx_m = np.asarray(rx_m, dtype=np.float64)
        d = float(np.linalg.norm(rx_m - tx_m))
        los_amp = self.gain * friis_amplitude(d, self.wavelength_m)
        results = [
            PropagationPathResult(
                coefficient=complex(los_amp * np.exp(-2j * np.pi * d / self.wavelength_m)),
                arrival_direction=unit(rx_m - tx_m),
                path_length_m=d,
                label="los",
            )
        ]
        for path in self.paths:
            resolved = path.resolve(tx_m, rx_m, self.wavelength_m)
            if resolved is not None:
                results.append(
                    PropagationPathResult(
                        coefficient=resolved.coefficient * self.gain,
                        arrival_direction=resolved.arrival_direction,
                        path_length_m=resolved.path_length_m,
                        label=resolved.label,
                    )
                )
        return results

    def coefficient(self, tx_m: np.ndarray, rx_m: np.ndarray) -> complex:
        """Composite narrowband channel: the coherent sum over rays."""
        return complex(sum(p.coefficient for p in self.resolve_paths(tx_m, rx_m)))

    def coefficients(self, tx_m: np.ndarray, rx_positions_m: np.ndarray) -> np.ndarray:
        """Composite channel to each of (K, 3) receive positions."""
        rx_positions_m = np.atleast_2d(np.asarray(rx_positions_m, dtype=np.float64))
        return np.array([self.coefficient(tx_m, rx) for rx in rx_positions_m])
