"""Receiver noise: thermal floor and AWGN injection.

The Caraoke front end is interference-limited (dozens of colliding tags)
rather than noise-limited, but thermal noise still sets the floor for the
FFT peak detector and the decoder's stopping time, so it is modelled
physically: kTB plus a receiver noise figure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..utils import as_rng, db_to_power

__all__ = ["thermal_noise_power_w", "add_awgn", "NoiseModel"]

BOLTZMANN_J_K = 1.380649e-23


def thermal_noise_power_w(
    bandwidth_hz: float, noise_figure_db: float = 7.0, temperature_k: float = 290.0
) -> float:
    """Noise power referred to the receiver input: ``k T B x NF``."""
    if bandwidth_hz <= 0:
        raise ConfigurationError(f"bandwidth must be positive, got {bandwidth_hz}")
    return BOLTZMANN_J_K * temperature_k * bandwidth_hz * db_to_power(noise_figure_db)


def add_awgn(samples: np.ndarray, power_w: float, rng=None) -> np.ndarray:
    """Return ``samples`` plus circular complex Gaussian noise of total power.

    Power is split equally between I and Q (sigma^2/2 per quadrature).
    """
    if power_w < 0:
        raise ConfigurationError(f"noise power must be non-negative, got {power_w}")
    rng = as_rng(rng)
    samples = np.asarray(samples, dtype=np.complex128)
    if power_w == 0.0:
        return samples.copy()
    sigma = np.sqrt(power_w / 2.0)
    noise = rng.normal(0.0, sigma, samples.shape) + 1j * rng.normal(0.0, sigma, samples.shape)
    return samples + noise


@dataclass(frozen=True)
class NoiseModel:
    """Receiver noise description used by the collision synthesizer."""

    noise_figure_db: float = 7.0
    temperature_k: float = 290.0

    def power_w(self, bandwidth_hz: float) -> float:
        """Noise power within ``bandwidth_hz``."""
        return thermal_noise_power_w(bandwidth_hz, self.noise_figure_db, self.temperature_k)
