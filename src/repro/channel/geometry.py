"""Deployment geometry: spatial angles, AoA cones and their road sections.

Coordinate frame (matching Fig 7): the origin sits at a reader's antenna
center on top of its pole; **x** runs along the road, **y** across it, and
**z** points up. The road surface is the plane ``z = -pole_height``.

An AoA measurement constrains the tag to a *cone* around the antenna-pair
axis (Eq 14). Intersected with the road plane this yields a conic curve —
a hyperbola for a road-parallel axis (Eq 15), an ellipse when the pair is
tilted 60° (§6). Two readers yield two conics whose intersection, filtered
to points on the road rather than the sidewalk (footnote 10), localizes
the car.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq

from ..errors import ConfigurationError, GeometryError

__all__ = [
    "unit",
    "spatial_angle_rad",
    "hyperbola_y",
    "Conic",
    "aoa_cone_conic",
    "intersect_conics",
    "RoadSegment",
]


def unit(v: np.ndarray) -> np.ndarray:
    """Normalize a vector, raising on zero length."""
    v = np.asarray(v, dtype=np.float64)
    norm = float(np.linalg.norm(v))
    if norm == 0.0:
        raise GeometryError("cannot normalize the zero vector")
    return v / norm


def spatial_angle_rad(direction: np.ndarray, axis: np.ndarray) -> float:
    """The spatial angle between a direction and an antenna-pair axis.

    This is the alpha of Eq 10/Fig 5: the angle whose cosine the phase
    difference between two antennas measures.
    """
    cos_a = float(np.clip(np.dot(unit(direction), unit(axis)), -1.0, 1.0))
    return float(np.arccos(cos_a))


def hyperbola_y(alpha_rad: float, pole_height_m: float, x_m: np.ndarray) -> np.ndarray:
    """Solve Eq 15 for |y|: ``(tan(alpha) x)^2 - y^2 = b^2``.

    Returns NaN where the hyperbola does not exist (inside the vertex gap).
    Only valid for a road-parallel (untilted) pair axis.
    """
    x_m = np.asarray(x_m, dtype=np.float64)
    value = (np.tan(alpha_rad) * x_m) ** 2 - pole_height_m**2
    return np.sqrt(np.where(value >= 0.0, value, np.nan))


@dataclass(frozen=True)
class Conic:
    """Implicit conic ``A x^2 + B x y + C y^2 + D x + E y + F = 0`` on the road.

    Produced by intersecting an AoA cone with the road plane. Coordinates
    are *world* (x, y) on the road surface, not reader-relative. The conic
    additionally remembers the half-space sign needed to reject the mirror
    cone (a cone constraint squared admits both alpha and pi - alpha).
    """

    a: float
    b: float
    c: float
    d: float
    e: float
    f: float
    apex: np.ndarray
    axis: np.ndarray
    cos_alpha: float
    plane_z: float

    def evaluate(self, x: float | np.ndarray, y: float | np.ndarray) -> float | np.ndarray:
        """The implicit function; zero on the conic."""
        return (
            self.a * x * x
            + self.b * x * y
            + self.c * y * y
            + self.d * x
            + self.e * y
            + self.f
        )

    def y_roots(self, x: float) -> list[float]:
        """Solve the conic for y at a given x (0, 1 or 2 real roots)."""
        qa = self.c
        qb = self.b * x + self.e
        qc = self.a * x * x + self.d * x + self.f
        if abs(qa) < 1e-15:
            if abs(qb) < 1e-15:
                return []
            return [-qc / qb]
        disc = qb * qb - 4.0 * qa * qc
        if disc < 0.0:
            return []
        root = float(np.sqrt(disc))
        return sorted(((-qb - root) / (2 * qa), (-qb + root) / (2 * qa)))

    def on_correct_nappe(self, x: float, y: float) -> bool:
        """True if (x, y) lies on the cone's correct half (signed alpha)."""
        p = np.array([x, y, self.plane_z]) - self.apex
        proj = float(np.dot(p, self.axis))
        if abs(self.cos_alpha) < 1e-12:
            return True
        return np.sign(proj) == np.sign(self.cos_alpha) or proj == 0.0


def aoa_cone_conic(
    apex_m: np.ndarray,
    axis: np.ndarray,
    alpha_rad: float,
    road_z_m: float,
) -> Conic:
    """Intersect the AoA cone ``cos(angle(p, axis)) = cos(alpha)`` with the road.

    Args:
        apex_m: world position of the antenna-pair midpoint (cone apex).
        axis: pair axis direction (need not be normalized).
        alpha_rad: measured spatial angle.
        road_z_m: z of the road plane in world coordinates.

    Returns:
        The implicit :class:`Conic` in world road coordinates.
    """
    apex_m = np.asarray(apex_m, dtype=np.float64)
    u = unit(axis)
    cos_a = float(np.cos(alpha_rad))
    c2 = cos_a * cos_a
    zc = road_z_m - apex_m[2]
    ux, uy, uz = (float(component) for component in u)
    # (ux X + uy Y + uz Z)^2 = c2 (X^2 + Y^2 + Z^2), X = x - apex_x etc.
    a = ux * ux - c2
    b = 2.0 * ux * uy
    c = uy * uy - c2
    d_x = 2.0 * ux * uz * zc
    e_y = 2.0 * uy * uz * zc
    f0 = (uz * uz - c2) * zc * zc
    # Shift from reader-relative (X, Y) to world (x, y).
    ax0, ay0 = float(apex_m[0]), float(apex_m[1])
    d = d_x - 2.0 * a * ax0 - b * ay0
    e = e_y - 2.0 * c * ay0 - b * ax0
    f = (
        f0
        + a * ax0 * ax0
        + b * ax0 * ay0
        + c * ay0 * ay0
        - d_x * ax0
        - e_y * ay0
    )
    return Conic(a, b, c, d, e, f, apex_m, u, cos_a, road_z_m)


def intersect_conics(
    first: Conic,
    second: Conic,
    x_range_m: tuple[float, float],
    n_scan: int = 400,
    tolerance_m: float = 1e-6,
) -> list[np.ndarray]:
    """Numerically intersect two road-plane conics.

    Walks x across ``x_range_m``; at each x the first conic gives up to two
    y branches; sign changes of the second conic along each branch are
    refined with Brent's method. Points on the wrong cone nappe of either
    conic are discarded (mirror-image rejection).

    Returns:
        List of (x, y) road points, deduplicated.
    """
    lo, hi = x_range_m
    if hi <= lo:
        raise ConfigurationError(f"empty x range: {x_range_m}")
    xs = np.linspace(lo, hi, n_scan)

    def branch_values(branch: int) -> np.ndarray:
        values = np.full(xs.size, np.nan)
        for i, x in enumerate(xs):
            roots = first.y_roots(float(x))
            if len(roots) > branch:
                values[i] = second.evaluate(float(x), roots[branch])
        return values

    def y_on_branch(x: float, branch: int) -> float | None:
        roots = first.y_roots(x)
        return roots[branch] if len(roots) > branch else None

    points: list[np.ndarray] = []
    for branch in (0, 1):
        g = branch_values(branch)
        for i in range(xs.size - 1):
            g0, g1 = g[i], g[i + 1]
            if np.isnan(g0) or np.isnan(g1):
                continue
            if g0 == 0.0:
                crossing_x = float(xs[i])
            elif g0 * g1 < 0.0:
                crossing_x = brentq(
                    lambda x: second.evaluate(x, y_on_branch(x, branch))
                    if y_on_branch(x, branch) is not None
                    else np.nan,
                    float(xs[i]),
                    float(xs[i + 1]),
                    xtol=tolerance_m,
                )
            else:
                continue
            y = y_on_branch(float(crossing_x), branch)
            if y is None:
                continue
            candidate = np.array([crossing_x, y])
            if not first.on_correct_nappe(*candidate):
                continue
            if not second.on_correct_nappe(*candidate):
                continue
            if all(np.linalg.norm(candidate - p) > 10 * tolerance_m for p in points):
                points.append(candidate)
    return points


@dataclass(frozen=True)
class RoadSegment:
    """A straight road: centerline along x, finite width, on plane z.

    Attributes:
        x_min_m, x_max_m: extent along the road.
        y_center_m: centerline y.
        width_m: total paved width.
        z_m: road surface height in world coordinates.
    """

    x_min_m: float
    x_max_m: float
    y_center_m: float
    width_m: float
    z_m: float = 0.0

    def __post_init__(self) -> None:
        if self.x_max_m <= self.x_min_m or self.width_m <= 0:
            raise ConfigurationError("degenerate road segment")

    @property
    def y_min_m(self) -> float:
        return self.y_center_m - self.width_m / 2.0

    @property
    def y_max_m(self) -> float:
        return self.y_center_m + self.width_m / 2.0

    def contains(self, point_xy: np.ndarray, margin_m: float = 0.0) -> bool:
        """Whether a road-plane point lies on the pavement (footnote 10)."""
        x, y = float(point_xy[0]), float(point_xy[1])
        return (
            self.x_min_m - margin_m <= x <= self.x_max_m + margin_m
            and self.y_min_m - margin_m <= y <= self.y_max_m + margin_m
        )

    def surface_point(self, x_m: float, y_m: float) -> np.ndarray:
        """A 3D point on the road surface."""
        return np.array([x_m, y_m, self.z_m])
