"""Collision synthesis: superposing simultaneous tag responses (Eq 11).

When a reader queries, *every* tag in range responds 100 µs later, so the
signal at each reader antenna is

    ``r_a(t) = sum_i  h_{a,i} * s_i(t) * exp(j(2 pi cfo_i t + phi0_i)) + n(t)``

with a per-antenna, per-tag channel ``h`` and per-response random phase
``phi0``. Two synthesis paths are provided:

* :func:`synthesize_collision` — general path: takes arbitrary
  :class:`~repro.phy.transponder.TagResponse` objects, builds absolute-time
  waveforms, applies any channel model.
* :class:`StaticCollisionSimulator` — fast path for repeated queries of a
  *static* scene (the §8/§12.4 decoding experiments issue tens of queries,
  one per ms): per-tag CFO-mixed baseband vectors are precomputed once and
  each query reduces to a small matrix multiply.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..constants import (
    DEFAULT_SAMPLE_RATE_HZ,
    QUERY_DURATION_S,
    READER_LO_HZ,
    RESPONSE_DURATION_S,
    TURNAROUND_S,
)
from ..errors import ConfigurationError
from ..phy.transponder import TagResponse, Transponder
from ..phy.waveform import Waveform
from ..utils import as_rng
from .noise import add_awgn

__all__ = [
    "TruthEntry",
    "ReceivedCollision",
    "synthesize_collision",
    "StaticCollisionSimulator",
]


@dataclass
class TruthEntry:
    """Ground truth for one tag inside a synthesized collision.

    ``channels[k]`` is the full complex multiplier applied to the tag's
    baseband at antenna ``k``: propagation channel x tx amplitude x the
    response's random initial phase.
    """

    response: TagResponse
    channels: np.ndarray

    def __post_init__(self) -> None:
        self.channels = np.asarray(self.channels, dtype=np.complex128)

    def cfo_hz(self, lo_hz: float) -> float:
        return self.response.cfo_hz(lo_hz)


@dataclass
class ReceivedCollision:
    """The reader-side capture of one query's worth of colliding responses.

    Attributes:
        antennas: one :class:`Waveform` per antenna element.
        lo_hz: the reader LO the capture is referenced to.
        truth: per-tag ground truth (response + per-antenna channels),
            available because this is a simulation; algorithms never read it.
        overheard_from: provenance for opportunistic captures — the name
            of the reader whose query triggered the responses when this
            capture was *overheard* (the receiving pole never transmitted
            the query; the responses are free air time). None for a
            reader's own captures.
    """

    antennas: list[Waveform]
    lo_hz: float
    truth: list[TruthEntry] = field(default_factory=list)
    overheard_from: str | None = None

    def __post_init__(self) -> None:
        # The decode pipeline treats the antennas as rows of one (K, N)
        # capture matrix; validate that shape here so a malformed
        # collision fails at construction instead of as a bare
        # IndexError (empty list) or a shape error deep in a combiner.
        if not self.antennas:
            raise ConfigurationError("a collision needs at least one antenna capture")
        first = self.antennas[0]
        for wave in self.antennas[1:]:
            if wave.n_samples != first.n_samples:
                raise ConfigurationError(
                    "antenna captures must share one length, got "
                    f"{wave.n_samples} and {first.n_samples} samples"
                )
            if abs(wave.sample_rate_hz - first.sample_rate_hz) > 1e-6:
                raise ConfigurationError(
                    "antenna captures must share one sample rate, got "
                    f"{wave.sample_rate_hz} and {first.sample_rate_hz} Hz"
                )

    @property
    def n_antennas(self) -> int:
        return len(self.antennas)

    @property
    def sample_rate_hz(self) -> float:
        return self.antennas[0].sample_rate_hz

    @property
    def t0_s(self) -> float:
        return self.antennas[0].t0_s

    def antenna(self, index: int) -> Waveform:
        return self.antennas[index]

    def true_cfos_hz(self) -> np.ndarray:
        """Ground-truth CFOs of the colliding tags (ascending)."""
        return np.sort([entry.cfo_hz(self.lo_hz) for entry in self.truth])


def synthesize_collision(
    responses: list[TagResponse],
    antenna_positions_m: np.ndarray,
    channel,
    lo_hz: float = READER_LO_HZ,
    noise_power_w: float = 0.0,
    rng=None,
    capture_start_s: float | None = None,
    capture_duration_s: float | None = None,
) -> ReceivedCollision:
    """Build the per-antenna received waveforms for a set of tag responses.

    Args:
        responses: the colliding responses (may be empty -> pure noise).
        antenna_positions_m: (K, 3) reader element positions.
        channel: object with ``coefficient(tx_m, rx_m) -> complex``.
        lo_hz: receiver local oscillator frequency.
        noise_power_w: AWGN power per antenna over the capture bandwidth.
        rng: seedable randomness for the noise.
        capture_start_s / capture_duration_s: the ADC capture window;
            defaults to the earliest response start and the response length.

    Returns:
        A :class:`ReceivedCollision` carrying waveforms plus ground truth.
    """
    antenna_positions_m = np.atleast_2d(np.asarray(antenna_positions_m, dtype=np.float64))
    if antenna_positions_m.shape[1] != 3:
        raise ConfigurationError("antenna positions must be (K, 3)")
    rng = as_rng(rng)
    n_antennas = antenna_positions_m.shape[0]

    if capture_start_s is None:
        capture_start_s = min((r.t0_s for r in responses), default=0.0)
    if capture_duration_s is None:
        capture_duration_s = max(
            (r.end_s - capture_start_s for r in responses), default=RESPONSE_DURATION_S
        )
    sample_rate = responses[0].sample_rate_hz if responses else DEFAULT_SAMPLE_RATE_HZ
    for response in responses:
        if abs(response.sample_rate_hz - sample_rate) > 1e-6:
            raise ConfigurationError("all responses must share one sample rate")
        if response.transponder.position_m is None:
            raise ConfigurationError(
                f"transponder {response.transponder.tag_id} has no position"
            )

    pre_channel = [response.baseband_at_lo(lo_hz) for response in responses]
    truth = [
        TruthEntry(response=response, channels=np.zeros(n_antennas, dtype=np.complex128))
        for response in responses
    ]

    waveforms: list[Waveform] = []
    for k, rx_pos in enumerate(antenna_positions_m):
        capture = Waveform.silence(capture_duration_s, sample_rate, capture_start_s)
        for i, response in enumerate(responses):
            h = channel.coefficient(response.transponder.position_m, rx_pos)
            gain = h * response.transponder.tx_amplitude * np.exp(1j * response.phase0_rad)
            truth[i].channels[k] = gain
            capture = capture + pre_channel[i].scaled(gain)
        capture = _fit_window(capture, capture_start_s, capture_duration_s)
        capture = Waveform(
            add_awgn(capture.samples, noise_power_w, rng), sample_rate, capture.t0_s
        )
        waveforms.append(capture)

    return ReceivedCollision(antennas=waveforms, lo_hz=lo_hz, truth=truth)


def _fit_window(wave: Waveform, start_s: float, duration_s: float) -> Waveform:
    """Clamp a waveform to exactly [start, start + duration)."""
    n = int(round(duration_s * wave.sample_rate_hz))
    offset = int(round((start_s - wave.t0_s) * wave.sample_rate_hz))
    out = np.zeros(n, dtype=np.complex128)
    src_lo = max(0, offset)
    src_hi = min(wave.n_samples, offset + n)
    if src_hi > src_lo:
        dst_lo = src_lo - offset
        out[dst_lo : dst_lo + (src_hi - src_lo)] = wave.samples[src_lo:src_hi]
    return Waveform(out, wave.sample_rate_hz, start_s)


class StaticCollisionSimulator:
    """Fast repeated-query synthesis for a static scene (§8, §12.4).

    Precomputes, per tag and antenna, the channel coefficient and the
    CFO-mixed baseband vector (in response-relative time). Each ``query``
    then draws one random phase per tag and performs a (K x m) @ (m x N)
    multiply — orders of magnitude faster than re-synthesizing waveforms,
    which is what makes the Fig 16 sweep (hundreds of decode sessions with
    tens of queries each) tractable.

    The response-relative CFO phasing differs from the absolute-time path
    by one constant phase per tag and query; that phase is absorbed into
    the per-response random phase and the per-query channel estimate, so
    no algorithm in the library can observe the difference.
    """

    def __init__(
        self,
        tags: list[Transponder],
        antenna_positions_m: np.ndarray,
        channel,
        lo_hz: float = READER_LO_HZ,
        sample_rate_hz: float = DEFAULT_SAMPLE_RATE_HZ,
        noise_power_w: float = 0.0,
        rng=None,
    ):
        self.tags = list(tags)
        self.antenna_positions_m = np.atleast_2d(
            np.asarray(antenna_positions_m, dtype=np.float64)
        )
        if self.antenna_positions_m.shape[1] != 3:
            raise ConfigurationError("antenna positions must be (K, 3)")
        self.lo_hz = lo_hz
        self.sample_rate_hz = sample_rate_hz
        self.noise_power_w = noise_power_w
        self.rng = as_rng(rng)

        self._n_samples = int(round(RESPONSE_DURATION_S * sample_rate_hz))
        tau = np.arange(self._n_samples) / sample_rate_hz
        self._signals = np.zeros((len(self.tags), self._n_samples), dtype=np.complex128)
        self._gains = np.zeros(
            (self.antenna_positions_m.shape[0], len(self.tags)), dtype=np.complex128
        )
        self._templates: list[TagResponse] = []
        for i, tag in enumerate(self.tags):
            if tag.position_m is None:
                raise ConfigurationError(f"transponder {tag.tag_id} has no position")
            template = tag.respond(0.0, sample_rate_hz, rng=self.rng)
            self._templates.append(template)
            cfo = template.cfo_hz(lo_hz)
            self._signals[i] = template.baseband * np.exp(2j * np.pi * cfo * tau)
            for k, rx in enumerate(self.antenna_positions_m):
                self._gains[k, i] = channel.coefficient(tag.position_m, rx) * tag.tx_amplitude

    @property
    def n_antennas(self) -> int:
        return int(self.antenna_positions_m.shape[0])

    def query(self, query_start_s: float = 0.0, rng=None) -> ReceivedCollision:
        """Issue one query; all tags respond with fresh random phases."""
        rng = self.rng if rng is None else as_rng(rng)
        m = len(self.tags)
        response_t0 = query_start_s + QUERY_DURATION_S + TURNAROUND_S

        if m:
            phases = np.exp(1j * rng.uniform(0.0, 2.0 * np.pi, size=m))
            weights = self._gains * phases[None, :]
            mixed = weights @ self._signals
        else:
            phases = np.zeros(0, dtype=np.complex128)
            weights = np.zeros((self.n_antennas, 0), dtype=np.complex128)
            mixed = np.zeros((self.n_antennas, self._n_samples), dtype=np.complex128)

        truth = []
        for i, tag in enumerate(self.tags):
            template = self._templates[i]
            response = TagResponse(
                transponder=tag,
                bits=template.bits,
                baseband=template.baseband,
                t0_s=response_t0,
                sample_rate_hz=self.sample_rate_hz,
                carrier_hz=template.carrier_hz,
                phase0_rad=float(np.angle(phases[i])),
            )
            truth.append(TruthEntry(response=response, channels=weights[:, i].copy()))

        waveforms = [
            Waveform(add_awgn(mixed[k], self.noise_power_w, rng), self.sample_rate_hz, response_t0)
            for k in range(self.n_antennas)
        ]
        return ReceivedCollision(antennas=waveforms, lo_hz=self.lo_hz, truth=truth)
