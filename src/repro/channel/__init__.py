"""Propagation, antennas and geometry: how tag signals reach the reader.

Implements the wireless substrate the paper's testbed provided physically:
line-of-sight channels from windshield tags to pole-mounted antennas
(Eq 2), the 3-antenna equilateral triangle (Fig 6), the AoA cone / road
plane geometry (Fig 7), weak outdoor multipath (Fig 14), thermal noise,
and the superposition of simultaneous tag responses into a collision
(Eq 11).
"""

from .geometry import (
    Conic,
    RoadSegment,
    aoa_cone_conic,
    hyperbola_y,
    intersect_conics,
    spatial_angle_rad,
    unit,
)
from .antenna import AntennaPair, TriangleArray
from .propagation import LosChannel, friis_amplitude, propagation_delay_s
from .multipath import GroundBounce, MultipathChannel, PointScatterer
from .noise import NoiseModel, add_awgn, thermal_noise_power_w
from .collision import ReceivedCollision, StaticCollisionSimulator, synthesize_collision

__all__ = [
    "Conic",
    "RoadSegment",
    "aoa_cone_conic",
    "hyperbola_y",
    "intersect_conics",
    "spatial_angle_rad",
    "unit",
    "AntennaPair",
    "TriangleArray",
    "LosChannel",
    "friis_amplitude",
    "propagation_delay_s",
    "GroundBounce",
    "MultipathChannel",
    "PointScatterer",
    "NoiseModel",
    "add_awgn",
    "thermal_noise_power_w",
    "ReceivedCollision",
    "StaticCollisionSimulator",
    "synthesize_collision",
]
