"""Reader antenna geometry: lambda/2 pairs and the equilateral triangle (Fig 6).

AoA accuracy is best near broadside (alpha ~ 90 deg) and collapses toward
the baseline ends because ``d(alpha)/d(phase) ~ 1/sin(alpha)`` (§6). The
Caraoke reader therefore carries **three** antennas in an equilateral
triangle and, per tag, uses the pair whose measured angle lands closest to
90 deg — for any tag position one of the three baselines is within
[60 deg, 120 deg].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import ANTENNA_SPACING_M, ANTENNA_TILT_DEG
from ..errors import ConfigurationError
from .geometry import spatial_angle_rad, unit

__all__ = ["AntennaPair", "TriangleArray"]


@dataclass(frozen=True)
class AntennaPair:
    """Two antenna elements used for one phase-difference measurement.

    Attributes:
        first_m: (3,) world position of the reference element.
        second_m: (3,) world position of the other element.
    """

    first_m: np.ndarray
    second_m: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "first_m", np.asarray(self.first_m, dtype=np.float64))
        object.__setattr__(self, "second_m", np.asarray(self.second_m, dtype=np.float64))
        if self.first_m.shape != (3,) or self.second_m.shape != (3,):
            raise ConfigurationError("antenna positions must be 3-vectors")
        # Absolute tolerance only: the default relative tolerance would
        # scale with the world coordinate, declaring a genuinely spaced
        # pair "coincident" on a pole kilometers down the avenue.
        if np.allclose(self.first_m, self.second_m, rtol=0.0, atol=1e-9):
            raise ConfigurationError("antenna elements must not coincide")

    @property
    def spacing_m(self) -> float:
        """Baseline length d of Eq 10."""
        return float(np.linalg.norm(self.second_m - self.first_m))

    @property
    def axis(self) -> np.ndarray:
        """Unit vector from the first to the second element."""
        return unit(self.second_m - self.first_m)

    @property
    def midpoint_m(self) -> np.ndarray:
        """Cone apex used for localization."""
        return (self.first_m + self.second_m) / 2.0

    def true_spatial_angle_rad(self, point_m: np.ndarray) -> float:
        """Ground-truth alpha between this baseline and a world point."""
        return spatial_angle_rad(np.asarray(point_m) - self.midpoint_m, self.axis)


@dataclass(frozen=True)
class TriangleArray:
    """Three elements at the vertices of an equilateral triangle (Fig 6).

    The triangle lies in the plane spanned by two orthonormal vectors
    ``e1`` and ``e2`` centred on ``center_m``. Vertices sit at in-plane
    angles 90, 210 and 330 degrees so the three baselines are mutually
    rotated by 60 degrees.

    Attributes:
        center_m: (3,) world position of the triangle centroid.
        e1: first in-plane unit vector.
        e2: second in-plane unit vector (orthogonal to e1).
        side_m: triangle side length (the pair spacing, default lambda/2).
    """

    center_m: np.ndarray
    e1: np.ndarray
    e2: np.ndarray
    side_m: float = ANTENNA_SPACING_M

    def __post_init__(self) -> None:
        object.__setattr__(self, "center_m", np.asarray(self.center_m, dtype=np.float64))
        object.__setattr__(self, "e1", unit(self.e1))
        object.__setattr__(self, "e2", unit(self.e2))
        if abs(float(np.dot(self.e1, self.e2))) > 1e-9:
            raise ConfigurationError("triangle basis vectors must be orthogonal")
        if self.side_m <= 0:
            raise ConfigurationError("triangle side must be positive")

    @classmethod
    def street_pole(
        cls,
        center_m: np.ndarray,
        tilt_deg: float = ANTENNA_TILT_DEG,
        side_m: float = ANTENNA_SPACING_M,
        toward_road: float = -1.0,
    ) -> "TriangleArray":
        """The deployment of §12.2: triangle tilted toward the road.

        ``e1`` runs along the road (x); ``e2`` is the vertical tilted by
        ``90 - tilt_deg`` about the road axis so baselines make at most
        ``tilt_deg`` with the road plane. ``toward_road`` selects which side
        of the pole the panel faces (-y by default).
        """
        tilt = np.deg2rad(tilt_deg)
        e2 = np.array([0.0, toward_road * np.cos(tilt), np.sin(tilt)])
        return cls(center_m=np.asarray(center_m, dtype=np.float64), e1=np.array([1.0, 0.0, 0.0]), e2=e2, side_m=side_m)

    @property
    def circumradius_m(self) -> float:
        return self.side_m / np.sqrt(3.0)

    @property
    def positions_m(self) -> np.ndarray:
        """(3, 3) array of element positions (rows are elements)."""
        angles = np.deg2rad([90.0, 210.0, 330.0])
        offsets = self.circumradius_m * (
            np.outer(np.cos(angles), self.e1) + np.outer(np.sin(angles), self.e2)
        )
        return self.center_m + offsets

    def element(self, index: int) -> np.ndarray:
        """World position of one element (0, 1 or 2)."""
        return self.positions_m[index]

    def pairs(self) -> list[AntennaPair]:
        """The three switchable baselines, as (element, element) index pairs
        (0,1), (1,2), (2,0)."""
        positions = self.positions_m
        return [
            AntennaPair(positions[0], positions[1]),
            AntennaPair(positions[1], positions[2]),
            AntennaPair(positions[2], positions[0]),
        ]

    def pair_indices(self) -> list[tuple[int, int]]:
        """Element index pairs matching :meth:`pairs` order."""
        return [(0, 1), (1, 2), (2, 0)]
