"""On-off keying modulation of Manchester chips (§3, Eq 1).

A tag transmits a "1" chip by emitting its carrier and a "0" chip by
staying silent, so the baseband signal ``s(t)`` toggles between 0 and 1
(Eq 1-4). The modulator produces the *baseband* chip train; the carrier
(and therefore the CFO) is applied later by mixing against absolute time,
and the channel coefficient is applied by the collision synthesizer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import CHIP_DURATION_S, DEFAULT_SAMPLE_RATE_HZ
from ..errors import ConfigurationError, ModulationError
from .manchester import manchester_encode, manchester_soft_decode

__all__ = ["OokModulator"]


@dataclass(frozen=True)
class OokModulator:
    """Maps bits <-> baseband OOK/Manchester sample trains.

    Attributes:
        sample_rate_hz: baseband sample rate. Must contain an integer
            number of samples per 1 µs chip.
        chip_duration_s: chip period (1 µs for the 500 kb/s tag).
    """

    sample_rate_hz: float = DEFAULT_SAMPLE_RATE_HZ
    chip_duration_s: float = CHIP_DURATION_S

    def __post_init__(self) -> None:
        sps = self.sample_rate_hz * self.chip_duration_s
        if abs(sps - round(sps)) > 1e-9 or round(sps) < 1:
            raise ConfigurationError(
                f"sample rate {self.sample_rate_hz} Hz does not give an integer "
                f"number of samples per {self.chip_duration_s}s chip"
            )

    @property
    def samples_per_chip(self) -> int:
        """Samples in one chip interval."""
        return int(round(self.sample_rate_hz * self.chip_duration_s))

    def modulate_chips(self, chips: np.ndarray) -> np.ndarray:
        """Expand a 0/1 chip array into a rectangular sample train."""
        chips = np.asarray(chips, dtype=np.float64)
        if chips.size and (chips.min() < 0 or chips.max() > 1):
            raise ModulationError("chips must be 0 or 1")
        return np.repeat(chips, self.samples_per_chip)

    def modulate_bits(self, bits: np.ndarray) -> np.ndarray:
        """Manchester-encode bits and expand them into baseband samples."""
        return self.modulate_chips(manchester_encode(bits))

    def chip_matched_filter(self, samples: np.ndarray) -> np.ndarray:
        """Integrate-and-dump each chip interval into one soft value.

        Accepts real or complex input; complex input is reduced with its
        real part, which is correct after the decoder has divided out the
        (complex) channel and removed the CFO (§8).
        """
        samples = np.asarray(samples)
        if np.iscomplexobj(samples):
            samples = samples.real
        spc = self.samples_per_chip
        n_chips = samples.size // spc
        if n_chips == 0:
            raise ModulationError(
                f"need at least {spc} samples for one chip, got {samples.size}"
            )
        trimmed = samples[: n_chips * spc]
        return np.add.reduce(trimmed.reshape(n_chips, spc), axis=1) / spc

    def demodulate_soft(self, samples: np.ndarray, n_bits: int | None = None) -> np.ndarray:
        """Recover bits from baseband samples via per-bit half comparison."""
        soft_chips = self.chip_matched_filter(samples)
        if n_bits is not None:
            needed = 2 * n_bits
            if soft_chips.size < needed:
                raise ModulationError(
                    f"need {needed} chips for {n_bits} bits, got {soft_chips.size}"
                )
            soft_chips = soft_chips[:needed]
        elif soft_chips.size % 2:
            soft_chips = soft_chips[:-1]
        return manchester_soft_decode(soft_chips)
