"""The 256-bit transponder packet (Fig 2b).

The paper shows the response as 256 bits containing a 47-bit
agency-programmable field, factory-fixed fields, and a CRC. The exact IAG
field layout is proprietary, so this library defines a documented layout
with the same budget:

====================  ======  =====================================
field                 bits    notes
====================  ======  =====================================
sync                  16      fixed ``0xF0F0`` pattern
agency_id             7       issuing agency
serial_number         32      factory-fixed tag serial
tag_type              8       vehicle class / mount type
programmable          47      agency-programmable field (Fig 2b)
factory_field         130     PRBS derived from the serial number
crc16                 16      CRC-16-CCITT over bits 16..239
====================  ======  =====================================

Total: 256 bits. The CRC covers everything after the sync word, so a
decoder that mis-slices the response will fail the checksum rather than
yield a wrong id — this is the stopping rule of §8/§12.4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import PACKET_BITS, PROGRAMMABLE_BITS
from ..errors import CrcError, PacketError
from ..utils import as_rng, bits_to_int, int_to_bits, prbs_bits
from .crc import CRC16_CCITT

__all__ = ["PacketFields", "TransponderPacket"]

SYNC_WORD = 0xF0F0
SYNC_BITS = 16
AGENCY_BITS = 7
SERIAL_BITS = 32
TYPE_BITS = 8
FACTORY_BITS = 130
CRC_BITS = 16

_FIELD_WIDTHS = (
    SYNC_BITS,
    AGENCY_BITS,
    SERIAL_BITS,
    TYPE_BITS,
    PROGRAMMABLE_BITS,
    FACTORY_BITS,
    CRC_BITS,
)
assert sum(_FIELD_WIDTHS) == PACKET_BITS


@dataclass(frozen=True)
class PacketFields:
    """The application-visible fields of a transponder packet."""

    agency_id: int
    serial_number: int
    tag_type: int
    programmable: int

    def __post_init__(self) -> None:
        checks = (
            ("agency_id", self.agency_id, AGENCY_BITS),
            ("serial_number", self.serial_number, SERIAL_BITS),
            ("tag_type", self.tag_type, TYPE_BITS),
            ("programmable", self.programmable, PROGRAMMABLE_BITS),
        )
        for name, value, width in checks:
            if not 0 <= value < (1 << width):
                raise PacketError(f"{name}={value} does not fit in {width} bits")


class TransponderPacket:
    """A complete, CRC-protected 256-bit transponder response payload."""

    def __init__(self, fields: PacketFields):
        self.fields = fields

    # -- constructors --------------------------------------------------------

    @classmethod
    def create(
        cls,
        agency_id: int,
        serial_number: int,
        tag_type: int = 0,
        programmable: int = 0,
    ) -> "TransponderPacket":
        """Build a packet from field values."""
        return cls(PacketFields(agency_id, serial_number, tag_type, programmable))

    @classmethod
    def random(cls, rng=None) -> "TransponderPacket":
        """A packet with random field values (deterministic given ``rng``)."""
        rng = as_rng(rng)
        return cls.create(
            agency_id=int(rng.integers(0, 1 << AGENCY_BITS)),
            serial_number=int(rng.integers(0, 1 << SERIAL_BITS)),
            tag_type=int(rng.integers(0, 1 << TYPE_BITS)),
            programmable=int(rng.integers(0, 1 << PROGRAMMABLE_BITS)),
        )

    # -- serialization --------------------------------------------------------

    def to_bits(self) -> np.ndarray:
        """Serialize to the 256-bit MSB-first on-air representation."""
        f = self.fields
        body = np.concatenate(
            [
                int_to_bits(f.agency_id, AGENCY_BITS),
                int_to_bits(f.serial_number, SERIAL_BITS),
                int_to_bits(f.tag_type, TYPE_BITS),
                int_to_bits(f.programmable, PROGRAMMABLE_BITS),
                prbs_bits(FACTORY_BITS, seed=f.serial_number & 0xFFFF),
            ]
        )
        bits = np.concatenate([int_to_bits(SYNC_WORD, SYNC_BITS), CRC16_CCITT.append(body)])
        if bits.size != PACKET_BITS:
            raise PacketError(f"internal error: built {bits.size} bits")
        return bits

    @classmethod
    def from_bits(cls, bits: np.ndarray, check_sync: bool = True) -> "TransponderPacket":
        """Parse and validate 256 on-air bits.

        Raises:
            PacketError: wrong length or bad sync word.
            CrcError: checksum failure (the §8 decoder's retry signal).
        """
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.size != PACKET_BITS:
            raise PacketError(f"expected {PACKET_BITS} bits, got {bits.size}")
        sync = bits_to_int(bits[:SYNC_BITS])
        if check_sync and sync != SYNC_WORD:
            raise PacketError(f"bad sync word 0x{sync:04x}")
        body = CRC16_CCITT.verify(bits[SYNC_BITS:])
        offset = 0
        values = []
        for width in (AGENCY_BITS, SERIAL_BITS, TYPE_BITS, PROGRAMMABLE_BITS):
            values.append(bits_to_int(body[offset : offset + width]))
            offset += width
        agency_id, serial_number, tag_type, programmable = values
        factory = body[offset : offset + FACTORY_BITS]
        expected_factory = prbs_bits(FACTORY_BITS, seed=serial_number & 0xFFFF)
        if not np.array_equal(factory, expected_factory):
            raise CrcError("factory field inconsistent with serial number")
        return cls(PacketFields(agency_id, serial_number, tag_type, programmable))

    # -- convenience -----------------------------------------------------------

    @property
    def tag_id(self) -> int:
        """The (agency, serial) pair as one integer, i.e. the account id."""
        return (self.fields.agency_id << SERIAL_BITS) | self.fields.serial_number

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TransponderPacket):
            return NotImplemented
        return self.fields == other.fields

    def __hash__(self) -> int:
        return hash(self.fields)

    def __repr__(self) -> str:
        f = self.fields
        return (
            f"TransponderPacket(agency={f.agency_id}, serial={f.serial_number}, "
            f"type={f.tag_type}, programmable={f.programmable})"
        )
