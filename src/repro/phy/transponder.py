"""The e-toll transponder model (§3, Fig 2).

A transponder is an active RFID with **no MAC protocol**: the instant it
detects a reader's query sinewave it waits the fixed 100 µs turnaround and
transmits its 256-bit response, regardless of what any other tag is doing.
Every tag in range therefore answers every query, and the reader receives
a collision — the situation Caraoke is built to exploit.

The tag also applies a *random initial oscillator phase* to each response
(§8: "the transponders start with a random initial phase"), which is what
makes interferers combine incoherently across repeated queries while the
CFO-and-channel-compensated target combines coherently.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..constants import (
    DEFAULT_SAMPLE_RATE_HZ,
    QUERY_DURATION_S,
    RESPONSE_DURATION_S,
    TURNAROUND_S,
)
from ..errors import ConfigurationError
from ..utils import as_rng, dbm_to_watts
from .modulation import OokModulator
from .oscillator import Oscillator
from .packet import TransponderPacket
from .waveform import Waveform

__all__ = ["Transponder", "TagResponse"]


@dataclass
class TagResponse:
    """One transmitted response: the tag's baseband chips plus carrier state.

    Attributes:
        transponder: the tag that transmitted.
        bits: the 256 packet bits that were sent.
        baseband: real 0/1 OOK sample train at ``sample_rate_hz``.
        t0_s: absolute time the response starts (query end + 100 µs).
        sample_rate_hz: baseband sample rate.
        carrier_hz: the tag's carrier during this response.
        phase0_rad: the oscillator's random initial phase for this response.
    """

    transponder: "Transponder"
    bits: np.ndarray
    baseband: np.ndarray
    t0_s: float
    sample_rate_hz: float
    carrier_hz: float
    phase0_rad: float

    @property
    def duration_s(self) -> float:
        return self.baseband.size / self.sample_rate_hz

    @property
    def end_s(self) -> float:
        return self.t0_s + self.duration_s

    def cfo_hz(self, lo_hz: float) -> float:
        """Carrier frequency offset seen by a receiver with LO ``lo_hz``."""
        return self.carrier_hz - lo_hz

    def baseband_at_lo(self, lo_hz: float) -> Waveform:
        """Complex baseband as a receiver at ``lo_hz`` would see it pre-channel.

        Implements Eq 3: ``s(t) * exp(j*(2*pi*cfo*t + phase0))`` with the CFO
        phase running on the absolute time axis, so responses to different
        queries are mutually phase-consistent.
        """
        wave = Waveform(self.baseband.astype(np.complex128), self.sample_rate_hz, self.t0_s)
        return wave.mixed(self.cfo_hz(lo_hz), self.phase0_rad)


@dataclass
class Transponder:
    """An unmodified e-toll tag: packet + oscillator + mounting position.

    Attributes:
        packet: the 256-bit payload this tag transmits.
        oscillator: the tag's free-running carrier oscillator.
        position_m: optional (3,) windshield position in world frame [m].
        tx_power_dbm: transmit power (active tag, ~0 dBm EIRP).
        sensitivity_dbm: minimum query power that triggers a response.
        min_trigger_s: minimum query duration that triggers a response.
    """

    packet: TransponderPacket
    oscillator: Oscillator
    position_m: np.ndarray | None = None
    tx_power_dbm: float = 0.0
    sensitivity_dbm: float = -60.0
    min_trigger_s: float = 10e-6
    # repro: allow[determinism] — per-tag OS-entropy default keeps ad-hoc tags' phases independent; every simulation-critical path (scenario.py, conftest, bench_helpers) passes a seeded rng
    rng: np.random.Generator = field(default_factory=lambda: as_rng(None), repr=False)

    def __post_init__(self) -> None:
        if self.position_m is not None:
            self.position_m = np.asarray(self.position_m, dtype=np.float64)
            if self.position_m.shape != (3,):
                raise ConfigurationError("position must be a 3-vector")
        self.rng = as_rng(self.rng)
        self._bits = self.packet.to_bits()
        self._baseband_cache: dict[float, np.ndarray] = {}

    # -- identity -------------------------------------------------------------

    @property
    def tag_id(self) -> int:
        return self.packet.tag_id

    @property
    def carrier_hz(self) -> float:
        return self.oscillator.carrier_hz

    @property
    def tx_amplitude(self) -> float:
        """Transmit amplitude in sqrt-watt units (|amplitude|^2 = watts)."""
        return float(np.sqrt(dbm_to_watts(self.tx_power_dbm)))

    # -- air protocol ----------------------------------------------------------

    def is_triggered(self, rx_power_w: float, query_duration_s: float = QUERY_DURATION_S) -> bool:
        """Whether a received query of the given power/duration wakes the tag.

        §9 observes that two *colliding queries* still trigger tags: the sum
        of two sinewaves at (nearly) the carrier is still a valid query. This
        energy-detector model reproduces that: only total in-band power and
        duration matter.
        """
        if query_duration_s < self.min_trigger_s:
            return False
        return rx_power_w >= dbm_to_watts(self.sensitivity_dbm)

    def respond(
        self,
        query_end_s: float,
        sample_rate_hz: float = DEFAULT_SAMPLE_RATE_HZ,
        rng: np.random.Generator | None = None,
    ) -> TagResponse:
        """Transmit the response triggered by a query ending at ``query_end_s``.

        The response begins exactly ``TURNAROUND_S`` (100 µs) later and lasts
        512 µs (Fig 2a). A fresh random initial phase is drawn per response.
        """
        rng = self.rng if rng is None else as_rng(rng)
        baseband = self._baseband(sample_rate_hz)
        t_at_start = query_end_s + TURNAROUND_S
        return TagResponse(
            transponder=self,
            bits=self._bits.copy(),
            baseband=baseband,
            t0_s=t_at_start,
            sample_rate_hz=sample_rate_hz,
            carrier_hz=self.oscillator.carrier_at(t_at_start),
            phase0_rad=float(rng.uniform(0.0, 2.0 * np.pi)),
        )

    def _baseband(self, sample_rate_hz: float) -> np.ndarray:
        """The tag's fixed OOK chip train, cached per sample rate."""
        cached = self._baseband_cache.get(sample_rate_hz)
        if cached is None:
            modulator = OokModulator(sample_rate_hz=sample_rate_hz)
            cached = modulator.modulate_bits(self._bits)
            expected = int(round(RESPONSE_DURATION_S * sample_rate_hz))
            if cached.size != expected:
                raise ConfigurationError(
                    f"response is {cached.size} samples, expected {expected}; "
                    "sample rate must make 256 Manchester bits span 512 us"
                )
            self._baseband_cache[sample_rate_hz] = cached
        return cached

    # -- convenience ------------------------------------------------------------

    @classmethod
    def random(
        cls,
        carrier_hz: float,
        position_m: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
        **kwargs,
    ) -> "Transponder":
        """A tag with random packet contents at the given carrier."""
        rng = as_rng(rng)
        return cls(
            packet=TransponderPacket.random(rng),
            oscillator=Oscillator(carrier_hz),
            position_m=position_m,
            rng=rng,
            **kwargs,
        )
