"""Transponder physical layer: waveforms, coding, packets, modulation, tags.

This subpackage models everything §3 of the paper describes about the air
protocol: the 20 µs sinewave query, the 100 µs turnaround, and the 512 µs
OOK/Manchester 256-bit response transmitted at a tag-specific carrier.
"""

from .waveform import Waveform
from .crc import Crc, CRC16_CCITT
from .manchester import manchester_encode, manchester_decode, manchester_soft_decode
from .packet import TransponderPacket, PacketFields
from .modulation import OokModulator
from .oscillator import (
    Oscillator,
    CfoModel,
    UniformCfoModel,
    TruncatedGaussianCfoModel,
    EmpiricalCfoModel,
)
from .transponder import Transponder, TagResponse

__all__ = [
    "Waveform",
    "Crc",
    "CRC16_CCITT",
    "manchester_encode",
    "manchester_decode",
    "manchester_soft_decode",
    "TransponderPacket",
    "PacketFields",
    "OokModulator",
    "Oscillator",
    "CfoModel",
    "UniformCfoModel",
    "TruncatedGaussianCfoModel",
    "EmpiricalCfoModel",
    "Transponder",
    "TagResponse",
]
