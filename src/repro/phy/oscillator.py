"""Tag oscillators and carrier-frequency-offset population models.

E-toll tags are active RFIDs with free-running oscillators, so each tag
has its own carrier somewhere in 914.3-915.5 MHz (§3). Caraoke's entire
design rests on this spread: the CFO is the handle that separates tags
inside a collision (§1, §5).

Three population models are provided:

* :class:`UniformCfoModel` — the uniform assumption used in the §5
  closed-form analysis.
* :class:`TruncatedGaussianCfoModel` — the empirical population summary
  the authors measured on 155 tags (mean 914.84 MHz, sigma 0.21 MHz,
  §5 footnote 7).
* :class:`EmpiricalCfoModel` — draws from a fixed list of carriers, e.g.
  the synthetic 155-tag dataset in :mod:`repro.datasets`, mirroring how
  §12.1 builds collisions out of recorded tags.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import (
    CARRIER_MAX_HZ,
    CARRIER_MIN_HZ,
    EMPIRICAL_CARRIER_MEAN_HZ,
    EMPIRICAL_CARRIER_STD_HZ,
    READER_LO_HZ,
)
from ..errors import ConfigurationError
from ..utils import as_rng

__all__ = [
    "Oscillator",
    "CfoModel",
    "UniformCfoModel",
    "TruncatedGaussianCfoModel",
    "EmpiricalCfoModel",
]


@dataclass(frozen=True)
class Oscillator:
    """A tag's free-running carrier oscillator.

    Attributes:
        carrier_hz: the oscillator's actual carrier frequency.
        drift_hz_per_s: slow linear drift (0 by default; tags are queried
            over a few ms, where drift is negligible).
    """

    carrier_hz: float
    drift_hz_per_s: float = 0.0

    def __post_init__(self) -> None:
        if self.carrier_hz <= 0:
            raise ConfigurationError(f"carrier must be positive, got {self.carrier_hz}")

    def carrier_at(self, t_s: float) -> float:
        """Carrier frequency at absolute time ``t_s``."""
        return self.carrier_hz + self.drift_hz_per_s * t_s

    def cfo_hz(self, lo_hz: float = READER_LO_HZ, t_s: float = 0.0) -> float:
        """Offset from a receiver local oscillator at time ``t_s``."""
        return self.carrier_at(t_s) - lo_hz


class CfoModel:
    """Base class: a distribution over tag carrier frequencies."""

    def sample_carriers(self, n: int, rng=None) -> np.ndarray:
        """Draw ``n`` carrier frequencies in Hz."""
        raise NotImplementedError

    def sample_oscillators(self, n: int, rng=None) -> list[Oscillator]:
        """Draw ``n`` oscillators."""
        return [Oscillator(float(f)) for f in self.sample_carriers(n, rng)]


@dataclass(frozen=True)
class UniformCfoModel(CfoModel):
    """Carriers uniform over the tag band — the §5 analysis assumption."""

    low_hz: float = CARRIER_MIN_HZ
    high_hz: float = CARRIER_MAX_HZ

    def __post_init__(self) -> None:
        if self.high_hz <= self.low_hz:
            raise ConfigurationError("high_hz must exceed low_hz")

    def sample_carriers(self, n: int, rng=None) -> np.ndarray:
        rng = as_rng(rng)
        return rng.uniform(self.low_hz, self.high_hz, size=n)


@dataclass(frozen=True)
class TruncatedGaussianCfoModel(CfoModel):
    """Gaussian carriers truncated to the tag band (§5 footnote 7)."""

    mean_hz: float = EMPIRICAL_CARRIER_MEAN_HZ
    std_hz: float = EMPIRICAL_CARRIER_STD_HZ
    low_hz: float = CARRIER_MIN_HZ
    high_hz: float = CARRIER_MAX_HZ

    def __post_init__(self) -> None:
        if self.std_hz <= 0:
            raise ConfigurationError("std_hz must be positive")
        if not self.low_hz < self.mean_hz < self.high_hz:
            raise ConfigurationError("mean must lie inside the truncation band")

    def sample_carriers(self, n: int, rng=None) -> np.ndarray:
        rng = as_rng(rng)
        out = np.empty(n)
        filled = 0
        while filled < n:
            draw = rng.normal(self.mean_hz, self.std_hz, size=2 * (n - filled) + 8)
            keep = draw[(draw >= self.low_hz) & (draw <= self.high_hz)]
            take = min(keep.size, n - filled)
            out[filled : filled + take] = keep[:take]
            filled += take
        return out


@dataclass(frozen=True)
class EmpiricalCfoModel(CfoModel):
    """Draws (without replacement when possible) from a fixed population."""

    carriers_hz: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.carriers_hz:
            raise ConfigurationError("population must be non-empty")

    @classmethod
    def from_array(cls, carriers: np.ndarray) -> "EmpiricalCfoModel":
        return cls(tuple(float(c) for c in np.asarray(carriers, dtype=np.float64)))

    @property
    def population_size(self) -> int:
        return len(self.carriers_hz)

    def sample_carriers(self, n: int, rng=None) -> np.ndarray:
        rng = as_rng(rng)
        pop = np.asarray(self.carriers_hz)
        replace = n > pop.size
        return rng.choice(pop, size=n, replace=replace)
