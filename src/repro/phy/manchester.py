"""Manchester chip coding.

The tags transmit OOK with Manchester encoding (§3, Fig 2b). Manchester
matters to Caraoke beyond clock recovery: it forces every bit to spend half
its time "on" and half "off", so the baseband signal ``s(t)`` has mean 1/2
and ``s'(t) = s(t) - 1/2`` has *zero* mean (§3 footnote 6). That zero mean
is what puts a spectral null at the tag's own CFO and lets the FFT peak
read off the channel coefficient cleanly (Eq 5).

Convention used here: bit 1 -> chips (1, 0); bit 0 -> chips (0, 1).
"""

from __future__ import annotations

import numpy as np

from ..errors import ModulationError

__all__ = ["manchester_encode", "manchester_decode", "manchester_soft_decode"]


def manchester_encode(bits: np.ndarray) -> np.ndarray:
    """Encode bits into twice as many chips.

    Args:
        bits: array of 0/1 values, any integer dtype.

    Returns:
        uint8 chip array of length ``2 * len(bits)``.
    """
    bits = np.asarray(bits)
    if bits.size and not np.isin(bits, (0, 1)).all():
        raise ModulationError("bits must be 0 or 1")
    bits = bits.astype(np.uint8)
    chips = np.empty(2 * bits.size, dtype=np.uint8)
    chips[0::2] = bits
    chips[1::2] = 1 - bits
    return chips


def manchester_decode(chips: np.ndarray) -> np.ndarray:
    """Decode hard chips back into bits, validating the code constraint.

    Raises:
        ModulationError: if the chip count is odd or any chip pair is
            (0, 0) or (1, 1), which no Manchester bit produces.
    """
    chips = np.asarray(chips, dtype=np.uint8)
    if chips.size % 2:
        raise ModulationError(f"chip count must be even, got {chips.size}")
    first = chips[0::2]
    second = chips[1::2]
    if np.any(first == second):
        bad = int(np.flatnonzero(first == second)[0])
        raise ModulationError(f"invalid Manchester pair at bit {bad}")
    return first.copy()


def manchester_soft_decode(chip_values: np.ndarray) -> np.ndarray:
    """Decode soft chip amplitudes by comparing the halves of each bit.

    Each bit decision is ``first_half > second_half``, which cancels any DC
    offset and slow amplitude ripple — exactly what the coherent-combining
    decoder needs, since its averaged signal rides on a DC term (§8).

    Args:
        chip_values: real-valued array of soft chip amplitudes, even length.

    Returns:
        uint8 bit array of half the length.
    """
    chip_values = np.asarray(chip_values, dtype=np.float64)
    if chip_values.size % 2:
        raise ModulationError(f"chip count must be even, got {chip_values.size}")
    first = chip_values[0::2]
    second = chip_values[1::2]
    return (first > second).astype(np.uint8)
