"""Table-driven cyclic redundancy checks over bit arrays.

The transponder response ends in a CRC (Fig 2b); the decoder of §8 keeps
combining collisions "until the decoded id passes the checksum test"
(§12.4), so the CRC is the decoder's stopping rule. The IAG CRC parameters
are proprietary; we use CRC-16-CCITT (poly 0x1021, init 0xFFFF), a standard
16-bit code with the same detection budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..errors import ConfigurationError, CrcError
from ..utils import bits_to_int, int_to_bits

__all__ = ["Crc", "CRC16_CCITT", "CRC8_ATM", "CRC32_IEEE"]


@lru_cache(maxsize=None)
def _byte_table(width: int, poly: int) -> tuple[int, ...]:
    """The 256-entry table that advances a CRC register by one byte.

    ``table[b]`` equals eight bit-steps of the shift register seeded with
    ``b`` in its top byte, so byte-at-a-time processing is exactly
    equivalent to the bit loop (width >= 8 only).
    """
    mask = (1 << width) - 1
    top = 1 << (width - 1)
    table = []
    for byte in range(256):
        register = (byte << (width - 8)) & mask
        for _ in range(8):
            if register & top:
                register = ((register << 1) ^ poly) & mask
            else:
                register = (register << 1) & mask
        table.append(register)
    return tuple(table)


@dataclass(frozen=True)
class Crc:
    """A CRC specification operating on MSB-first bit arrays.

    Attributes:
        width: register width in bits.
        poly: generator polynomial (without the leading 1 term).
        init: initial register value.
        xorout: value XORed into the register at the end.
        name: human-readable identifier.
    """

    width: int
    poly: int
    init: int
    xorout: int = 0
    name: str = "crc"

    def __post_init__(self) -> None:
        if not 1 <= self.width <= 64:
            raise ConfigurationError(f"CRC width must be in [1, 64], got {self.width}")
        mask = (1 << self.width) - 1
        if self.poly & ~mask:
            raise ConfigurationError(
                f"polynomial 0x{self.poly:x} does not fit in {self.width} bits"
            )

    @property
    def _mask(self) -> int:
        return (1 << self.width) - 1

    @property
    def _top_bit(self) -> int:
        return 1 << (self.width - 1)

    def compute(self, bits: np.ndarray) -> int:
        """Compute the CRC of an MSB-first bit array.

        Whole bytes go through the byte table (8 bit-steps per lookup);
        any trailing partial byte falls back to the bit loop, so arbitrary
        bit lengths remain supported.
        """
        bits = np.asarray(bits, dtype=np.uint8)
        register = self.init
        top, mask, poly = self._top_bit, self._mask, self.poly
        n_bytes = bits.size // 8
        if n_bytes and self.width >= 8:
            table = _byte_table(self.width, self.poly)
            shift = self.width - 8
            for byte in np.packbits(bits[: n_bytes * 8]):
                register = ((register << 8) & mask) ^ table[
                    ((register >> shift) ^ int(byte)) & 0xFF
                ]
            bits = bits[n_bytes * 8 :]
        for bit in bits:
            register ^= int(bit) << (self.width - 1)
            if register & top:
                register = ((register << 1) ^ poly) & mask
            else:
                register = (register << 1) & mask
        return register ^ self.xorout

    def compute_bytes(self, data: bytes) -> int:
        """Compute the CRC of a byte string (MSB-first within each byte)."""
        bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
        return self.compute(bits)

    def append(self, bits: np.ndarray) -> np.ndarray:
        """Return ``bits`` with the CRC appended as ``width`` MSB-first bits."""
        crc = self.compute(bits)
        return np.concatenate([np.asarray(bits, dtype=np.uint8), int_to_bits(crc, self.width)])

    def check(self, bits_with_crc: np.ndarray) -> bool:
        """True iff the trailing ``width`` bits are the CRC of the rest."""
        bits_with_crc = np.asarray(bits_with_crc, dtype=np.uint8)
        if bits_with_crc.size < self.width:
            return False
        payload = bits_with_crc[: -self.width]
        tail = bits_with_crc[-self.width :]
        if np.any(tail > 1):
            return False
        return self.compute(payload) == bits_to_int(tail)

    def verify(self, bits_with_crc: np.ndarray) -> np.ndarray:
        """Return the payload bits, raising :class:`CrcError` on mismatch."""
        bits_with_crc = np.asarray(bits_with_crc, dtype=np.uint8)
        if not self.check(bits_with_crc):
            raise CrcError(f"{self.name}: checksum mismatch")
        return bits_with_crc[: -self.width]


#: CRC-16/CCITT-FALSE: the packet checksum used throughout this library.
CRC16_CCITT = Crc(width=16, poly=0x1021, init=0xFFFF, xorout=0x0000, name="crc16-ccitt")

#: CRC-8/ATM (HEC) — exposed for completeness and tests.
CRC8_ATM = Crc(width=8, poly=0x07, init=0x00, xorout=0x00, name="crc8-atm")

#: CRC-32 in its non-reflected form — exposed for completeness and tests.
CRC32_IEEE = Crc(width=32, poly=0x04C11DB7, init=0xFFFFFFFF, xorout=0xFFFFFFFF, name="crc32")
