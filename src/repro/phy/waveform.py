"""Complex-baseband waveform container.

A :class:`Waveform` is a uniformly sampled complex baseband signal with an
absolute start time. Absolute time matters in Caraoke: the CFO phase of a
tag evolves as ``exp(j*2*pi*cfo*t)`` in *absolute* time, and the counting
algorithm compares FFTs taken over time-shifted windows of one capture
(§5, Eq 8), so windows must know where they sit on the time axis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, SpectrumError

__all__ = ["Waveform"]


@dataclass
class Waveform:
    """Uniformly sampled complex baseband signal.

    Attributes:
        samples: complex128 array of baseband samples.
        sample_rate_hz: sampling rate in Hz.
        t0_s: absolute time of ``samples[0]`` in seconds.
    """

    samples: np.ndarray
    sample_rate_hz: float
    t0_s: float = 0.0

    def __post_init__(self) -> None:
        self.samples = np.asarray(self.samples, dtype=np.complex128)
        if self.samples.ndim != 1:
            raise ConfigurationError("waveform samples must be one-dimensional")
        if self.sample_rate_hz <= 0:
            raise ConfigurationError(
                f"sample rate must be positive, got {self.sample_rate_hz}"
            )

    # -- construction -------------------------------------------------------

    @classmethod
    def silence(
        cls, duration_s: float, sample_rate_hz: float, t0_s: float = 0.0
    ) -> "Waveform":
        """An all-zero waveform of the given duration."""
        n = int(round(duration_s * sample_rate_hz))
        return cls(np.zeros(n, dtype=np.complex128), sample_rate_hz, t0_s)

    @classmethod
    def tone(
        cls,
        freq_hz: float,
        duration_s: float,
        sample_rate_hz: float,
        t0_s: float = 0.0,
        amplitude: complex = 1.0,
    ) -> "Waveform":
        """A complex exponential at ``freq_hz``, phased against absolute time.

        ``tone(f).samples[n] == amplitude * exp(j*2*pi*f*(t0 + n/fs))`` so that
        two tones created with different ``t0`` are mutually phase-coherent.
        """
        n = int(round(duration_s * sample_rate_hz))
        t = t0_s + np.arange(n) / sample_rate_hz
        return cls(amplitude * np.exp(2j * np.pi * freq_hz * t), sample_rate_hz, t0_s)

    # -- basic properties ----------------------------------------------------

    @property
    def n_samples(self) -> int:
        """Number of samples."""
        return int(self.samples.size)

    @property
    def duration_s(self) -> float:
        """Signal duration in seconds."""
        return self.n_samples / self.sample_rate_hz

    @property
    def end_s(self) -> float:
        """Absolute time one sample past the last sample."""
        return self.t0_s + self.duration_s

    def times(self) -> np.ndarray:
        """Absolute sample times in seconds."""
        return self.t0_s + np.arange(self.n_samples) / self.sample_rate_hz

    def power(self) -> float:
        """Mean sample power ``E[|x|^2]``."""
        if self.n_samples == 0:
            return 0.0
        return float(np.mean(np.abs(self.samples) ** 2))

    def rms(self) -> float:
        """Root-mean-square amplitude."""
        return float(np.sqrt(self.power()))

    # -- algebra -------------------------------------------------------------

    def copy(self) -> "Waveform":
        """Deep copy."""
        return Waveform(self.samples.copy(), self.sample_rate_hz, self.t0_s)

    def scaled(self, gain: complex) -> "Waveform":
        """Return the waveform multiplied by a complex gain."""
        return Waveform(self.samples * gain, self.sample_rate_hz, self.t0_s)

    def delayed(self, delay_s: float) -> "Waveform":
        """Return the same samples shifted later in absolute time.

        The delay is applied to the time axis only; sub-sample phase effects
        are modelled separately through channel coefficients.
        """
        return Waveform(self.samples.copy(), self.sample_rate_hz, self.t0_s + delay_s)

    def mixed(self, freq_hz: float, phase_rad: float = 0.0) -> "Waveform":
        """Multiply by ``exp(j*(2*pi*freq*t + phase))`` in absolute time.

        This is how a tag's baseband chips acquire its CFO (Eq 3), and how a
        receiver removes an estimated CFO (§8).
        """
        t = self.times()
        rotated = self.samples * np.exp(1j * (2.0 * np.pi * freq_hz * t + phase_rad))
        return Waveform(rotated, self.sample_rate_hz, self.t0_s)

    def sliced(self, start_s: float, end_s: float) -> "Waveform":
        """Extract the samples whose times fall in ``[start_s, end_s)``."""
        if end_s <= start_s:
            raise SpectrumError(f"empty slice requested: [{start_s}, {end_s})")
        i0 = max(0, int(np.ceil((start_s - self.t0_s) * self.sample_rate_hz - 1e-9)))
        i1 = min(
            self.n_samples,
            int(np.ceil((end_s - self.t0_s) * self.sample_rate_hz - 1e-9)),
        )
        if i1 <= i0:
            raise SpectrumError(
                f"slice [{start_s}, {end_s}) does not overlap waveform "
                f"[{self.t0_s}, {self.end_s})"
            )
        return Waveform(
            self.samples[i0:i1].copy(),
            self.sample_rate_hz,
            self.t0_s + i0 / self.sample_rate_hz,
        )

    def window(self, offset_samples: int, length_samples: int) -> "Waveform":
        """Extract ``length_samples`` starting ``offset_samples`` in.

        Used by the multi-tag bin test, which compares FFT magnitudes over
        ``[0, W)`` and ``[tau, tau + W)`` windows of the same capture (§5).
        """
        if offset_samples < 0 or length_samples <= 0:
            raise SpectrumError(
                f"invalid window offset={offset_samples} length={length_samples}"
            )
        if offset_samples + length_samples > self.n_samples:
            raise SpectrumError(
                f"window [{offset_samples}, {offset_samples + length_samples}) "
                f"exceeds waveform of {self.n_samples} samples"
            )
        return Waveform(
            self.samples[offset_samples : offset_samples + length_samples].copy(),
            self.sample_rate_hz,
            self.t0_s + offset_samples / self.sample_rate_hz,
        )

    def __add__(self, other: "Waveform") -> "Waveform":
        """Superpose two waveforms, aligning them on the absolute time axis.

        The result spans the union of both time ranges; start-time offsets
        are rounded to the nearest sample (sub-sample offsets belong in the
        channel phase, not the sample grid).
        """
        if not isinstance(other, Waveform):
            return NotImplemented
        if abs(self.sample_rate_hz - other.sample_rate_hz) > 1e-6:
            raise ConfigurationError(
                "cannot add waveforms with different sample rates "
                f"({self.sample_rate_hz} vs {other.sample_rate_hz})"
            )
        fs = self.sample_rate_hz
        t0 = min(self.t0_s, other.t0_s)
        off_a = int(round((self.t0_s - t0) * fs))
        off_b = int(round((other.t0_s - t0) * fs))
        n = max(off_a + self.n_samples, off_b + other.n_samples)
        out = np.zeros(n, dtype=np.complex128)
        out[off_a : off_a + self.n_samples] += self.samples
        out[off_b : off_b + other.n_samples] += other.samples
        return Waveform(out, fs, t0)

    def __len__(self) -> int:
        return self.n_samples
