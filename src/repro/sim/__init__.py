"""Discrete-event world: clocks, media, traffic, mobility, parking, scenes."""

from .events import Event, EventScheduler
from .clock import DriftingClock, NtpClock
from .medium import AirLog, Medium, ReaderNode, Transmission, TxKind
from .traffic import IntersectionSimulator, PoissonArrivals, TrafficLight, TrafficSample
from .mobility import ConstantSpeedTrajectory, DriveBy
from .parking import ParkingSpot, ParkingStreet
from .scenario import (
    Scene,
    city_corridor_scene,
    corridor_scene,
    intersection_scene,
    parking_scene,
    two_pole_speed_scene,
)

__all__ = [
    "Event",
    "EventScheduler",
    "DriftingClock",
    "NtpClock",
    "AirLog",
    "Medium",
    "ReaderNode",
    "Transmission",
    "TxKind",
    "IntersectionSimulator",
    "PoissonArrivals",
    "TrafficLight",
    "TrafficSample",
    "ConstantSpeedTrajectory",
    "DriveBy",
    "ParkingSpot",
    "ParkingStreet",
    "Scene",
    "city_corridor_scene",
    "corridor_scene",
    "intersection_scene",
    "parking_scene",
    "two_pole_speed_scene",
]
