"""Scene builders: deployable worlds for examples, tests and benchmarks.

A :class:`Scene` bundles tags, road geometry, reader arrays and the
channel into one object that can mint :class:`StaticCollisionSimulator`
instances per reader. The builders mirror the paper's deployments
(Fig 10): curbside parking under a pole (§12.2), two pole stations for
speed runs (§12.3), and a queue of cars at a signalized intersection
(Fig 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..channel.antenna import TriangleArray
from ..channel.collision import StaticCollisionSimulator
from ..channel.geometry import RoadSegment
from ..channel.propagation import LosChannel
from ..channel.noise import NoiseModel
from ..constants import (
    DEFAULT_SAMPLE_RATE_HZ,
    EXPERIMENT_POLE_HEIGHT_M,
    LANE_WIDTH_M,
    READER_LO_HZ,
    SPEED_EXPERIMENT_BASELINE_M,
)
from ..datasets import empirical_cfo_dataset
from ..errors import ConfigurationError
from ..phy.oscillator import CfoModel
from ..phy.transponder import Transponder
from ..phy.packet import TransponderPacket
from ..utils import as_rng
from .parking import ParkingStreet

__all__ = [
    "Scene",
    "parking_scene",
    "two_pole_speed_scene",
    "intersection_scene",
    "corridor_scene",
    "city_corridor_scene",
    "make_tags",
]


def make_tags(
    positions_m: np.ndarray,
    cfo_model: CfoModel | None = None,
    rng=None,
) -> list[Transponder]:
    """Tags at given positions with carriers drawn from a CFO model."""
    rng = as_rng(rng)
    positions_m = np.atleast_2d(np.asarray(positions_m, dtype=np.float64))
    model = cfo_model or empirical_cfo_dataset()
    oscillators = model.sample_oscillators(positions_m.shape[0], rng)
    return [
        Transponder(
            packet=TransponderPacket.random(rng),
            oscillator=osc,
            position_m=pos,
            rng=rng,
        )
        for osc, pos in zip(oscillators, positions_m)
    ]


@dataclass
class Scene:
    """A deployable world: tags + road + reader arrays + channel.

    Attributes:
        tags: the transponders present.
        road: the road segment (for localization constraints).
        arrays: one antenna triangle per reader pole.
        channel: propagation model shared by all links.
        lo_hz / sample_rate_hz / noise_power_w: receiver parameters.
    """

    tags: list[Transponder]
    road: RoadSegment
    arrays: list[TriangleArray]
    channel: object = field(default_factory=LosChannel)
    lo_hz: float = READER_LO_HZ
    sample_rate_hz: float = DEFAULT_SAMPLE_RATE_HZ
    noise_power_w: float = field(
        default_factory=lambda: NoiseModel().power_w(DEFAULT_SAMPLE_RATE_HZ)
    )

    def simulator(self, array_index: int = 0, rng=None) -> StaticCollisionSimulator:
        """A repeated-query simulator as seen from one reader."""
        if not 0 <= array_index < len(self.arrays):
            raise ConfigurationError(f"no array {array_index}")
        return StaticCollisionSimulator(
            tags=self.tags,
            antenna_positions_m=self.arrays[array_index].positions_m,
            channel=self.channel,
            lo_hz=self.lo_hz,
            sample_rate_hz=self.sample_rate_hz,
            noise_power_w=self.noise_power_w,
            rng=rng,
        )

    def reader(self, array_index: int = 0):
        """A :class:`~repro.core.reader.CaraokeReader` for one pole."""
        from ..core.localization import ReaderGeometry
        from ..core.reader import CaraokeReader

        if not 0 <= array_index < len(self.arrays):
            raise ConfigurationError(f"no array {array_index}")
        geometry = ReaderGeometry(self.arrays[array_index], self.road)
        return CaraokeReader(geometry=geometry, sample_rate_hz=self.sample_rate_hz)


def parking_scene(
    target_spots: list[int],
    n_background_cars: int = 3,
    pole_height_m: float = EXPERIMENT_POLE_HEIGHT_M,
    n_spots: int = 6,
    rng=None,
    cfo_model: CfoModel | None = None,
) -> tuple[Scene, ParkingStreet, list[np.ndarray]]:
    """The §12.2 layout: a pole watching a row of curbside spots.

    The pole stands at the origin; the road runs along +x; parked cars sit
    across the road at y = -(lane + parking offset). Background cars are
    parked in other random spots (their tags collide with the targets').

    Returns:
        (scene, street, target tag positions).
    """
    rng = as_rng(rng)
    curb_y = -(LANE_WIDTH_M * 1.5)
    street = ParkingStreet(
        origin_m=np.array([2.0, curb_y, 0.0]), n_spots=n_spots, curb_offset_m=0.0
    )
    positions = []
    for spot_index in target_spots:
        positions.append(street.park(spot_index).transponder_position())
    free = street.free_spots()
    rng.shuffle(free)
    for spot_index in free[:n_background_cars]:
        positions.append(street.park(spot_index).transponder_position())

    tags = make_tags(np.array(positions), cfo_model=cfo_model, rng=rng)
    array = TriangleArray.street_pole(np.array([0.0, 0.0, pole_height_m]))
    road = RoadSegment(
        x_min_m=-10.0,
        x_max_m=street.origin_m[0] + n_spots * street.spot_length_m + 10.0,
        y_center_m=curb_y / 2.0,
        width_m=abs(curb_y) + LANE_WIDTH_M,
    )
    scene = Scene(tags=tags, road=road, arrays=[array])
    return scene, street, positions[: len(target_spots)]


def two_pole_speed_scene(
    baseline_m: float = SPEED_EXPERIMENT_BASELINE_M,
    pole_height_m: float = EXPERIMENT_POLE_HEIGHT_M,
    road_width_m: float = 2.0 * LANE_WIDTH_M,
    stagger_m: float = 5.0,
) -> tuple[list[TriangleArray], RoadSegment]:
    """The §12.3 layout: two measurement stations along a straight road.

    Each station is a pair of readers on opposite sides of the road
    (localization needs two AoA conics, §6), staggered slightly along x so
    the conic intersection is unambiguous. Station 1 sits near x = 0,
    station 2 at x = baseline.

    Returns:
        (four arrays: [station1-north, station1-south, station2-north,
        station2-south], road).
    """
    road = RoadSegment(
        x_min_m=-30.0,
        x_max_m=baseline_m + 30.0,
        y_center_m=0.0,
        width_m=road_width_m,
    )
    half = road_width_m / 2.0 + 1.0  # poles a meter behind the curb
    arrays = [
        TriangleArray.street_pole(
            np.array([0.0, half, pole_height_m]), toward_road=-1.0
        ),
        TriangleArray.street_pole(
            np.array([stagger_m, -half, pole_height_m]), toward_road=1.0
        ),
        TriangleArray.street_pole(
            np.array([baseline_m, half, pole_height_m]), toward_road=-1.0
        ),
        TriangleArray.street_pole(
            np.array([baseline_m + stagger_m, -half, pole_height_m]), toward_road=1.0
        ),
    ]
    return arrays, road


def corridor_scene(
    pole_xs_m: list[float],
    lane_ys_m: list[float],
    cars: list[tuple[float, int]],
    pole_height_m: float = EXPERIMENT_POLE_HEIGHT_M,
    pole_setback_m: float = 1.0,
    rng=None,
    cfo_model: CfoModel | None = None,
) -> Scene:
    """A multi-lane road corridor watched by several reader poles.

    The multi-reader, multi-lane deployment a
    :class:`~repro.core.network.ReaderNetwork` drives: poles stand along
    the +y curb at the given x positions, lanes run along x at the given
    y offsets (negative = into the road as seen from the poles), and each
    car is placed at an ``(x, lane index)`` pair.

    Args:
        pole_xs_m: along-road x of each reader pole.
        lane_ys_m: cross-road y of each lane center.
        cars: one ``(x_m, lane_index)`` per car — an along-road position
            in meters and an integer index into ``lane_ys_m``.
        pole_height_m / pole_setback_m: pole geometry; poles stand
            ``setback`` meters behind the curb.
        rng / cfo_model: tag randomness, as in :func:`make_tags`.

    Returns:
        A scene with one antenna array per pole and one tag per car.
    """
    rng = as_rng(rng)
    if not lane_ys_m:
        raise ConfigurationError("need at least one lane")
    if not pole_xs_m:
        raise ConfigurationError("need at least one pole")
    positions = []
    for x, lane_index in cars:
        if lane_index != int(lane_index):
            raise ConfigurationError(
                f"lane index must be an integer, got {lane_index} "
                "(lane_ys_m holds the cross-road meters)"
            )
        if not 0 <= int(lane_index) < len(lane_ys_m):
            raise ConfigurationError(f"no lane {lane_index}")
        positions.append([float(x), float(lane_ys_m[int(lane_index)]), 1.0])
    tags = (
        make_tags(np.array(positions), cfo_model=cfo_model, rng=rng)
        if positions
        else []
    )
    arrays = [
        TriangleArray.street_pole(np.array([float(x), pole_setback_m, pole_height_m]))
        for x in pole_xs_m
    ]
    y_lo = min(lane_ys_m) - LANE_WIDTH_M / 2.0
    y_hi = max(lane_ys_m) + LANE_WIDTH_M / 2.0
    xs = [x for x, _ in cars] + list(pole_xs_m)
    road = RoadSegment(
        x_min_m=min(xs) - 20.0,
        x_max_m=max(xs) + 20.0,
        y_center_m=(y_lo + y_hi) / 2.0,
        width_m=y_hi - y_lo,
    )
    return Scene(tags=tags, road=road, arrays=arrays)


def city_corridor_scene(
    n_poles: int = 8,
    pole_spacing_m: float = 40.0,
    lane_ys_m: tuple[float, ...] = (-1.75, -5.25),
    n_cars: int = 100,
    speed_range_m_s: tuple[float, float] = (8.0, 18.0),
    entry_window_s: float = 20.0,
    entry: str = "stream",
    pole_height_m: float = EXPERIMENT_POLE_HEIGHT_M,
    pole_setback_m: float = 1.0,
    origin_x_m: float = 0.0,
    rng=None,
    cfo_model: CfoModel | None = None,
):
    """A full city corridor: a row of poles and a stream of moving cars.

    The deployment the :class:`~repro.sim.city.CityCorridor` engine
    drives: ``n_poles`` reader poles every ``pole_spacing_m`` meters
    along the +y curb, and ``n_cars`` cars that pick a lane and drive
    through at a constant speed drawn from ``speed_range_m_s``. With
    ``entry="stream"`` cars enter at the corridor's upstream end,
    staggered uniformly over ``entry_window_s``; with ``entry="spread"``
    they start at t=0 at uniform positions along the corridor, so every
    pole has traffic from the first query (useful for short saturation
    runs).

    ``origin_x_m`` shifts the whole deployment (poles, road, cars) along
    the city axis: a :class:`~repro.sim.city.mesh.CityMesh` lays its
    corridor edges out in one global frame, far enough apart that
    different streets share the clock but not the ether.

    Returns:
        ``(scene, trajectories)`` — a :class:`Scene` whose tags sit at
        their entry positions, plus one
        :class:`~repro.sim.mobility.ConstantSpeedTrajectory` per tag
        (``trajectories[i]`` moves ``scene.tags[i]``).
    """
    rng = as_rng(rng)
    if n_poles < 1:
        raise ConfigurationError("need at least one pole")
    if n_cars < 0:
        raise ConfigurationError("car count must be non-negative")
    from .mobility import ConstantSpeedTrajectory

    pole_xs = [origin_x_m + k * pole_spacing_m for k in range(n_poles)]
    x_min = origin_x_m - pole_spacing_m / 2.0
    x_max = pole_xs[-1] + pole_spacing_m / 2.0
    y_lo = min(lane_ys_m) - LANE_WIDTH_M / 2.0
    y_hi = max(lane_ys_m) + LANE_WIDTH_M / 2.0
    road = RoadSegment(
        x_min_m=x_min,
        x_max_m=x_max,
        y_center_m=(y_lo + y_hi) / 2.0,
        width_m=y_hi - y_lo,
    )
    if entry not in ("stream", "spread"):
        raise ConfigurationError(f"unknown entry mode {entry!r}")
    positions = []
    trajectories = []
    for _ in range(n_cars):
        lane_y = float(lane_ys_m[int(rng.integers(0, len(lane_ys_m)))])
        speed = float(rng.uniform(*speed_range_m_s))
        if entry == "stream":
            entry_s = float(rng.uniform(0.0, entry_window_s))
            start_x = x_min
        else:
            entry_s = 0.0
            start_x = float(rng.uniform(x_min, x_max))
        start = np.array([start_x, lane_y, 1.0])
        positions.append(start)
        trajectories.append(
            ConstantSpeedTrajectory(
                start_m=start,
                velocity_m_s=np.array([speed, 0.0, 0.0]),
                t0_s=entry_s,
            )
        )
    tags = (
        make_tags(np.array(positions), cfo_model=cfo_model, rng=rng)
        if positions
        else []
    )
    arrays = [
        TriangleArray.street_pole(
            np.array([float(x), pole_setback_m, pole_height_m])
        )
        for x in pole_xs
    ]
    scene = Scene(tags=tags, road=road, arrays=arrays)
    return scene, trajectories


def intersection_scene(
    queue_length: int,
    lane_y_m: float = -LANE_WIDTH_M / 2.0,
    car_spacing_m: float = 7.0,
    stop_line_x_m: float = 4.0,
    pole_height_m: float = EXPERIMENT_POLE_HEIGHT_M,
    rng=None,
    cfo_model: CfoModel | None = None,
) -> Scene:
    """A queue of tagged cars waiting at a light, watched from a pole.

    Car k queues at ``stop_line + k * spacing`` along the approach; the
    reader pole stands at the origin (the intersection corner). Used by
    the Fig 12 benchmark to turn queue sizes into actual collisions.
    """
    rng = as_rng(rng)
    if queue_length < 0:
        raise ConfigurationError("queue length must be non-negative")
    positions = np.array(
        [
            [stop_line_x_m + k * car_spacing_m + rng.uniform(-1.0, 1.0), lane_y_m, 1.0]
            for k in range(queue_length)
        ]
    ).reshape(queue_length, 3)
    tags = make_tags(positions, cfo_model=cfo_model, rng=rng) if queue_length else []
    array = TriangleArray.street_pole(np.array([0.0, 0.0, pole_height_m]))
    road = RoadSegment(
        x_min_m=-20.0,
        x_max_m=stop_line_x_m + max(queue_length, 1) * car_spacing_m + 20.0,
        y_center_m=lane_y_m,
        width_m=2 * LANE_WIDTH_M,
    )
    return Scene(tags=tags, road=road, arrays=[array])
