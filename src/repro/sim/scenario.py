"""Scene builders: deployable worlds for examples, tests and benchmarks.

A :class:`Scene` bundles tags, road geometry, reader arrays and the
channel into one object that can mint :class:`StaticCollisionSimulator`
instances per reader. The builders mirror the paper's deployments
(Fig 10): curbside parking under a pole (§12.2), two pole stations for
speed runs (§12.3), and a queue of cars at a signalized intersection
(Fig 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..channel.antenna import TriangleArray
from ..channel.collision import StaticCollisionSimulator
from ..channel.geometry import RoadSegment
from ..channel.propagation import LosChannel
from ..channel.noise import NoiseModel
from ..constants import (
    DEFAULT_SAMPLE_RATE_HZ,
    EXPERIMENT_POLE_HEIGHT_M,
    LANE_WIDTH_M,
    READER_LO_HZ,
    SPEED_EXPERIMENT_BASELINE_M,
)
from ..datasets import empirical_cfo_dataset
from ..errors import ConfigurationError
from ..phy.oscillator import CfoModel
from ..phy.transponder import Transponder
from ..phy.packet import TransponderPacket
from ..utils import as_rng
from .parking import ParkingStreet

__all__ = ["Scene", "parking_scene", "two_pole_speed_scene", "intersection_scene", "make_tags"]


def make_tags(
    positions_m: np.ndarray,
    cfo_model: CfoModel | None = None,
    rng=None,
) -> list[Transponder]:
    """Tags at given positions with carriers drawn from a CFO model."""
    rng = as_rng(rng)
    positions_m = np.atleast_2d(np.asarray(positions_m, dtype=np.float64))
    model = cfo_model or empirical_cfo_dataset()
    oscillators = model.sample_oscillators(positions_m.shape[0], rng)
    return [
        Transponder(
            packet=TransponderPacket.random(rng),
            oscillator=osc,
            position_m=pos,
            rng=rng,
        )
        for osc, pos in zip(oscillators, positions_m)
    ]


@dataclass
class Scene:
    """A deployable world: tags + road + reader arrays + channel.

    Attributes:
        tags: the transponders present.
        road: the road segment (for localization constraints).
        arrays: one antenna triangle per reader pole.
        channel: propagation model shared by all links.
        lo_hz / sample_rate_hz / noise_power_w: receiver parameters.
    """

    tags: list[Transponder]
    road: RoadSegment
    arrays: list[TriangleArray]
    channel: object = field(default_factory=LosChannel)
    lo_hz: float = READER_LO_HZ
    sample_rate_hz: float = DEFAULT_SAMPLE_RATE_HZ
    noise_power_w: float = field(
        default_factory=lambda: NoiseModel().power_w(DEFAULT_SAMPLE_RATE_HZ)
    )

    def simulator(self, array_index: int = 0, rng=None) -> StaticCollisionSimulator:
        """A repeated-query simulator as seen from one reader."""
        if not 0 <= array_index < len(self.arrays):
            raise ConfigurationError(f"no array {array_index}")
        return StaticCollisionSimulator(
            tags=self.tags,
            antenna_positions_m=self.arrays[array_index].positions_m,
            channel=self.channel,
            lo_hz=self.lo_hz,
            sample_rate_hz=self.sample_rate_hz,
            noise_power_w=self.noise_power_w,
            rng=rng,
        )


def parking_scene(
    target_spots: list[int],
    n_background_cars: int = 3,
    pole_height_m: float = EXPERIMENT_POLE_HEIGHT_M,
    n_spots: int = 6,
    rng=None,
    cfo_model: CfoModel | None = None,
) -> tuple[Scene, ParkingStreet, list[np.ndarray]]:
    """The §12.2 layout: a pole watching a row of curbside spots.

    The pole stands at the origin; the road runs along +x; parked cars sit
    across the road at y = -(lane + parking offset). Background cars are
    parked in other random spots (their tags collide with the targets').

    Returns:
        (scene, street, target tag positions).
    """
    rng = as_rng(rng)
    curb_y = -(LANE_WIDTH_M * 1.5)
    street = ParkingStreet(
        origin_m=np.array([2.0, curb_y, 0.0]), n_spots=n_spots, curb_offset_m=0.0
    )
    positions = []
    for spot_index in target_spots:
        positions.append(street.park(spot_index).transponder_position())
    free = street.free_spots()
    rng.shuffle(free)
    for spot_index in free[:n_background_cars]:
        positions.append(street.park(spot_index).transponder_position())

    tags = make_tags(np.array(positions), cfo_model=cfo_model, rng=rng)
    array = TriangleArray.street_pole(np.array([0.0, 0.0, pole_height_m]))
    road = RoadSegment(
        x_min_m=-10.0,
        x_max_m=street.origin_m[0] + n_spots * street.spot_length_m + 10.0,
        y_center_m=curb_y / 2.0,
        width_m=abs(curb_y) + LANE_WIDTH_M,
    )
    scene = Scene(tags=tags, road=road, arrays=[array])
    return scene, street, positions[: len(target_spots)]


def two_pole_speed_scene(
    baseline_m: float = SPEED_EXPERIMENT_BASELINE_M,
    pole_height_m: float = EXPERIMENT_POLE_HEIGHT_M,
    road_width_m: float = 2.0 * LANE_WIDTH_M,
    stagger_m: float = 5.0,
) -> tuple[list[TriangleArray], RoadSegment]:
    """The §12.3 layout: two measurement stations along a straight road.

    Each station is a pair of readers on opposite sides of the road
    (localization needs two AoA conics, §6), staggered slightly along x so
    the conic intersection is unambiguous. Station 1 sits near x = 0,
    station 2 at x = baseline.

    Returns:
        (four arrays: [station1-north, station1-south, station2-north,
        station2-south], road).
    """
    road = RoadSegment(
        x_min_m=-30.0,
        x_max_m=baseline_m + 30.0,
        y_center_m=0.0,
        width_m=road_width_m,
    )
    half = road_width_m / 2.0 + 1.0  # poles a meter behind the curb
    arrays = [
        TriangleArray.street_pole(
            np.array([0.0, half, pole_height_m]), toward_road=-1.0
        ),
        TriangleArray.street_pole(
            np.array([stagger_m, -half, pole_height_m]), toward_road=1.0
        ),
        TriangleArray.street_pole(
            np.array([baseline_m, half, pole_height_m]), toward_road=-1.0
        ),
        TriangleArray.street_pole(
            np.array([baseline_m + stagger_m, -half, pole_height_m]), toward_road=1.0
        ),
    ]
    return arrays, road


def intersection_scene(
    queue_length: int,
    lane_y_m: float = -LANE_WIDTH_M / 2.0,
    car_spacing_m: float = 7.0,
    stop_line_x_m: float = 4.0,
    pole_height_m: float = EXPERIMENT_POLE_HEIGHT_M,
    rng=None,
    cfo_model: CfoModel | None = None,
) -> Scene:
    """A queue of tagged cars waiting at a light, watched from a pole.

    Car k queues at ``stop_line + k * spacing`` along the approach; the
    reader pole stands at the origin (the intersection corner). Used by
    the Fig 12 benchmark to turn queue sizes into actual collisions.
    """
    rng = as_rng(rng)
    if queue_length < 0:
        raise ConfigurationError("queue length must be non-negative")
    positions = np.array(
        [
            [stop_line_x_m + k * car_spacing_m + rng.uniform(-1.0, 1.0), lane_y_m, 1.0]
            for k in range(queue_length)
        ]
    ).reshape(queue_length, 3)
    tags = make_tags(positions, cfo_model=cfo_model, rng=rng) if queue_length else []
    array = TriangleArray.street_pole(np.array([0.0, 0.0, pole_height_m]))
    road = RoadSegment(
        x_min_m=-20.0,
        x_max_m=stop_line_x_m + max(queue_length, 1) * car_spacing_m + 20.0,
        y_center_m=lane_y_m,
        width_m=2 * LANE_WIDTH_M,
    )
    return Scene(tags=tags, road=road, arrays=[array])
