"""Shared-medium simulation for the multi-reader MAC (§9).

Models the §9 interference taxonomy on an event timeline:

* a **query** triggers every in-range tag (even when queries from several
  readers overlap — the superposition of sinewaves is still a valid
  trigger);
* a **tag response** overlapped by a *query* transmission is corrupted at
  readers trying to receive it (the harmful case CSMA must avoid);
* tag responses overlapping each other are *not* corruption — decoding
  collisions is the whole point of Caraoke.

Readers run the :class:`~repro.core.mac.ReaderMac` policy against what
they can hear. The benchmark compares corrupted-response rates with CSMA
on versus off (ALOHA-style blind querying).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


from ..constants import CSMA_LISTEN_S, QUERY_DURATION_S, RESPONSE_DURATION_S, TURNAROUND_S
from ..core.mac import CsmaState, ReaderMac
from ..errors import SimulationError
from ..utils import as_rng
from .events import EventScheduler

__all__ = ["TxKind", "Transmission", "ReaderNode", "Medium"]


class TxKind(enum.Enum):
    QUERY = "query"
    RESPONSE = "response"


@dataclass(frozen=True)
class Transmission:
    """One on-air transmission interval."""

    kind: TxKind
    source: str
    start_s: float
    end_s: float

    def overlaps(self, other: "Transmission") -> bool:
        return self.start_s < other.end_s and other.start_s < self.end_s


@dataclass
class ReaderNode:
    """One reader on the shared medium.

    Attributes:
        name: identifier.
        use_csma: whether the §9 listen-before-talk policy is enforced;
            False models a naive periodic reader (the ablation baseline).
        query_interval_s: target cadence of queries.
        jitter_s: uniform jitter applied to each cadence step.
    """

    name: str
    use_csma: bool = True
    query_interval_s: float = 1e-3
    jitter_s: float = 0.2e-3
    mac: ReaderMac = field(default_factory=ReaderMac)
    queries_sent: int = 0
    queries_deferred: int = 0


class Medium:
    """The shared channel: schedules queries, responses and corruption.

    All readers hear all readers (same street), and ``n_tags`` tags are in
    range of every reader. Per query, every tag responds after the 100 µs
    turnaround; the response is *corrupted* if any query transmission
    overlaps it.
    """

    def __init__(self, n_tags: int = 3, rng=None):
        if n_tags < 0:
            raise SimulationError("n_tags must be non-negative")
        self.n_tags = n_tags
        self.rng = as_rng(rng)
        self.readers: list[ReaderNode] = []
        self.transmissions: list[Transmission] = []
        self.responses: list[Transmission] = []
        self.triggered_queries = 0

    def add_reader(self, reader: ReaderNode) -> None:
        self.readers.append(reader)

    # -- simulation ------------------------------------------------------------

    def run(self, duration_s: float) -> dict:
        """Run the medium for a duration; returns summary statistics."""
        scheduler = EventScheduler()
        for reader in self.readers:
            first = float(self.rng.uniform(0.0, reader.query_interval_s))
            scheduler.schedule(first, self._make_attempt(reader), label=f"{reader.name}-first")
        scheduler.run_until(duration_s)
        return self.stats()

    def _make_attempt(self, reader: ReaderNode):
        def attempt(scheduler: EventScheduler) -> None:
            now = scheduler.now_s
            if reader.use_csma and not reader.mac.can_transmit(now, self._heard_state(now)):
                reader.queries_deferred += 1
                retry = reader.mac.next_opportunity(now, self._heard_state(now))
                # Defer; small jitter avoids lock-step retries of two readers.
                retry += float(self.rng.uniform(0.0, 20e-6))
                scheduler.schedule(retry, self._make_attempt(reader), label=f"{reader.name}-retry")
                return
            self._transmit_query(scheduler, reader, now)
            next_attempt = now + reader.query_interval_s + float(
                self.rng.uniform(-reader.jitter_s, reader.jitter_s)
            )
            scheduler.schedule(
                max(next_attempt, now + 1e-9),
                self._make_attempt(reader),
                label=f"{reader.name}-next",
            )

        return attempt

    def _transmit_query(self, scheduler: EventScheduler, reader: ReaderNode, now: float) -> None:
        query = Transmission(TxKind.QUERY, reader.name, now, now + QUERY_DURATION_S)
        self.transmissions.append(query)
        reader.queries_sent += 1
        self.triggered_queries += 1
        # Every in-range tag responds 100 us after the query ends (§3).
        # Tags triggered by overlapping queries respond once per trigger
        # window; coincident triggers merge into the same response slot.
        response_start = query.end_s + TURNAROUND_S
        for tag_index in range(self.n_tags):
            response = Transmission(
                TxKind.RESPONSE,
                f"tag{tag_index}",
                response_start,
                response_start + RESPONSE_DURATION_S,
            )
            self.responses.append(response)
            self.transmissions.append(response)

    def _heard_state(self, now: float) -> CsmaState:
        """What a reader carrier-sensing at ``now`` has heard recently."""
        state = CsmaState()
        horizon = now - 10 * CSMA_LISTEN_S
        for tx in self.transmissions:
            if tx.end_s >= horizon and tx.start_s <= now:
                state.add_busy(tx.start_s, min(tx.end_s, now + 1e-12))
        return state

    # -- metrics ------------------------------------------------------------------

    def corrupted_responses(self) -> list[Transmission]:
        """Responses overlapped by some reader's query transmission."""
        queries = [t for t in self.transmissions if t.kind is TxKind.QUERY]
        corrupted = []
        for response in self.responses:
            if any(q.overlaps(response) for q in queries):
                corrupted.append(response)
        return corrupted

    def stats(self) -> dict:
        """Summary: queries, responses, corruption rate, deferral counts."""
        corrupted = self.corrupted_responses()
        n_responses = len(self.responses)
        return {
            "queries_sent": sum(r.queries_sent for r in self.readers),
            "queries_deferred": sum(r.queries_deferred for r in self.readers),
            "responses": n_responses,
            "corrupted_responses": len(corrupted),
            "corruption_rate": len(corrupted) / n_responses if n_responses else 0.0,
        }
