"""Shared-medium simulation for the multi-reader MAC (§9).

Models the §9 interference taxonomy on an event timeline:

* a **query** triggers every in-range tag (even when queries from several
  readers overlap — the superposition of sinewaves is still a valid
  trigger);
* a **tag response** overlapped by a *query* transmission is corrupted at
  readers trying to receive it (the harmful case CSMA must avoid);
* tag responses overlapping each other are *not* corruption — decoding
  collisions is the whole point of Caraoke.

The taxonomy itself lives in :class:`AirLog`, a reusable record of
everything on the air: it answers carrier-sense questions (what has a
reader heard by time t, classified by kind) and corruption questions
(which responses were stepped on by queries). :class:`Medium` drives an
abstract reader population over one ``AirLog`` for the §9 benchmark; the
city corridor engine (:mod:`repro.sim.city`) drives *real* reader
stations over another.

Readers run the :class:`~repro.core.mac.ReaderMac` policy against what
they can hear. The benchmark compares corrupted-response rates with CSMA
on versus off (ALOHA-style blind querying).
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass, field


from ..constants import QUERY_DURATION_S, RESPONSE_DURATION_S, TURNAROUND_S
from ..core.mac import CsmaState, ReaderMac
from ..errors import SimulationError
from ..utils import as_rng
from .events import EventScheduler

__all__ = ["TxKind", "Transmission", "AirLog", "ReaderNode", "Medium"]


class TxKind(enum.Enum):
    QUERY = "query"
    RESPONSE = "response"


@dataclass(frozen=True)
class Transmission:
    """One on-air transmission interval.

    ``triggered_by`` is provenance for responses: the reader whose query
    opened this response window. One physical response is audible at
    *every* reader in range — the shared-medium bookkeeping (e.g. the
    city corridor's cross-pole response pool) uses this field to tie
    overheard captures back to the transmission that explains them.

    ``x_m`` is the transmitter's along-city coordinate, when the caller
    models a deployment larger than one street: a city mesh shares one
    time axis across corridors that are physically far apart, and a
    query on one street neither carrier-senses nor corrupts anything on
    another. None (the default) means "audible everywhere" — the
    single-street behavior every pre-mesh caller gets unchanged.
    """

    kind: TxKind
    source: str
    start_s: float
    end_s: float
    triggered_by: str | None = None
    x_m: float | None = None

    def overlaps(self, other: "Transmission") -> bool:
        return self.start_s < other.end_s and other.start_s < self.end_s

    def reaches(self, x_m: float | None, range_m: float | None) -> bool:
        """Whether a listener at ``x_m`` hears this transmission.

        Distance gating only applies when all three of the
        transmission's coordinate, the listener's coordinate and the
        range are known — any None falls back to "hears everything",
        the single-street model.
        """
        if range_m is None or x_m is None or self.x_m is None:
            return True
        return abs(self.x_m - x_m) <= range_m


class AirLog:
    """Everything transmitted on one shared channel, in record order.

    The log is the §9 interference taxonomy made queryable:

    * :meth:`heard_state` — the :class:`~repro.core.mac.CsmaState` a
      reader carrier-sensing at a given instant has built up, with each
      interval classified by kind (queries are bare sinewaves and thus
      recognizable; a reader hearing one also knows, from the protocol
      timing, when it will end and when its response slot opens).
    * :meth:`corrupted_responses` — every response some query stepped on.
    """

    def __init__(self, sense_slack_s: float = 0.25, obs=None) -> None:
        #: How far behind the newest sensing time a later call may look.
        #: Event engines process a decode burst synchronously, so
        #: sensing times run ahead of the event clock by up to the burst
        #: span; records must not be skipped until they are safely past
        #: any such lookback. Callers that issue longer bursts must size
        #: this to at least the burst span (CityCorridor does).
        self.sense_slack_s = float(sense_slack_s)
        self.transmissions: list[Transmission] = []
        self._queries: list[Transmission] = []
        self._sense_cursor = 0
        # End-of-run sweeps over a *shared* log are repeated per caller
        # (every mesh corridor collects its own result); the log is
        # append-only, so one-slot caches keyed by record count make
        # the repeats O(1) instead of re-sorting/re-scanning the whole
        # city's history each time.
        self._sorted_queries_cache: tuple[int, list[Transmission]] | None = None
        self._corrupted_cache: tuple[tuple[int, float | None], list[Transmission]] | None = None
        #: Nullable observability hook (see :mod:`repro.obs`): counts
        #: every recorded transmission by kind and source.
        self.obs = obs

    def record(self, tx: Transmission) -> Transmission:
        """Append one transmission; returns it for chaining."""
        self.transmissions.append(tx)
        if tx.kind is TxKind.QUERY:
            self._queries.append(tx)
        if self.obs is not None:
            self.obs.count(f"air.{tx.kind.value}", source=tx.source)
        return tx

    def record_query(
        self, source: str, start_s: float, x_m: float | None = None
    ) -> Transmission:
        """Record a standard 20 µs query starting at ``start_s``.

        ``x_m`` optionally places the transmitter along the city axis
        (see :class:`Transmission`); omit it for single-street worlds.
        """
        return self.record(
            Transmission(
                TxKind.QUERY, source, start_s, start_s + QUERY_DURATION_S, x_m=x_m
            )
        )

    def record_response(
        self,
        source: str,
        start_s: float,
        triggered_by: str | None = None,
        x_m: float | None = None,
    ) -> Transmission:
        """Record a standard 512 µs tag response starting at ``start_s``.

        ``triggered_by`` names the reader whose query opened the window,
        so overheard-capture bookkeeping can find the on-air record that
        backs each synthesized capture. ``x_m`` optionally places the
        responding tag along the city axis.
        """
        return self.record(
            Transmission(
                TxKind.RESPONSE,
                source,
                start_s,
                start_s + RESPONSE_DURATION_S,
                triggered_by=triggered_by,
                x_m=x_m,
            )
        )

    def queries(self) -> list[Transmission]:
        return list(self._queries)

    def sorted_queries(self) -> list[Transmission]:
        """Every query in start-time order (cached until the next
        record — callers must not mutate the returned list)."""
        cache = self._sorted_queries_cache
        if cache is None or cache[0] != len(self._queries):
            ordered = sorted(self._queries, key=lambda q: q.start_s)
            self._sorted_queries_cache = (len(self._queries), ordered)
            return ordered
        return cache[1]

    def any_query_overlapping(
        self,
        start_s: float,
        end_s: float,
        exclude_source: str | None = None,
        exclude_start_s: float | None = None,
        x_m: float | None = None,
        hear_range_m: float | None = None,
    ) -> bool:
        """Whether any recorded query steps on the interval.

        ``exclude_source``/``exclude_start_s`` skip one transmission (a
        caller's own query). ``x_m``/``hear_range_m`` restrict the check
        to queries a receiver at that along-city coordinate could hear
        (a mesh question; both default off). Queries are recorded in
        near time order, so the scan walks back from the newest record
        and stops once it is ``sense_slack_s`` past any possible overlap
        — O(recent traffic), not O(run history).
        """
        for query in reversed(self._queries):
            if query.end_s < start_s - self.sense_slack_s:
                # Records are appended in near time order (disorder is
                # bounded by the slack), so nothing earlier in the list
                # can still reach the interval.
                break
            if query.start_s >= end_s or query.end_s <= start_s:
                continue
            if not query.reaches(x_m, hear_range_m):
                continue
            if (
                exclude_source is not None
                and query.source == exclude_source
                and query.start_s == exclude_start_s
            ):
                continue
            return True
        return False

    def responses(self) -> list[Transmission]:
        return [t for t in self.transmissions if t.kind is TxKind.RESPONSE]

    def heard_state(
        self,
        now_s: float,
        horizon_s: float = 10e-3,
        x_m: float | None = None,
        hear_range_m: float | None = None,
    ) -> CsmaState:
        """What a reader carrier-sensing at ``now_s`` knows about the air.

        A started transmission contributes its full interval (the
        protocol fixes each kind's duration, so a reader hearing energy
        begin knows when it will end). Recorded transmissions whose
        start still lies in the future are *announced*: a decode burst's
        remaining 1 ms-cadence queries (§12.4) are predictable from its
        first, and the MAC keeps its own response slot clear of them.
        ``x_m``/``hear_range_m`` place the listener along the city axis:
        transmissions farther than the hearing range contribute nothing
        (distant streets share the clock, not the ether); both default
        off. Transmissions ending more than ``horizon_s`` before
        ``now_s`` are dropped — they cannot affect a 120 µs listen
        decision — and a cursor skips the long-dead prefix of the log
        (records are appended in near time order), so sensing cost
        tracks recent traffic instead of the whole run's history.
        """
        floor = now_s - horizon_s
        prune_floor = floor - self.sense_slack_s
        cursor = self._sense_cursor
        transmissions = self.transmissions
        while (
            cursor < len(transmissions)
            and transmissions[cursor].end_s < prune_floor
        ):
            cursor += 1
        self._sense_cursor = cursor
        return CsmaState.from_heard(
            [
                (tx.start_s, tx.end_s, tx.kind.value)
                for tx in transmissions[cursor:]
                if tx.end_s >= floor and tx.reaches(x_m, hear_range_m)
            ]
        )

    def corrupted_responses(
        self, interference_range_m: float | None = None
    ) -> list[Transmission]:
        """Responses overlapped by some reader's query transmission.

        ``interference_range_m`` gates corruption by along-city distance
        between the query and the response (mesh worlds; positions or
        range missing fall back to "everything interferes"). The sweep
        is cached until the next record, so per-corridor result
        collection over one shared mesh log pays for it once (callers
        must not mutate the returned list).
        """
        key = (len(self.transmissions), interference_range_m)
        cache = self._corrupted_cache
        if cache is not None and cache[0] == key:
            return cache[1]
        queries = self.sorted_queries()
        starts = [q.start_s for q in queries]
        corrupted = []
        for response in self.responses():
            # Only queries starting before the response ends can overlap.
            hi = bisect.bisect_left(starts, response.end_s)
            if any(
                q.overlaps(response) and q.reaches(response.x_m, interference_range_m)
                for q in queries[:hi]
            ):
                corrupted.append(response)
        self._corrupted_cache = (key, corrupted)
        return corrupted

    def response_corrupted(
        self, response: Transmission, interference_range_m: float | None = None
    ) -> bool:
        """Whether one response interval was stepped on by any query
        (within the interference range, when given)."""
        return any(
            q.overlaps(response) and q.reaches(response.x_m, interference_range_m)
            for q in self.queries()
        )


@dataclass
class ReaderNode:
    """One reader on the shared medium.

    Attributes:
        name: identifier.
        use_csma: whether the §9 listen-before-talk policy is enforced;
            False models a naive periodic reader (the ablation baseline).
        query_interval_s: target cadence of queries.
        jitter_s: uniform jitter applied to each cadence step.
    """

    name: str
    use_csma: bool = True
    query_interval_s: float = 1e-3
    jitter_s: float = 0.2e-3
    mac: ReaderMac = field(default_factory=ReaderMac)
    queries_sent: int = 0
    queries_deferred: int = 0


class Medium:
    """The shared channel: schedules queries, responses and corruption.

    All readers hear all readers (same street), and ``n_tags`` tags are in
    range of every reader. Per query, every tag responds after the 100 µs
    turnaround; the response is *corrupted* if any query transmission
    overlaps it.
    """

    def __init__(self, n_tags: int = 3, rng=None, obs=None):
        if n_tags < 0:
            raise SimulationError("n_tags must be non-negative")
        self.n_tags = n_tags
        self.rng = as_rng(rng)
        self.readers: list[ReaderNode] = []
        self.obs = obs
        self.air = AirLog(obs=obs)
        self.triggered_queries = 0

    @property
    def transmissions(self) -> list[Transmission]:
        return self.air.transmissions

    @property
    def responses(self) -> list[Transmission]:
        return self.air.responses()

    def add_reader(self, reader: ReaderNode) -> None:
        self.readers.append(reader)

    # -- simulation ------------------------------------------------------------

    def run(self, duration_s: float) -> dict:
        """Run the medium for a duration; returns summary statistics."""
        scheduler = EventScheduler(obs=self.obs)
        for reader in self.readers:
            first = float(self.rng.uniform(0.0, reader.query_interval_s))
            scheduler.schedule(first, self._make_attempt(reader), label=f"{reader.name}-first")
        scheduler.run_until(duration_s)
        return self.stats()

    def _make_attempt(self, reader: ReaderNode):
        def attempt(scheduler: EventScheduler) -> None:
            now = scheduler.now_s
            if reader.use_csma and not reader.mac.can_transmit(now, self.air.heard_state(now)):
                reader.queries_deferred += 1
                if self.obs is not None:
                    self.obs.count("mac.deferral", station=reader.name)
                retry = reader.mac.next_opportunity(now, self.air.heard_state(now))
                # Defer; small jitter avoids lock-step retries of two readers.
                retry += float(self.rng.uniform(0.0, 20e-6))
                scheduler.schedule(retry, self._make_attempt(reader), label=f"{reader.name}-retry")
                return
            self._transmit_query(scheduler, reader, now)
            next_attempt = now + reader.query_interval_s + float(
                self.rng.uniform(-reader.jitter_s, reader.jitter_s)
            )
            scheduler.schedule(
                max(next_attempt, now + 1e-9),
                self._make_attempt(reader),
                label=f"{reader.name}-next",
            )

        return attempt

    def _transmit_query(self, scheduler: EventScheduler, reader: ReaderNode, now: float) -> None:
        query = self.air.record_query(reader.name, now)
        reader.queries_sent += 1
        self.triggered_queries += 1
        # Every in-range tag responds 100 us after the query ends (§3).
        # Tags triggered by overlapping queries respond once per trigger
        # window; coincident triggers merge into the same response slot.
        response_start = query.end_s + TURNAROUND_S
        for tag_index in range(self.n_tags):
            self.air.record_response(
                f"tag{tag_index}", response_start, triggered_by=reader.name
            )

    # -- metrics ------------------------------------------------------------------

    def corrupted_responses(self) -> list[Transmission]:
        """Responses overlapped by some reader's query transmission."""
        return self.air.corrupted_responses()

    def stats(self) -> dict:
        """Summary: queries, responses, corruption rate, deferral counts."""
        corrupted = self.corrupted_responses()
        n_responses = len(self.responses)
        return {
            "queries_sent": sum(r.queries_sent for r in self.readers),
            "queries_deferred": sum(r.queries_deferred for r in self.readers),
            "responses": n_responses,
            "corrupted_responses": len(corrupted),
            "corruption_rate": len(corrupted) / n_responses if n_responses else 0.0,
        }
