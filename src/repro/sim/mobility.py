"""Car mobility: constant-speed passes for the speed experiments (§12.3).

The speed evaluation drives a car past two pole stations 200 feet apart
at 10-50 mph. :class:`ConstantSpeedTrajectory` provides positions as a
function of time; :class:`DriveBy` computes when the car is best measured
by each station (closest approach) and when it is within radio range.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import READER_RANGE_M
from ..errors import ConfigurationError

__all__ = ["ConstantSpeedTrajectory", "DriveBy"]


@dataclass(frozen=True)
class ConstantSpeedTrajectory:
    """Straight-line motion: ``p(t) = start + v * (t - t0)``."""

    start_m: np.ndarray
    velocity_m_s: np.ndarray
    t0_s: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "start_m", np.asarray(self.start_m, dtype=np.float64))
        object.__setattr__(self, "velocity_m_s", np.asarray(self.velocity_m_s, dtype=np.float64))
        if self.start_m.shape != (3,) or self.velocity_m_s.shape != (3,):
            raise ConfigurationError("start and velocity must be 3-vectors")

    @property
    def speed_m_s(self) -> float:
        return float(np.linalg.norm(self.velocity_m_s))

    def position(self, t_s: float) -> np.ndarray:
        return self.start_m + self.velocity_m_s * (t_s - self.t0_s)

    def time_of_closest_approach(self, point_m: np.ndarray) -> float:
        """When the trajectory passes nearest to a point."""
        point_m = np.asarray(point_m, dtype=np.float64)
        v2 = float(np.dot(self.velocity_m_s, self.velocity_m_s))
        if v2 == 0.0:
            raise ConfigurationError("stationary trajectory has no closest approach")
        delta = point_m - self.start_m
        return self.t0_s + float(np.dot(delta, self.velocity_m_s)) / v2

    def range_interval(
        self, point_m: np.ndarray, range_m: float
    ) -> tuple[float, float] | None:
        """The (enter, exit) times during which ``p(t)`` is within
        ``range_m`` of a point, or None if it never is (including the
        stationary out-of-range case; a stationary in-range trajectory
        returns an unbounded ``(-inf, +inf)`` interval)."""
        point_m = np.asarray(point_m, dtype=np.float64)
        if self.speed_m_s == 0.0:
            if float(np.linalg.norm(self.start_m - point_m)) <= range_m:
                return (float("-inf"), float("inf"))
            return None
        t_close = self.time_of_closest_approach(point_m)
        min_distance = float(np.linalg.norm(self.position(t_close) - point_m))
        if min_distance > range_m:
            return None
        half_chord = float(np.sqrt(range_m**2 - min_distance**2)) / self.speed_m_s
        return (t_close - half_chord, t_close + half_chord)


@dataclass(frozen=True)
class DriveBy:
    """A car passing a sequence of pole stations."""

    trajectory: ConstantSpeedTrajectory
    range_m: float = READER_RANGE_M

    def measurement_time(self, pole_position_m: np.ndarray) -> float:
        """When a station should measure the car: closest approach."""
        return self.trajectory.time_of_closest_approach(pole_position_m)

    def in_range_interval(self, pole_position_m: np.ndarray) -> tuple[float, float] | None:
        """The (enter, exit) times during which the car is in radio range.

        Returns None if the trajectory never comes within range (a parked
        car has no drive-by interval either way — ``measurement_time``
        raises on it first).
        """
        self.measurement_time(pole_position_m)  # reject stationary cars
        return self.trajectory.range_interval(pole_position_m, self.range_m)
