"""Intersection traffic: lights, arrivals, queues (Fig 12).

The Fig 12 experiment deploys a reader at the intersection of streets A
and C and plots, over time, the number of cars each reader counts: a
backlog accumulates during red and drains during green, and street C
carries ~10x street A's traffic while getting only 3x the green time.

The model: Poisson arrivals join a queue at the stop line; during green,
queued cars depart at the saturation rate; cars within the reader's range
are the queued cars plus those passing through. This is the standard
fixed-cycle traffic-signal queue (a D/M/1-flavoured fluid approximation
is deliberately avoided — individual cars matter because the reader
counts discrete transponders).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError, SimulationError
from ..utils import as_rng

__all__ = ["TrafficLight", "PoissonArrivals", "TrafficSample", "IntersectionSimulator"]


@dataclass(frozen=True)
class TrafficLight:
    """A fixed-cycle signal: green, yellow, red, with a phase offset."""

    green_s: float
    yellow_s: float
    red_s: float
    offset_s: float = 0.0

    def __post_init__(self) -> None:
        if min(self.green_s, self.yellow_s, self.red_s) < 0 or self.cycle_s <= 0:
            raise ConfigurationError("invalid light timing")

    @property
    def cycle_s(self) -> float:
        return self.green_s + self.yellow_s + self.red_s

    def phase(self, t_s: float) -> str:
        """"green", "yellow" or "red" at time t."""
        into = (t_s - self.offset_s) % self.cycle_s
        if into < self.green_s:
            return "green"
        if into < self.green_s + self.yellow_s:
            return "yellow"
        return "red"

    def is_go(self, t_s: float) -> bool:
        """Whether cars may depart (green or yellow)."""
        return self.phase(t_s) != "red"

    def is_red_throughout(self, start_s: float, end_s: float) -> bool:
        """Whether the signal shows red for the whole ``[start, end]``.

        Red is the last phase of the cycle, so a red stretch that begins
        at ``start`` lasts exactly until the next cycle boundary.
        """
        if end_s < start_s:
            raise ConfigurationError("interval end precedes start")
        if self.phase(start_s) != "red":
            return False
        into = (start_s - self.offset_s) % self.cycle_s
        return end_s - start_s < self.cycle_s - into


@dataclass
class PoissonArrivals:
    """Memoryless car arrivals at a stop line."""

    rate_per_s: float
    # repro: allow[determinism] — interactive convenience default; mesh.py, the traffic benches and examples all pass a seeded rng
    rng: np.random.Generator = field(default_factory=lambda: as_rng(None), repr=False)

    def __post_init__(self) -> None:
        if self.rate_per_s < 0:
            raise ConfigurationError("arrival rate must be non-negative")
        self.rng = as_rng(self.rng)

    def arrivals_until(self, start_s: float, end_s: float) -> np.ndarray:
        """Arrival times in [start, end), sorted ascending."""
        if end_s <= start_s or self.rate_per_s == 0:
            return np.zeros(0)
        expected = self.rate_per_s * (end_s - start_s)
        n = int(self.rng.poisson(expected))
        return np.sort(self.rng.uniform(start_s, end_s, size=n))


@dataclass(frozen=True)
class TrafficSample:
    """One reader measurement at an intersection approach."""

    t_s: float
    in_range: int
    queued: int
    phase: str


@dataclass
class IntersectionSimulator:
    """One signalized approach watched by a Caraoke reader.

    Attributes:
        light: the signal for this approach.
        arrivals: the arrival process.
        saturation_headway_s: time between departures once flowing (~2 s).
        clear_time_s: how long a departing car remains in reader range.
        transponder_penetration: fraction of cars carrying a tag (§1:
            70-89 % depending on the state); the reader only sees tagged
            cars.
    """

    light: TrafficLight
    arrivals: PoissonArrivals
    saturation_headway_s: float = 2.0
    clear_time_s: float = 4.0
    transponder_penetration: float = 1.0
    # repro: allow[determinism] — interactive convenience default; simulation-critical constructions (benches, examples) pass a seeded rng
    rng: np.random.Generator = field(default_factory=lambda: as_rng(None), repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.transponder_penetration <= 1.0:
            raise ConfigurationError("penetration must be in [0, 1]")
        self.rng = as_rng(self.rng)

    def simulate(self, duration_s: float, sample_period_s: float = 1.0) -> list[TrafficSample]:
        """Run the queue and sample the reader's view periodically."""
        if duration_s <= 0 or sample_period_s <= 0:
            raise SimulationError("duration and sample period must be positive")
        arrival_times = list(self.arrivals.arrivals_until(0.0, duration_s))
        tagged = [
            bool(self.rng.random() < self.transponder_penetration) for _ in arrival_times
        ]

        samples: list[TrafficSample] = []
        queue: list[bool] = []  # queued cars (tagged flag per car)
        departing: list[tuple[float, bool]] = []  # (leaves-range-at, tagged)
        next_arrival = 0
        next_departure_s = 0.0

        t = 0.0
        step = min(sample_period_s / 4.0, 0.25)
        next_sample_s = 0.0
        while t <= duration_s + 1e-9:
            # Arrivals up to t join the queue.
            while next_arrival < len(arrival_times) and arrival_times[next_arrival] <= t:
                queue.append(tagged[next_arrival])
                next_arrival += 1
            # Departures at the saturation rate while the light allows.
            while queue and self.light.is_go(t) and next_departure_s <= t:
                car_tagged = queue.pop(0)
                departing.append((t + self.clear_time_s, car_tagged))
                next_departure_s = t + self.saturation_headway_s
            # Cars that have cleared the reader's range.
            departing = [(leave, tag) for (leave, tag) in departing if leave > t]

            if t + 1e-9 >= next_sample_s:
                tagged_in_range = sum(1 for f in queue if f) + sum(
                    1 for (_, f) in departing if f
                )
                samples.append(
                    TrafficSample(
                        t_s=round(t, 9),
                        in_range=tagged_in_range,
                        queued=len(queue),
                        phase=self.light.phase(t),
                    )
                )
                next_sample_s += sample_period_s
            t += step
        return samples
