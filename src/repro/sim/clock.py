"""Reader clocks and NTP synchronization (§6, §7).

Speed estimation divides a distance by a time interval measured on two
*different* readers, synchronized over the Internet via NTP to "tens of
ms". :class:`NtpClock` models exactly that: a local oscillator with drift,
periodically snapped to true time plus a random sync residual.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..constants import NTP_SYNC_SIGMA_S
from ..errors import ConfigurationError
from ..utils import as_rng

__all__ = ["DriftingClock", "NtpClock"]


@dataclass
class DriftingClock:
    """A free-running clock: offset plus parts-per-million rate error."""

    offset_s: float = 0.0
    drift_ppm: float = 0.0

    def now(self, true_time_s: float) -> float:
        """What this clock reads when the true time is ``true_time_s``."""
        return true_time_s * (1.0 + self.drift_ppm * 1e-6) + self.offset_s


@dataclass
class NtpClock:
    """A drifting clock disciplined by periodic NTP syncs.

    Attributes:
        sync_sigma_s: standard deviation of the residual offset right
            after a sync (the paper's "tens of ms" over LTE).
        sync_interval_s: how often the reader re-syncs.
        drift_ppm: oscillator rate error accumulating between syncs.
    """

    sync_sigma_s: float = NTP_SYNC_SIGMA_S
    sync_interval_s: float = 64.0
    drift_ppm: float = 2.0
    # repro: allow[determinism] — interactive convenience default; the speed/TDoA sims and benches all construct NtpClock with an explicit seeded rng
    rng: np.random.Generator = field(default_factory=lambda: as_rng(None), repr=False)

    def __post_init__(self) -> None:
        if self.sync_interval_s <= 0:
            raise ConfigurationError("sync interval must be positive")
        self.rng = as_rng(self.rng)
        self._last_sync_true_s = 0.0
        self._offset_s = float(self.rng.normal(0.0, self.sync_sigma_s))

    def now(self, true_time_s: float) -> float:
        """Clock reading at a true time, re-syncing as needed.

        Must be called with non-decreasing true times.
        """
        while true_time_s - self._last_sync_true_s >= self.sync_interval_s:
            self._last_sync_true_s += self.sync_interval_s
            self._offset_s = float(self.rng.normal(0.0, self.sync_sigma_s))
        elapsed = true_time_s - self._last_sync_true_s
        return true_time_s + self._offset_s + elapsed * self.drift_ppm * 1e-6

    @property
    def current_offset_s(self) -> float:
        """The present sync residual (for tests and diagnostics)."""
        return self._offset_s
