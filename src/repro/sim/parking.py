"""Street parking geometry (§12.2, Fig 13).

Streets A and B carry 36 curbside spots; the localization experiment
parks tagged cars in spots 1..6 counted from the pole and measures AoA
error per spot. :class:`ParkingStreet` lays the spots out along the curb
and tracks occupancy, so scenarios can place target cars in chosen spots
with colliding parked cars around them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError

__all__ = ["ParkingSpot", "ParkingStreet"]

#: A standard parallel-parking spot length (about 20 feet).
DEFAULT_SPOT_LENGTH_M = 6.1


@dataclass(frozen=True)
class ParkingSpot:
    """One curbside spot.

    Attributes:
        index: 1-based spot number counted from the pole (paper's x-axis
            in Fig 13).
        center_m: (3,) spot center on the road surface.
    """

    index: int
    center_m: np.ndarray

    def transponder_position(self, windshield_height_m: float = 1.0) -> np.ndarray:
        """Where a parked car's windshield tag sits."""
        position = np.asarray(self.center_m, dtype=np.float64).copy()
        position[2] += windshield_height_m
        return position


@dataclass
class ParkingStreet:
    """A row of curbside parking spots along +x from a reference point.

    Attributes:
        origin_m: (3,) road-surface point next to the pole (spot row start).
        n_spots: number of spots.
        spot_length_m: per-spot curb length.
        curb_offset_m: signed y offset of the parked cars' centerline from
            the origin (negative = across from the pole, per our frame).
    """

    origin_m: np.ndarray
    n_spots: int = 6
    spot_length_m: float = DEFAULT_SPOT_LENGTH_M
    curb_offset_m: float = 0.0
    occupied: dict[int, bool] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.origin_m = np.asarray(self.origin_m, dtype=np.float64)
        if self.origin_m.shape != (3,):
            raise ConfigurationError("origin must be a 3-vector")
        if self.n_spots < 1 or self.spot_length_m <= 0:
            raise ConfigurationError("need at least one positive-length spot")

    def spot(self, index: int) -> ParkingSpot:
        """The ``index``-th spot (1-based, growing away from the pole)."""
        if not 1 <= index <= self.n_spots:
            raise ConfigurationError(f"spot index {index} outside 1..{self.n_spots}")
        center = self.origin_m + np.array(
            [(index - 0.5) * self.spot_length_m, self.curb_offset_m, 0.0]
        )
        return ParkingSpot(index=index, center_m=center)

    def spots(self) -> list[ParkingSpot]:
        return [self.spot(i) for i in range(1, self.n_spots + 1)]

    # -- occupancy ---------------------------------------------------------------

    def park(self, index: int) -> ParkingSpot:
        """Mark a spot occupied, returning it."""
        spot = self.spot(index)
        if self.occupied.get(index):
            raise ConfigurationError(f"spot {index} already occupied")
        self.occupied[index] = True
        return spot

    def leave(self, index: int) -> None:
        """Vacate a spot."""
        if not self.occupied.get(index):
            raise ConfigurationError(f"spot {index} is not occupied")
        del self.occupied[index]

    def is_occupied(self, index: int) -> bool:
        return bool(self.occupied.get(index))

    def free_spots(self) -> list[int]:
        return [i for i in range(1, self.n_spots + 1) if not self.is_occupied(i)]
