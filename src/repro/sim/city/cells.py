"""Station coverage cells: each pole owns a slice of the corridor.

``examples/reader_network.py`` carved the road into per-station segments
by hand so each pole only reports fixes where its AoA geometry is good
(error grows toward end-fire, i.e. far along the road axis). This module
promotes that pattern into the library: a :class:`StationCell` is a
named, contiguous along-road interval; :func:`carve_cells` partitions a
corridor between its poles at the midpoints, so every road point belongs
to exactly one cell and each pole's cell is centred on it.

Cells are also the handoff topology: a tag leaving cell *k* enters cell
*k+1*, so cell neighbor order is the order identity-cache entries flow
through the corridor.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...channel.geometry import RoadSegment
from ...core.localization import LaneProjectionLocalizer
from ...errors import ConfigurationError

__all__ = ["StationCell", "carve_cells"]


@dataclass(frozen=True)
class StationCell:
    """One pole's slice of the corridor.

    Attributes:
        name: stable identifier (used in ledgers and observations).
        x_min_m / x_max_m: along-road extent of the cell.
        road: the *full* corridor road the cell is part of (cross-road
            geometry — lanes, width, surface height — is corridor-wide).
        lane_ys_m: cross-road lane centers, for single-pole localization.
    """

    name: str
    x_min_m: float
    x_max_m: float
    road: RoadSegment
    lane_ys_m: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.x_max_m <= self.x_min_m:
            raise ConfigurationError(
                f"degenerate cell [{self.x_min_m}, {self.x_max_m}]"
            )

    @property
    def span_m(self) -> float:
        return self.x_max_m - self.x_min_m

    @property
    def center_x_m(self) -> float:
        return (self.x_min_m + self.x_max_m) / 2.0

    def contains_x(self, x_m: float) -> bool:
        """Whether an along-road coordinate falls in this cell.

        The lower edge is inclusive, the upper exclusive, so abutting
        cells partition the road without double-claiming boundary points.
        """
        return self.x_min_m <= x_m < self.x_max_m

    def segment(self) -> RoadSegment:
        """The cell's road slice (full cross-road extent)."""
        return RoadSegment(
            x_min_m=self.x_min_m,
            x_max_m=self.x_max_m,
            y_center_m=self.road.y_center_m,
            width_m=self.road.width_m,
            z_m=self.road.z_m,
        )

    def localizer(self, **kwargs) -> LaneProjectionLocalizer:
        """A single-pole localizer confined to this cell's segment.

        Fixes outside the cell are rejected by the segment bounds and
        left to the neighbor with better geometry — exactly the division
        of labor the example encoded by hand.
        """
        return LaneProjectionLocalizer(
            road=self.segment(), lane_ys_m=tuple(self.lane_ys_m), **kwargs
        )


def carve_cells(
    pole_xs_m: list[float],
    road: RoadSegment,
    lane_ys_m: tuple[float, ...],
    names: list[str] | None = None,
) -> list[StationCell]:
    """Partition a corridor between its poles at the midpoints.

    Cell *k* runs from the midpoint with pole *k-1* to the midpoint with
    pole *k+1*; the first and last cells absorb the road ends. Poles must
    be strictly increasing along the road.
    """
    if not pole_xs_m:
        raise ConfigurationError("need at least one pole")
    if any(b <= a for a, b in zip(pole_xs_m, pole_xs_m[1:])):
        raise ConfigurationError("pole positions must be strictly increasing")
    if names is None:
        names = [f"cell-{k}" for k in range(len(pole_xs_m))]
    if len(names) != len(pole_xs_m):
        raise ConfigurationError("one name per pole required")
    edges = (
        [road.x_min_m]
        + [(a + b) / 2.0 for a, b in zip(pole_xs_m, pole_xs_m[1:])]
        + [road.x_max_m]
    )
    cells = []
    for name, lo, hi in zip(names, edges, edges[1:]):
        cells.append(
            StationCell(
                name=name, x_min_m=lo, x_max_m=hi, road=road, lane_ys_m=tuple(lane_ys_m)
            )
        )
    return cells
