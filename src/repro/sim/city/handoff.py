"""The corridor's identity-handoff audit trail.

Every spike a station resolves is a *sighting*, and each sighting is
resolved one of five ways:

* ``own`` — the station's own :class:`~repro.core.network.IdentityCache`
  recognized the fingerprint (the tag was decoded or imported here
  earlier);
* ``handoff`` — a neighbor station's cache recognized it *at sighting
  time* (pull-at-sighting), and the entry (id + CFO fingerprint) was
  forwarded into the local cache — the tag crossed a cell boundary
  without costing any decode air time;
* ``push`` — the entry was *pushed* into this station's cache ahead of
  the tag's arrival (predictive handoff: an upstream pole's §7 speed
  estimate predicted this pole next) and the first sighting here
  consumed it — resolved before the tag even arrived, zero decode air
  time and zero pull latency;
* ``decode`` — a full §8 decode burst, for a tag no station knew yet;
* ``redecode`` — a full decode burst for a tag some *other* station had
  already identified: the handoff machinery failed to cover this
  sighting, which is exactly the waste the ledger exists to measure.

The :class:`HandoffLedger` classifies decode records into
``decode``/``redecode`` itself (it knows which ids the deployment has
seen where — one shared ledger spans every corridor of a mesh), tallies
cell entry/exit events, records every predictive push *sent* (and every
push that expired unconsumed — a mis-push, e.g. the car turned
off-route), and reports the headline number: of the downstream
first-sightings (a tag arriving at a pole that some other pole already
identified), what fraction was resolved by a forwarded or pushed cache
entry instead of burning a re-decode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SightingRecord", "PushRecord", "HandoffLedger"]

OWN_HIT = "own"
HANDOFF = "handoff"
PUSH = "push"
DECODE = "decode"
REDECODE = "redecode"
DECODE_FAILED = "decode-failed"
DECODE_DEFERRED = "decode-deferred"


@dataclass(frozen=True)
class SightingRecord:
    """One resolved (or unresolved) spike at one station.

    ``n_queries`` counts the decode queries the station itself put on
    the air; ``n_overheard`` counts captures of *other* stations'
    trigger windows the decode combined on top — free evidence from the
    shared response pool, no air time of this station's own.
    """

    t_s: float
    station: str
    kind: str
    cfo_hz: float
    tag_id: int | None = None
    from_station: str | None = None
    n_queries: int = 0
    n_overheard: int = 0


@dataclass(frozen=True)
class PushRecord:
    """One predictive cache push, as sent (not yet a sighting).

    A push is speculative: an upstream station predicted the tag's next
    pole from its §7 cross-pole speed estimate and planted the cache
    entry there ahead of arrival. Whether the bet paid off shows up
    later — as a ``push``-kind :class:`SightingRecord` when the tag
    arrived and the entry resolved its first sighting, or as a
    :attr:`HandoffLedger.push_misses` entry when it never did (the car
    turned off-route, parked, or the run ended first).

    Attributes:
        t_s: when the push was sent.
        target: the station the entry was planted at.
        from_station: the predicting (sending) station.
        tag_id / cfo_hz: the entry pushed.
        eta_s: the predicted arrival time at the target, if computed.
    """

    t_s: float
    target: str
    from_station: str
    tag_id: int
    cfo_hz: float
    eta_s: float | None = None


@dataclass
class HandoffLedger:
    """Record of how every sighting was resolved.

    One instance audits one deployment — a single
    :class:`~repro.sim.city.corridor.CityCorridor`, or a whole
    :class:`~repro.sim.city.mesh.CityMesh` (the mesh hands the same
    ledger to every corridor so re-decode classification sees sightings
    across corridor boundaries).
    """

    records: list[SightingRecord] = field(default_factory=list)
    pushes: list[PushRecord] = field(default_factory=list)
    push_misses: list[PushRecord] = field(default_factory=list)
    cell_entries: list[tuple[float, str, int]] = field(default_factory=list)
    cell_exits: list[tuple[float, str, int]] = field(default_factory=list)
    _stations_knowing: dict[int, set[str]] = field(default_factory=dict, repr=False)

    # -- recording -------------------------------------------------------------

    def record_own_hit(self, station: str, tag_id: int, t_s: float, cfo_hz: float) -> None:
        self._append(SightingRecord(t_s, station, OWN_HIT, cfo_hz, tag_id))

    def record_handoff(
        self, station: str, from_station: str, tag_id: int, t_s: float, cfo_hz: float
    ) -> None:
        self._append(
            SightingRecord(t_s, station, HANDOFF, cfo_hz, tag_id, from_station)
        )

    def record_push(
        self,
        target: str,
        from_station: str,
        tag_id: int,
        t_s: float,
        cfo_hz: float,
        eta_s: float | None = None,
    ) -> None:
        """A predictive push was *sent* (speculative — not a sighting,
        so the target does not yet "know" the tag for re-decode
        classification; only its consumption does that)."""
        self.pushes.append(
            PushRecord(t_s, target, from_station, tag_id, cfo_hz, eta_s)
        )

    def record_push_hit(
        self, station: str, from_station: str, tag_id: int, t_s: float, cfo_hz: float
    ) -> None:
        """A first sighting resolved by an entry pushed ahead of it."""
        self._append(
            SightingRecord(t_s, station, PUSH, cfo_hz, tag_id, from_station)
        )

    def record_push_miss(
        self,
        target: str,
        from_station: str,
        tag_id: int,
        t_s: float,
        cfo_hz: float,
        eta_s: float | None = None,
    ) -> None:
        """A pushed entry was never consumed — the prediction missed
        (off-route turn, parked car, or run end). The mis-pushed entry
        simply ages out of the target's cache; the tag re-decodes
        wherever it actually went, and both costs are on the ledger."""
        self.push_misses.append(
            PushRecord(t_s, target, from_station, tag_id, cfo_hz, eta_s)
        )

    def record_decode(
        self,
        station: str,
        tag_id: int,
        t_s: float,
        cfo_hz: float,
        n_queries: int = 0,
        n_overheard: int = 0,
    ) -> str:
        """A successful full decode; classified as a re-decode when some
        other station already knew this id. Returns the kind it was
        classified as (``decode`` or ``redecode``) so the caller can
        tag the sighting's provenance without re-deriving it."""
        known_elsewhere = self._stations_knowing.get(tag_id, set()) - {station}
        kind = REDECODE if known_elsewhere else DECODE
        self._append(
            SightingRecord(
                t_s,
                station,
                kind,
                cfo_hz,
                tag_id,
                n_queries=n_queries,
                n_overheard=n_overheard,
            )
        )
        return kind

    def record_decode_failure(
        self,
        station: str,
        t_s: float,
        cfo_hz: float,
        n_queries: int = 0,
        n_overheard: int = 0,
    ) -> None:
        self.records.append(
            SightingRecord(
                t_s,
                station,
                DECODE_FAILED,
                cfo_hz,
                n_queries=n_queries,
                n_overheard=n_overheard,
            )
        )

    def record_decode_deferred(self, station: str, t_s: float, cfo_hz: float) -> None:
        """A spike left unidentified this round (e.g. below the decode
        SNR gate: the tag is still far, a later round will be cheaper)."""
        self.records.append(SightingRecord(t_s, station, DECODE_DEFERRED, cfo_hz))

    def record_cell_entry(self, t_s: float, cell: str, tag_id: int) -> None:
        self.cell_entries.append((t_s, cell, tag_id))

    def record_cell_exit(self, t_s: float, cell: str, tag_id: int) -> None:
        self.cell_exits.append((t_s, cell, tag_id))

    def _append(self, record: SightingRecord) -> None:
        self.records.append(record)
        self._stations_knowing.setdefault(record.tag_id, set()).add(record.station)

    # -- statistics ------------------------------------------------------------

    def counts(self) -> dict[str, int]:
        """Sightings per resolution kind."""
        out: dict[str, int] = {}
        for record in self.records:
            out[record.kind] = out.get(record.kind, 0) + 1
        return out

    @property
    def handoffs(self) -> int:
        return sum(1 for r in self.records if r.kind == HANDOFF)

    @property
    def push_hits(self) -> int:
        """First sightings resolved by a pre-pushed cache entry."""
        return sum(1 for r in self.records if r.kind == PUSH)

    @property
    def pushes_sent(self) -> int:
        return len(self.pushes)

    @property
    def redecodes(self) -> int:
        return sum(1 for r in self.records if r.kind == REDECODE)

    @property
    def decodes(self) -> int:
        return sum(1 for r in self.records if r.kind == DECODE)

    @property
    def downstream_sightings(self) -> int:
        """First sightings at a pole of a tag another pole already knew.

        Every such sighting was either covered by a forwarded (pull) or
        pushed (predictive) cache entry — arriving before the re-decode
        would have been needed — or cost a re-decode; later sightings at
        the same pole are own-cache hits and say nothing about handoff.
        """
        return self.handoffs + self.push_hits + self.redecodes

    @property
    def handoff_resolution_rate(self) -> float:
        """Fraction of downstream first-sightings resolved without a
        re-decode (by a pulled *or* pushed cache entry)."""
        downstream = self.downstream_sightings
        return (self.handoffs + self.push_hits) / downstream if downstream else 0.0

    def decode_queries_spent(self) -> int:
        """Air-time queries consumed by all decode attempts."""
        return sum(
            r.n_queries
            for r in self.records
            if r.kind in (DECODE, REDECODE, DECODE_FAILED)
        )

    def overheard_captures_used(self) -> int:
        """Overheard captures decode attempts combined as free evidence."""
        return sum(
            r.n_overheard
            for r in self.records
            if r.kind in (DECODE, REDECODE, DECODE_FAILED)
        )

    def summary(self) -> dict:
        """Headline numbers, JSON-friendly."""
        return {
            "sightings": len(self.records),
            "counts": self.counts(),
            "downstream_sightings": self.downstream_sightings,
            "handoff_resolution_rate": self.handoff_resolution_rate,
            "pushes_sent": self.pushes_sent,
            "push_hits": self.push_hits,
            "push_misses": len(self.push_misses),
            "decode_queries_spent": self.decode_queries_spent(),
            "overheard_captures_used": self.overheard_captures_used(),
            "cell_entries": len(self.cell_entries),
            "cell_exits": len(self.cell_exits),
            "tags_identified": len(self._stations_knowing),
        }
