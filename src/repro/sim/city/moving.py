"""Moving tags: collision synthesis with per-query channel geometry.

:class:`~repro.channel.collision.StaticCollisionSimulator` freezes the
scene per burst; a corridor's scene *moves*. :class:`MovingTag` pairs a
transponder with a :class:`~repro.sim.mobility.ConstantSpeedTrajectory`,
and :class:`MovingCollisionSource` synthesizes one pole's capture with
every tag at its position *at response time* — the channel (Friis
amplitude + path phase) is re-sampled per query, so coherent combining
across a decode burst sees exactly the channel drift a moving car
produces (§12.3: a 15 m/s car moves ~15 mm per 1 ms query period, about
λ/20 of path phase per capture — which is why per-capture channel
readout, Eq 5, survives mobility).

Doppler itself is not modeled: at 915 MHz and city speeds it is ≤ ~50 Hz,
far below the 1.95 kHz FFT resolution that separates tags (§5), so it
never moves a spike between bins.

The per-tag CFO-mixed baseband templates are precomputed once in a
:class:`TagWaveformBank` shared by *all* poles of a corridor — only the
(antennas x tags) channel-gain matrix is rebuilt per query.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...channel.collision import ReceivedCollision, TruthEntry
from ...constants import (
    DEFAULT_SAMPLE_RATE_HZ,
    QUERY_DURATION_S,
    READER_LO_HZ,
    READER_RANGE_M,
    RESPONSE_DURATION_S,
    TURNAROUND_S,
)
from ...channel.noise import add_awgn
from ...errors import ConfigurationError
from ...phy.transponder import TagResponse, Transponder
from ...phy.waveform import Waveform
from ...utils import as_rng
from ..mobility import ConstantSpeedTrajectory

__all__ = ["MovingTag", "TagWaveformBank", "MovingCollisionSource"]


@dataclass
class MovingTag:
    """A transponder riding a trajectory through the corridor."""

    transponder: Transponder
    trajectory: ConstantSpeedTrajectory

    def position(self, t_s: float) -> np.ndarray:
        return self.trajectory.position(t_s)

    @property
    def tag_id(self) -> int:
        return self.transponder.tag_id

    def time_at_x(self, x_m: float) -> float | None:
        """When the tag crosses an along-road coordinate, if ever.

        Returns None for a stationary (along x) tag that is not already
        past the coordinate; a crossing in the past is still returned
        (callers clip to their run window).
        """
        vx = float(self.trajectory.velocity_m_s[0])
        if vx == 0.0:
            return None
        return self.trajectory.t0_s + (x_m - float(self.trajectory.start_m[0])) / vx

    def in_range(self, pole_m: np.ndarray, t_s: float, range_m: float = READER_RANGE_M) -> bool:
        """Whether the tag is within a pole's radio range at ``t_s``."""
        return float(np.linalg.norm(self.position(t_s) - pole_m)) <= range_m


class TagWaveformBank:
    """Per-tag CFO-mixed baseband templates, computed once per corridor.

    A tag's response waveform (OOK chips mixed to its CFO) does not
    depend on where the tag is — only the channel gain does — so the
    (m x N) signal matrix rows can be shared across every pole and every
    query of a run. Rows are keyed by the transponder's account id, so a
    bank outliving one scene's objects can never serve a freed tag's
    waveform to a newcomer.
    """

    def __init__(
        self,
        lo_hz: float = READER_LO_HZ,
        sample_rate_hz: float = DEFAULT_SAMPLE_RATE_HZ,
        rng=None,
    ):
        self.lo_hz = lo_hz
        self.sample_rate_hz = sample_rate_hz
        self.rng = as_rng(rng)
        self.n_samples = int(round(RESPONSE_DURATION_S * sample_rate_hz))
        self._tau = np.arange(self.n_samples) / sample_rate_hz
        self._rows: dict[int, tuple[np.ndarray, TagResponse]] = {}

    def row(self, transponder: Transponder) -> tuple[np.ndarray, TagResponse]:
        """(CFO-mixed baseband, template response) for one transponder."""
        key = transponder.tag_id
        cached = self._rows.get(key)
        if cached is None:
            template = transponder.respond(0.0, self.sample_rate_hz, rng=self.rng)
            cfo = template.cfo_hz(self.lo_hz)
            mixed = template.baseband * np.exp(2j * np.pi * cfo * self._tau)
            cached = (mixed, template)
            self._rows[key] = cached
        return cached


class MovingCollisionSource:
    """One pole's radio front-end over a moving scene.

    Each :meth:`query` places every participating tag at its trajectory
    position at response time, rebuilds the per-antenna channel gains,
    and superposes the precomputed baseband rows — the moving-scene
    equivalent of ``StaticCollisionSimulator.query``.
    """

    def __init__(
        self,
        antenna_positions_m: np.ndarray,
        channel,
        bank: TagWaveformBank,
        noise_power_w: float = 0.0,
        rng=None,
    ):
        self.antenna_positions_m = np.atleast_2d(
            np.asarray(antenna_positions_m, dtype=np.float64)
        )
        if self.antenna_positions_m.shape[1] != 3:
            raise ConfigurationError("antenna positions must be (K, 3)")
        self.channel = channel
        self.bank = bank
        self.noise_power_w = noise_power_w
        self.rng = as_rng(rng)

    @property
    def n_antennas(self) -> int:
        return int(self.antenna_positions_m.shape[0])

    @property
    def pole_position_m(self) -> np.ndarray:
        return self.antenna_positions_m.mean(axis=0)

    def query(
        self, tags: list[MovingTag], query_start_s: float, corrupted: bool = False
    ) -> ReceivedCollision:
        """Issue one query at ``query_start_s`` to the given tags.

        Args:
            tags: the tags that hear this query (range gating is the
                caller's job — it knows the roster).
            query_start_s: absolute query start time.
            corrupted: synthesize pure noise instead of the responses —
                the §9 harmful case, a response batch stepped on by
                another reader's query (the capture's air time is still
                spent, its content is garbage).
        """
        response_t0 = query_start_s + QUERY_DURATION_S + TURNAROUND_S
        if not tags or corrupted:
            return self._package(
                np.zeros((self.n_antennas, self.bank.n_samples), dtype=np.complex128),
                [],
                response_t0,
            )
        return self._synthesize(tags, None, response_t0)

    def overhear(
        self,
        entries: list[tuple[MovingTag, float]],
        response_t0: float,
        origin: str | None = None,
        rng=None,
    ) -> ReceivedCollision:
        """Capture a window *another* reader's query triggered.

        The responses are the same physical transmissions the origin pole
        received, so each tag's random oscillator phase is supplied (from
        the corridor's response pool) rather than drawn — what changes at
        this pole is only the channel: per-antenna delay/attenuation is
        rebuilt from *this* pole's geometry at the window's response
        time, and the noise is this receiver's own. The returned capture
        carries ``overheard_from`` provenance.

        Args:
            entries: ``(tag, phase0_rad)`` responders audible at this
                pole (range gating is the caller's job — the pool knows
                the roster).
            response_t0: absolute start of the overheard response window.
            origin: name of the reader whose query opened the window.
            rng: noise randomness for this capture. Defaults to the
                source's own stream; callers comparing harvest policies
                pass a separate stream so opportunistic synthesis never
                perturbs the main sequence of draws (the ``"ignore"``
                ablation stays bit-for-bit comparable).
        """
        if not entries:
            raise ConfigurationError("an overheard window needs responders")
        tags = [tag for tag, _ in entries]
        phases = np.exp(1j * np.asarray([phase for _, phase in entries]))
        return self._synthesize(
            tags, phases, response_t0, overheard_from=origin, rng=rng
        )

    def _synthesize(
        self,
        tags: list[MovingTag],
        phases: np.ndarray | None,
        response_t0: float,
        overheard_from: str | None = None,
        rng=None,
    ) -> ReceivedCollision:
        """Superpose the tags' precomputed rows under per-query gains.

        ``phases`` carries each response's oscillator phase; None draws
        fresh ones (an own-query trigger) — after the gain rebuild, so
        the rng draw order matches the original single-pole path exactly.
        """
        m = len(tags)
        rows = []
        gains = np.zeros((self.n_antennas, m), dtype=np.complex128)
        templates = []
        for i, tag in enumerate(tags):
            mixed, template = self.bank.row(tag.transponder)
            rows.append(mixed)
            templates.append(template)
            position = tag.position(response_t0)
            tag.transponder.position_m = position
            for a, rx in enumerate(self.antenna_positions_m):
                gains[a, i] = (
                    self.channel.coefficient(position, rx)
                    * tag.transponder.tx_amplitude
                )
        if phases is None:
            phases = np.exp(1j * self.rng.uniform(0.0, 2.0 * np.pi, size=m))
        weights = gains * phases[None, :]
        clean = weights @ np.asarray(rows)
        truth = [
            TruthEntry(
                response=TagResponse(
                    transponder=tag.transponder,
                    bits=template.bits,
                    baseband=template.baseband,
                    t0_s=response_t0,
                    sample_rate_hz=self.bank.sample_rate_hz,
                    carrier_hz=template.carrier_hz,
                    phase0_rad=float(np.angle(phases[i])),
                ),
                channels=weights[:, i].copy(),
            )
            for i, (tag, template) in enumerate(zip(tags, templates))
        ]
        return self._package(clean, truth, response_t0, overheard_from, rng)

    def _package(
        self,
        clean: np.ndarray,
        truth: list[TruthEntry],
        response_t0: float,
        overheard_from: str | None = None,
        rng=None,
    ) -> ReceivedCollision:
        rng = self.rng if rng is None else rng
        waveforms = [
            Waveform(
                add_awgn(clean[a], self.noise_power_w, rng),
                self.bank.sample_rate_hz,
                response_t0,
            )
            for a in range(self.n_antennas)
        ]
        return ReceivedCollision(
            antennas=waveforms,
            lo_hz=self.bank.lo_hz,
            truth=truth,
            overheard_from=overheard_from,
        )
