"""The city corridor engine: async stations, cell handoff, moving tags.

:class:`CityCorridor` runs many :class:`CorridorStation`\\ s on one shared
:class:`~repro.sim.events.EventScheduler` timeline and one
:class:`~repro.sim.medium.AirLog`:

* **Async station scheduling** — each station queries on its own cadence
  and listens before talking via the §9
  :class:`~repro.core.mac.ReaderMac` policy against what it actually
  hears on the air (query energy classified and ignored, response
  windows honored), so stations genuinely back off each other instead of
  taking synchronized turns. ``scheduling="rounds"`` runs the same world
  through the lock-step sequential baseline (stations take strict turns,
  each turn serializing its whole burst) for the ablation benchmark.
* **Cell handoff** — the corridor is carved into
  :class:`~repro.sim.city.cells.StationCell`\\ s; when a spike at pole
  *k+1* misses the local :class:`~repro.core.network.IdentityCache`, the
  neighbors' caches are consulted by measured CFO fingerprint and a hit
  is *forwarded* (copied) into the local cache — the downstream pole
  resolves the tag without spending a single decode query. Every
  resolution is recorded in the corridor's
  :class:`~repro.sim.city.handoff.HandoffLedger`.
* **Moving tags** — tag membership in cells follows
  :mod:`repro.sim.mobility` trajectories (entry/exit scheduled as
  events), and every capture re-samples channel geometry at the actual
  response time through :class:`~repro.sim.city.moving.MovingCollisionSource`.
* **Cross-pole overheard responses** — every query that triggered
  responses publishes its trigger window (responders + per-response
  oscillator phases) to one shared
  :class:`~repro.sim.city.pool.ResponsePool`; a station opening a
  decode burst harvests the windows *other* poles triggered since its
  last burst (same transmissions, re-synthesized over its own
  delay/attenuation/array geometry and receiver noise) and donates them
  to its :class:`~repro.core.decoding.DecodeSession`, which combines
  each for the targets whose spike it detectably contains — free
  evidence, excluded from own-air-time accounting. The per-station
  ``opportunistic="accept"|"ignore"`` policy gates harvesting;
  ``"ignore"`` reproduces the pool-less corridor bit for bit (the
  ablation). Windows overlapping the harvester's own capture slots are
  skipped (the receiver was busy, and coincident triggers already merge
  into its own capture), and windows a query stepped on are dropped at
  harvest with the same post-hoc exact-accounting treatment as burst
  captures. Not modeled: partial-overlap mixing into an own capture and
  capture-effect suppression between overheard responses.

Causality note: a station's decode burst is executed synchronously at
its processing event, recording its (future) query transmissions into
the air log; later events observe and defer to them. Measurement rounds
are processed at response *end* (so every query that could have stepped
on the response is already on the log); decode captures check corruption
against the log as synthesized, which under-counts only the no-CSMA
ablation where bursts interleave blindly. Accounting is exact either
way: every burst capture is re-checked post-hoc against the final log
(:attr:`CorridorResult.burst_corrupted_posthoc`), and end-of-run totals
from :meth:`AirLog.corrupted_responses` cover the response side.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

import numpy as np

from ...constants import (
    CSMA_LISTEN_S,
    QUERY_DURATION_S,
    QUERY_PERIOD_S,
    READER_RANGE_M,
    RESPONSE_DURATION_S,
    TURNAROUND_S,
)
from ...core.decoding import (
    deprecated_antenna_index,
    validate_combining,
    validate_opportunistic,
)
from ...core.mac import ReaderMac
from ...core.network import IdentityCache, decode_aoa, resolve_cached_ids
from ...errors import CaraokeError, ConfigurationError
from ...utils import as_rng
from ..events import EventScheduler
from ..medium import AirLog
from .cells import StationCell, carve_cells
from .handoff import HANDOFF, OWN_HIT, PUSH, HandoffLedger
from .moving import MovingCollisionSource, MovingTag, TagWaveformBank
from .pool import ResponsePool, TriggerWindow

__all__ = ["CorridorStation", "CityCorridor", "CorridorResult", "IdentificationStat"]


def _tag_observation():
    # Deferred for the same reason as repro.core.network: repro.apps
    # imports repro.sim at package init.
    from ...apps.services import TagObservation

    return TagObservation


@dataclass
class CorridorStation:
    """One pole of the corridor: reader + front-end + cell + cache.

    Attributes:
        name: stable identifier.
        reader: the :class:`~repro.core.reader.CaraokeReader` chain.
        source: the pole's moving-scene front-end.
        cell: the coverage slice this pole owns.
        localizer: single-pole localizer confined to the cell.
        identities: the pole's CFO -> account-id cache.
        mac: the §9 listen-before-talk policy.
        query_interval_s / jitter_s: measurement cadence.
        combining: decode policy — ``"mrc"`` (default: maximum-ratio
            across every antenna) or ``"single"`` (one-antenna ablation).
        opportunistic: overheard-response policy — ``"accept"``
            (default: windows other poles' queries triggered are
            harvested from the corridor's shared
            :class:`~repro.sim.city.pool.ResponsePool` and donated to
            this station's decode sessions as free evidence) or
            ``"ignore"`` (never harvest — bit-for-bit the pool-less
            corridor numerics, the ablation baseline).
        antenna_index: **deprecated** alias selecting
            ``combining="single"`` on that antenna.
    """

    name: str
    reader: object
    source: MovingCollisionSource
    cell: StationCell
    localizer: object | None = None
    identities: IdentityCache = field(default_factory=IdentityCache)
    mac: ReaderMac = field(default_factory=ReaderMac)
    query_interval_s: float = 80e-3
    jitter_s: float = 5e-3
    combining: str = "mrc"
    opportunistic: str = "accept"
    upstream: "CorridorStation | None" = field(default=None, repr=False)
    downstream: "CorridorStation | None" = field(default=None, repr=False)
    #: Predictively pushed cache entries not yet consumed by a sighting:
    #: ``tag_id -> (pushing station, fingerprint, push time)``. Filled by
    #: :meth:`receive_push`; the first sighting resolved by a pushed
    #: entry pops it (and is ledgered as ``push`` rather than ``own``);
    #: entries still here at run end are recorded as push *misses*.
    pushed: dict = field(default_factory=dict, repr=False)
    # -- per-run statistics --
    queries_sent: int = 0
    queries_deferred: int = 0
    rounds: int = 0
    empty_rounds: int = 0
    corrupted_rounds: int = 0
    overheard_donated: int = 0
    #: Harvest cursor: pool windows ending at or before this were already
    #: offered to (or aged past) this station.
    last_harvest_s: float = 0.0
    #: This pole's own capture slots (the response window each own query
    #: opened) — overheard windows overlapping them are off limits: the
    #: receiver was busy, and coincident triggers already merged into the
    #: own capture.
    _own_windows: list[tuple[float, float]] = field(default_factory=list, repr=False)
    _hints: dict[int, tuple[np.ndarray, float]] = field(default_factory=dict, repr=False)
    antenna_index: int | None = None

    def __post_init__(self) -> None:
        if self.antenna_index is not None:
            self.antenna_index = deprecated_antenna_index(
                self.antenna_index, "CorridorStation"
            )
            self.combining = "single"
        validate_combining(self.combining)
        validate_opportunistic(self.opportunistic)

    @property
    def pole_position_m(self) -> np.ndarray:
        return self.source.pole_position_m

    def neighbors(self) -> list["CorridorStation"]:
        """Upstream first: traffic flows +x, so the usual donor is the
        pole the tag just left."""
        return [s for s in (self.upstream, self.downstream) if s is not None]

    def receive_push(
        self, cfo_hz: float, tag_id: int, from_station: str, now_s: float
    ) -> None:
        """Accept a predictively pushed identity-cache entry.

        The entry lands in :attr:`identities` exactly like a pull
        handoff would — same LRU/aging bounds — plus a note in
        :attr:`pushed` so the first sighting it resolves is audited as
        ``push``. A mis-push costs nothing here: the entry just ages
        out (or is LRU-evicted) like any other, and the note survives
        to be swept into the ledger's push-miss list.
        """
        self.identities.store(float(cfo_hz), tag_id, now_s=now_s)
        self.pushed[tag_id] = (from_station, float(cfo_hz), float(now_s))


@dataclass(frozen=True)
class IdentificationStat:
    """When the corridor learned one tag's identity (Fig 16 style).

    ``n_queries`` is the station's own decode air time; ``n_overheard``
    counts overheard captures the decode combined on top for free.
    """

    tag_id: int
    first_seen_s: float
    identified_s: float
    n_queries: int
    n_overheard: int = 0

    @property
    def delay_s(self) -> float:
        return self.identified_s - self.first_seen_s


@dataclass
class CorridorResult:
    """Everything one :meth:`CityCorridor.run` produced.

    ``scheduling`` echoes the run's MAC mode — ``"event"`` (§9
    event-driven CSMA) or ``"rounds"`` (fixed round-robin baseline).
    ``opportunistic`` echoes the stations' harvest policy — ``"accept"``,
    ``"ignore"``, or ``"mixed"`` when stations disagree.
    """

    scheduling: str
    duration_s: float
    queries_sent: int
    queries_deferred: int
    rounds: int
    empty_rounds: int
    corrupted_rounds: int
    responses: int
    corrupted_responses: int
    n_observations: int
    ledger: HandoffLedger
    identifications: list[IdentificationStat]
    tags_seen: int
    #: Decode-burst captures that carried responses, and how many of them
    #: were stepped on by another reader's query: as judged when the
    #: capture was synthesized (only transmissions known by then) versus
    #: re-checked post-hoc against the final air log. The synthesis-time
    #: count under-counts exactly when bursts interleave blindly (the
    #: no-CSMA / ``defer_to_queries=False`` ablation); the post-hoc count
    #: is exact.
    burst_captures: int = 0
    burst_corrupted_at_synthesis: int = 0
    burst_corrupted_posthoc: int = 0
    #: Cross-pole response-pool accounting. ``opportunistic`` is the
    #: stations' harvest policy ("mixed" when they disagree). Published
    #: windows are every query that triggered responses; harvested ones
    #: passed a station's filters (another pole's trigger, inside its
    #: radio range, clear of its own capture slots); of those, windows
    #: judged corrupted against the air log as known at harvest time were
    #: skipped and the rest were donated to decode sessions. The post-hoc
    #: count re-checks every *donated* window against the final log —
    #: nonzero means a later-recorded query stepped on evidence a
    #: combiner already consumed (only possible when bursts interleave
    #: blindly, i.e. the no-CSMA ablation).
    opportunistic: str = "accept"
    overheard_windows: int = 0
    overheard_harvested: int = 0
    overheard_corrupted_at_harvest: int = 0
    overheard_donated: int = 0
    overheard_corrupted_posthoc: int = 0

    @property
    def burst_corruption_undercount(self) -> int:
        """Corrupted burst captures the synthesis-time check missed."""
        return self.burst_corrupted_posthoc - self.burst_corrupted_at_synthesis

    @property
    def overheard_corruption_undercount(self) -> int:
        """Donated overheard captures the harvest-time check missed."""
        return self.overheard_corrupted_posthoc

    @property
    def overheard_per_identified(self) -> float:
        if not self.identifications:
            return float("nan")
        return float(np.mean([s.n_overheard for s in self.identifications]))

    @property
    def queries_per_s(self) -> float:
        return self.queries_sent / self.duration_s if self.duration_s else 0.0

    @property
    def identified(self) -> int:
        return len(self.identifications)

    @property
    def mean_identification_delay_s(self) -> float:
        if not self.identifications:
            return float("nan")
        return float(np.mean([s.delay_s for s in self.identifications]))

    @property
    def mean_identification_queries(self) -> float:
        if not self.identifications:
            return float("nan")
        return float(np.mean([s.n_queries for s in self.identifications]))

    def summary(self) -> dict:
        """Headline numbers, JSON-friendly."""
        return {
            "scheduling": self.scheduling,
            "duration_s": self.duration_s,
            "queries_sent": self.queries_sent,
            "queries_per_s": self.queries_per_s,
            "queries_deferred": self.queries_deferred,
            "rounds": self.rounds,
            "corrupted_rounds": self.corrupted_rounds,
            "responses": self.responses,
            "corrupted_responses": self.corrupted_responses,
            "observations": self.n_observations,
            "burst_captures": self.burst_captures,
            "burst_corrupted_at_synthesis": self.burst_corrupted_at_synthesis,
            "burst_corrupted_posthoc": self.burst_corrupted_posthoc,
            "opportunistic": self.opportunistic,
            "overheard": {
                "windows": self.overheard_windows,
                "harvested": self.overheard_harvested,
                "corrupted_at_harvest": self.overheard_corrupted_at_harvest,
                "donated": self.overheard_donated,
                "corrupted_posthoc": self.overheard_corrupted_posthoc,
                "per_identified": self.overheard_per_identified,
            },
            "tags_seen": self.tags_seen,
            "tags_identified": self.identified,
            "mean_identification_delay_s": self.mean_identification_delay_s,
            "mean_identification_queries": self.mean_identification_queries,
            "handoff": self.ledger.summary(),
        }


class CityCorridor:
    """A corridor of reader stations sharing one street and one time axis.

    One instance runs one world once: build (or :meth:`build`) a fresh
    corridor per run. Determinism: all randomness flows from the single
    ``rng``, and event ordering is the scheduler's (time, priority,
    insertion) order, so a fixed seed reproduces the run exactly.

    Attributes:
        road: the corridor road segment.
        stations: the poles, in along-road order.
        tags: every car that will traverse the corridor.
        scheduling: ``"event"`` (default) runs every station on its own
            anchored cadence through the §9 MAC on one discrete-event
            timeline; ``"rounds"`` is the lock-step sequential ablation
            (stations take strict turns, each turn serializing its
            whole burst — the ``ReaderNetwork.step`` contract on a
            shared clock), the baseline `bench_city_corridor` gates
            event-driven throughput against.
        use_csma: listen-before-talk on (False = blind ALOHA ablation:
            bursts interleave without sensing, and the §9 harmful case
            — queries stepping on responses — is measured instead of
            avoided).
        handoff: consult neighbor caches before re-decoding (False =
            every downstream sighting burns a re-decode; the waste the
            :class:`~repro.sim.city.handoff.HandoffLedger` exists to
            measure).
        decode: run §8 identification at all (False = count-only).
        opportunistic: when given, overrides every station's
            overheard-response policy — ``"accept"`` harvests other
            poles' trigger windows from the shared :class:`ResponsePool`
            as free decode evidence, ``"ignore"`` never does (bit-for-bit
            the pool-less numerics, the ablation). None leaves each
            station's own setting.
        overheard_horizon_s: how long a station's receiver buffers
            overheard windows between decode bursts; windows older than
            this at harvest time are lost, not combined.
        max_queries: decode budget per identification burst.
        decode_snr_db: spikes below this detection SNR are not worth a
            decode burst yet (the tag is still far; a later, closer
            round decodes it in fewer queries). None disables the gate.
        range_m: radio range gating which tags hear a query.
        name: corridor label. When set, it scopes this corridor inside a
            larger deployment (a :class:`~repro.sim.city.mesh.CityMesh`
            names stations ``"<edge>/pole-k"`` through
            :meth:`build`) — pass it there; the corridor itself only
            stores it for reports.
        air / pool / ledger: externally shared infrastructure. A mesh
            runs several corridors on *one* air log, one response pool
            and one handoff ledger (so carrier sensing, overhearing and
            re-decode classification all span corridor boundaries); None
            (the default) gives the corridor private instances — the
            single-street behavior, bit-for-bit.
        interference_range_m: along-city distance beyond which
            transmitters are inaudible (carrier sensing, corruption and
            post-hoc re-checks all gate on it). None — the default, and
            the right setting for one street — means everything on the
            shared log is heard everywhere.
        on_sighting: ``hook(corridor, station, tag_id, cfo_hz, t_s,
            x_m, localized, kind, n_queries)`` called for every resolved
            sighting (own/push/handoff hits and fresh decodes); ``x_m``
            is the sighting's §6 localized fix when the round produced
            one (``localized=True``), else the pole position as a coarse
            stand-in (``localized=False`` — good for audit, not for
            speed ratios). ``kind`` is the resolution provenance (a
            :mod:`~repro.sim.city.handoff` kind: ``own``/``push``/
            ``handoff``/``decode``/``redecode``) and ``n_queries`` the
            decode queries that sighting itself put on the air (zero for
            cache hits) — what a billing plane needs to price a read.
            The mesh uses the hook to feed the
            :class:`~repro.sim.city.directory.IdentityDirectory` and
            trigger predictive pushes; None disables.
        obs: nullable observability hook (see :mod:`repro.obs`). When
            set, the corridor mirrors rounds, queries, deferrals,
            corruption verdicts, handoffs and overheard-window fates
            into the metrics registry (per-station labels) and — when
            the hook carries a tracer — emits sim-time spans for every
            measurement round and decode burst plus identification
            instants. Also threaded into privately built infrastructure
            (air log, pool, scheduler) and every decode session. Never
            affects simulation behavior: recordings derive only from
            sim time and seeded state.
    """

    def __init__(
        self,
        road,
        stations: list[CorridorStation],
        tags: list[MovingTag],
        *,
        rng=None,
        scheduling: str = "event",
        use_csma: bool = True,
        handoff: bool = True,
        decode: bool = True,
        opportunistic: str | None = None,
        overheard_horizon_s: float = 0.25,
        max_queries: int = 32,
        decode_snr_db: float | None = 17.0,
        range_m: float = READER_RANGE_M,
        name: str = "",
        air: AirLog | None = None,
        pool: ResponsePool | None = None,
        ledger: HandoffLedger | None = None,
        interference_range_m: float | None = None,
        on_sighting=None,
        obs=None,
    ):
        if scheduling not in ("event", "rounds"):
            raise ConfigurationError(f"unknown scheduling {scheduling!r}")
        if not stations:
            raise ConfigurationError("need at least one station")
        self.road = road
        self.name = str(name)
        self.stations = list(stations)
        self.tags = list(tags)
        self.rng = as_rng(rng)
        self.scheduling = scheduling
        self.use_csma = bool(use_csma)
        self.handoff = bool(handoff)
        self.decode = bool(decode)
        if opportunistic is not None:
            validate_opportunistic(opportunistic)
            for station in self.stations:
                station.opportunistic = opportunistic
        self.overheard_horizon_s = float(overheard_horizon_s)
        self.max_queries = int(max_queries)
        self.decode_snr_db = decode_snr_db
        self.range_m = float(range_m)
        self.interference_range_m = (
            None if interference_range_m is None else float(interference_range_m)
        )
        self.on_sighting = on_sighting
        self.obs = obs
        # Per-station labeled views share the hook's registry/tracer, so
        # every count lands with a station= label and every span on the
        # station's own trace track; None when obs is off keeps the hot
        # paths to a single identity check.
        self._station_obs = {
            s.name: None if obs is None else obs.labeled(station=s.name)
            for s in self.stations
        }
        if obs is not None:
            for station in self.stations:
                if station.mac.obs is None:
                    station.mac.obs = self._station_obs[station.name]
        # Sensing lookback must cover a whole synchronous decode burst:
        # burst queries sense up to max_queries periods past the event
        # clock, and later events still need everything in that window.
        slack_s = max(
            0.25, self.max_queries * QUERY_PERIOD_S + RESPONSE_DURATION_S + 0.05
        )
        if air is None:
            self.air = AirLog(sense_slack_s=slack_s, obs=obs)
        else:
            # Shared log (mesh): never shrink another corridor's slack.
            self.air = air
            self.air.sense_slack_s = max(self.air.sense_slack_s, slack_s)
        #: Every trigger window on the street, shared by all poles; the
        #: scan-back slack mirrors the air log's (bursts publish their
        #: future windows when the burst executes).
        if pool is None:
            self.pool = ResponsePool(slack_s=self.air.sense_slack_s, obs=obs)
        else:
            self.pool = pool
            self.pool.slack_s = max(self.pool.slack_s, self.air.sense_slack_s)
        # Overheard captures take their receiver noise from a stream
        # spawned off the corridor seed: deterministic, but never a draw
        # from the main stream — so an "accept" run and its "ignore"
        # ablation synthesize bit-identical own captures and differ only
        # through the evidence actually donated.
        try:
            self.overhear_rng = self.rng.spawn(1)[0]
        except (AttributeError, TypeError, ValueError):  # numpy < 1.25
            try:
                # PCG64 (the default_rng bit generator) exposes its
                # counter directly — derive without consuming a draw.
                entropy = int(self.rng.bit_generator.state["state"]["state"])
            except (KeyError, TypeError, ValueError):
                # Any other bit generator: spend one draw from the main
                # stream. Both policies pay it identically (it happens
                # at construction), so accept/ignore stay aligned.
                entropy = int(self.rng.integers(1 << 63))
            self.overhear_rng = as_rng(entropy & ((1 << 63) - 1))
        self.ledger = HandoffLedger() if ledger is None else ledger
        self.services: list[object] = []
        self.observations: list = []
        self._cell_index = {s.cell.name: i for i, s in enumerate(self.stations)}
        self._roster: list[set[int]] = [set() for _ in self.stations]
        # Which cell rosters can hold a tag audible to each pole: every
        # cell intersecting the pole's radio reach (range plus slack for
        # the distance a car covers during one decode burst). Derived
        # from the geometry rather than assuming "one neighbor suffices"
        # so narrow cells with a wide radio range still hear everyone.
        reach = self.range_m + 5.0
        self._audible_cells: list[list[int]] = []
        for station in self.stations:
            x = float(station.pole_position_m[0])
            self._audible_cells.append(
                [
                    j
                    for j, other in enumerate(self.stations)
                    if other.cell.x_min_m < x + reach
                    and other.cell.x_max_m > x - reach
                ]
            )
        self._first_seen: dict[int, float] = {}
        #: tag id -> (identified at, own decode queries, overheard used).
        self._identified: dict[int, tuple[float, int, int]] = {}
        # Every decode-burst capture that carried responses, for exact
        # post-hoc corruption accounting against the *final* air log:
        # (station, query start, response start, response end, corrupted
        # as judged at synthesis time).
        self._burst_log: list[tuple[str, float, float, float, bool]] = []
        # Every harvested overheard window: (station, origin, trigger
        # query start, window start, window end, corrupted as judged at
        # harvest time). Clean entries were synthesized over the
        # station's geometry and donated; _result re-checks them against
        # the final log.
        self._overheard_log: list[tuple[str, str, float, float, float, bool]] = []
        self._station_x = {
            s.name: float(s.pole_position_m[0]) for s in self.stations
        }
        self._ran = False
        self._primed = False

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(
        cls,
        scene,
        trajectories,
        lane_ys_m: tuple[float, ...],
        *,
        rng=None,
        query_interval_s: float = 80e-3,
        jitter_s: float = 5e-3,
        cache_max_entries: int | None = 512,
        cache_max_age_s: float | None = 600.0,
        name: str = "",
        **kwargs,
    ) -> "CityCorridor":
        """Assemble a corridor from a scene + one trajectory per tag.

        The scene supplies poles (one antenna array each), road, channel
        and tag transponders — e.g. from
        :func:`repro.sim.scenario.city_corridor_scene`. Cells are carved
        between the poles at the midpoints; stations are wired to their
        along-road neighbors for handoff. A non-empty ``name`` scopes
        the corridor inside a larger deployment: stations become
        ``"<name>/pole-k"`` and cells ``"<name>/cell-k"``, so ledgers
        and observations shared across a mesh stay unambiguous.
        """
        if len(scene.tags) != len(trajectories):
            raise ConfigurationError("one trajectory per scene tag required")
        rng = as_rng(rng)
        prefix = f"{name}/" if name else ""
        bank = TagWaveformBank(scene.lo_hz, scene.sample_rate_hz, rng=rng)
        pole_xs = [float(array.center_m[0]) for array in scene.arrays]
        cells = carve_cells(
            pole_xs,
            scene.road,
            tuple(lane_ys_m),
            names=[f"{prefix}cell-{k}" for k in range(len(pole_xs))],
        )
        stations: list[CorridorStation] = []
        for index, (array, cell) in enumerate(zip(scene.arrays, cells)):
            source = MovingCollisionSource(
                array.positions_m,
                scene.channel,
                bank,
                noise_power_w=scene.noise_power_w,
                rng=rng,
            )
            stations.append(
                CorridorStation(
                    name=f"{prefix}pole-{index}",
                    reader=scene.reader(index),
                    source=source,
                    cell=cell,
                    localizer=cell.localizer(),
                    identities=IdentityCache(
                        max_entries=cache_max_entries, max_age_s=cache_max_age_s
                    ),
                    query_interval_s=query_interval_s,
                    jitter_s=jitter_s,
                )
            )
        for left, right in zip(stations, stations[1:]):
            left.downstream = right
            right.upstream = left
        tags = [
            MovingTag(transponder=tag, trajectory=trajectory)
            for tag, trajectory in zip(scene.tags, trajectories)
        ]
        return cls(scene.road, stations, tags, rng=rng, name=name, **kwargs)

    def subscribe(self, service: object) -> object:
        """Fan every observation into ``service.observe``; returns it."""
        self.services.append(service)
        return service

    # -- the run ---------------------------------------------------------------

    def run(self, duration_s: float) -> CorridorResult:
        """Simulate the corridor for ``duration_s`` seconds."""
        if self.scheduling == "event":
            scheduler = EventScheduler(obs=self.obs)
            self.prime(scheduler, duration_s)
            scheduler.run_until(duration_s)
            return self.finish()
        self._mark_ran()
        self._end_s = float(duration_s)
        self._run_rounds(duration_s, self._cell_transitions(duration_s))
        return self._result(duration_s)

    def _mark_ran(self) -> None:
        if self._ran:
            raise ConfigurationError(
                "a CityCorridor instance runs once; build a fresh one"
            )
        self._ran = True

    def prime(self, scheduler: EventScheduler, duration_s: float) -> None:
        """Plant this corridor's events on an external scheduler.

        The mesh path: several corridors share one
        :class:`~repro.sim.events.EventScheduler` (and one air log), so
        instead of :meth:`run` owning the loop, each corridor *primes*
        the shared scheduler — cell transitions for the tags it already
        holds, plus every station's first cadence attempt — and the
        caller drives ``scheduler.run_until`` once for the whole city,
        then collects per-corridor results via :meth:`finish`. Cars may
        keep arriving after priming through :meth:`admit`.
        """
        if self.scheduling != "event":
            raise ConfigurationError("prime() requires scheduling='event'")
        self._mark_ran()
        self._primed = True
        self._end_s = float(duration_s)
        for t, kind, tag_index, cell_index in self._cell_transitions(duration_s):
            scheduler.schedule(
                t,
                self._make_transition(kind, tag_index, cell_index),
                priority=-1,
                label=f"{kind}-tag{tag_index}-cell{cell_index}",
            )
        # Every station starts its cadence at t=0: simultaneous queries
        # are benign (§9 rule 1), so there is nothing to stagger — the
        # MAC sorts out the response slots from the first tick on.
        start_s = scheduler.now_s
        for station in self.stations:
            scheduler.schedule(
                start_s,
                self._make_attempt(station, anchor=start_s),
                label=f"{station.name}-first",
            )

    def admit(self, tag: MovingTag, scheduler: EventScheduler, now_s: float) -> int:
        """Add a car to a primed corridor mid-run; returns its index.

        The mesh calls this when a routed car enters this corridor edge
        (its trajectory's ``t0_s`` is the entry time). The tag is
        rostered into whichever cell holds it right now and its future
        cell entry/exit crossings are scheduled, exactly as
        :meth:`prime` does for cars known up front.
        """
        if not self._primed:
            raise ConfigurationError("admit() needs a primed corridor")
        tag_index = len(self.tags)
        self.tags.append(tag)
        x_now = float(tag.position(now_s)[0])
        for cell_index, station in enumerate(self.stations):
            cell = station.cell
            if cell.contains_x(x_now):
                self._roster[cell_index].add(tag_index)
                self.ledger.record_cell_entry(now_s, cell.name, tag.tag_id)
            for x_edge, kind in ((cell.x_min_m, "enter"), (cell.x_max_m, "exit")):
                t_cross = tag.time_at_x(x_edge)
                if t_cross is not None and now_s < t_cross <= self._end_s:
                    scheduler.schedule(
                        t_cross,
                        self._make_transition(kind, tag_index, cell_index),
                        priority=-1,
                        label=f"{kind}-tag{tag_index}-cell{cell_index}",
                    )
        return tag_index

    def finish(self) -> CorridorResult:
        """Collect this corridor's result after the shared run ended."""
        if not self._ran:
            raise ConfigurationError("finish() before run()/prime()")
        return self._result(self._end_s)

    def _run_rounds(self, duration_s: float, transitions) -> None:
        """The lock-step baseline: stations take strict sequential turns.

        Each turn serializes the station's entire burst (measurement
        plus any decode queries) before the next station may transmit,
        exactly the ``ReaderNetwork.step`` contract placed on a shared
        time axis. Rounds start on the common cadence when the previous
        round finished early, later otherwise.
        """
        pending = list(transitions)
        interval = min(s.query_interval_s for s in self.stations)
        round_start = 0.0
        while round_start < duration_s:
            cursor = round_start
            for station in self.stations:
                if cursor >= duration_s:
                    break
                while pending and pending[0][0] <= cursor:
                    t, kind, tag_index, cell_index = pending.pop(0)
                    self._apply_transition(t, kind, tag_index, cell_index)
                busy_end = self._transmit(station, cursor, sequential=True)
                cursor = busy_end + CSMA_LISTEN_S
            round_start = max(round_start + interval, cursor)

    # -- cell transitions --------------------------------------------------------

    def _cell_transitions(self, duration_s: float):
        """(t, kind, tag_index, cell_index) list, time-ordered.

        Crossing times come straight from the trajectories: cars enter a
        cell when they cross its lower edge and leave at its upper edge.
        Tags already inside the corridor at t=0 are rostered immediately.
        """
        events = []
        for tag_index, tag in enumerate(self.tags):
            x0 = float(tag.position(0.0)[0])
            for cell_index, station in enumerate(self.stations):
                cell = station.cell
                if cell.contains_x(x0):
                    self._roster[cell_index].add(tag_index)
                    self._first_cell_note(0.0, cell, tag)
                t_in = tag.time_at_x(cell.x_min_m)
                t_out = tag.time_at_x(cell.x_max_m)
                if t_in is not None and 0.0 < t_in <= duration_s:
                    events.append((t_in, "enter", tag_index, cell_index))
                if t_out is not None and 0.0 < t_out <= duration_s:
                    events.append((t_out, "exit", tag_index, cell_index))
        events.sort(key=lambda e: (e[0], e[1] != "exit", e[2], e[3]))
        return events

    def _first_cell_note(self, t_s: float, cell: StationCell, tag: MovingTag) -> None:
        self.ledger.record_cell_entry(t_s, cell.name, tag.tag_id)

    def _make_transition(self, kind: str, tag_index: int, cell_index: int):
        def apply(scheduler: EventScheduler) -> None:
            self._apply_transition(scheduler.now_s, kind, tag_index, cell_index)

        return apply

    def _apply_transition(
        self, t_s: float, kind: str, tag_index: int, cell_index: int
    ) -> None:
        tag = self.tags[tag_index]
        cell = self.stations[cell_index].cell
        if kind == "enter":
            self._roster[cell_index].add(tag_index)
            self.ledger.record_cell_entry(t_s, cell.name, tag.tag_id)
        else:
            self._roster[cell_index].discard(tag_index)
            self.ledger.record_cell_exit(t_s, cell.name, tag.tag_id)

    def _tags_near(self, station: CorridorStation, t_s: float) -> list[MovingTag]:
        """Tags that would hear this station's query at ``t_s``.

        Candidates come from the rosters of every cell within the pole's
        radio reach (precomputed from the geometry), then range-gated on
        actual trajectory positions at response time.
        """
        index = self._cell_index[station.cell.name]
        candidates: set[int] = set()
        for j in self._audible_cells[index]:
            candidates |= self._roster[j]
        response_t = t_s + QUERY_DURATION_S + TURNAROUND_S
        pole = station.pole_position_m
        return [
            self.tags[i]
            for i in sorted(candidates)
            if self.tags[i].in_range(pole, response_t, self.range_m)
        ]

    # -- station events ----------------------------------------------------------

    def _make_attempt(self, station: CorridorStation, anchor: float):
        """One periodic attempt. ``anchor`` is the cadence tick the
        attempt belongs to: deferral retries keep it, so MAC back-off
        delays a query without letting the whole cadence drift."""

        def attempt(scheduler: EventScheduler) -> None:
            now = scheduler.now_s
            if self.use_csma:
                state = self.air.heard_state(
                    now,
                    x_m=self._station_x[station.name],
                    hear_range_m=self.interference_range_m,
                )
                if not station.mac.can_transmit(now, state):
                    station.queries_deferred += 1
                    sobs = self._station_obs[station.name]
                    if sobs is not None:
                        sobs.count("mac.deferral", context="cadence")
                    retry = station.mac.next_opportunity(now, state)
                    retry += float(self.rng.uniform(0.0, 20e-6))
                    scheduler.schedule(
                        retry, attempt, label=f"{station.name}-retry"
                    )
                    return
            self._transmit(
                station, now, sequential=False, scheduler=scheduler, anchor=anchor
            )

        return attempt

    def _schedule_next(
        self, station: CorridorStation, anchor: float, busy_end: float, scheduler
    ) -> None:
        next_anchor = anchor + station.query_interval_s
        jitter = float(self.rng.uniform(-station.jitter_s, station.jitter_s))
        nxt = max(next_anchor + jitter, busy_end + CSMA_LISTEN_S)
        if nxt <= self._end_s:
            scheduler.schedule(
                nxt,
                self._make_attempt(station, anchor=next_anchor),
                label=f"{station.name}-next",
            )

    def _transmit(
        self,
        station: CorridorStation,
        t_query: float,
        sequential: bool,
        scheduler: EventScheduler | None = None,
        anchor: float = 0.0,
    ) -> float:
        """Put one measurement query on the air; returns burst end time.

        In event mode processing happens at response end (every query
        that could corrupt the response is on the log by then) and the
        burst end is delivered to :meth:`_schedule_next` from there; the
        returned value is then only the measurement's own extent.
        """
        station.rounds += 1
        station.queries_sent += 1
        sobs = self._station_obs[station.name]
        if sobs is not None:
            sobs.count("corridor.query", kind="measurement")
        self.air.record_query(
            station.name, t_query, x_m=self._station_x[station.name]
        )
        self._note_own_window(station, t_query)
        candidates = self._tags_near(station, t_query)
        if not candidates:
            station.empty_rounds += 1
            end = t_query + QUERY_DURATION_S
            if sobs is not None:
                sobs.count("corridor.round", outcome="empty")
                sobs.span("round", t_query, end, outcome="empty")
            if not sequential:
                self._schedule_next(station, anchor, end, scheduler)
            return end
        response_start = t_query + QUERY_DURATION_S + TURNAROUND_S
        response_end = response_start + RESPONSE_DURATION_S
        for tag in candidates:
            self.air.record_response(
                f"tag{tag.tag_id}",
                response_start,
                triggered_by=station.name,
                x_m=float(tag.position(response_start)[0]),
            )
        now = t_query
        for tag in candidates:
            if tag.tag_id not in self._first_seen:
                self._first_seen[tag.tag_id] = now
        if sequential:
            return self._process(station, t_query, candidates)

        def process(sched: EventScheduler) -> None:
            busy_end = self._process(station, t_query, candidates)
            self._schedule_next(station, anchor, busy_end, sched)

        scheduler.schedule(
            response_end + 1e-9, process, label=f"{station.name}-process"
        )
        return response_end

    # -- measurement processing ---------------------------------------------------

    def _process(
        self, station: CorridorStation, t_query: float, candidates: list[MovingTag]
    ) -> float:
        """Count, resolve, hand off, decode, localize; returns burst end."""
        response_start = t_query + QUERY_DURATION_S + TURNAROUND_S
        response_end = response_start + RESPONSE_DURATION_S
        corrupted = self.air.any_query_overlapping(
            response_start,
            response_end,
            exclude_source=station.name,
            exclude_start_s=t_query,
            x_m=self._station_x[station.name],
            hear_range_m=self.interference_range_m,
        )
        sobs = self._station_obs[station.name]
        if corrupted:
            station.corrupted_rounds += 1
            if sobs is not None:
                sobs.count("corridor.round", outcome="corrupted")
                sobs.span("round", t_query, response_end, outcome="corrupted")
            # Tags still transmitted (the corruption is at the receivers,
            # where query energy steps on the window): publish the window
            # marked corrupted so overhearing poles account for it too.
            self._publish_window(station, t_query, response_start, candidates, None)
            return response_end
        collision = station.source.query(candidates, t_query)
        self._publish_window(
            station, t_query, response_start, candidates, collision.truth
        )
        report = station.reader.observe(collision, timestamp_s=t_query)
        cfos = [float(c) for c in report.count.cfos_hz()]
        snr_by_cfo = {
            float(o.cfo_hz): float(o.snr) for o in report.count.observations
        }
        ids, unknown = resolve_cached_ids(station.identities, cfos, now_s=t_query)
        # How each resolved cfo was won this round: (resolution kind,
        # decode queries spent) — provenance the city layer (directory,
        # billing plane) consumes alongside the sighting itself.
        kinds: dict[float, tuple[str, int]] = {}
        for cfo, tag_id in sorted(ids.items()):
            pushed = station.pushed.pop(tag_id, None)
            if pushed is not None:
                # The entry was planted here ahead of arrival by an
                # upstream pole's prediction; its first consumption is a
                # push hit, not a plain own-cache hit.
                self.ledger.record_push_hit(
                    station.name, pushed[0], tag_id, t_query, cfo
                )
                kinds[cfo] = (PUSH, 0)
                if sobs is not None:
                    sobs.count("corridor.resolution", kind="push")
            else:
                self.ledger.record_own_hit(station.name, tag_id, t_query, cfo)
                kinds[cfo] = (OWN_HIT, 0)
                if sobs is not None:
                    sobs.count("corridor.resolution", kind="own")

        # Neighbor handoff: a fingerprint the local cache misses may be
        # sitting one pole upstream — forward it instead of re-decoding.
        still_unknown: list[float] = []
        if self.handoff:
            claimed = set(ids.values())
            for cfo in unknown:
                donor_id, donor = None, None
                for neighbor in station.neighbors():
                    tag_id = neighbor.identities.lookup(cfo, now_s=t_query)
                    if tag_id is not None and tag_id not in claimed:
                        donor_id, donor = tag_id, neighbor
                        break
                if donor_id is None:
                    still_unknown.append(cfo)
                    continue
                station.identities.store(cfo, donor_id, now_s=t_query)
                ids[cfo] = donor_id
                kinds[cfo] = (HANDOFF, 0)
                claimed.add(donor_id)
                self._push_note_superseded(station, donor_id)
                self.ledger.record_handoff(
                    station.name, donor.name, donor_id, t_query, cfo
                )
                if sobs is not None:
                    sobs.count("corridor.resolution", kind="handoff")
        else:
            still_unknown = unknown

        busy_end = response_end
        decode_results: dict = {}
        if still_unknown and self.decode:
            busy_end = self._decode_burst(
                station,
                t_query,
                response_end,
                still_unknown,
                snr_by_cfo,
                ids,
                decode_results,
                seed=collision,
                kinds=kinds,
            )

        if sobs is not None:
            sobs.count("corridor.round", outcome="clean")
            sobs.span(
                "round",
                t_query,
                busy_end,
                outcome="clean",
                spikes=len(cfos),
                resolved=len(ids),
            )
        self._emit_observations(station, report, ids, t_query, decode_results)
        if self.on_sighting is not None:
            # Every id resolved this round (cache hits, pushes, pulls,
            # fresh decodes) is a sighting the city layer may act on —
            # the mesh reports it to the identity directory and, under
            # predictive handoff, plants the entry at the next pole.
            # The sighting's coordinate is the §6 localized fix when
            # this round produced one (§7 speed runs on repeated
            # localization), the pole's own position otherwise.
            for cfo, tag_id in sorted(ids.items()):
                hint = station._hints.get(tag_id)
                localized = hint is not None and hint[1] == t_query
                if localized:
                    x_m = float(hint[0][0])
                else:
                    x_m = float(station.pole_position_m[0])
                kind, n_queries = kinds.get(cfo, (OWN_HIT, 0))
                self.on_sighting(
                    self, station, tag_id, cfo, t_query, x_m, localized,
                    kind, n_queries,
                )
        return busy_end

    def _decode_burst(
        self,
        station: CorridorStation,
        t_query: float,
        response_end: float,
        targets: list[float],
        snr_by_cfo: dict[float, float],
        ids: dict[float, int],
        decode_results: dict | None = None,
        seed=None,
        kinds: dict[float, tuple[str, int]] | None = None,
    ) -> float:
        """Run one §12.4 batched decode over the shared capture stream."""
        sobs = self._station_obs[station.name]
        worth_it = []
        for cfo in targets:
            snr = snr_by_cfo.get(cfo, float("inf"))
            if self.decode_snr_db is not None and snr < self.decode_snr_db:
                self.ledger.record_decode_deferred(station.name, t_query, cfo)
            else:
                worth_it.append(cfo)
        if not worth_it:
            return response_end

        state = {"cursor": t_query + QUERY_PERIOD_S, "busy_end": response_end}

        def decode_query(t_rel: float):
            t_requested = t_query + float(t_rel)
            t_actual = max(t_requested, state["cursor"])
            station_x = self._station_x[station.name]
            if self.use_csma:
                heard = self.air.heard_state(
                    t_actual, x_m=station_x, hear_range_m=self.interference_range_m
                )
                if not station.mac.can_transmit(t_actual, heard):
                    station.queries_deferred += 1
                    if sobs is not None:
                        sobs.count("mac.deferral", context="burst")
                    t_actual = station.mac.next_opportunity(t_actual, heard)
            station.queries_sent += 1
            if sobs is not None:
                sobs.count("corridor.query", kind="decode")
            self.air.record_query(station.name, t_actual, x_m=station_x)
            self._note_own_window(station, t_actual)
            subset = self._tags_near(station, t_actual)
            start = t_actual + QUERY_DURATION_S + TURNAROUND_S
            corrupted = False
            if subset:
                response = self.air.record_response(
                    f"{station.name}-burst",
                    start,
                    triggered_by=station.name,
                    x_m=station_x,
                )
                corrupted = self.air.any_query_overlapping(
                    response.start_s,
                    response.end_s,
                    exclude_source=station.name,
                    exclude_start_s=t_actual,
                    x_m=station_x,
                    hear_range_m=self.interference_range_m,
                )
                # The synthesis-time verdict only sees transmissions
                # recorded so far; _result re-checks this capture against
                # the final log for exact corruption accounting.
                self._burst_log.append(
                    (station.name, t_actual, response.start_s, response.end_s, corrupted)
                )
            state["cursor"] = t_actual + QUERY_PERIOD_S
            state["busy_end"] = start + RESPONSE_DURATION_S
            collision = station.source.query(subset, t_actual, corrupted=corrupted)
            if subset:
                self._publish_window(
                    station, t_actual, start, subset,
                    None if corrupted else collision.truth,
                )
            return collision

        # Stations configured through the deprecated alias forward it
        # conditionally (__post_init__ already warned and pinned
        # combining="single"); clean stations never touch the keyword.
        extra = (
            {}
            if station.antenna_index is None
            else {"antenna_index": station.antenna_index}
        )
        session = station.reader.decode_session(
            decode_query,
            combining=station.combining,
            opportunistic=station.opportunistic,
            obs=sobs,
            **extra,
        )
        if seed is not None:
            # The measurement capture doubles as the burst's first decode
            # capture, so identification adds air time only beyond the
            # measurement query itself (§12.4).
            session.seed_capture(seed)
        if station.opportunistic == "accept":
            # Windows other poles triggered since the last burst are free
            # evidence: re-synthesized over this pole's geometry and
            # donated — the session combines each for the targets whose
            # spike it detectably contains.
            for collision in self._overhear(station, t_query):
                session.donate_capture(collision)
        results = session.decode_all(worth_it, max_queries=self.max_queries)
        if decode_results is not None:
            decode_results.update(results)
        for cfo, result in results.items():
            if result.success:
                tag_id = result.packet.tag_id
                ids[cfo] = tag_id
                station.identities.store(cfo, tag_id, now_s=t_query)
                self._push_note_superseded(station, tag_id)
                decode_kind = self.ledger.record_decode(
                    station.name,
                    tag_id,
                    t_query,
                    cfo,
                    n_queries=result.n_queries,
                    n_overheard=result.n_overheard,
                )
                if kinds is not None:
                    kinds[cfo] = (decode_kind, result.n_queries)
                if sobs is not None:
                    sobs.count("corridor.resolution", kind="decode")
                if tag_id not in self._identified:
                    self._identified[tag_id] = (
                        state["busy_end"],
                        result.n_queries,
                        result.n_overheard,
                    )
                    if sobs is not None:
                        sobs.instant(
                            "identified", state["busy_end"], tag=str(tag_id)
                        )
            else:
                self.ledger.record_decode_failure(
                    station.name,
                    t_query,
                    cfo,
                    n_queries=result.n_queries,
                    n_overheard=result.n_overheard,
                )
                if sobs is not None:
                    sobs.count("corridor.decode_failure")
        if sobs is not None and state["busy_end"] > response_end:
            sobs.span(
                "decode-burst",
                response_end,
                state["busy_end"],
                targets=len(worth_it),
            )
        return state["busy_end"]

    def _push_note_superseded(self, station: CorridorStation, tag_id: int) -> None:
        """A sighting resolved *around* a pushed entry: the push missed.

        The first sighting of a pushed tag can still end in a handoff
        or a re-decode — the pushed entry was LRU-evicted or aged out
        before arrival, or the spike drifted outside its tolerance. A
        note left behind would make the *next* round's plain own-cache
        hit masquerade as a push hit, so the miss is recorded (and the
        note cleared) the moment something else resolves the sighting.
        """
        note = station.pushed.pop(tag_id, None)
        if note is not None:
            from_station, cfo_hz, t_push = note
            self.ledger.record_push_miss(
                station.name, from_station, tag_id, t_push, cfo_hz
            )

    # -- the shared response pool -------------------------------------------------

    def _note_own_window(self, station: CorridorStation, t_query_s: float) -> None:
        """Remember the capture slot an own query opens, bounded.

        Harvesting needs recent own windows for the overlap exclusion;
        windows far past the receiver-buffer horizon can never matter
        again, so the list is trimmed as it grows — including for
        ``"ignore"`` stations, which never harvest (and would otherwise
        accumulate one entry per query for the whole run).
        """
        window = station.mac.response_window(t_query_s)
        station._own_windows.append(window)
        if len(station._own_windows) > 256:
            floor = window[1] - (self.overheard_horizon_s + 1.0)
            station._own_windows = [
                w for w in station._own_windows if w[1] > floor
            ]

    def _publish_window(
        self,
        station: CorridorStation,
        t_query_s: float,
        start_s: float,
        candidates: list[MovingTag],
        truth,
    ) -> None:
        """Publish one query's trigger window to the shared pool.

        ``truth`` is the synthesized collision's ground-truth list (its
        order matches ``candidates``), carrying each response's random
        oscillator phase — the transmission-side state an overhearing
        pole must reuse. None marks the window corrupted (a query stepped
        on it; its content is garbage at every receiver, so no phases
        exist to share).
        """
        end_s = start_s + RESPONSE_DURATION_S
        if truth is None:
            window = TriggerWindow(
                station.name,
                t_query_s,
                start_s,
                end_s,
                tags=tuple(candidates),
                corrupted=True,
            )
        else:
            window = TriggerWindow(
                station.name,
                t_query_s,
                start_s,
                end_s,
                tags=tuple(candidates),
                phases_rad=tuple(
                    float(entry.response.phase0_rad) for entry in truth
                ),
            )
        self.pool.publish(window)

    def _overhear(self, station: CorridorStation, now_s: float) -> list:
        """Harvest and synthesize the windows a station overheard.

        Windows ending since the station's last harvest (bounded by the
        receiver's buffer horizon) that another pole triggered, that
        stay clear of this pole's own capture slots, and that carry at
        least one responder in radio range are re-synthesized over this
        pole's geometry — same per-response phases, this pole's
        channel/noise. Each harvested window's corruption verdict against
        the air log as known *now* is recorded; corrupted windows are
        dropped (their content is query-energy garbage), and `_result`
        re-checks the donated ones against the final log.
        """
        lo = max(station.last_harvest_s, now_s - self.overheard_horizon_s)
        station.last_harvest_s = now_s
        station._own_windows = [
            w for w in station._own_windows if w[1] > lo - 1e-3
        ]
        harvested = self.pool.harvest(
            station.name,
            station.pole_position_m,
            lo,
            now_s,
            station._own_windows,
            self.range_m,
        )
        captures = []
        for window, audible in harvested:
            corrupted = window.corrupted or self.air.any_query_overlapping(
                window.start_s,
                window.end_s,
                exclude_source=window.origin,
                exclude_start_s=window.t_query_s,
                x_m=self._station_x[station.name],
                hear_range_m=self.interference_range_m,
            )
            self._overheard_log.append(
                (
                    station.name,
                    window.origin,
                    window.t_query_s,
                    window.start_s,
                    window.end_s,
                    corrupted,
                )
            )
            sobs = self._station_obs[station.name]
            if corrupted:
                if sobs is not None:
                    sobs.count("corridor.overheard", outcome="corrupted")
                continue
            if sobs is not None:
                sobs.count("corridor.overheard", outcome="donated")
            captures.append(
                station.source.overhear(
                    audible,
                    window.start_s,
                    origin=window.origin,
                    rng=self.overhear_rng,
                )
            )
        station.overheard_donated += len(captures)
        return captures

    def _emit_observations(
        self,
        station: CorridorStation,
        report,
        ids: dict[float, int],
        t_query: float,
        decode_results: dict | None = None,
    ) -> None:
        if station.localizer is None or not ids:
            return
        observation_cls = _tag_observation()
        estimates = {estimate.cfo_hz: estimate for estimate in report.aoas}
        for cfo, tag_id in sorted(ids.items()):
            estimate = estimates.get(cfo)
            if estimate is None:
                # A spike the measurement pass produced no AoA for can
                # still be positioned from the decode burst's channel
                # evidence — localization falls out of decoding.
                estimate = decode_aoa(station, decode_results, cfo)
            if estimate is None or not estimate.in_usable_band():
                continue
            hint = station._hints.get(tag_id)
            try:
                fix = station.localizer.locate(
                    estimate,
                    station.reader.estimator,
                    hint_xy=None if hint is None else hint[0],
                )
            except CaraokeError:
                continue
            station._hints[tag_id] = (fix, t_query)
            observation = observation_cls(
                tag_id=tag_id,
                position_m=fix,
                timestamp_s=t_query,
                station=station.name,
                cell=station.cell.name,
            )
            self.observations.append(observation)
            for service in self.services:
                service.observe(observation)

    # -- results -----------------------------------------------------------------

    def _recheck_captures_posthoc(self) -> tuple[int, int]:
        """Exact corrupted-capture counts against the *final* air log.

        A capture's synthesis-time (or harvest-time) corruption check
        only sees transmissions recorded before it — a later event's (or
        a blindly interleaving burst's) query that lands on the same
        response window is invisible to it. With the run over, every
        transmission is on the log, so each recorded burst capture and
        each *donated* overheard window is re-checked here; one binary
        search per capture bounds the scan to the queries that could
        overlap its window. Returns ``(burst, overheard)`` counts.
        """
        queries = self.air.sorted_queries()
        starts = [q.start_s for q in queries]

        def stepped_on(
            start_s: float,
            end_s: float,
            own_source: str,
            own_start_s: float,
            receiver_x_m: float,
        ) -> bool:
            lo = bisect.bisect_left(starts, start_s - QUERY_DURATION_S)
            hi = bisect.bisect_left(starts, end_s)
            for query in queries[lo:hi]:
                if query.source == own_source and query.start_s == own_start_s:
                    continue
                if not query.reaches(receiver_x_m, self.interference_range_m):
                    continue
                if query.start_s < end_s and query.end_s > start_s:
                    return True
            return False

        burst = sum(
            1
            for source, t_query, start_s, end_s, _ in self._burst_log
            if stepped_on(start_s, end_s, source, t_query, self._station_x[source])
        )
        overheard = sum(
            1
            for station, origin, t_query, start_s, end_s, corrupted in self._overheard_log
            if not corrupted
            and stepped_on(start_s, end_s, origin, t_query, self._station_x[station])
        )
        return burst, overheard

    def _result(self, duration_s: float) -> CorridorResult:
        identifications = [
            IdentificationStat(
                tag_id=tag_id,
                first_seen_s=self._first_seen.get(tag_id, t_id),
                identified_s=t_id,
                n_queries=n_queries,
                n_overheard=n_overheard,
            )
            for tag_id, (t_id, n_queries, n_overheard) in sorted(
                self._identified.items()
            )
        ]
        burst_posthoc, overheard_posthoc = self._recheck_captures_posthoc()
        policies = sorted({s.opportunistic for s in self.stations})
        # On a shared (mesh) air log / pool, count only what this
        # corridor's own stations triggered; every response carries
        # trigger provenance, so the filter is exact (and a no-op for a
        # private log — every record is ours).
        own = set(self._station_x)
        responses = [r for r in self.air.responses() if r.triggered_by in own]
        corrupted_responses = [
            r
            for r in self.air.corrupted_responses(self.interference_range_m)
            if r.triggered_by in own
        ]
        return CorridorResult(
            scheduling=self.scheduling,
            duration_s=duration_s,
            queries_sent=sum(s.queries_sent for s in self.stations),
            queries_deferred=sum(s.queries_deferred for s in self.stations),
            rounds=sum(s.rounds for s in self.stations),
            empty_rounds=sum(s.empty_rounds for s in self.stations),
            corrupted_rounds=sum(s.corrupted_rounds for s in self.stations),
            responses=len(responses),
            corrupted_responses=len(corrupted_responses),
            n_observations=len(self.observations),
            ledger=self.ledger,
            identifications=identifications,
            tags_seen=len(self._first_seen),
            burst_captures=len(self._burst_log),
            burst_corrupted_at_synthesis=sum(
                1 for entry in self._burst_log if entry[4]
            ),
            burst_corrupted_posthoc=burst_posthoc,
            opportunistic=policies[0] if len(policies) == 1 else "mixed",
            overheard_windows=sum(1 for w in self.pool.windows if w.origin in own),
            overheard_harvested=len(self._overheard_log),
            overheard_corrupted_at_harvest=sum(
                1 for entry in self._overheard_log if entry[5]
            ),
            overheard_donated=sum(s.overheard_donated for s in self.stations),
            overheard_corrupted_posthoc=overheard_posthoc,
        )
