"""The shared trigger-window response pool: one street, one air medium.

Caraoke's §8/§9 design assumes every transponder answer is broadcast on
one shared channel: a tag that responds to pole A's query is physically
audible at every pole whose coverage overlaps the tag. The corridor
engine used to synthesize each station's capture only from its *own*
candidates; this module is the missing cross-pole half.

Every query that triggered responses publishes a :class:`TriggerWindow`
to the corridor's :class:`ResponsePool`: who queried, when the response
slot runs, which tags answered, and — crucially — each response's random
oscillator phase. The phase is a property of the *transmission*, not the
receiver, so a pole overhearing the window must see the same per-tag
phase as the pole that triggered it; only the channel (per-pole
delay/attenuation/array geometry) differs. Harvesting stations pull
windows they could physically have buffered (recent, not their own, not
overlapping their own capture slots, with at least one responder in
radio range) and re-synthesize them over their own geometry via
:meth:`~repro.sim.city.moving.MovingCollisionSource.overhear` — free
decode evidence that a :class:`~repro.core.decoding.DecodeSession`
combines under its ``opportunistic="accept"`` policy.

What the pool does *not* model: partial-overlap mixing (a window that
overlaps the harvesting pole's own capture slot is skipped outright —
overlapping triggers already merge into the pole's own capture) and
capture-effect/near-far suppression between overheard responses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...errors import ConfigurationError
from .moving import MovingTag

__all__ = ["TriggerWindow", "ResponsePool"]


@dataclass(frozen=True)
class TriggerWindow:
    """One query's worth of on-air responses, as published to the pool.

    Attributes:
        origin: the station whose query opened the window.
        t_query_s: when the triggering query started.
        start_s / end_s: the response slot (§3 timing).
        tags: the responders (every tag in the origin's radio range).
        phases_rad: each response's random oscillator phase — identical
            at every receiving pole (the transmission carries it). Empty
            for corrupted windows: the origin never synthesized the
            responses, so no phases exist to share (the tags are still
            listed — harvesters need them to know the garbage was
            audible).
        corrupted: the origin's synthesis-time verdict: some other
            reader's query stepped on this window, so its content is
            garbage at *every* receiver. Harvesters re-check against the
            air log as known at harvest time (later-recorded queries may
            have landed on the window since).
    """

    origin: str
    t_query_s: float
    start_s: float
    end_s: float
    tags: tuple[MovingTag, ...] = ()
    phases_rad: tuple[float, ...] = ()
    corrupted: bool = False

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ConfigurationError(
                f"empty trigger window [{self.start_s}, {self.end_s}]"
            )
        if not self.corrupted and len(self.tags) != len(self.phases_rad):
            raise ConfigurationError("one response phase per responding tag")

    def overlaps(self, start_s: float, end_s: float) -> bool:
        return self.start_s < end_s and start_s < self.end_s

    def audible_tags(
        self, pole_m: np.ndarray, range_m: float
    ) -> list[tuple[MovingTag, float]]:
        """The (tag, phase) responders in radio range of a listening pole
        at the window's response time."""
        return [
            (tag, phase)
            for tag, phase in zip(self.tags, self.phases_rad)
            if tag.in_range(pole_m, self.start_s, range_m)
        ]


class ResponsePool:
    """Everything triggered on the shared street, queryable by window.

    Windows are appended in near event order (a decode burst publishes
    its future windows when the burst executes, bounded by the burst
    span), so time-range scans walk back from the newest record and stop
    ``slack_s`` past the range — O(recent traffic), like the
    :class:`~repro.sim.medium.AirLog` it mirrors.
    """

    def __init__(self, slack_s: float = 0.25, obs=None) -> None:
        self.slack_s = float(slack_s)
        self.windows: list[TriggerWindow] = []
        #: Nullable observability hook (see :mod:`repro.obs`): counts
        #: windows published and each harvest's kept/dropped verdicts.
        self.obs = obs

    def __len__(self) -> int:
        return len(self.windows)

    def publish(self, window: TriggerWindow) -> TriggerWindow:
        """Record one trigger window; returns it for chaining."""
        self.windows.append(window)
        if self.obs is not None:
            self.obs.count(
                "pool.published",
                origin=window.origin,
                corrupted=str(window.corrupted).lower(),
            )
        return window

    def windows_ending_in(
        self, lo_s: float, hi_s: float, exclude_origin: str | None = None
    ) -> list[TriggerWindow]:
        """Windows with ``end_s`` in ``(lo_s, hi_s]``, oldest first.

        The half-open interval is the harvest contract: a station that
        harvests up to its current time and remembers that time as the
        next call's ``lo_s`` sees every window exactly once, even when
        bursts published windows out of record order.
        """
        out = []
        for window in reversed(self.windows):
            if window.end_s < lo_s - self.slack_s:
                break
            if lo_s < window.end_s <= hi_s and window.origin != exclude_origin:
                out.append(window)
        out.reverse()
        return out

    def harvest(
        self,
        station: str,
        pole_m: np.ndarray,
        lo_s: float,
        hi_s: float,
        own_windows: list[tuple[float, float]],
        range_m: float,
    ) -> list[tuple[TriggerWindow, list[tuple[MovingTag, float]]]]:
        """Windows a station could have buffered since its last harvest.

        Selects windows ending in ``(lo_s, hi_s]`` that were triggered by
        *another* station, do not overlap any of the station's own
        capture slots (its receiver was busy there — and overlapping
        triggers already merged into its own capture), and carry at least
        one responder inside the station's radio range at response time.
        Corruption is deliberately *not* judged here: the caller checks
        the air log as known at harvest time, so the pool's bookkeeping
        and the medium's stay independently auditable.

        Returns ``(window, audible (tag, phase) pairs)`` tuples, oldest
        first.
        """
        out = []
        dropped = {"own_window": 0, "out_of_range": 0}
        for window in self.windows_ending_in(lo_s, hi_s, exclude_origin=station):
            if any(window.overlaps(w_lo, w_hi) for w_lo, w_hi in own_windows):
                dropped["own_window"] += 1
                continue
            if window.corrupted:
                # No phases to synthesize from — but an audible corrupted
                # window still counts (the receiver buffered garbage and
                # the caller's corruption accounting must see it).
                if any(
                    tag.in_range(pole_m, window.start_s, range_m)
                    for tag in window.tags
                ):
                    out.append((window, []))
                else:
                    dropped["out_of_range"] += 1
                continue
            audible = window.audible_tags(pole_m, range_m)
            if audible:
                out.append((window, audible))
            else:
                dropped["out_of_range"] += 1
        if self.obs is not None:
            self.obs.count("pool.harvested", n=len(out), station=station)
            for reason, n in dropped.items():
                if n:
                    self.obs.count("pool.dropped", n=n, station=station, reason=reason)
        return out
