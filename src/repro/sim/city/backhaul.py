"""Intermittent backhaul: every pole↔directory link is a modeled link.

The mesh so far assumes every reader pole enjoys a free, lossless wire
to the city directory: a resolved sighting is reported the instant it
happens, and a push intent lands on the target pole in the same breath.
The DTN-backbone deployment scenario (PAPERS.md) breaks exactly that
assumption — low-cost cities where poles have *no* wired uplink and
reports, pushes and charge events must ride scheduled syncs or cars
acting as data mules. This module turns "directory RTT is free" into a
configured, measured axis:

* :class:`BackhaulLink` — one pole's link state: the uplink
  :class:`SyncBuffer` of pending sighting deltas, the downlink queue of
  push intents waiting to reach the pole, and the link's sync schedule
  (next attempt, retry backoff).
* :class:`BackhaulConfig` — the delivery policy. ``"wired"`` is
  today's behavior (immediate application — golden-pinned bit-for-bit
  against the pre-backhaul mesh), ``"scheduled"`` batches each pole's
  traffic and flushes it on a staggered per-pole sync schedule with
  retry/backoff under injected outages, ``"mule"`` has cars crossing a
  pole pick up its buffered deltas and deliver them at the next synced
  (gateway) pole they pass.
* :class:`FaultPlan` — seeded, injectable degradation: outage windows
  (per link or global), per-flush drop probability, and a per-flush
  delivery delay drawn from a range (heterogeneous delays are what
  reorders batches in flight). All draws come from one explicit
  generator consumed in canonical event order, so an identical plan +
  seed reproduces byte-identical runs.
* :class:`BackhaulPlane` — the coordinator-owned router every sighting
  crosses. The mesh (serial) and the sharded coordinator both submit
  the canonical sighting stream through one plane, so summaries stay
  worker-count invariant; the plane is the **only** library code that
  talks to the directory from the pole path (the ``backhaul-policy``
  analyzer rule enforces it).

Determinism contract: the plane holds no wall clock and no RNG of its
own — time comes from the submitted stream (plus the mesh heartbeat),
and the only stochastic element is the :class:`FaultPlan`'s explicitly
seeded generator, drawn once per flush attempt in canonical order.
Batched deliveries apply at their *delivery* time (``delivered_s``),
which drives directory aging and billing watermarks; the emission time
rides along so dedup windows and speed estimates stay anchored to when
the car actually crossed.

``python -m repro.sim.city.backhaul --smoke`` runs all three policies
plus one fault plan on a small grid and checks wired bit-identity,
lossless convergence after the final flush, and repeat-seed
determinism (the fast CI tier runs it per push).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ...errors import ConfigurationError
from ...utils import as_rng

__all__ = [
    "POLICIES",
    "OutageWindow",
    "FaultPlan",
    "SyncBuffer",
    "BackhaulLink",
    "BackhaulConfig",
    "BackhaulPlane",
]

#: Delivery policies a link can run (see :class:`BackhaulConfig`).
POLICIES = ("wired", "scheduled", "mule")

#: Sync-lag histogram bucket upper bounds, seconds (the last bucket is
#: open-ended). Fixed so snapshots compare bit-for-bit across runs.
LAG_BUCKETS_S = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0)


@dataclass(frozen=True)
class OutageWindow:
    """One injected backhaul outage.

    Attributes:
        start_s / end_s: sim-time window during which flush attempts
            fail (retry with backoff; nothing is lost).
        link: station name the outage applies to, or None for every
            link (a backbone outage).
    """

    start_s: float
    end_s: float
    link: str | None = None

    def covers(self, link: str, t_s: float) -> bool:
        if self.link is not None and self.link != link:
            return False
        return self.start_s <= t_s < self.end_s


class FaultPlan:
    """Seeded, injectable link degradation for backhaul runs.

    Three knobs, each deterministic under the plan's own generator:

    * ``outages`` — :class:`OutageWindow` spans during which a link's
      flush attempts fail outright (the batch stays buffered and the
      link retries with exponential backoff);
    * ``drop_p`` — per-flush-attempt probability the transmission is
      lost (counted, retried — never silently discarded);
    * ``delay_range_s`` — per-flush delivery delay drawn uniformly;
      heterogeneous delays are the reorder mechanism (a later flush
      with a shorter delay overtakes an earlier one in flight).

    The generator is consumed once per flush attempt in canonical event
    order, so identical plan parameters + seed reproduce byte-identical
    metric snapshots and billing summaries (asserted by the smoke and
    the fault-injection test suite).
    """

    def __init__(
        self,
        *,
        outages=(),
        drop_p: float = 0.0,
        delay_range_s: tuple[float, float] = (0.0, 0.0),
        rng=0,
    ) -> None:
        if not 0.0 <= drop_p <= 1.0:
            raise ConfigurationError("drop_p must be a probability")
        lo, hi = float(delay_range_s[0]), float(delay_range_s[1])
        if lo < 0.0 or hi < lo:
            raise ConfigurationError("delay_range_s must be 0 <= lo <= hi")
        for window in outages:
            if window.end_s < window.start_s:
                raise ConfigurationError("an outage must end after it starts")
        self.outages = tuple(outages)
        self.drop_p = float(drop_p)
        self.delay_range_s = (lo, hi)
        self._rng = as_rng(rng)

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        duration_s: float,
        links=(),
        n_outages: int = 2,
        outage_s: float = 2.0,
        drop_p: float = 0.1,
        max_delay_s: float = 1.0,
    ) -> "FaultPlan":
        """A random-but-reproducible plan: ``n_outages`` windows of
        ``outage_s`` placed uniformly inside the run (on a random link
        from ``links``, or globally when no links are named), plus the
        given drop/delay knobs. One seed fixes everything, including
        the per-attempt draws of the returned plan."""
        rng = as_rng(seed)
        links = sorted(links)
        windows = []
        for _ in range(int(n_outages)):
            link = (
                None
                if not links
                else links[int(rng.integers(0, len(links)))]
            )
            start_s = float(rng.uniform(0.0, max(duration_s - outage_s, 0.0)))
            windows.append(OutageWindow(start_s, start_s + float(outage_s), link))
        return cls(
            outages=windows,
            drop_p=drop_p,
            delay_range_s=(0.0, float(max_delay_s)),
            rng=int(rng.integers(0, 2**31)),
        )

    def outage_covers(self, link: str, t_s: float) -> bool:
        return any(window.covers(link, t_s) for window in self.outages)

    def sample(self, _link: str) -> tuple[bool, float]:
        """One flush attempt's fate: (dropped, delivery delay). Both
        draws happen every call so the stream stays aligned whatever
        the drop outcome."""
        dropped = float(self._rng.uniform(0.0, 1.0)) < self.drop_p
        delay_s = float(self._rng.uniform(*self.delay_range_s))
        return dropped, delay_s

    def summary(self) -> dict:
        """Plan shape, JSON-friendly (no draw state)."""
        return {
            "n_outages": len(self.outages),
            "outage_total_s": float(
                sum(w.end_s - w.start_s for w in self.outages)
            ),
            "drop_p": self.drop_p,
            "delay_range_s": list(self.delay_range_s),
        }


class SyncBuffer:
    """A pole's uplink buffer of sighting deltas awaiting transport."""

    def __init__(self) -> None:
        self.items: list[tuple] = []
        self.total = 0

    def append(self, item: tuple) -> None:
        self.items.append(item)
        self.total += 1

    def drain(self) -> list[tuple]:
        out, self.items = self.items, []
        return out

    def __len__(self) -> int:
        return len(self.items)


@dataclass
class BackhaulLink:
    """One pole↔directory link: buffers, schedule and retry state.

    Attributes:
        station: the pole this link belongs to.
        buffer: uplink :class:`SyncBuffer` of sighting deltas (under
            ``mule`` this is the pile a passing car picks up).
        downlink: push intents queued at the directory side, delivered
            to the pole on its next successful sync.
        next_attempt_s: next scheduled flush attempt (``scheduled``
            policy; unused under ``mule``).
        backoff_s: current retry backoff (0 when the link is healthy).
        retries: failed attempts this link has re-queued.
    """

    station: str
    buffer: SyncBuffer = field(default_factory=SyncBuffer)
    downlink: list[tuple] = field(default_factory=list)
    next_attempt_s: float = float("inf")
    backoff_s: float = 0.0
    retries: int = 0


@dataclass
class BackhaulConfig:
    """Delivery policy for every pole↔directory link of a mesh.

    Attributes:
        policy: one of :data:`POLICIES` — ``"wired"`` (immediate
            application, the pre-backhaul behavior, golden-pinned),
            ``"scheduled"`` (per-pole sync schedule with retry/backoff)
            or ``"mule"`` (cars carry deltas to gateway poles).
        sync_period_s: flush cadence under ``scheduled``.
        stagger: phase-stagger the per-pole schedules (pole ``i`` of
            ``n`` first syncs at ``period * (1 + i/n)``) so the
            directory sees a spread load instead of a thundering herd.
            Deterministic — derived from sorted station order, no RNG.
        retry_backoff_s / max_backoff_s: exponential retry backoff
            bounds after an outage or dropped flush.
        heartbeat_s: how often a *serial* mesh run advances the plane
            between sightings (bounds push-delivery staleness; the
            sharded coordinator advances at its own sync quanta).
            Delivery times themselves are exact regardless — the
            heartbeat only bounds how late a delivered push is planted.
        gateways: stations with a wired uplink under ``mule``; empty
            means the mesh derives them (the last pole of every exit
            edge, where departing cars naturally pass).
        fault_plan: optional :class:`FaultPlan` injecting outages,
            drops and delays.
    """

    policy: str = "wired"
    sync_period_s: float = 2.0
    stagger: bool = True
    retry_backoff_s: float = 0.25
    max_backoff_s: float = 2.0
    heartbeat_s: float = 0.25
    gateways: tuple[str, ...] = ()
    fault_plan: FaultPlan | None = None

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ConfigurationError(
                f"unknown backhaul policy {self.policy!r}; pick from {POLICIES}"
            )
        if self.sync_period_s <= 0:
            raise ConfigurationError("the sync period must be positive")
        if self.retry_backoff_s <= 0 or self.max_backoff_s < self.retry_backoff_s:
            raise ConfigurationError(
                "need 0 < retry_backoff_s <= max_backoff_s"
            )
        if self.heartbeat_s <= 0:
            raise ConfigurationError("the heartbeat must be positive")


class BackhaulPlane:
    """The router every pole→directory (and push downlink) hop crosses.

    One plane serves one run. Both execution engines drive it with the
    same protocol: :meth:`submit` once per resolved sighting in
    canonical time order, :meth:`advance` at heartbeat / rendezvous
    boundaries, :meth:`final_flush` once at end of run (the DTN
    convergence flush — after it, every submitted item has been applied
    and :meth:`check_consistent` holds).

    Under ``wired`` the plane is a pass-through executing exactly the
    pre-backhaul sequence (directory report, then taps) — bit-identical
    by construction. Under the batched policies items apply at delivery
    time: the directory via
    :meth:`~repro.sim.city.directory.IdentityDirectory.apply_delta`,
    taps with an extra ``delivered_s`` keyword, and push intents are
    recomputed at delivery against the then-current speed estimate and
    routed back over the same links (``scheduled``: the target pole's
    downlink; ``mule``: immediate at gateways, dropped — and counted —
    for unsynced poles, which have no downlink path).

    Args:
        config: the :class:`BackhaulConfig`.
        directory: the city :class:`IdentityDirectory` (or compatible).
        taps: the mesh's sighting-tap list (shared by reference).
        stations: every pole name of the mesh.
        gateways: synced poles under ``mule`` (ignored otherwise).
        push_intent: optional callback
            ``(edge, station, x_m, tag_id, cfo_hz, t_emit, estimate) ->
            intent | None`` computing a push decision (the mesh's own
            predictor); None disables push routing entirely.
        deliver_push: optional callback ``(intent, now_s)`` planting a
            push that reached its pole (serial: the live station cache;
            sharded: the coordinator's next-quantum intent queue).
        obs: nullable observability hook — mirrors the ``backhaul.*``
            metric family; never affects delivery.
    """

    def __init__(
        self,
        config: BackhaulConfig,
        *,
        directory,
        taps,
        stations,
        gateways=(),
        push_intent=None,
        deliver_push=None,
        obs=None,
    ) -> None:
        self.config = config
        self.policy = config.policy
        self.directory = directory
        self.taps = taps
        self.stations = sorted(stations)
        self.gateways = frozenset(gateways)
        self.obs = obs
        self._make_push_intent = push_intent
        self._deliver_push = deliver_push
        self.batched = self.policy != "wired"
        if self.policy == "mule" and not self.gateways:
            raise ConfigurationError(
                "the mule policy needs at least one gateway pole"
            )
        unknown = self.gateways - set(self.stations)
        if self.batched and unknown:
            raise ConfigurationError(f"unknown gateway stations: {sorted(unknown)}")
        self._links: dict[str, BackhaulLink] = {}
        n = len(self.stations)
        for i, name in enumerate(self.stations):
            link = BackhaulLink(station=name)
            if self.policy == "scheduled":
                phase = (config.sync_period_s * i / n) if (config.stagger and n) else 0.0
                link.next_attempt_s = config.sync_period_s + phase
            self._links[name] = link
        #: car satchels under ``mule``: items riding each tag, keyed by id.
        self._satchels: dict[int, list[tuple]] = {}
        #: batches in flight: (delivery_s, seq, "up"|"down", station, items).
        self._inflight: list[tuple] = []
        self._seq = 0
        self._closing = False
        self._flushed = False
        # -- counters (all sim-time derived, all deterministic) -------
        self.items_submitted = 0
        self.items_delivered = 0
        self.final_flush_items = 0
        self.batches_sent = 0
        self.batches_delivered = 0
        self.batches_dropped = 0
        self.batches_retried = 0
        self.pushes_sent = 0
        self.pushes_delivered = 0
        self.pushes_dropped = 0
        self.mule_pickups = 0
        self.mule_deliveries = 0
        self.lag_count = 0
        self.lag_sum_s = 0.0
        self.lag_max_s = 0.0
        self.lag_buckets = [0] * (len(LAG_BUCKETS_S) + 1)

    # -- the sighting path ---------------------------------------------------

    def submit(
        self,
        t_s: float,
        edge: str,
        station: str,
        tag_id: int,
        cfo_hz: float,
        x_m: float,
        localized: bool,
        kind: str = "own",
        n_queries: int = 0,
    ):
        """Route one resolved sighting onto its pole's link.

        Wired: applies immediately and returns the directory's speed
        estimate (the caller runs its own inline push logic, exactly as
        before this module existed). Batched policies: buffers /
        satchels the delta and returns None — pushes happen at delivery
        through the plane's callbacks.
        """
        if not self.batched:
            return self._apply(
                (t_s, edge, station, tag_id, cfo_hz, x_m, localized, kind, n_queries),
                None,
            )
        self.advance(t_s)
        self.items_submitted += 1
        item = (
            float(t_s),
            str(edge),
            str(station),
            int(tag_id),
            float(cfo_hz),
            float(x_m),
            bool(localized),
            str(kind),
            int(n_queries),
        )
        link = self._links[station]
        if self.policy == "scheduled":
            link.buffer.append(item)
            return None
        # mule: a car at a gateway hands over its satchel (plus this
        # very read — the gateway pole is synced); anywhere else it
        # picks up the pole's pile and leaves its own read behind for
        # the next car.
        if station in self.gateways:
            batch = self._satchels.pop(tag_id, [])
            batch.append(item)
            if self._transmit(link, batch, float(t_s)):
                self.mule_deliveries += len(batch) - 1
                if self.obs is not None and len(batch) > 1:
                    self.obs.count(
                        "backhaul.mule", kind="delivery", n=len(batch) - 1
                    )
            else:
                self._satchels[tag_id] = batch
        else:
            picked = link.buffer.drain()
            if picked:
                self._satchels.setdefault(tag_id, []).extend(picked)
                self.mule_pickups += len(picked)
                if self.obs is not None:
                    self.obs.count("backhaul.mule", kind="pickup", n=len(picked))
            link.buffer.append(item)
        return None

    def advance(self, now_s: float) -> None:
        """Process every sync attempt and in-flight delivery due by
        ``now_s``, in global (time, sequence) order. Idempotent; both
        engines may call it as often as they like — delivery times are
        computed from the schedule, never from the call instant."""
        if not self.batched:
            return
        now_s = float(now_s)
        while True:
            cand_t = float("inf")
            cand_link = None
            if self._inflight and self._inflight[0][0] <= now_s:
                cand_t = self._inflight[0][0]
            if self.policy == "scheduled":
                for name in self.stations:
                    link = self._links[name]
                    if link.next_attempt_s <= now_s and link.next_attempt_s < cand_t:
                        cand_t = link.next_attempt_s
                        cand_link = link
            if cand_t == float("inf"):
                return
            if cand_link is None:
                self._pop_delivery()
            elif not cand_link.buffer.items and not cand_link.downlink:
                # An empty sync is a no-op on the air: roll the schedule
                # one period. Rolled as an ordinary event — one step per
                # loop, in global time order — so a delivery landing
                # downlink traffic between two of a link's attempts is
                # carried by the next attempt, never skipped because the
                # schedule fast-forwarded past it. Delivery times stay a
                # pure function of the submitted stream, however often
                # the engines call advance().
                cand_link.backoff_s = 0.0
                cand_link.next_attempt_s = cand_t + self.config.sync_period_s
            else:
                self._sync_attempt(cand_link, cand_t)

    def final_flush(self, end_s: float) -> None:
        """The DTN convergence flush: at end of run, deliver everything
        still buffered, satcheled or in flight (outages and drops no
        longer apply — this models the operator reconciling the city
        after the run, the step that makes billing completeness reach
        100%). Push intents are suppressed — the run is over — and
        undeliverable downlink pushes are counted dropped."""
        if not self.batched or self._flushed:
            return
        self._flushed = True
        end_s = float(end_s)
        self.advance(end_s)
        self._closing = True
        before = self.items_delivered
        for name in self.stations:
            items = self._links[name].buffer.drain()
            if items:
                self._apply_batch(items, end_s)
        for tag_id in sorted(self._satchels):
            items = self._satchels[tag_id]
            if items:
                self._apply_batch(items, end_s)
        self._satchels.clear()
        while self._inflight:
            self._pop_delivery()
        for name in self.stations:
            link = self._links[name]
            if link.downlink:
                self.pushes_dropped += len(link.downlink)
                link.downlink = []
        self.final_flush_items = self.items_delivered - before
        if self.obs is not None and self.final_flush_items:
            self.obs.count(
                "backhaul.item", kind="final_flush", n=self.final_flush_items
            )

    # -- link machinery ------------------------------------------------------

    def _attempt_fate(self, link: BackhaulLink, t_s: float):
        """One transmission attempt's outcome against the fault plan:
        ``None`` for a failure (outage or drop — already counted), else
        the delivery delay."""
        plan = self.config.fault_plan
        if plan is None:
            return 0.0
        if plan.outage_covers(link.station, t_s):
            self.batches_retried += 1
            link.retries += 1
            if self.obs is not None:
                self.obs.count("backhaul.batch", kind="retried", link=link.station)
            return None
        dropped, delay_s = plan.sample(link.station)
        if dropped:
            self.batches_dropped += 1
            if self.obs is not None:
                self.obs.count("backhaul.batch", kind="dropped", link=link.station)
            return None
        return delay_s

    def _transmit(self, link: BackhaulLink, batch: list[tuple], t_s: float) -> bool:
        """Put one uplink batch on the air; False means it stays with
        the sender (outage/drop — retry later, nothing lost)."""
        delay_s = self._attempt_fate(link, t_s)
        if delay_s is None:
            return False
        self.batches_sent += 1
        if self.obs is not None:
            self.obs.count("backhaul.batch", kind="sent", link=link.station)
        heapq.heappush(
            self._inflight, (t_s + delay_s, self._seq, "up", link.station, batch)
        )
        self._seq += 1
        return True

    def _sync_attempt(self, link: BackhaulLink, t_s: float) -> None:
        """One scheduled flush: both directions ride the same attempt."""
        delay_s = self._attempt_fate(link, t_s)
        if delay_s is None:
            link.backoff_s = (
                self.config.retry_backoff_s
                if link.backoff_s <= 0.0
                else min(link.backoff_s * 2.0, self.config.max_backoff_s)
            )
            link.next_attempt_s = t_s + link.backoff_s
            return
        link.backoff_s = 0.0
        link.next_attempt_s = t_s + self.config.sync_period_s
        batch_up = link.buffer.drain()
        batch_down, link.downlink = link.downlink, []
        if batch_up:
            self.batches_sent += 1
            if self.obs is not None:
                self.obs.count("backhaul.batch", kind="sent", link=link.station)
            heapq.heappush(
                self._inflight,
                (t_s + delay_s, self._seq, "up", link.station, batch_up),
            )
            self._seq += 1
        if batch_down:
            heapq.heappush(
                self._inflight,
                (t_s + delay_s, self._seq, "down", link.station, batch_down),
            )
            self._seq += 1

    def _pop_delivery(self) -> None:
        delivery_s, _, kind, station, payload = heapq.heappop(self._inflight)
        if kind == "up":
            self.batches_delivered += 1
            if self.obs is not None:
                self.obs.count("backhaul.batch", kind="delivered", link=station)
            self._apply_batch(payload, delivery_s)
            return
        # downlink: push intents reached their pole
        for intent in payload:
            if self._closing or self._deliver_push is None:
                self.pushes_dropped += 1
                continue
            self._deliver_push(intent, delivery_s)
            self.pushes_delivered += 1
            if self.obs is not None:
                self.obs.count("backhaul.push", kind="delivered", link=station)

    # -- application ---------------------------------------------------------

    def _apply_batch(self, items: list[tuple], delivered_s: float) -> None:
        for item in items:
            self._apply(item, delivered_s)

    def _apply(self, item: tuple, delivered_s: float | None):
        t_s, edge, station, tag_id, cfo_hz, x_m, localized, kind, n_queries = item
        if delivered_s is None:
            # The wired pass-through: the exact pre-backhaul sequence.
            estimate = self.directory.report(
                tag_id, cfo_hz, station, edge, x_m, t_s, localized=localized
            )
            for tap in self.taps:
                tap(
                    t_s, edge, station, tag_id, cfo_hz, x_m, localized,
                    kind, n_queries,
                )
            return estimate
        estimate = self.directory.apply_delta(
            tag_id, cfo_hz, station, edge, x_m, t_s,
            localized=localized, delivered_s=delivered_s,
        )
        for tap in self.taps:
            tap(
                t_s, edge, station, tag_id, cfo_hz, x_m, localized,
                kind, n_queries, delivered_s=delivered_s,
            )
        self.items_delivered += 1
        lag_s = max(delivered_s - t_s, 0.0)
        self.lag_count += 1
        self.lag_sum_s += lag_s
        self.lag_max_s = max(self.lag_max_s, lag_s)
        bucket = 0
        while bucket < len(LAG_BUCKETS_S) and lag_s > LAG_BUCKETS_S[bucket]:
            bucket += 1
        self.lag_buckets[bucket] += 1
        if self.obs is not None:
            self.obs.count("backhaul.item", kind="delivered")
            self.obs.observe("backhaul.sync_lag_s", lag_s, link=station)
        if (
            not self._closing
            and estimate is not None
            and self._make_push_intent is not None
        ):
            intent = self._make_push_intent(
                edge, station, x_m, tag_id, cfo_hz, t_s, estimate
            )
            if intent is not None:
                self._route_push(intent, delivered_s)
        return None

    def _route_push(self, intent: tuple, now_s: float) -> None:
        target = intent[0]
        self.pushes_sent += 1
        if self.obs is not None:
            self.obs.count("backhaul.push", kind="sent", link=target)
        if self.policy == "scheduled":
            self._links[target].downlink.append(intent)
            return
        # mule: only gateway poles have a downlink path.
        if target in self.gateways and self._deliver_push is not None:
            self._deliver_push(intent, now_s)
            self.pushes_delivered += 1
            if self.obs is not None:
                self.obs.count("backhaul.push", kind="delivered", link=target)
        else:
            self.pushes_dropped += 1
            if self.obs is not None:
                self.obs.count("backhaul.push", kind="dropped", link=target)

    # -- results -------------------------------------------------------------

    def check_consistent(self) -> None:
        """Post-flush invariants: nothing buffered, satcheled or in
        flight, and every submitted item applied exactly once."""
        leftover = [
            name
            for name in self.stations
            if self._links[name].buffer.items or self._links[name].downlink
        ]
        if leftover:
            raise ConfigurationError(f"links still hold traffic: {leftover}")
        if self._satchels or self._inflight:
            raise ConfigurationError(
                f"{sum(map(len, self._satchels.values()))} satcheled and "
                f"{len(self._inflight)} in-flight batches never delivered"
            )
        if self.batched and self.items_delivered != self.items_submitted:
            raise ConfigurationError(
                f"{self.items_submitted} items submitted but "
                f"{self.items_delivered} delivered — the backhaul lost data"
            )

    def summary(self) -> dict:
        """Headline numbers, JSON-friendly and byte-stable under a
        repeated seed (the determinism acceptance gate hashes this)."""
        mean_lag_s = self.lag_sum_s / self.lag_count if self.lag_count else 0.0
        labels = [f"<={b:g}s" for b in LAG_BUCKETS_S] + ["inf"]
        out = {
            "policy": self.policy,
            "batches": {
                "sent": self.batches_sent,
                "delivered": self.batches_delivered,
                "dropped": self.batches_dropped,
                "retried": self.batches_retried,
            },
            "items": {
                "submitted": self.items_submitted,
                "delivered": self.items_delivered,
                "final_flush": self.final_flush_items,
            },
            "pushes": {
                "sent": self.pushes_sent,
                "delivered": self.pushes_delivered,
                "dropped": self.pushes_dropped,
            },
            "mule": {
                "pickups": self.mule_pickups,
                "deliveries": self.mule_deliveries,
            },
            "sync_lag_s": {
                "count": self.lag_count,
                "mean": mean_lag_s,
                "max": self.lag_max_s,
                "buckets": dict(zip(labels, self.lag_buckets)),
            },
        }
        if self.policy == "scheduled":
            out["sync_period_s"] = self.config.sync_period_s
        if self.config.fault_plan is not None:
            out["faults"] = self.config.fault_plan.summary()
        return out


# -- CI smoke ----------------------------------------------------------------


def _smoke(seed: int, duration_s: float) -> int:  # pragma: no cover
    """Fast-tier check: all three policies + one fault plan on a small
    grid — wired bit-identity, lossless convergence, repeat-seed
    determinism."""
    import json

    from .mesh import downtown_grid

    failures: list[str] = []

    def run_one(backhaul):
        mesh = downtown_grid(2, 2, rng=seed, rate_per_s=0.5, backhaul=backhaul)
        result = mesh.run(duration_s)
        return mesh, result

    _, baseline = run_one(None)
    _, wired = run_one(BackhaulConfig(policy="wired"))
    if json.dumps(baseline.summary(), sort_keys=True) != json.dumps(
        wired.summary(), sort_keys=True
    ):
        failures.append("wired backhaul is not bit-identical to the bare mesh")

    delivered = {}
    for label, cfg in (
        ("scheduled", BackhaulConfig(policy="scheduled", sync_period_s=1.0)),
        ("mule", BackhaulConfig(policy="mule")),
    ):
        mesh, result = run_one(cfg)
        plane = mesh._plane
        try:
            plane.check_consistent()
        except ConfigurationError as exc:
            failures.append(f"{label}: {exc}")
        if result.summary().get("backhaul") is None:
            failures.append(f"{label}: no backhaul section in the summary")
        delivered[label] = plane.items_delivered

    def fault_cfg():
        return BackhaulConfig(
            policy="scheduled",
            sync_period_s=1.0,
            fault_plan=FaultPlan.seeded(
                seed + 1,
                duration_s=duration_s,
                n_outages=2,
                outage_s=1.5,
                drop_p=0.2,
                max_delay_s=0.5,
            ),
        )

    snapshots = []
    for _ in range(2):
        mesh, result = run_one(fault_cfg())
        try:
            mesh._plane.check_consistent()
        except ConfigurationError as exc:
            failures.append(f"faulted: {exc}")
        snapshots.append(json.dumps(result.summary(), sort_keys=True))
    if snapshots[0] != snapshots[1]:
        failures.append("fault-plan run is not repeat-seed deterministic")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        "ok: backhaul smoke — wired bit-identical; "
        f"scheduled delivered {delivered['scheduled']} items, "
        f"mule {delivered['mule']}; faulted run deterministic"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    import argparse

    parser = argparse.ArgumentParser(description="backhaul plane smoke test")
    parser.add_argument("--smoke", action="store_true", help="run the CI smoke")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--duration", type=float, default=6.0)
    args = parser.parse_args()
    if args.smoke:
        raise SystemExit(_smoke(args.seed, args.duration))
    parser.error("nothing to do (pass --smoke)")
