"""Sharded mesh execution: interference-closed edge groups in workers.

:class:`~repro.sim.city.mesh.CityMesh` runs every corridor on one
shared :class:`~repro.sim.events.EventScheduler`. That is the reference
semantics, but it serializes the whole city onto one core. This module
scales the hot path out by exploiting two structural facts the mesh
already guarantees:

* **The ether partitions.** Mesh layout enforces
  ``frame_gap_m > interference_range_m + 2 * READER_RANGE_M``, so
  carrier sensing, corruption and overhearing — all gated by
  along-city distance — can never couple two edges.
  :func:`interference_groups` recovers the partition from the scene
  geometry (it does not assume it): edges whose frames come within
  radio reach of each other land in one group and must share a shard.
* **Car motion is radio-free.** A routed car's every entry/exit time
  depends only on its draw (route, speed, lane), the intersection
  signals, and the release headway — never on what the readers decoded.
  The coordinator therefore *precomputes the complete itinerary*
  (replaying the serial mesh's arrival/transfer logic event-for-event,
  consuming ``mesh.rng`` exactly as :meth:`CityMesh.run` would) and
  hands each shard its admissions up front.

What cannot be sharded exactly is the *coupling that remains*: the
city-wide :class:`~repro.sim.city.directory.IdentityDirectory` (bounded
and aging — eviction couples tags globally) and the predictive push
handoff (a sighting on one edge plants a cache entry on another). Both
run on the coordinator at **rendezvous barriers**: simulation advances
in fixed sync quanta; at each barrier every shard surrenders the
sightings of its quantum, the coordinator replays them into the one
true directory in canonical order — ``(t_s, group, arrival index)`` —
computes push intents with the serial mesh's own prediction logic, and
delivers them to the target shards for the next quantum. A push
therefore lands up to one quantum later than in the serial mesh (the
quantum is chosen well below the seconds a car needs to reach the next
pole, so in practice the entry is still planted ahead of arrival).

**The determinism contract** (see ``docs/PERFORMANCE.md``): the serial
mesh shares one RNG stream across every corridor, interleaved in global
event order — a sharded run cannot reproduce that interleaving, so
``run_sharded`` is *not* bit-identical to :meth:`CityMesh.run` (which
remains untouched, golden-pinned reference semantics). What it *is* is
**worker-count invariant**: every worker count — and the in-process
debug mode — executes the identical per-group protocol (per-edge RNG
streams seeded from ``mesh.rng`` in sorted edge order, identical quanta,
identical barrier replay), so ``workers=1``, ``workers=2`` and
``workers=8`` produce bit-for-bit the same merged ledger, directory,
metrics snapshot and :meth:`MeshResult.summary`.

Merged results are canonical, not concatenated: sighting records from
all shards are replayed into one fresh
:class:`~repro.sim.city.handoff.HandoffLedger` in global time order so
``decode`` vs ``redecode`` is re-classified with *city-wide* knowledge
(a shard alone cannot know a tag was first decoded two corridors away);
per-group metrics registries merge in sorted group order.

This module is the **only** place in ``src/`` allowed to import
``multiprocessing`` (the ``parallel-policy`` analyzer enforces it).
Workers are forked, so shard objects cross by memory inheritance and
only plain tuples (reports, push intents) and the final per-group
payloads travel the pipes.
"""

from __future__ import annotations

import json
import multiprocessing
import traceback
from dataclasses import dataclass, field

import numpy as np

from ...constants import READER_RANGE_M
from ...errors import ConfigurationError
from ..events import EventScheduler
from ..medium import AirLog
from ..mobility import ConstantSpeedTrajectory
from .handoff import (
    DECODE,
    DECODE_DEFERRED,
    DECODE_FAILED,
    HANDOFF,
    OWN_HIT,
    PUSH,
    REDECODE,
    HandoffLedger,
)
from .mesh import CityMesh, MeshResult
from .moving import MovingTag
from .pool import ResponsePool

__all__ = ["interference_groups", "run_sharded", "ShardedMeshResult"]

#: Default rendezvous quantum: directory replay and push delivery happen
#: at this cadence. Well below the seconds a car needs between poles
#: (~40 m at city speeds), so a one-quantum push delay still plants the
#: entry ahead of arrival; identical for every worker count by
#: construction, so it never breaks invariance — only fidelity to the
#: serial push timing.
DEFAULT_SYNC_QUANTUM_S = 0.25


# -- partitioning ----------------------------------------------------------


def interference_groups(mesh: CityMesh) -> list[list[str]]:
    """Partition edges into interference-closed groups, from geometry.

    Two edges couple when their road frames come within
    ``interference_range_m`` plus radio slack (``2 * READER_RANGE_M``,
    the same margin the mesh layout validator uses) of each other on
    the global city axis; groups are the connected components. With
    the standard mesh layout every group is a singleton — but the
    partition is *derived*, so a future layout that packs frames
    closer degrades to fewer, larger shards instead of silently
    wrong radio semantics.

    Returns groups as lists of edge names (mesh insertion order within
    a group), sorted by each group's first edge name.
    """
    names = list(mesh.edges)
    spans = [
        (mesh.edges[name].entry_x_m, mesh.edges[name].exit_x_m) for name in names
    ]
    reach = mesh.interference_range_m + 2.0 * READER_RANGE_M
    parent = list(range(len(names)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    by_x = sorted(range(len(names)), key=lambda i: spans[i][0])
    for a, b in zip(by_x, by_x[1:]):
        if spans[b][0] - spans[a][1] <= reach:
            parent[find(a)] = find(b)
    components: dict[int, list[str]] = {}
    for i, name in enumerate(names):
        components.setdefault(find(i), []).append(name)
    return sorted(components.values(), key=lambda group: group[0])


# -- the itinerary (coordinator-side car motion) ---------------------------


@dataclass(frozen=True)
class _Admission:
    """One car entering one edge: everything the shard needs to admit it."""

    t_s: float
    transponder: object
    speed_m_s: float
    lane_y_m: float


def _plan_itinerary(
    mesh: CityMesh, duration_s: float
) -> dict[str, list[_Admission]]:
    """Precompute every edge admission of the run, serially and exactly.

    Replays the serial mesh's car machinery — ``_draw_cars`` (the only
    RNG consumer, called here so ``mesh.rng`` advances exactly as in
    :meth:`CityMesh.run`), entry/exit scheduling, and intersection
    release via :meth:`CityMesh._release` — on a private ghost
    scheduler that touches no corridor. Event tie-breaking matches the
    serial run: car events all carry priority 0 and their relative
    sequence order is preserved (corridor events interleave between
    them in the serial heap but never mutate car state). The mesh's
    ``cars_injected`` / ``cars_transferred`` / ``cars_departed``
    counters and ``mesh.car`` obs counts are produced here, exactly as
    the serial callbacks would.
    """
    admissions: dict[str, list[_Admission]] = {name: [] for name in mesh.edges}
    ghost = EventScheduler()

    def make_entry(car):
        def enter(scheduler: EventScheduler) -> None:
            now_s = scheduler.now_s
            edge = mesh.edges[car.route[car.leg]]
            admissions[edge.name].append(
                _Admission(now_s, car.transponder, car.speed_m_s, car.lane_y_m)
            )
            mesh.cars_injected += 1
            if mesh.obs is not None:
                mesh.obs.count("mesh.car", kind="injected", edge=edge.name)
            t_exit = now_s + (edge.exit_x_m - edge.entry_x_m) / car.speed_m_s
            if t_exit <= duration_s:
                scheduler.schedule(
                    t_exit,
                    make_exit(car, edge),
                    label=f"car{car.transponder.tag_id}-exit-{edge.name}",
                )

        return enter

    def make_exit(car, edge):
        def exit_edge(scheduler: EventScheduler) -> None:
            car.leg += 1
            if car.leg >= len(car.route):
                mesh.cars_departed += 1
                if mesh.obs is not None:
                    mesh.obs.count("mesh.car", kind="departed", edge=edge.name)
                return
            node = mesh.nodes[edge.dst]
            depart_s = mesh._release(node, scheduler.now_s)
            if depart_s <= duration_s:
                mesh.cars_transferred += 1
                if mesh.obs is not None:
                    mesh.obs.count("mesh.car", kind="transferred", edge=edge.name)
                scheduler.schedule(
                    depart_s,
                    make_entry(car),
                    label=f"car{car.transponder.tag_id}-enter-{car.route[car.leg]}",
                )

        return exit_edge

    for car, t_arrival in mesh._draw_cars(duration_s):
        ghost.schedule(
            t_arrival, make_entry(car), label=f"car{car.transponder.tag_id}-enter"
        )
    ghost.run_until(duration_s)
    return admissions


# -- shards ----------------------------------------------------------------


class _ShardGroup:
    """One interference-closed group: own scheduler, ether, and ledger.

    Built by the coordinator *before* forking, so workers inherit the
    fully-wired shard by memory. Rewires every member corridor off the
    mesh's shared services onto shard-local ones:

    * fresh :class:`AirLog` / :class:`ResponsePool` (radio locality is
      guaranteed by the partition, so local logs are semantically
      identical to slices of the shared one);
    * a fresh :class:`HandoffLedger` (globally re-classified at merge);
    * a per-edge RNG stream (one ``Generator`` shared by the corridor,
      its waveform bank and every station source — mirroring how the
      serial mesh shares one stream, just scoped to the edge);
    * an injected shard-local obs hook (minted by the caller's
      ``shard_obs_factory`` — the obs-policy contract forbids the
      library minting its own) whose registry merges into the
      coordinator's after the run; sim-time tracing is not supported
      in sharded runs;
    * an ``on_sighting`` hook that *buffers* instead of reporting —
      the directory lives with the coordinator.
    """

    def __init__(
        self,
        mesh: CityMesh,
        edge_names: list[str],
        edge_seeds: dict[str, int],
        duration_s: float,
        obs=None,
    ) -> None:
        self.key = edge_names[0]
        self.edge_names = list(edge_names)
        self.interference_range_m = mesh.interference_range_m
        self.obs = obs
        self.ledger = HandoffLedger()
        self.air = AirLog(sense_slack_s=mesh.air.sense_slack_s, obs=self.obs)
        self.pool = ResponsePool(slack_s=mesh.pool.slack_s, obs=self.obs)
        self.scheduler = EventScheduler(obs=self.obs)
        self.outbox: list[tuple] = []
        self._stations: dict[str, object] = {}
        self._edges = [mesh.edges[name] for name in edge_names]
        for edge in self._edges:
            corridor = edge.corridor
            rng = np.random.default_rng(edge_seeds[edge.name])
            corridor.rng = rng
            corridor.air = self.air
            corridor.pool = self.pool
            corridor.ledger = self.ledger
            corridor.obs = self.obs
            corridor._station_obs = {
                s.name: None if self.obs is None else self.obs.labeled(station=s.name)
                for s in corridor.stations
            }
            corridor.on_sighting = self._buffer_sighting
            for station in corridor.stations:
                station.source.rng = rng
                station.source.bank.rng = rng
                if self.obs is not None:
                    station.mac.obs = corridor._station_obs[station.name]
                self._stations[station.name] = station
            corridor.prime(self.scheduler, duration_s)

    def schedule_admissions(self, admissions: dict[str, list[_Admission]]) -> None:
        for edge in self._edges:
            for adm in admissions[edge.name]:
                self.scheduler.schedule(
                    adm.t_s,
                    self._make_entry(edge, adm),
                    label=f"car{adm.transponder.tag_id}-enter",
                )

    def _make_entry(self, edge, adm: _Admission):
        def enter(scheduler: EventScheduler) -> None:
            # Mirrors CityMesh._enter_edge: same trajectory, same admit.
            trajectory = ConstantSpeedTrajectory(
                start_m=np.array([edge.entry_x_m, adm.lane_y_m, 1.0]),
                velocity_m_s=np.array([adm.speed_m_s, 0.0, 0.0]),
                t0_s=scheduler.now_s,
            )
            tag = MovingTag(transponder=adm.transponder, trajectory=trajectory)
            edge.corridor.admit(tag, scheduler, scheduler.now_s)

        return enter

    def _buffer_sighting(
        self,
        corridor,
        station,
        tag_id,
        cfo_hz,
        t_s,
        x_m,
        localized,
        kind="own",
        n_queries=0,
    ) -> None:
        # (t_s, edge, station, tag, cfo, x, localized, kind, n_queries,
        # arrival index) — the index is the canonical within-group
        # tie-breaker the coordinator sorts replays by.
        self.outbox.append(
            (
                float(t_s),
                corridor.name,
                station.name,
                int(tag_id),
                float(cfo_hz),
                float(x_m),
                bool(localized),
                str(kind),
                int(n_queries),
                len(self.outbox),
            )
        )

    def advance(self, t_s: float, intents: list[tuple]) -> list[tuple]:
        """One quantum: apply delivered pushes, run, surrender sightings."""
        self.apply_intents(intents)
        self.scheduler.run_until(t_s)
        reports, self.outbox = self.outbox, []
        return reports

    def apply_intents(self, intents: list[tuple]) -> None:
        """Plant coordinator-computed pushes, with the serial skip rule.

        The "already knows / already pushed" check runs *here*, against
        the live shard caches — the coordinator's copies are stale by
        up to a quantum. Accepted pushes land exactly as in
        ``CityMesh._on_sighting``: cache store at the original push
        time, a ledger push record, and a ``mesh.push`` count.
        """
        for t_s, target_name, from_station, tag_id, cfo_hz, eta_s in intents:
            station = self._stations[target_name]
            if tag_id in station.identities or tag_id in station.pushed:
                continue
            station.receive_push(cfo_hz, tag_id, from_station=from_station, now_s=t_s)
            self.ledger.record_push(
                target_name, from_station, tag_id, t_s, cfo_hz, eta_s=eta_s
            )
            if self.obs is not None:
                self.obs.count("mesh.push", station=target_name)

    def finish_payload(self) -> dict:
        """Everything the coordinator's merge needs, pickle-friendly."""
        return {
            "key": self.key,
            "edges": {e.name: e.corridor.finish() for e in self._edges},
            "ledger": self.ledger,
            "pushed": {
                station.name: dict(station.pushed)
                for edge in self._edges
                for station in edge.corridor.stations
            },
            "responses": len(self.air.responses()),
            "corrupted": len(
                self.air.corrupted_responses(self.interference_range_m)
            ),
            "metrics": None if self.obs is None else self.obs.metrics,
            "events_processed": self.scheduler.processed,
        }


# -- workers ---------------------------------------------------------------


def _worker_main(groups: list[_ShardGroup], conn) -> None:
    """Worker loop: lockstep with the coordinator over one pipe."""
    try:
        while True:
            msg = conn.recv()
            if msg[0] == "advance":
                _, t_s, intents_by_group = msg
                reports = []
                for group in groups:
                    out = group.advance(t_s, intents_by_group.get(group.key, []))
                    reports.extend((group.key,) + r for r in out)
                conn.send(("reports", reports))
            elif msg[0] == "apply":
                _, intents_by_group = msg
                for group in groups:
                    group.apply_intents(intents_by_group.get(group.key, []))
                conn.send(("ok",))
            elif msg[0] == "finish":
                conn.send(("result", [g.finish_payload() for g in groups]))
                return
            else:  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown message {msg[0]!r}")
    except Exception:
        conn.send(("error", traceback.format_exc()))


class _ForkedHost:
    """N groups hosted in a forked process, driven over a pipe."""

    def __init__(self, ctx, groups: list[_ShardGroup]) -> None:
        self.groups = groups
        self.conn, child = ctx.Pipe()
        self.process = ctx.Process(
            target=_worker_main, args=(groups, child), daemon=True
        )
        self.process.start()
        child.close()

    def send(self, msg) -> None:
        self.conn.send(msg)

    def recv(self):
        reply = self.conn.recv()
        if reply[0] == "error":
            self.process.join()
            raise RuntimeError(f"shard worker failed:\n{reply[1]}")
        return reply

    def close(self) -> None:
        self.process.join()
        self.conn.close()


class _LocalHost:
    """The same protocol without a fork — debugging / no-fork platforms.

    Runs its groups inline in the coordinator process. Identical
    results by construction: shards are isolated objects and the
    message sequence is the same.
    """

    def __init__(self, groups: list[_ShardGroup]) -> None:
        self.groups = groups
        self._reply = None

    def send(self, msg) -> None:
        if msg[0] == "advance":
            _, t_s, intents_by_group = msg
            reports = []
            for group in self.groups:
                out = group.advance(t_s, intents_by_group.get(group.key, []))
                reports.extend((group.key,) + r for r in out)
            self._reply = ("reports", reports)
        elif msg[0] == "apply":
            _, intents_by_group = msg
            for group in self.groups:
                group.apply_intents(intents_by_group.get(group.key, []))
            self._reply = ("ok",)
        elif msg[0] == "finish":
            self._reply = ("result", [g.finish_payload() for g in self.groups])

    def recv(self):
        reply, self._reply = self._reply, None
        return reply

    def close(self) -> None:
        pass


# -- the coordinator -------------------------------------------------------


@dataclass
class ShardedMeshResult(MeshResult):
    """A :class:`MeshResult` plus how the sharded run was shaped.

    ``summary()`` is inherited unchanged — worker-count invariance is
    asserted on it — so the engine shape rides alongside:
    ``events_processed`` (per group, a deterministic work proxy the
    bench scales by) and the partition itself.
    """

    workers: int = 1
    sync_quantum_s: float = DEFAULT_SYNC_QUANTUM_S
    groups: tuple = ()
    events_processed: dict = field(default_factory=dict)


def _quantum_boundaries(duration_s: float, quantum_s: float) -> list[float]:
    ts = []
    k = 1
    while k * quantum_s < duration_s - 1e-9:
        ts.append(k * quantum_s)
        k += 1
    ts.append(float(duration_s))
    return ts


def run_sharded(
    mesh: CityMesh,
    duration_s: float,
    *,
    workers: int = 2,
    sync_quantum_s: float = DEFAULT_SYNC_QUANTUM_S,
    in_process: bool = False,
    shard_obs_factory=None,
) -> ShardedMeshResult:
    """Run a built (un-run) mesh via interference-closed shard groups.

    Results are worker-count invariant (see the module docstring for
    the exact contract and what differs from the serial
    :meth:`CityMesh.run`). The mesh instance is consumed, exactly like
    a serial run — build a fresh mesh per run.

    Args:
        mesh: a fully built :class:`CityMesh` that has not run.
        duration_s: simulated seconds.
        workers: forked worker processes; groups are dealt round-robin.
            Capped at the number of groups. ``workers=1`` still runs
            the sharded protocol (the serial golden path is
            ``mesh.run``, not this).
        sync_quantum_s: rendezvous cadence for directory replay and
            push delivery. Must be identical across runs being
            compared; changing it changes push timing (not safety).
        in_process: host every group in the coordinator process —
            same protocol, same results, no fork (debugging, or
            platforms without ``fork``).
        shard_obs_factory: zero-arg callable minting one fresh obs hook
            per shard group (e.g. ``Obs``). Library code may not
            construct hooks itself (the obs-policy contract), so
            per-shard instrumentation is opt-in: without a factory the
            shards run unobserved and only coordinator-side series
            (directory, car counts) land in ``mesh.obs``. With one,
            shard registries merge into ``mesh.obs.metrics`` after the
            run, in sorted group order — invariant across worker
            counts. Ignored when ``mesh.obs`` is None. Sim-time
            tracing is not supported in sharded runs either way.
    """
    if mesh._ran:
        raise ConfigurationError("a CityMesh instance runs once; build a fresh one")
    if not mesh.edges:
        raise ConfigurationError("a mesh needs at least one edge")
    if mesh.services:
        raise ConfigurationError(
            "subscribe() services need the single shared timeline — "
            "run serial (mesh.run), drop the services, or consume the "
            "merged sighting stream via mesh.add_sighting_tap() instead "
            "(taps replay coordinator-side, in canonical order)"
        )
    if workers < 1:
        raise ConfigurationError("need at least one worker")
    if sync_quantum_s <= 0:
        raise ConfigurationError("the sync quantum must be positive")
    duration_s = float(duration_s)
    mesh._ran = True
    mesh._end_s = duration_s
    mesh._predicted_next = mesh._turn_policy()

    # Serial-equivalent preamble: the itinerary consumes mesh.rng exactly
    # as CityMesh.run's _draw_cars would; per-edge stream seeds are drawn
    # after it, in sorted edge order — both independent of worker count.
    admissions = _plan_itinerary(mesh, duration_s)
    edge_seeds = {
        name: int(mesh.rng.integers(np.iinfo(np.int64).max))
        for name in sorted(mesh.edges)
    }
    groups = [
        _ShardGroup(
            mesh,
            edge_names,
            edge_seeds,
            duration_s,
            obs=None
            if mesh.obs is None or shard_obs_factory is None
            else shard_obs_factory(),
        )
        for edge_names in interference_groups(mesh)
    ]
    for group in groups:
        group.schedule_admissions(admissions)
    station_group = {
        name: group.key for group in groups for name in group._stations
    }
    station_by_name = {
        station.name: (edge, station)
        for edge in mesh.edges.values()
        for station in edge.corridor.stations
    }

    workers = min(int(workers), len(groups))
    if in_process:
        hosts = [_LocalHost(groups)]
    else:
        ctx = multiprocessing.get_context("fork")
        # workers is capped at len(groups), so every host gets >= 1 group.
        hosts = [
            _ForkedHost(ctx, [g for i, g in enumerate(groups) if i % workers == w])
            for w in range(workers)
        ]

    # The backhaul plane is coordinator-owned — one set of links for
    # the whole city, fed by the canonical-order replay below, so
    # batched delivery stays worker-count invariant. Wired configs make
    # it a pass-through executing the exact pre-backhaul sequence.
    push_sink: dict[str, list[tuple]] = {}

    def queue_push(intent: tuple, now_s: float) -> None:
        # A push that reached its pole's side of the link: hand it to
        # the owning shard at the next rendezvous (same one-quantum
        # granularity as wired sharded pushes; the shard re-checks its
        # live cache before planting).
        target_name, from_station, tag_id, cfo_hz, _t_emit, eta_s = intent
        push_sink.setdefault(station_group[target_name], []).append(
            (float(now_s), target_name, from_station, tag_id, cfo_hz, eta_s)
        )

    plane = mesh._build_plane(
        push_intent=lambda edge_name, stn_name, x_m, tag_id, cfo_hz, t_s, est: (
            mesh._push_intent(
                mesh.edges[edge_name], station_by_name[stn_name][1], x_m,
                tag_id, cfo_hz, t_s, est, check_live=False,
            )
        ),
        deliver_push=queue_push,
    )
    mesh._plane = plane

    def replay(reports: list[tuple], t_end_s: float) -> dict[str, list[tuple]]:
        """Feed one quantum's sightings over the backhaul plane — and
        through it the directory and any registered sighting taps — in
        canonical order, then advance the plane's links to the quantum
        boundary. Wired: the plane applies inline and the push intents
        are computed here, the exact decision sequence of
        CityMesh._on_sighting with the live-cache skip check deferred
        to the owning shard. Batched: submission buffers the delta and
        push intents surface at delivery via ``queue_push``."""
        push_sink.clear()
        reports.sort(key=lambda r: (r[1], r[0], r[10]))
        for (
            _,
            t_s,
            edge_name,
            stn_name,
            tag_id,
            cfo_hz,
            x_m,
            localized,
            kind,
            n_queries,
            _,
        ) in reports:
            estimate = plane.submit(
                t_s, edge_name, stn_name, tag_id, cfo_hz, x_m, localized,
                kind, n_queries,
            )
            if estimate is None:
                continue
            intent = mesh._push_intent(
                mesh.edges[edge_name], station_by_name[stn_name][1], x_m,
                tag_id, cfo_hz, t_s, estimate, check_live=False,
            )
            if intent is None:
                continue
            target_name, from_station, _tag, _cfo, t_emit, eta_s = intent
            push_sink.setdefault(station_group[target_name], []).append(
                (t_emit, target_name, from_station, tag_id, cfo_hz, eta_s)
            )
        plane.advance(t_end_s)
        return {key: list(batch) for key, batch in push_sink.items()}

    try:
        intents_by_group: dict[str, list[tuple]] = {}
        for t_s in _quantum_boundaries(duration_s, sync_quantum_s):
            for host in hosts:
                host.send(("advance", t_s, intents_by_group))
            reports = []
            for host in hosts:
                reports.extend(host.recv()[1])
            intents_by_group = replay(reports, t_s)
        # The convergence flush delivers every still-buffered batch
        # before results are taken (pushes are suppressed — the run is
        # over). A no-op when wired.
        plane.final_flush(duration_s)
        # Pushes triggered by the final quantum's sightings are still
        # sent (they become push misses in the sweep, as in serial).
        for host in hosts:
            host.send(("apply", intents_by_group))
        for host in hosts:
            host.recv()
        for host in hosts:
            host.send(("finish",))
        payloads = {}
        for host in hosts:
            for payload in host.recv()[1]:
                payloads[payload["key"]] = payload
    finally:
        for host in hosts:
            host.close()

    result = _merge(mesh, payloads, duration_s, workers, sync_quantum_s, groups)
    if plane.batched:
        result.backhaul = plane.summary()
    return result


def _merge(
    mesh: CityMesh,
    payloads: dict[str, dict],
    duration_s: float,
    workers: int,
    sync_quantum_s: float,
    groups: list[_ShardGroup],
) -> ShardedMeshResult:
    """Rebuild the mesh-wide result from per-group payloads, canonically.

    The merged ledger is a *replay*, not a concatenation: sighting
    records stream in global ``(t_s, group, local index)`` order through
    a fresh ledger so decode/redecode classification sees city-wide
    knowledge, exactly as the serial shared ledger did. The push-miss
    sweep then mirrors ``CityMesh._finish`` (edge order, station order,
    sorted tag ids). Every per-edge result is re-pointed at the merged
    ledger — in the serial mesh all edge results reference the one
    shared ledger, and downstream consumers rely on that.
    """
    merged = HandoffLedger()
    ordered_keys = sorted(payloads)

    records = []
    for key in ordered_keys:
        for idx, rec in enumerate(payloads[key]["ledger"].records):
            records.append((rec.t_s, key, idx, rec))
    records.sort(key=lambda item: item[:3])
    for _, _, _, rec in records:
        if rec.kind in (DECODE, REDECODE):
            merged.record_decode(
                rec.station,
                rec.tag_id,
                rec.t_s,
                rec.cfo_hz,
                n_queries=rec.n_queries,
                n_overheard=rec.n_overheard,
            )
        elif rec.kind == OWN_HIT:
            merged.record_own_hit(rec.station, rec.tag_id, rec.t_s, rec.cfo_hz)
        elif rec.kind == HANDOFF:
            merged.record_handoff(
                rec.station, rec.from_station, rec.tag_id, rec.t_s, rec.cfo_hz
            )
        elif rec.kind == PUSH:
            merged.record_push_hit(
                rec.station, rec.from_station, rec.tag_id, rec.t_s, rec.cfo_hz
            )
        elif rec.kind == DECODE_FAILED:
            merged.record_decode_failure(
                rec.station,
                rec.t_s,
                rec.cfo_hz,
                n_queries=rec.n_queries,
                n_overheard=rec.n_overheard,
            )
        elif rec.kind == DECODE_DEFERRED:
            merged.record_decode_deferred(rec.station, rec.t_s, rec.cfo_hz)

    def gather(attr):
        out = []
        for key in ordered_keys:
            out.extend(
                (item.t_s, key, idx, item)
                for idx, item in enumerate(getattr(payloads[key]["ledger"], attr))
            )
        out.sort(key=lambda item: item[:3])
        return [item[3] for item in out]

    merged.pushes.extend(gather("pushes"))
    merged.push_misses.extend(gather("push_misses"))
    for attr in ("cell_entries", "cell_exits"):
        rows = []
        for key in ordered_keys:
            rows.extend(getattr(payloads[key]["ledger"], attr))
        getattr(merged, attr).extend(sorted(rows))

    # The speculative-push sweep, in the serial _finish order.
    group_of_edge = {
        name: group.key for group in groups for name in group.edge_names
    }
    for edge_name, edge in mesh.edges.items():
        pushed = payloads[group_of_edge[edge_name]]["pushed"]
        for station in edge.corridor.stations:
            leftovers = pushed.get(station.name, {})
            for tag_id in sorted(leftovers):
                from_station, cfo_hz, t_push = leftovers[tag_id]
                merged.record_push_miss(
                    station.name, from_station, tag_id, t_push, cfo_hz
                )

    edges = {}
    for edge_name in mesh.edges:
        result = payloads[group_of_edge[edge_name]]["edges"][edge_name]
        result.ledger = merged
        edges[edge_name] = result

    if mesh.obs is not None:
        for key in ordered_keys:
            metrics = payloads[key]["metrics"]
            if metrics is not None:
                mesh.obs.metrics.merge(metrics)

    station_edge = {
        station.name: edge.name
        for edge in mesh.edges.values()
        for station in edge.corridor.stations
    }
    result = ShardedMeshResult(
        duration_s=duration_s,
        handoff=mesh.handoff,
        edges=edges,
        ledger=merged,
        directory=mesh.directory.summary(),
        station_edge=station_edge,
        cars_injected=mesh.cars_injected,
        cars_transferred=mesh.cars_transferred,
        cars_departed=mesh.cars_departed,
        responses=sum(payloads[key]["responses"] for key in ordered_keys),
        corrupted_responses=sum(
            payloads[key]["corrupted"] for key in ordered_keys
        ),
        workers=workers,
        sync_quantum_s=sync_quantum_s,
        groups=tuple(tuple(group.edge_names) for group in groups),
        events_processed={
            key: payloads[key]["events_processed"] for key in ordered_keys
        },
    )
    mesh.ledger = merged
    mesh.cross_corridor_stats(result, station_edge)
    return result


# -- CI smoke --------------------------------------------------------------


def _smoke(workers: int, duration_s: float) -> int:  # pragma: no cover
    """Tiny invariance check for CI: sharded protocol, 1 worker vs N."""
    from .mesh import downtown_grid

    summaries = []
    for n in (1, workers):
        mesh = downtown_grid(2, 2, rng=7, rate_per_s=0.5)
        result = run_sharded(mesh, duration_s, workers=n)
        summaries.append(result.summary())
    # Compare as canonical JSON text: short runs legitimately carry NaN
    # means (no cross-corridor entries yet), and NaN != NaN would fail a
    # plain dict comparison even on identical results.
    canon = [json.dumps(s, sort_keys=True) for s in summaries]
    if canon[0] != canon[-1]:
        print("FAIL: worker-count invariance broken")
        return 1
    ledger = summaries[0]["handoff_ledger"]
    print(
        f"ok: workers 1 == {workers} "
        f"(sightings={ledger['sightings']}, pushes={ledger['pushes_sent']}, "
        f"cars={summaries[0]['cars_injected']})"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    import argparse

    parser = argparse.ArgumentParser(description="sharded mesh smoke test")
    parser.add_argument("--smoke", action="store_true", help="run the CI smoke")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--duration", type=float, default=12.0)
    args = parser.parse_args()
    if args.smoke:
        raise SystemExit(_smoke(args.workers, args.duration))
    parser.error("nothing to do (pass --smoke)")
