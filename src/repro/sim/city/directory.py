"""The city-wide identity directory: fingerprints above per-pole caches.

A single :class:`~repro.core.network.IdentityCache` answers "has *this
pole* seen this CFO fingerprint?"; corridor handoff extends the answer
one pole up- or downstream. A city is bigger than either: §1's services
assume a sighting anywhere in the deployment can be tied back to an
account decoded anywhere else, and a mesh of corridors needs exactly
that at every intersection — the pole a car meets after a turn shares no
neighbor link with the pole that identified it two streets ago.

:class:`IdentityDirectory` is that backend service. Every resolved
sighting in the deployment is *reported* to it (station, corridor,
along-city coordinate, timestamp), and it maintains:

* a **bounded, aging fingerprint index** — one city-wide CFO -> account
  table (an :class:`~repro.core.network.IdentityCache` with LRU
  ``max_entries`` and ``max_age_s``, both mandatory here: a city stream
  sees every registered car, and a stale fingerprint is a
  mis-attribution hazard at city scale exactly as it is per pole);
* a **sighting trail** per account — the last few (station, corridor,
  x, t) fixes, the raw material for cross-pole speed estimates;
* a **§7 speed estimate** per account, via the embedded
  :class:`~repro.core.speed.CrossPoleSpeedTracker` — the predictive
  push trigger :class:`~repro.sim.city.mesh.CityMesh` uses to plant
  cache entries ahead of arrival.

Consistency: trails and speed anchors are dropped in the same step as
their fingerprint-index entry (eviction and aging return *which*
accounts fell out), so interleaved updates from many corridors — the
discrete-event equivalent of concurrent writers — can never leave a
trail for an account the index no longer knows.

The directory is an audit and prediction service, not an on-air actor:
it spends no queries and appears on no air log. Whether its knowledge
shortens identification is a *policy* of the layer above — the mesh's
``handoff="push"`` uses it to push entries ahead of cars,
``handoff="pull"`` ignores it (today's pull-at-sighting baseline) while
still reporting sightings for audit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...core.network import IdentityCache
from ...core.speed import CrossPoleSpeedTracker, SpeedEstimate, SpeedObservation
from ...errors import ConfigurationError

__all__ = ["SightingFix", "IdentityDirectory"]

#: How many fixes each account's trail retains (newest last). Two are
#: enough for a speed estimate; a couple more make the trail a useful
#: audit of the car's path through the mesh.
TRAIL_LENGTH = 4


@dataclass(frozen=True)
class SightingFix:
    """One reported sighting: where and when the city saw an account."""

    station: str
    corridor: str
    x_m: float
    t_s: float


class IdentityDirectory:
    """Bounded, aging city-wide fingerprint -> account resolution.

    Attributes:
        tolerance_hz: maximum fingerprint drift between sightings
            (matches the per-pole cache semantics).
        max_entries: LRU bound on tracked accounts. Mandatory — the
            directory exists for deployments too large for "keep
            everything".
        max_age_s: accounts unseen for longer are aged out (with their
            trails and speed anchors). Mandatory, same reason.
        obs: nullable observability hook (see :mod:`repro.obs`):
            mirrors reports, resolve hits/misses and evictions into the
            metrics registry. Never affects resolution.
    """

    def __init__(
        self,
        tolerance_hz: float = 3000.0,
        max_entries: int = 4096,
        max_age_s: float = 600.0,
        obs=None,
    ) -> None:
        if max_entries is None or max_age_s is None:
            raise ConfigurationError(
                "the directory is a city-scale service: max_entries and "
                "max_age_s must both be bounds, not None"
            )
        self._index = IdentityCache(
            tolerance_hz=tolerance_hz,
            max_entries=int(max_entries),
            max_age_s=float(max_age_s),
        )
        self._trails: dict[int, list[SightingFix]] = {}
        self._speed = CrossPoleSpeedTracker(max_entries=None)
        # Aging on the hot report path is batched: a full sweep costs
        # O(accounts), and nothing can expire sooner than an eighth of
        # the age bound after the previous sweep. resolve() still
        # prunes exactly, so an expired fingerprint never claims a
        # spike.
        self._prune_interval_s = float(max_age_s) / 8.0
        self._next_prune_s = float("-inf")
        # The last-reported clock: the latest timestamp any writer or
        # reader has shown the directory. Aging always consults it, so a
        # resolve arriving with a skewed (stale) clock can never
        # resurrect a fingerprint a fresher report already expired.
        self._clock_s = float("-inf")
        # Tombstones for evicted accounts: tag -> directory clock at
        # eviction. A batched backhaul can deliver a report *emitted*
        # before an eviction long after it; the tombstone rejects such
        # late deltas so an aged-out entry is never resurrected by
        # history. Pruned alongside the index (a tombstone older than
        # max_age_s can no longer out-date any applicable delta).
        self._tombstones: dict[int, float] = {}
        self.reports = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Batched-delivery deltas rejected because the entry was
        #: evicted (tombstone) or already aged past ``max_age_s`` on
        #: arrival. Zero on any wired (immediate-delivery) stream.
        self.late_drops = 0
        #: Deltas rejected because a fresher fix for the same account
        #: had already been applied (a reordered batch must not steal
        #: the fingerprint back). Zero on any wired stream.
        self.stale_drops = 0
        self.obs = obs

    # -- writing ---------------------------------------------------------------

    def report(
        self,
        tag_id: int,
        cfo_hz: float,
        station: str,
        corridor: str,
        x_m: float,
        t_s: float,
        localized: bool = True,
        delivered_s: float | None = None,
    ) -> SpeedEstimate | None:
        """Record one resolved sighting; returns a fresh §7 speed
        estimate when this fix pairs cross-pole with the previous one.

        Refreshes the fingerprint index (store + LRU + batched aging),
        appends to the account's trail (bounded to the last
        ``TRAIL_LENGTH`` fixes), and — for *localized* sightings only —
        feeds the speed tracker. §7 runs on repeated localization:
        ``localized=False`` marks ``x_m`` as a coarse stand-in (e.g.
        the pole's own position when the round produced no §6 fix),
        good enough for the audit trail but poison for a speed ratio,
        so it never reaches the estimator. The corridor names the
        tracker's coordinate *frame*: fixes from different corridors
        rebase instead of pairing (their layout offset is not road the
        car drove). Any accounts the store or the aging pass evicts
        lose their trail and speed anchor in the same step — the
        consistency contract interleaved corridor updates rely on.

        ``delivered_s`` marks a *batched* delivery over an intermittent
        backhaul (see :mod:`repro.sim.city.backhaul`): the sighting was
        emitted at ``t_s`` but only reaches the directory now. Delivery
        time drives the clock, aging and LRU freshness; the emit time
        anchors the trail and speed estimate. Three guards protect the
        index from out-of-order history — a delta emitted before the
        account's eviction tombstone, or older than the freshest
        applied fix, or already past ``max_age_s`` on arrival, is
        dropped (counted in ``late_drops``/``stale_drops``) and returns
        None. None of them can fire on an immediate-delivery stream.
        """
        now_s = float(t_s) if delivered_s is None else float(delivered_s)
        self.reports += 1
        if self.obs is not None:
            self.obs.count("directory.report", station=station, corridor=corridor)
        self._clock_s = max(self._clock_s, now_s)
        if now_s >= self._next_prune_s:
            self._drop(self._index.prune_ids(self._clock_s))
            self._next_prune_s = now_s + self._prune_interval_s
            self._prune_tombstones()
        t_s = float(t_s)
        if delivered_s is not None:
            if now_s - t_s > self._index.max_age_s:
                self.late_drops += 1
                if self.obs is not None:
                    self.obs.count("directory.delta_drop", kind="aged")
                return None
            tomb_s = self._tombstones.get(tag_id)
            if tomb_s is not None and t_s < tomb_s:
                self.late_drops += 1
                if self.obs is not None:
                    self.obs.count("directory.delta_drop", kind="late")
                return None
            trail = self._trails.get(tag_id)
            if trail and t_s < trail[-1].t_s:
                self.stale_drops += 1
                if self.obs is not None:
                    self.obs.count("directory.delta_drop", kind="stale")
                return None
        self._tombstones.pop(tag_id, None)
        self._drop(self._index.store(cfo_hz, tag_id, now_s=now_s))
        fix = SightingFix(station, corridor, float(x_m), t_s)
        trail = self._trails.setdefault(tag_id, [])
        trail.append(fix)
        del trail[:-TRAIL_LENGTH]
        if not localized:
            return None
        return self._speed.observe(
            tag_id,
            SpeedObservation(
                position_m=(fix.x_m, 0.0),
                timestamp_s=fix.t_s,
                station=fix.station,
                frame=fix.corridor,
            ),
        )

    def apply_delta(
        self,
        tag_id: int,
        cfo_hz: float,
        station: str,
        corridor: str,
        x_m: float,
        t_s: float,
        localized: bool = True,
        delivered_s: float | None = None,
    ) -> SpeedEstimate | None:
        """Apply one backhaul-delivered sighting delta: a
        :meth:`report` emitted at ``t_s`` that reaches the directory at
        ``delivered_s``. The explicit entry point the
        :class:`~repro.sim.city.backhaul.BackhaulPlane` uses for
        batched deliveries; see :meth:`report` for the late/stale
        guard semantics."""
        return self.report(
            tag_id, cfo_hz, station, corridor, x_m, t_s,
            localized=localized, delivered_s=delivered_s,
        )

    def _drop(self, tag_ids: list[int]) -> None:
        for tag_id in tag_ids:
            self._trails.pop(tag_id, None)
            self._speed.forget(tag_id)
            self._tombstones[tag_id] = self._clock_s
            self.evictions += 1
        if self.obs is not None and tag_ids:
            self.obs.count("directory.eviction", n=len(tag_ids))

    def _prune_tombstones(self) -> None:
        # A tombstone more than max_age_s behind the clock can no
        # longer out-date any delta the age guard would admit.
        horizon_s = self._clock_s - self._index.max_age_s
        stale = [t for t, ts in self._tombstones.items() if ts < horizon_s]
        for tag_id in stale:
            del self._tombstones[tag_id]

    def prune(self, now_s: float) -> int:
        """Age out stale accounts (index, trails and speed anchors
        together); returns how many fell out."""
        stale = self._index.prune_ids(now_s)
        self._drop(stale)
        return len(stale)

    # -- reading ---------------------------------------------------------------

    def resolve(self, cfo_hz: float, now_s: float) -> int | None:
        """City-wide fingerprint resolution: nearest account within
        tolerance, or None.

        ``now_s`` is mandatory — resolution without a clock silently
        skipped aging, letting an expired fingerprint claim a fresh
        spike (exactly the mis-attribution the bounds exist to prevent).
        Aging runs against ``max(now_s, last-reported clock)`` so a
        reader with a skewed clock cannot resurrect an entry a fresher
        report already expired, and it runs *exactly* for the candidate
        match: the amortized full sweep stays on its batched schedule
        (O(accounts) is too dear per lookup at city scale), but any
        candidate the index nominates has its own age checked — and is
        evicted, with its trail and speed anchor — before it may claim
        the spike. The next-nearest live fingerprint is then considered,
        so one dead neighbor never shadows a valid match.
        """
        now = max(float(now_s), self._clock_s)
        self._clock_s = now
        if now >= self._next_prune_s:
            self._drop(self._index.prune_ids(now))
            self._next_prune_s = now + self._prune_interval_s
        max_age_s = self._index.max_age_s
        while True:
            tag_id = self._index.lookup(cfo_hz)
            if tag_id is None:
                break
            seen_s = self._index.last_seen_s(tag_id)
            if seen_s is not None and now - seen_s > max_age_s:
                self._index.evict(tag_id)
                self._drop([tag_id])
                continue
            break
        if tag_id is None:
            self.misses += 1
        else:
            self.hits += 1
        if self.obs is not None:
            self.obs.count(
                "directory.resolve", outcome="miss" if tag_id is None else "hit"
            )
        return tag_id

    def trail(self, tag_id: int) -> list[SightingFix]:
        """The account's recent fixes, oldest first (empty if unknown)."""
        return list(self._trails.get(tag_id, []))

    def last_fix(self, tag_id: int) -> SightingFix | None:
        trail = self._trails.get(tag_id)
        return trail[-1] if trail else None

    def speed_estimate(self, tag_id: int) -> SpeedEstimate | None:
        """The account's latest §7 cross-pole speed estimate, if its
        trail has produced one."""
        return self._speed.latest(tag_id)

    def cached_cfo(self, tag_id: int) -> float | None:
        return self._index.cached_cfo(tag_id)

    def ids(self) -> list[int]:
        """Every known account id, sorted."""
        return self._index.ids()

    def __contains__(self, tag_id: int) -> bool:
        return tag_id in self._index

    def __len__(self) -> int:
        return len(self._index)

    def check_consistent(self) -> None:
        """Assert the trail/speed side matches the fingerprint index.

        Cheap invariant sweep for tests and debugging: every trail (and
        speed anchor) belongs to an account the index still knows.
        Raises :class:`~repro.errors.ConfigurationError` on violation.
        """
        known = set(self._index.ids())
        orphans = sorted(set(self._trails) - known)
        if orphans:
            raise ConfigurationError(f"trails without index entries: {orphans}")
        anchors = sorted(set(self._speed.tracked()) - known)
        if anchors:
            raise ConfigurationError(f"speed anchors without index entries: {anchors}")

    def summary(self) -> dict:
        """Headline numbers, JSON-friendly."""
        return {
            "accounts": len(self),
            "reports": self.reports,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
