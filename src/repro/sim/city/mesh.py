"""The city mesh: a directed graph of corridors on one shared timeline.

One :class:`~repro.sim.city.corridor.CityCorridor` is one street. A city
is a *graph* of streets: corridors (edges) meeting at intersections
(nodes), with cars routed edge-to-edge and every reader pole feeding the
same backend. :class:`CityMesh` is that layer:

* **One timeline, one ether** — every corridor is primed onto a single
  :class:`~repro.sim.events.EventScheduler` and records onto a single
  :class:`~repro.sim.medium.AirLog` and
  :class:`~repro.sim.city.pool.ResponsePool`. Corridor frames are laid
  out along a global city axis far enough apart that carrier sensing,
  corruption and overhearing — all gated by
  ``interference_range_m`` — behave exactly as on one street *within*
  an edge and not at all *across* edges (distant streets share the
  clock, not the ether).
* **Routed traffic** — cars are injected by
  :class:`~repro.sim.traffic.PoissonArrivals` at an entry edge, follow
  a route of edges, and dwell at each intersection according to its
  :class:`~repro.sim.traffic.TrafficLight` (plus a saturation headway
  between released cars). Each leg is an ordinary
  :class:`~repro.sim.city.moving.MovingTag` on a
  :class:`~repro.sim.mobility.ConstantSpeedTrajectory`, admitted into
  the edge's corridor mid-run.
* **City-wide identity** — every resolved sighting is reported to the
  :class:`~repro.sim.city.directory.IdentityDirectory`, the bounded,
  aging fingerprint service above the per-pole caches; one shared
  :class:`~repro.sim.city.handoff.HandoffLedger` audits every sighting
  across the whole mesh (so a re-decode is recognized as waste even
  when the first decode happened two corridors away).
* **Predictive push handoff** — under ``handoff="push"`` (the
  default), a pole whose sighting completes a §7 cross-pole speed
  estimate (:class:`~repro.core.speed.CrossPoleSpeedTracker`, fed
  through the directory) pushes the tag's cache entry to the predicted
  next pole — its downstream neighbor, or across the intersection to
  the first pole of the predicted successor edge — *ahead of arrival*.
  The entered corridor's first pole then resolves the tag's first
  sighting from its own cache at zero decode queries and zero pull
  latency. ``handoff="pull"`` is the ablation: today's
  pull-at-sighting semantics, where a corridor boundary always costs a
  re-decode (the directory still records sightings for audit, but no
  entry moves ahead of a car).

Mis-pushes are first-class: the successor-edge prediction is a static
per-intersection policy (the backend does not know each car's route), so
a car that turns off-route leaves its pushed entry unconsumed — it ages
out of the target cache, the sweep at run end records a push miss on the
ledger, and the car simply re-decodes wherever it actually went.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...constants import QUERY_PERIOD_S, READER_RANGE_M, RESPONSE_DURATION_S
from ...errors import ConfigurationError
from ...utils import as_rng
from ..scenario import city_corridor_scene, make_tags
from ..events import EventScheduler
from ..medium import AirLog
from ..mobility import ConstantSpeedTrajectory
from ..traffic import PoissonArrivals, TrafficLight
from .backhaul import BackhaulConfig, BackhaulPlane
from .corridor import CityCorridor, CorridorResult, CorridorStation
from .directory import IdentityDirectory
from .handoff import DECODE, HANDOFF, OWN_HIT, PUSH, REDECODE, HandoffLedger
from .moving import MovingTag
from .pool import ResponsePool

__all__ = ["MeshNode", "MeshEdge", "CityMesh", "MeshResult", "downtown_grid"]

#: Sighting kinds that attribute a tag id (the records the cross-corridor
#: analysis walks). Failures/deferrals carry no id and cannot mark entry.
_ATTRIBUTED = (OWN_HIT, HANDOFF, PUSH, DECODE, REDECODE)


@dataclass(frozen=True)
class MeshNode:
    """One intersection: where corridor edges meet.

    Attributes:
        name: stable identifier.
        light: the signal governing departure into the next edge; None
            means an uncontrolled intersection (cars roll through).
        headway_s: minimum spacing between consecutive cars released
            into the next edge (the saturation headway of
            :class:`~repro.sim.traffic.IntersectionSimulator`).
    """

    name: str
    light: TrafficLight | None = None
    headway_s: float = 2.0

    def departure_s(self, arrival_s: float) -> float:
        """When a car arriving at ``arrival_s`` may proceed (signal
        only; the per-node release queue adds the headway)."""
        if self.light is None or self.light.is_go(arrival_s):
            return arrival_s
        # Red is the last phase of the cycle, so a red arrival waits
        # exactly until the next cycle boundary (the green onset).
        into = (arrival_s - self.light.offset_s) % self.light.cycle_s
        return arrival_s + (self.light.cycle_s - into)


@dataclass
class MeshEdge:
    """One corridor edge of the mesh graph.

    Attributes:
        name: edge label; also the corridor's scope prefix (stations are
            ``"<name>/pole-k"``).
        src / dst: intersection names this edge runs from/to; None marks
            a mesh boundary (cars appear at ``src=None`` edges via
            traffic sources and vanish after a ``dst=None`` exit).
        corridor: the edge's :class:`CityCorridor`, sharing the mesh's
            air log, pool, ledger and scheduler.
        scene: the edge's deployment (global-frame coordinates).
    """

    name: str
    src: str | None
    dst: str | None
    corridor: CityCorridor
    scene: object

    @property
    def entry_x_m(self) -> float:
        return float(self.scene.road.x_min_m)

    @property
    def exit_x_m(self) -> float:
        return float(self.scene.road.x_max_m)

    @property
    def first_station(self) -> CorridorStation:
        return self.corridor.stations[0]

    @property
    def last_station(self) -> CorridorStation:
        return self.corridor.stations[-1]


@dataclass
class _TrafficSource:
    """Poisson car injection at one boundary edge."""

    arrivals: PoissonArrivals
    routes: list[tuple[tuple[str, ...], float]]
    speed_range_m_s: tuple[float, float]


@dataclass
class _RoutedCar:
    """One car working through its route of edges."""

    transponder: object
    route: tuple[str, ...]
    speed_m_s: float
    lane_y_m: float
    leg: int = 0


@dataclass
class MeshResult:
    """Everything one :meth:`CityMesh.run` produced.

    Per-edge numbers live in ``edges`` (each a
    :class:`~repro.sim.city.corridor.CorridorResult`, already filtered
    to that edge's own traffic); ``ledger`` is the *shared* mesh-wide
    audit (every edge result references the same object). The
    cross-corridor fields measure the mesh's reason to exist: of the
    first sightings of a tag in a corridor it entered from another
    corridor, how many were resolved by a forwarded/pushed cache entry
    (``cross_resolved``) versus burned a re-decode
    (``cross_redecodes``) — and, for entries at the entered corridor's
    *first* pole, how many decode queries that first sighting cost
    (``first_pole_queries``; 0 for a push hit, the burst size for a
    re-decode). ``handoff`` records which policy ran: ``"push"``
    (predictive push) or ``"pull"`` (on-demand directory lookup).
    """

    duration_s: float
    handoff: str
    edges: dict[str, CorridorResult]
    ledger: HandoffLedger
    directory: dict
    station_edge: dict[str, str]
    cars_injected: int
    cars_transferred: int
    cars_departed: int
    cross_entries: int = 0
    cross_resolved: int = 0
    cross_redecodes: int = 0
    first_pole_queries: list[int] = field(default_factory=list)
    responses: int = 0
    corrupted_responses: int = 0
    #: The run's :class:`~repro.sim.city.backhaul.BackhaulPlane`
    #: summary under a batched delivery policy; None when the links
    #: were wired (so wired summaries stay bit-identical to pre-backhaul
    #: output).
    backhaul: dict | None = None

    @property
    def queries_sent(self) -> int:
        return sum(r.queries_sent for r in self.edges.values())

    @property
    def cross_resolution_rate(self) -> float:
        """Fraction of cross-corridor entries resolved without a
        re-decode (pushed or pulled cache entry)."""
        return self.cross_resolved / self.cross_entries if self.cross_entries else 0.0

    @property
    def mean_first_pole_queries(self) -> float:
        """Mean decode queries spent on a tag's first sighting at the
        entered corridor's first pole (the push-vs-pull headline)."""
        if not self.first_pole_queries:
            return float("nan")
        return float(np.mean(self.first_pole_queries))

    def summary(self) -> dict:
        """Headline numbers, JSON-friendly."""
        out = {
            "duration_s": self.duration_s,
            "handoff": self.handoff,
            "cars_injected": self.cars_injected,
            "cars_transferred": self.cars_transferred,
            "cars_departed": self.cars_departed,
            "queries_sent": self.queries_sent,
            "responses": self.responses,
            "corrupted_responses": self.corrupted_responses,
            "cross_corridor": {
                "entries": self.cross_entries,
                "resolved": self.cross_resolved,
                "redecodes": self.cross_redecodes,
                "resolution_rate": self.cross_resolution_rate,
                "first_pole_sightings": len(self.first_pole_queries),
                "mean_first_pole_queries": self.mean_first_pole_queries,
            },
            "handoff_ledger": self.ledger.summary(),
            "directory": self.directory,
            "edges": {name: r.summary() for name, r in self.edges.items()},
        }
        if self.backhaul is not None:
            out["backhaul"] = self.backhaul
        return out


class CityMesh:
    """A directed graph of reader corridors sharing one timeline.

    Build order: :meth:`add_node` the intersections, :meth:`add_edge`
    the corridors between them, :meth:`add_traffic` the arrival
    processes, then :meth:`run` once (like the corridor, an instance
    runs a single world — build a fresh mesh per run).

    Attributes:
        handoff: cross-pole identity policy — ``"push"`` (default:
            predictive push handoff; §7 speed estimates plant cache
            entries at the predicted next pole, across intersections)
            or ``"pull"`` (ablation: today's pull-at-sighting
            semantics — corridor-boundary sightings re-decode; the
            directory only audits). Within-corridor neighbor pull is
            active under both policies — push rides on top of it.
        directory: the city-wide identity service (a default-bounded
            :class:`IdentityDirectory` unless one is supplied).
        interference_range_m: along-city distance beyond which
            transmitters are inaudible. Every edge must fit inside it
            (so one street keeps single-street semantics) and the
            frame gap must exceed it (so streets never interfere);
            both are validated.
        frame_gap_m: spacing between consecutive edge frames on the
            global axis.
        push_horizon_s: do not push for predicted arrivals further out
            than this (the entry would age toward uselessness first).
        backhaul: how pole↔directory traffic travels (see
            :mod:`repro.sim.city.backhaul`) — None or ``"wired"`` for
            the immediate-delivery behavior (bit-identical to a mesh
            without the parameter), a policy name (``"scheduled"`` /
            ``"mule"``) for that policy's defaults, or a full
            :class:`~repro.sim.city.backhaul.BackhaulConfig`. Under a
            batched policy every directory report, sighting tap and
            push intent rides a per-pole link, applied at delivery
            time; batched taps receive an extra ``delivered_s``
            keyword.
        obs: nullable observability hook (see :mod:`repro.obs`),
            threaded into the shared air log, response pool, scheduler,
            the default-built directory and every edge corridor — one
            registry and one tracer for the whole city. Never affects
            simulation behavior.
    """

    def __init__(
        self,
        *,
        rng=None,
        handoff: str = "push",
        directory: IdentityDirectory | None = None,
        interference_range_m: float = 500.0,
        frame_gap_m: float = 1000.0,
        push_horizon_s: float = 60.0,
        max_queries: int = 32,
        backhaul: BackhaulConfig | str | None = None,
        obs=None,
    ) -> None:
        if handoff not in ("push", "pull"):
            raise ConfigurationError(f"unknown handoff policy {handoff!r}")
        if isinstance(backhaul, str):
            backhaul = BackhaulConfig(policy=backhaul)
        if frame_gap_m <= interference_range_m + 2.0 * READER_RANGE_M:
            raise ConfigurationError(
                "frame gap must exceed the interference range (plus radio "
                "slack): distinct streets may not share the ether"
            )
        self.rng = as_rng(rng)
        self.handoff = handoff
        self.obs = obs
        self.directory = (
            directory if directory is not None else IdentityDirectory(obs=obs)
        )
        self.interference_range_m = float(interference_range_m)
        self.frame_gap_m = float(frame_gap_m)
        self.push_horizon_s = float(push_horizon_s)
        self.max_queries = int(max_queries)
        slack_s = max(
            0.25, self.max_queries * QUERY_PERIOD_S + RESPONSE_DURATION_S + 0.05
        )
        self.air = AirLog(sense_slack_s=slack_s, obs=obs)
        self.pool = ResponsePool(slack_s=slack_s, obs=obs)
        self.ledger = HandoffLedger()
        self.backhaul = backhaul
        self._plane: BackhaulPlane | None = None
        self._station_objs: dict[str, CorridorStation] = {}
        self.nodes: dict[str, MeshNode] = {}
        self.edges: dict[str, MeshEdge] = {}
        self.services: list[object] = []
        self.sighting_taps: list = []
        self._sources: list[_TrafficSource] = []
        self._cursor_x_m = 0.0
        self._node_next_free: dict[str, float] = {}
        self._predicted_next: dict[str, str] = {}
        self._scheduler: EventScheduler | None = None
        self._end_s = 0.0
        self.cars_injected = 0
        self.cars_transferred = 0
        self.cars_departed = 0
        self._ran = False

    # -- graph construction ------------------------------------------------------

    def add_node(
        self,
        name: str,
        light: TrafficLight | None = None,
        headway_s: float = 2.0,
    ) -> MeshNode:
        """Declare an intersection; returns it."""
        if name in self.nodes:
            raise ConfigurationError(f"duplicate node {name!r}")
        node = MeshNode(name=name, light=light, headway_s=float(headway_s))
        self.nodes[name] = node
        return node

    def add_edge(
        self,
        name: str,
        *,
        src: str | None = None,
        dst: str | None = None,
        n_poles: int = 2,
        pole_spacing_m: float = 40.0,
        lane_ys_m: tuple[float, ...] = (-1.75, -5.25),
        **corridor_kwargs,
    ) -> MeshEdge:
        """Add one corridor edge running ``src -> dst``; returns it.

        The edge's scene is laid out at the next free slot on the
        global city axis and its corridor is built on the mesh's shared
        air log, response pool, ledger and sighting hook. Extra keyword
        arguments flow to :meth:`CityCorridor.build` (cadence, decode
        budget, CSMA/opportunistic policies, ...).
        """
        if name in self.edges:
            raise ConfigurationError(f"duplicate edge {name!r}")
        for node_name in (src, dst):
            if node_name is not None and node_name not in self.nodes:
                raise ConfigurationError(f"unknown node {node_name!r}")
        if self._ran:
            raise ConfigurationError("the mesh already ran")
        span_m = n_poles * pole_spacing_m
        if span_m > self.interference_range_m:
            raise ConfigurationError(
                f"edge {name!r} spans {span_m:.0f} m, beyond the "
                f"{self.interference_range_m:.0f} m interference range — "
                "its own poles could not all hear each other"
            )
        origin_x_m = self._cursor_x_m + pole_spacing_m / 2.0
        scene, _ = city_corridor_scene(
            n_poles=n_poles,
            pole_spacing_m=pole_spacing_m,
            lane_ys_m=lane_ys_m,
            n_cars=0,
            origin_x_m=origin_x_m,
            rng=self.rng,
        )
        self._cursor_x_m = float(scene.road.x_max_m) + self.frame_gap_m
        corridor_kwargs.setdefault("max_queries", self.max_queries)
        corridor_kwargs.setdefault("obs", self.obs)
        corridor = CityCorridor.build(
            scene,
            [],
            lane_ys_m=lane_ys_m,
            rng=self.rng,
            name=name,
            scheduling="event",
            air=self.air,
            pool=self.pool,
            ledger=self.ledger,
            interference_range_m=self.interference_range_m,
            on_sighting=self._on_sighting,
            **corridor_kwargs,
        )
        edge = MeshEdge(name=name, src=src, dst=dst, corridor=corridor, scene=scene)
        self.edges[name] = edge
        return edge

    def add_traffic(
        self,
        routes,
        rate_per_s: float,
        speed_range_m_s: tuple[float, float] = (8.0, 18.0),
    ) -> None:
        """Attach a Poisson arrival process to the mesh.

        ``routes`` is a list of ``(route, weight)`` pairs — each route a
        tuple of edge names a car follows in order; weights are the
        relative probabilities a new arrival draws its route with. All
        routes of one source must start at the same boundary edge, and
        consecutive edges must be joined by a shared intersection.
        """
        routes = [
            (tuple(route), float(weight)) for route, weight in routes
        ]
        if not routes or any(w <= 0 for _, w in routes):
            raise ConfigurationError("need routes with positive weights")
        entry = {route[0] for route, _ in routes}
        if len(entry) != 1:
            raise ConfigurationError("one source, one entry edge")
        for route, _ in routes:
            for here, there in zip(route, route[1:]):
                edge = self._edge(here)
                nxt = self._edge(there)
                if edge.dst is None or edge.dst != nxt.src:
                    raise ConfigurationError(
                        f"route hop {here!r} -> {there!r} crosses no shared "
                        "intersection"
                    )
        self._sources.append(
            _TrafficSource(
                arrivals=PoissonArrivals(float(rate_per_s), rng=self.rng),
                routes=routes,
                speed_range_m_s=(float(speed_range_m_s[0]), float(speed_range_m_s[1])),
            )
        )

    def subscribe(self, service: object) -> object:
        """Fan every corridor's observations into ``service.observe``."""
        self.services.append(service)
        return service

    def add_sighting_tap(self, tap) -> object:
        """Feed every resolved sighting, with provenance, to ``tap``.

        ``tap(t_s, edge, station, tag_id, cfo_hz, x_m, localized, kind,
        n_queries)`` is called once per resolved sighting, *after* the
        directory report — ``edge``/``station`` are names (strings),
        ``kind`` a :mod:`~repro.sim.city.handoff` resolution kind and
        ``n_queries`` the decode queries that sighting itself spent.
        This is the raw feed a billing plane dedups and charges from.
        Unlike :meth:`subscribe` services, taps also work under
        :func:`~repro.sim.city.parallel.run_sharded`: the coordinator
        replays the merged sighting stream through them in canonical
        order. Under a batched ``backhaul`` policy the call gains a
        ``delivered_s`` keyword (when the delta actually reached the
        directory side) — a tap that should survive batched runs must
        accept it. Returns ``tap`` for chaining.
        """
        self.sighting_taps.append(tap)
        return tap

    def _edge(self, name: str) -> MeshEdge:
        edge = self.edges.get(name)
        if edge is None:
            raise ConfigurationError(f"unknown edge {name!r}")
        return edge

    # -- the run -----------------------------------------------------------------

    def run(self, duration_s: float) -> MeshResult:
        """Simulate the whole mesh for ``duration_s`` seconds."""
        if self._ran:
            raise ConfigurationError("a CityMesh instance runs once; build a fresh one")
        if not self.edges:
            raise ConfigurationError("a mesh needs at least one edge")
        self._ran = True
        self._end_s = float(duration_s)
        self._predicted_next = self._turn_policy()
        self._station_objs = {
            station.name: station
            for edge in self.edges.values()
            for station in edge.corridor.stations
        }
        self._plane = self._build_plane(
            push_intent=self._push_intent_named, deliver_push=self._plant_push
        )
        scheduler = EventScheduler(obs=self.obs)
        self._scheduler = scheduler
        for edge in self.edges.values():
            for service in self.services:
                edge.corridor.subscribe(service)
            edge.corridor.prime(scheduler, duration_s)
        if self._plane.batched:
            # Heartbeats bound how stale a delivered push can be planted
            # (delivery *times* are exact regardless — the plane computes
            # them from the sync schedule, not the call instant).
            def tick(sched: EventScheduler) -> None:
                self._plane.advance(sched.now_s)

            step_s = self._plane.config.heartbeat_s
            n_ticks = int(float(duration_s) / step_s)
            for i in range(1, n_ticks + 1):
                scheduler.schedule(i * step_s, tick, label="backhaul-sync")
        for car, t_arrival in self._draw_cars(duration_s):
            scheduler.schedule(
                t_arrival,
                self._make_entry(car),
                label=f"car{car.transponder.tag_id}-enter",
            )
        scheduler.run_until(duration_s)
        return self._finish(duration_s)

    def _build_plane(self, *, push_intent, deliver_push) -> BackhaulPlane:
        """The run's backhaul plane — shared construction for the
        serial engine and the sharded coordinator (which owns the links
        either way; see :func:`~repro.sim.city.parallel.run_sharded`)."""
        config = self.backhaul if self.backhaul is not None else BackhaulConfig()
        gateways = config.gateways or self._default_gateways()
        return BackhaulPlane(
            config,
            directory=self.directory,
            taps=self.sighting_taps,
            stations=[
                station.name
                for edge in self.edges.values()
                for station in edge.corridor.stations
            ],
            gateways=gateways,
            push_intent=push_intent,
            deliver_push=deliver_push,
            obs=self.obs,
        )

    def _default_gateways(self) -> tuple[str, ...]:
        """Synced poles under ``mule``: the last pole of every exit
        edge — where departing cars (the mules) naturally pass on
        their way out of the mesh."""
        exits = sorted(
            e.last_station.name for e in self.edges.values() if e.dst is None
        )
        if exits:
            return tuple(exits)
        all_stations = sorted(
            station.name
            for edge in self.edges.values()
            for station in edge.corridor.stations
        )
        return (all_stations[-1],) if all_stations else ()

    def _turn_policy(self) -> dict[str, str]:
        """The static per-edge successor prediction pushes aim at.

        The backend does not know an individual car's route; it knows
        the traffic mix. For each edge the predicted successor is the
        outgoing edge carrying the largest expected flow (arrival rate
        x route weight), falling back to the first declared successor
        where no route continues. Cars off the predicted turn become
        push misses — the cost the ledger audits.
        """
        mass: dict[tuple[str, str], float] = {}
        for source in self._sources:
            total = sum(w for _, w in source.routes)
            for route, weight in source.routes:
                share = source.arrivals.rate_per_s * weight / total
                for here, there in zip(route, route[1:]):
                    mass[(here, there)] = mass.get((here, there), 0.0) + share
        policy: dict[str, str] = {}
        for name, edge in self.edges.items():
            if edge.dst is None:
                continue
            successors = [e.name for e in self.edges.values() if e.src == edge.dst]
            if not successors:
                continue
            policy[name] = max(
                successors, key=lambda s: (mass.get((name, s), 0.0), -successors.index(s))
            )
        return policy

    def _draw_cars(self, duration_s: float) -> list[tuple[_RoutedCar, float]]:
        """All arrivals of the run, with routes, speeds, lanes and
        transponders drawn up front in one deterministic sweep."""
        plan: list[tuple[tuple[str, ...], float, float, float]] = []
        for source in self._sources:
            times = source.arrivals.arrivals_until(0.0, duration_s)
            total = sum(w for _, w in source.routes)
            entry_edge = self._edge(source.routes[0][0][0])
            lane_ys = tuple(entry_edge.first_station.cell.lane_ys_m)
            for t in times:
                pick = float(self.rng.uniform(0.0, total))
                route = source.routes[-1][0]
                for candidate, weight in source.routes:
                    if pick < weight:
                        route = candidate
                        break
                    pick -= weight
                speed = float(self.rng.uniform(*source.speed_range_m_s))
                lane_y = float(lane_ys[int(self.rng.integers(0, len(lane_ys)))])
                plan.append((route, float(t), speed, lane_y))
        if not plan:
            return []
        positions = [
            [self._edge(route[0]).entry_x_m, lane_y, 1.0]
            for route, _, _, lane_y in plan
        ]
        transponders = make_tags(np.array(positions), rng=self.rng)
        return [
            (
                _RoutedCar(
                    transponder=transponder,
                    route=route,
                    speed_m_s=speed,
                    lane_y_m=lane_y,
                ),
                t,
            )
            for (route, t, speed, lane_y), transponder in zip(plan, transponders)
        ]

    # -- car movement ------------------------------------------------------------

    def _make_entry(self, car: _RoutedCar):
        def enter(scheduler: EventScheduler) -> None:
            self._enter_edge(car, scheduler, scheduler.now_s)

        return enter

    def _enter_edge(
        self, car: _RoutedCar, scheduler: EventScheduler, now_s: float
    ) -> None:
        edge = self._edge(car.route[car.leg])
        trajectory = ConstantSpeedTrajectory(
            start_m=np.array([edge.entry_x_m, car.lane_y_m, 1.0]),
            velocity_m_s=np.array([car.speed_m_s, 0.0, 0.0]),
            t0_s=now_s,
        )
        tag = MovingTag(transponder=car.transponder, trajectory=trajectory)
        edge.corridor.admit(tag, scheduler, now_s)
        self.cars_injected += 1
        if self.obs is not None:
            self.obs.count("mesh.car", kind="injected", edge=edge.name)
        t_exit = now_s + (edge.exit_x_m - edge.entry_x_m) / car.speed_m_s
        if t_exit <= self._end_s:
            scheduler.schedule(
                t_exit,
                self._make_exit(car, edge),
                label=f"car{car.transponder.tag_id}-exit-{edge.name}",
            )

    def _make_exit(self, car: _RoutedCar, edge: MeshEdge):
        def exit_edge(scheduler: EventScheduler) -> None:
            self._exit_edge(car, edge, scheduler, scheduler.now_s)

        return exit_edge

    def _exit_edge(
        self, car: _RoutedCar, edge: MeshEdge, scheduler: EventScheduler, now_s: float
    ) -> None:
        car.leg += 1
        if car.leg >= len(car.route):
            self.cars_departed += 1
            if self.obs is not None:
                self.obs.count("mesh.car", kind="departed", edge=edge.name)
            return
        node = self.nodes[edge.dst]
        depart_s = self._release(node, now_s)
        if depart_s <= self._end_s:
            self.cars_transferred += 1
            if self.obs is not None:
                self.obs.count("mesh.car", kind="transferred", edge=edge.name)
            scheduler.schedule(
                depart_s,
                self._make_entry(car),
                label=f"car{car.transponder.tag_id}-enter-{car.route[car.leg]}",
            )

    def _release(self, node: MeshNode, arrival_s: float) -> float:
        """Intersection dwell: wait for the car ahead (saturation
        headway), then for the signal. The signal check runs on the
        headway-delayed instant, so a queue draining through a short
        green holds the remainder for the *next* green instead of
        releasing cars into the red."""
        earliest_s = max(arrival_s, self._node_next_free.get(node.name, 0.0))
        depart_s = node.departure_s(earliest_s)
        self._node_next_free[node.name] = depart_s + node.headway_s
        return depart_s

    # -- predictive push ---------------------------------------------------------

    def _on_sighting(
        self,
        corridor: CityCorridor,
        station: CorridorStation,
        tag_id: int,
        cfo_hz: float,
        t_s: float,
        x_m: float,
        localized: bool,
        kind: str = "own",
        n_queries: int = 0,
    ) -> None:
        """Corridor hook: route the sighting over its pole's backhaul
        link; maybe push ahead of it.

        Under wired links the plane applies inline (directory report,
        taps) and returns the §7 estimate, and the push decision runs
        here at sighting time — exactly the pre-backhaul sequence.
        Under batched links the plane buffers the delta and both the
        directory application and the push decision happen at delivery.

        Only §6-localized fixes feed the §7 speed estimator (a
        pole-position stand-in would poison the ratio); the corridor
        name is the estimator's coordinate frame, so crossings rebase
        instead of pairing across the layout gap.
        """
        edge = self.edges[corridor.name]
        estimate = self._plane.submit(
            t_s, edge.name, station.name, tag_id, cfo_hz, x_m, localized,
            kind, n_queries,
        )
        if estimate is None:
            return
        intent = self._push_intent(edge, station, x_m, tag_id, cfo_hz, t_s, estimate)
        if intent is None:
            return
        self._plant_push(intent, t_s)

    def _push_intent(
        self,
        edge: MeshEdge,
        station: CorridorStation,
        x_m: float,
        tag_id: int,
        cfo_hz: float,
        t_s: float,
        estimate,
        check_live: bool = True,
    ) -> tuple | None:
        """The push decision for one reported sighting, as data:
        ``(target, from_station, tag_id, cfo_hz, t_emit_s, eta_s)`` or
        None. ``check_live=False`` skips the target-cache liveness
        check for callers without live station state (the sharded
        coordinator, which re-checks at the owning shard)."""
        if self.handoff != "push" or estimate is None:
            return None
        if estimate.speed_m_s <= 0.5:
            return None  # effectively parked: no meaningful arrival prediction
        target, distance_m = self._predict_target(edge, station, x_m)
        if target is None:
            return None
        if check_live and (tag_id in target.identities or tag_id in target.pushed):
            return None
        eta_s = t_s + max(distance_m, 0.0) / estimate.speed_m_s
        if eta_s - t_s > self.push_horizon_s:
            return None
        return (target.name, station.name, tag_id, cfo_hz, float(t_s), eta_s)

    def _push_intent_named(
        self,
        edge_name: str,
        station_name: str,
        x_m: float,
        tag_id: int,
        cfo_hz: float,
        t_s: float,
        estimate,
    ) -> tuple | None:
        """Name-keyed :meth:`_push_intent` — the serial plane's
        delivery-time push callback."""
        return self._push_intent(
            self.edges[edge_name], self._station_objs[station_name],
            x_m, tag_id, cfo_hz, t_s, estimate,
        )

    def _plant_push(self, intent: tuple, now_s: float) -> None:
        """Plant one push intent into the live target cache at
        ``now_s`` (sighting time when wired; link delivery time when
        batched — the entry's age and the ledger record follow the
        moment the pole actually learned of it)."""
        target_name, from_station, tag_id, cfo_hz, _t_emit, eta_s = intent
        target = self._station_objs[target_name]
        if tag_id in target.identities or tag_id in target.pushed:
            return
        target.receive_push(cfo_hz, tag_id, from_station=from_station, now_s=now_s)
        self.ledger.record_push(
            target_name, from_station, tag_id, now_s, cfo_hz, eta_s=eta_s
        )
        if self.obs is not None:
            self.obs.count("mesh.push", station=target_name)

    def _predict_target(
        self, edge: MeshEdge, station: CorridorStation, x_m: float
    ) -> tuple[CorridorStation | None, float]:
        """The pole a car at ``x_m`` reaches next, and the road distance
        to it — the downstream neighbor, or the first pole of the
        predicted successor edge when the car is at the last pole."""
        if station.downstream is not None:
            return (
                station.downstream,
                float(station.downstream.pole_position_m[0]) - x_m,
            )
        successor = self._predicted_next.get(edge.name)
        if successor is None:
            return None, 0.0
        succ = self.edges[successor]
        target = succ.first_station
        distance_m = (edge.exit_x_m - x_m) + (
            float(target.pole_position_m[0]) - succ.entry_x_m
        )
        return target, distance_m

    # -- results -----------------------------------------------------------------

    def _finish(self, duration_s: float) -> MeshResult:
        # The DTN convergence flush runs before any summary is taken,
        # so the directory (and every tap, e.g. a billing service)
        # reflects all batched traffic. A no-op when wired.
        if self._plane is not None:
            self._plane.final_flush(duration_s)
        # Sweep speculative pushes that no sighting ever consumed: the
        # car turned off-route, parked, or the run ended first.
        for edge in self.edges.values():
            for station in edge.corridor.stations:
                for tag_id in sorted(station.pushed):
                    from_station, cfo_hz, t_push = station.pushed[tag_id]
                    self.ledger.record_push_miss(
                        station.name, from_station, tag_id, t_push, cfo_hz
                    )
        station_edge = {
            station.name: edge.name
            for edge in self.edges.values()
            for station in edge.corridor.stations
        }
        result = MeshResult(
            duration_s=duration_s,
            handoff=self.handoff,
            edges={name: e.corridor.finish() for name, e in self.edges.items()},
            ledger=self.ledger,
            directory=self.directory.summary(),
            station_edge=station_edge,
            cars_injected=self.cars_injected,
            cars_transferred=self.cars_transferred,
            cars_departed=self.cars_departed,
            responses=len(self.air.responses()),
            corrupted_responses=len(
                self.air.corrupted_responses(self.interference_range_m)
            ),
            backhaul=(
                self._plane.summary()
                if self._plane is not None and self._plane.batched
                else None
            ),
        )
        self.cross_corridor_stats(result, station_edge)
        return result

    def cross_corridor_stats(
        self, result: MeshResult, station_edge: dict[str, str]
    ) -> None:
        """Walk the shared ledger and score every cross-corridor entry.

        A cross-corridor entry is a tag's first attributed sighting in
        an edge after being known in some *other* edge. It was resolved
        (pushed/pulled cache entry) or it cost a re-decode; entries at
        the edge's first pole additionally contribute their decode-query
        cost to the push-vs-pull headline.
        """
        first_poles = {e.first_station.name: e.name for e in self.edges.values()}
        edges_knowing: dict[int, set[str]] = {}
        ordered = sorted(
            enumerate(self.ledger.records), key=lambda p: (p[1].t_s, p[0])
        )
        for _, record in ordered:
            if record.tag_id is None or record.kind not in _ATTRIBUTED:
                continue
            edge_name = station_edge.get(record.station)
            if edge_name is None:
                continue
            known = edges_knowing.setdefault(record.tag_id, set())
            if known and edge_name not in known:
                result.cross_entries += 1
                if record.kind in (HANDOFF, PUSH):
                    result.cross_resolved += 1
                elif record.kind == REDECODE:
                    result.cross_redecodes += 1
                if first_poles.get(record.station) == edge_name:
                    result.first_pole_queries.append(record.n_queries)
            known.add(edge_name)


def downtown_grid(
    rows: int,
    cols: int,
    *,
    rng=None,
    handoff: str = "push",
    rate_per_s: float = 0.3,
    n_poles: int = 2,
    speed_range_m_s: tuple[float, float] = (8.0, 18.0),
    obs=None,
    **mesh_kwargs,
) -> CityMesh:
    """A downtown of ``cols`` one-way avenues, ``rows`` blocks each.

    The scale-out scenario: ``rows x cols`` corridors (a 10x10 call is
    the 100-corridor benchmark city). Avenues are paired — partners
    share every signalized junction, so routes can weave between the
    pair mid-town. Each avenue gets its own Poisson source; 70% of its
    cars ride the avenue end to end, 30% switch to the partner at the
    mid-town junction (an odd trailing avenue sends its 30% off-grid
    early instead) — both off-policy turn populations feed the
    push-miss audit, like the 3-corridor demo mesh.

    ``handoff`` selects the mesh's cross-pole identity policy —
    ``"push"`` (default: predictive push handoff) or ``"pull"`` (the
    at-sighting ablation), exactly as on :class:`CityMesh`.

    Signal offsets stagger deterministically by junction (no RNG
    draw), so the grid's congestion pattern is a pure function of the
    seed. Edge and node names are zero-padded (``st03a07``), keeping
    sorted order equal to grid order for the sharding layer.
    """
    if rows < 1 or cols < 1:
        raise ConfigurationError("a downtown needs at least one row and column")
    mesh = CityMesh(rng=rng, handoff=handoff, obs=obs, **mesh_kwargs)
    def edge(r: int, c: int) -> str:
        return f"st{r:02d}a{c:02d}"

    def node(r: int, p: int) -> str:
        return f"jn{r:02d}p{p:02d}"

    for r in range(rows - 1):
        for pair in range((cols + 1) // 2):
            mesh.add_node(
                node(r, pair),
                light=TrafficLight(
                    green_s=8.0,
                    yellow_s=1.0,
                    red_s=4.0,
                    offset_s=float((3 * r + 5 * pair) % 13),
                ),
            )
    for r in range(rows):
        for c in range(cols):
            mesh.add_edge(
                edge(r, c),
                src=None if r == 0 else node(r - 1, c // 2),
                dst=None if r == rows - 1 else node(r, c // 2),
                n_poles=n_poles,
            )
    mid = rows // 2
    for c in range(cols):
        straight = tuple(edge(r, c) for r in range(rows))
        partner = c + 1 if c % 2 == 0 else c - 1
        if partner < cols and rows > 1:
            weave = straight[:mid] + tuple(edge(r, partner) for r in range(mid, rows))
        else:
            # Odd trailing avenue: no partner — its off-policy share
            # simply leaves the grid after the mid-town block.
            weave = straight[: max(mid, 1)]
        routes = [(straight, 0.7), (weave, 0.3)]
        if weave == straight:
            routes = [(straight, 1.0)]
        mesh.add_traffic(routes, rate_per_s=rate_per_s, speed_range_m_s=speed_range_m_s)
    return mesh
