"""City-scale corridor engine: many readers, one street, one time axis.

The paper's end goal (§1, §9) is a *network* of cheap readers covering a
city. This package is the discrete-event layer that turns the isolated
per-pole machinery into that infrastructure:

* :mod:`repro.sim.city.cells` — first-class :class:`StationCell`
  coverage segments (promoted from the per-station road-slice pattern of
  ``examples/reader_network.py``) with neighbor links.
* :mod:`repro.sim.city.handoff` — the :class:`HandoffLedger` audit of
  how each downstream sighting was resolved: own cache, neighbor cache
  handoff, or a full re-decode.
* :mod:`repro.sim.city.moving` — moving tags: trajectory-driven
  transponders whose channel geometry is re-sampled per query.
* :mod:`repro.sim.city.pool` — the shared :class:`ResponsePool` of
  trigger windows: a tag answering one pole's query is audible at every
  pole in range, so neighbors harvest the window as free decode
  evidence (the ``opportunistic="accept"`` policy).
* :mod:`repro.sim.city.corridor` — :class:`CityCorridor`, the engine:
  every station runs its own query cadence through the §9
  :class:`~repro.core.mac.ReaderMac` policy on one shared
  :class:`~repro.sim.events.EventScheduler` timeline and one
  :class:`~repro.sim.medium.AirLog`, so stations genuinely back off each
  other instead of taking synchronized turns.
* :mod:`repro.sim.city.directory` — the :class:`IdentityDirectory`
  city-wide fingerprint service above the per-pole caches: bounded,
  aging, trail-keeping, and the source of §7 cross-pole speed
  estimates.
* :mod:`repro.sim.city.mesh` — :class:`CityMesh`, the city graph:
  corridors as edges, intersections as nodes, Poisson traffic routed
  edge-to-edge on one shared timeline, with predictive *push* handoff
  planting cache entries at the predicted next pole ahead of each car
  (``handoff="pull"`` is the at-sighting ablation).
* :mod:`repro.sim.city.backhaul` — the intermittent pole↔directory
  backhaul: every link a :class:`BackhaulLink` under a
  :class:`BackhaulConfig` delivery policy (``wired`` / ``scheduled`` /
  ``mule``), degraded deterministically by a seeded :class:`FaultPlan`,
  all routed through the coordinator-owned :class:`BackhaulPlane`.
"""

from .backhaul import (
    BackhaulConfig,
    BackhaulLink,
    BackhaulPlane,
    FaultPlan,
    OutageWindow,
    SyncBuffer,
)
from .cells import StationCell, carve_cells
from .handoff import HandoffLedger, PushRecord, SightingRecord
from .moving import MovingCollisionSource, MovingTag, TagWaveformBank
from .pool import ResponsePool, TriggerWindow
from .corridor import CityCorridor, CorridorResult, CorridorStation
from .directory import IdentityDirectory, SightingFix
from .mesh import CityMesh, MeshEdge, MeshNode, MeshResult, downtown_grid
from .parallel import ShardedMeshResult, interference_groups, run_sharded

__all__ = [
    "BackhaulConfig",
    "BackhaulLink",
    "BackhaulPlane",
    "FaultPlan",
    "OutageWindow",
    "SyncBuffer",
    "StationCell",
    "carve_cells",
    "HandoffLedger",
    "PushRecord",
    "SightingRecord",
    "MovingTag",
    "MovingCollisionSource",
    "TagWaveformBank",
    "ResponsePool",
    "TriggerWindow",
    "CityCorridor",
    "CorridorResult",
    "CorridorStation",
    "IdentityDirectory",
    "SightingFix",
    "CityMesh",
    "MeshEdge",
    "MeshNode",
    "MeshResult",
    "downtown_grid",
    "ShardedMeshResult",
    "interference_groups",
    "run_sharded",
]
