"""A minimal discrete-event scheduler.

Used by the multi-reader MAC simulation (§9) and the traffic model
(Fig 12): events are (time, priority, callback) triples executed in time
order; callbacks may schedule further events.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from ..errors import SimulationError

__all__ = ["Event", "EventScheduler"]


@dataclass(frozen=True, order=True)
class Event:
    """One scheduled callback. Ordering: time, then priority, then FIFO."""

    time_s: float
    priority: int
    sequence: int
    callback: Callable[["EventScheduler"], None] = field(compare=False)
    label: str = field(default="", compare=False)


class EventScheduler:
    """Heap-based discrete-event loop.

    The current time is only advanced by :meth:`run_until` / :meth:`run`;
    callbacks observe it via :attr:`now_s` and may call :meth:`schedule`.
    """

    def __init__(self, start_s: float = 0.0, obs=None):
        self.now_s = start_s
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live: set[int] = set()
        self._cancelled: set[int] = set()
        self.processed = 0
        #: Nullable observability hook (see :mod:`repro.obs`): counts
        #: scheduled/processed/cancelled events and, when a tracer is
        #: attached, marks each processed event on the ``sim`` track.
        self.obs = obs

    def schedule(
        self,
        time_s: float,
        callback: Callable[["EventScheduler"], None],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Add an event; scheduling in the past is an error."""
        if time_s < self.now_s - 1e-12:
            raise SimulationError(
                f"cannot schedule at {time_s} (now is {self.now_s})"
            )
        event = Event(time_s, priority, next(self._counter), callback, label)
        heapq.heappush(self._heap, event)
        self._live.add(event.sequence)
        if self.obs is not None:
            self.obs.count("scheduler.scheduled", kind=label or "event")
        return event

    def schedule_in(
        self,
        delay_s: float,
        callback: Callable[["EventScheduler"], None],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Relative-time convenience wrapper around :meth:`schedule`."""
        return self.schedule(self.now_s + delay_s, callback, priority, label)

    def cancel(self, event: Event) -> bool:
        """Cancel a pending event; returns False if already run/cancelled.

        Cancellation is lazy: the event stays in the heap and is skipped
        (without advancing the clock or counting as processed) when its
        time comes, which keeps :meth:`cancel` O(1).
        """
        if event.sequence not in self._live:
            return False
        self._live.discard(event.sequence)
        self._cancelled.add(event.sequence)
        if self.obs is not None:
            self.obs.count("scheduler.cancelled", kind=event.label or "event")
        return True

    @property
    def pending(self) -> int:
        return len(self._live)

    def peek_time(self) -> float | None:
        """Time of the next live event, if any."""
        self._drop_cancelled()
        return self._heap[0].time_s if self._heap else None

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].sequence in self._cancelled:
            self._cancelled.discard(heapq.heappop(self._heap).sequence)

    def step(self) -> Event | None:
        """Run exactly one event; returns it (or None if idle)."""
        self._drop_cancelled()
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        self._live.discard(event.sequence)
        self.now_s = event.time_s
        event.callback(self)
        self.processed += 1
        if self.obs is not None:
            self.obs.count("scheduler.processed", kind=event.label or "event")
            self.obs.instant(
                event.label or "event", event.time_s, track="sim"
            )
        return event

    def run_until(self, end_s: float, max_events: int = 1_000_000) -> int:
        """Run all events with time <= end_s; returns how many ran."""
        ran = 0
        self._drop_cancelled()
        while self._heap and self._heap[0].time_s <= end_s:
            if ran >= max_events:
                raise SimulationError(f"exceeded {max_events} events before {end_s}s")
            self.step()
            ran += 1
            self._drop_cancelled()
        self.now_s = max(self.now_s, end_s)
        return ran

    def run(self, max_events: int = 1_000_000) -> int:
        """Run to quiescence; returns how many events ran."""
        ran = 0
        self._drop_cancelled()
        while self._heap:
            if ran >= max_events:
                raise SimulationError(f"exceeded {max_events} events")
            self.step()
            ran += 1
            self._drop_cancelled()
        return ran
