"""The smart services of §1/§4: red-light, parking billing, car finder.

All three consume the same record — a :class:`TagObservation`, i.e. one
localized, identified transponder at one time — which is exactly what a
Caraoke reader uploads (§12.5: "the channels and CFOs", resolved to
positions and ids by the backend).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..sim.traffic import TrafficLight

__all__ = [
    "TagObservation",
    "RedLightViolation",
    "RedLightDetector",
    "ParkingBill",
    "ParkingBillingService",
    "CarFinder",
]


@dataclass(frozen=True)
class TagObservation:
    """One identified, localized transponder sighting.

    Attributes:
        tag_id: decoded account id (§8), or a stable CFO-derived handle
            when the service does not need billing-grade identity.
        position_m: (2,) road-plane fix from localization (§6).
        timestamp_s: reader-clock time of the query.
        station: name of the reader station that produced the fix, when
            known — city-scale pipelines audit which pole saw what.
        cell: name of the coverage cell the fix falls in, when the
            deployment partitions the road into station cells.
    """

    tag_id: int
    position_m: np.ndarray
    timestamp_s: float
    station: str | None = None
    cell: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "position_m", np.asarray(self.position_m, dtype=np.float64)
        )
        if self.position_m.shape != (2,):
            raise ConfigurationError("observation position must be (x, y)")


@dataclass(frozen=True)
class RedLightViolation:
    """A car that crossed the stop line against the light (§1)."""

    tag_id: int
    crossed_at_s: float
    speed_m_s: float
    phase: str


@dataclass
class RedLightDetector:
    """Detects stop-line crossings during the red phase.

    Tracks each tag's last observation; when consecutive fixes straddle
    the stop line, the crossing time is interpolated and checked against
    the signal phase. Cars legally discharging a queue (crossing during
    green/yellow) produce nothing. A fix sitting *exactly on* the stop
    line counts as not-yet-crossed, so a car observed at the line and
    then past it is still caught (and one stopping dead on the line is
    not).

    Tracks are pruned once they have not been sighted for ``horizon_s``:
    a city-scale stream sees every passing car once, and an unbounded
    last-fix table would otherwise grow forever.

    Attributes:
        light: the signal for this approach.
        stop_line_x_m: stop-line position along the road axis.
        approach_direction: +1 if violators travel toward +x.
        min_speed_m_s: crossings slower than this are queue creep, not
            running the light.
        horizon_s: forget tags unseen for this long. Two fixes further
            apart than the horizon never interpolate into a crossing
            (the car plainly did not dwell mid-intersection that long).
    """

    light: TrafficLight
    stop_line_x_m: float
    approach_direction: float = 1.0
    min_speed_m_s: float = 1.5
    horizon_s: float = 300.0
    _last: dict[int, TagObservation] = field(default_factory=dict)
    _prune_countdown: int = field(default=0, repr=False)
    violations: list[RedLightViolation] = field(default_factory=list)

    def observe(self, observation: TagObservation) -> RedLightViolation | None:
        """Feed one sighting; returns a violation if one just occurred."""
        previous = self._last.get(observation.tag_id)
        self._last[observation.tag_id] = observation
        # Amortized: a full scan every ~len/2 sightings keeps the table
        # bounded at O(active tags) without O(n) work per observation.
        self._prune_countdown -= 1
        if self._prune_countdown <= 0:
            self.prune(observation.timestamp_s)
            self._prune_countdown = max(32, len(self._last) // 2)
        if previous is None:
            return None
        dt = observation.timestamp_s - previous.timestamp_s
        if dt <= 0 or dt > self.horizon_s:
            return None
        before = (previous.position_m[0] - self.stop_line_x_m) * self.approach_direction
        after = (observation.position_m[0] - self.stop_line_x_m) * self.approach_direction
        if not (before <= 0 < after):
            return None
        # Interpolate the crossing instant along the segment.
        fraction = -before / (after - before)
        crossed_at = previous.timestamp_s + fraction * dt
        speed = abs(after - before) / dt
        if speed < self.min_speed_m_s:
            return None
        phase = self.light.phase(crossed_at)
        if phase != "red":
            return None
        if before == 0.0 and not self.light.is_red_throughout(
            previous.timestamp_s, observation.timestamp_s
        ):
            # A fix exactly on the line pins the crossing only to somewhere
            # inside [previous, current]; if the light showed anything but
            # red within that window the car may have departed legally —
            # benefit of the doubt.
            return None
        violation = RedLightViolation(
            tag_id=observation.tag_id,
            crossed_at_s=crossed_at,
            speed_m_s=speed,
            phase=phase,
        )
        self.violations.append(violation)
        return violation

    def prune(self, now_s: float) -> int:
        """Drop tracks unseen since ``now_s - horizon_s``; returns count."""
        stale = [
            tag_id
            for tag_id, obs in self._last.items()
            if now_s - obs.timestamp_s > self.horizon_s
        ]
        for tag_id in stale:
            del self._last[tag_id]
        return len(stale)

    @property
    def n_tracked(self) -> int:
        """Tags currently tracked (bounded by pruning)."""
        return len(self._last)


@dataclass(frozen=True)
class ParkingBill:
    """A completed street-parking session."""

    tag_id: int
    spot_index: int
    start_s: float
    end_s: float
    rate_per_hour: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def amount(self) -> float:
        return self.duration_s / 3600.0 * self.rate_per_hour


@dataclass
class _ParkSession:
    """One open parking session, with re-home confirmation state.

    ``pending`` holds the one foreign fix seen since the car was last
    confirmed at its spot — a single mis-localized sighting must not
    close (and re-open) a session, so re-homing waits for a second
    consecutive fix away from the spot to confirm the car really moved.
    """

    spot_index: int
    start_s: float
    last_at_spot_s: float
    last_seen_s: float
    pending: tuple[int | None, float] | None = None


@dataclass
class ParkingBillingService:
    """Smart street parking (§1): park anywhere, get billed automatically.

    Sessions open when a tag is first seen stationary at a spot and close
    after ``absence_timeout_s`` without a sighting (the car left; e-toll
    tags answer whether the car is on or off, §3, so a parked car keeps
    responding to every query).

    One sighting near a *different* spot does not move a session: §6
    fixes jitter, and a transient mis-localized fix used to close the
    session and immediately re-open it — fragmenting one park into
    several bills. A session re-homes (old one closed, new one opened)
    only after a *second consecutive* sighting away from its spot
    confirms the car actually moved; a fix back at the spot cancels the
    pending move. Closed sessions bill through the last fix confirmed
    *at the spot* — never through the away-fix that ended them.

    Attributes:
        spot_positions_m: {spot index: (x, y)} road-plane spot centers.
        rate_per_hour: billing rate.
        match_radius_m: a fix within this radius of a spot counts as
            parked there (§12.2: AoA accuracy suffices for spot-level
            discrimination).
        absence_timeout_s: sightings gap that closes a session.
    """

    spot_positions_m: dict[int, np.ndarray]
    rate_per_hour: float = 2.0
    match_radius_m: float = 3.0
    absence_timeout_s: float = 120.0
    _open: dict[int, _ParkSession] = field(default_factory=dict)
    bills: list[ParkingBill] = field(default_factory=list)

    def _nearest_spot(self, position_m: np.ndarray) -> int | None:
        best, best_d = None, self.match_radius_m
        for index, spot in self.spot_positions_m.items():
            d = float(np.linalg.norm(np.asarray(spot) - position_m))
            if d <= best_d:
                best, best_d = index, d
        return best

    def observe(self, observation: TagObservation) -> None:
        """Feed one sighting of a (possibly parked) tag."""
        spot = self._nearest_spot(observation.position_m)
        t_s = observation.timestamp_s
        session = self._open.get(observation.tag_id)
        if session is not None:
            session.last_seen_s = max(session.last_seen_s, t_s)
            if spot == session.spot_index:
                # Back at (or still at) its spot: any pending move was a
                # transient mis-fix, not a departure.
                session.pending = None
                session.last_at_spot_s = max(session.last_at_spot_s, t_s)
                return
            if session.pending is None:
                # First foreign fix: remember it, keep the session open.
                session.pending = (spot, t_s)
                return
            # Second consecutive foreign fix: the car really left. Bill
            # only the time it was confirmed at the spot, then fall
            # through to (maybe) open the new session.
            pending_spot, pending_t_s = session.pending
            self._close(observation.tag_id, session.last_at_spot_s)
            if spot is not None and spot == pending_spot:
                # Both foreign fixes agree: the park at the new spot
                # started when it was first seen there.
                self._open[observation.tag_id] = _ParkSession(
                    spot, pending_t_s, t_s, t_s
                )
                return
        if spot is not None:
            self._open[observation.tag_id] = _ParkSession(spot, t_s, t_s, t_s)

    def sweep(self, now_s: float) -> list[ParkingBill]:
        """Close sessions whose cars have not been seen recently."""
        closed = []
        for tag_id, session in list(self._open.items()):
            if now_s - session.last_seen_s >= self.absence_timeout_s:
                closed.append(self._close(tag_id, session.last_at_spot_s))
        return closed

    def _close(self, tag_id: int, end_s: float) -> ParkingBill:
        session = self._open.pop(tag_id)
        bill = ParkingBill(
            tag_id=tag_id,
            spot_index=session.spot_index,
            start_s=session.start_s,
            end_s=end_s,
            rate_per_hour=self.rate_per_hour,
        )
        self.bills.append(bill)
        return bill

    def occupancy(self) -> dict[int, list[int]]:
        """{spot: sorted tag ids} for currently open sessions.

        Collision-safe: two open sessions can legitimately map to the
        same spot index (a mis-localized neighbor, or a spot briefly
        double-claimed during a swap) — both are reported instead of one
        silently shadowing the other.
        """
        out: dict[int, list[int]] = {}
        for tag_id, session in self._open.items():
            out.setdefault(session.spot_index, []).append(tag_id)
        return {spot: sorted(tags) for spot, tags in sorted(out.items())}


@dataclass
class CarFinder:
    """"Where did I park?" (§4): the last known fix per account."""

    _last: dict[int, TagObservation] = field(default_factory=dict)

    def observe(self, observation: TagObservation) -> None:
        current = self._last.get(observation.tag_id)
        if current is None or observation.timestamp_s >= current.timestamp_s:
            self._last[observation.tag_id] = observation

    def locate(self, tag_id: int) -> TagObservation:
        """Latest sighting of an account's car.

        Raises:
            KeyError: the city has never seen this tag.
        """
        return self._last[tag_id]

    def known_tags(self) -> list[int]:
        return sorted(self._last)
