"""Smart-city services built on the Caraoke core (§1, §4).

The paper's pitch is that one reader infrastructure serves many city
services. This subpackage implements the service logic the intro
motivates — red-light enforcement, street-parking billing, and
find-my-car — as small state machines over the core pipeline's outputs
(timestamped per-tag positions and decoded ids). Combining them with the
city's traffic databases is, as §4 notes, out of scope; these classes
*are* that integration point.
"""

from .services import (
    CarFinder,
    ParkingBill,
    ParkingBillingService,
    RedLightDetector,
    RedLightViolation,
    TagObservation,
)

__all__ = [
    "CarFinder",
    "ParkingBill",
    "ParkingBillingService",
    "RedLightDetector",
    "RedLightViolation",
    "TagObservation",
]
