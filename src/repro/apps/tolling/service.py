""":class:`TollingService` — the sighting tap that bills crossings.

One service instance is one policy's billing plane: reads stream in
(from a live mesh tap or a synthetic replay), the dedup window collapses
them into toll events, and each event is charged against the sharded
account store under the service's identification policy:

* ``push`` — predictive handoff planted the identity ahead of the car:
  the charge posts at the read itself, zero lookup latency, zero air
  time (the paper's §7-driven best case);
* ``pull`` — the read asks the city directory through the
  latency-modeled backend link; the charge posts when the answer
  arrives ``k`` rounds later. A directory *miss* falls back to a blind
  decode burst (air time) and reports the recovered identity so later
  pulls hit;
* ``redecode`` — no identity plane at all: every crossing pays a full
  decode burst's air time and its duration in latency (the baseline the
  handoff machinery exists to beat);
* ``as-sighted`` — trust each read's own provenance (cache hits are
  free, decode-kind reads cost what they actually cost on the air) —
  the "whatever the radio layer already paid" accounting, and the
  default for live mesh taps.

Run one stream through three services (push / pull / redecode) and the
summaries are three points on one latency/air-time curve.
"""

from __future__ import annotations

from ...constants import QUERY_PERIOD_S
from ...errors import ConfigurationError
from . import events as ev
from .accounts import ShardedAccountStore
from .backend import BackendAnswer, DirectoryBackend
from .dedup import TollDedup
from .events import TollEvent, TollRead

__all__ = ["POLICIES", "TollingService"]

POLICIES = ("as-sighted", "push", "pull", "redecode")

#: Resolution kinds that carried a decode burst of their own.
_DECODE_KINDS = ("decode", "redecode")


class TollingService:
    """Billing plane over the city sighting stream.

    Attach to a mesh with ``mesh.add_sighting_tap(service)`` (works
    serial and sharded — the instance *is* the tap callable), or feed
    :class:`~repro.apps.tolling.events.TollRead` records directly via
    :meth:`ingest`. Call :meth:`finish` once the stream ends to flush
    in-flight backend answers and get the summary.

    Attributes:
        policy: one of :data:`POLICIES`.
        toll_cents: flat toll per crossing (integer cents).
        max_lag_s: how far a read's emit time may trail the delivery
            watermark beyond one dedup window (see
            :class:`~repro.apps.tolling.dedup.TollDedup`). Must cover
            the feed's worst-case backhaul sync lag — including the
            final convergence flush — when reads ride batched links;
            the default 0 is the wired contract.
        accounts: the sharded store charges post against.
        dedup: the windowed dedup stage.
        backend: the latency-modeled directory link (required for — and
            only used by — the ``pull`` policy).
        fallback_decode_queries: air cost of the blind decode a pull
            miss (or a ``redecode``-policy crossing whose read was a
            free cache hit) falls back to.
        keep_events: retain every :class:`TollEvent` in
            :attr:`events` (tests, small runs). Off, only aggregates
            are kept — a million-crossing replay should not hold a
            million records.
        obs: nullable observability hook (see :mod:`repro.obs`):
            mirrors reads, events, charges and latencies into the
            metrics registry. Never affects billing.
    """

    def __init__(
        self,
        *,
        policy: str = "as-sighted",
        toll_cents: int = 150,
        window_s: float = 5.0,
        max_lag_s: float = 0.0,
        accounts: ShardedAccountStore | None = None,
        backend: DirectoryBackend | None = None,
        fallback_decode_queries: int = 12,
        query_period_s: float = QUERY_PERIOD_S,
        keep_events: bool = True,
        obs=None,
    ) -> None:
        if policy not in POLICIES:
            raise ConfigurationError(
                f"unknown tolling policy {policy!r}; pick from {POLICIES}"
            )
        if policy == "pull" and backend is None:
            raise ConfigurationError(
                "the pull policy resolves through the directory backend — "
                "pass backend=DirectoryBackend(directory)"
            )
        if toll_cents < 0:
            raise ConfigurationError("the toll cannot be negative")
        self.policy = policy
        self.toll_cents = int(toll_cents)
        self.accounts = accounts if accounts is not None else ShardedAccountStore()
        self.dedup = TollDedup(window_s=window_s, max_lag_s=max_lag_s)
        self.backend = backend
        self.fallback_decode_queries = int(fallback_decode_queries)
        self.query_period_s = float(query_period_s)
        self.keep_events = bool(keep_events)
        self.obs = obs
        self.events: list[TollEvent] = []
        self.reads = 0
        self.reads_by_kind: dict[str, int] = {}
        self.charged = 0
        self.unresolved = 0
        self.pull_fallbacks = 0
        self.misattributed = 0
        self.latency_sum_s = 0.0
        self.latency_max_s = 0.0
        self.air_queries_total = 0
        # Most-recent open event per (tag, zone), so duplicate reads can
        # be folded into their event's n_reads. Bounded exactly like the
        # dedup table: swept once the watermark passes the window.
        self._recent: dict[tuple[int, str], TollEvent] = {}
        self._next_recent_sweep_s = float("-inf")

    # -- the tap -----------------------------------------------------------------

    def __call__(
        self,
        t_s: float,
        edge: str,
        station: str,
        tag_id: int,
        cfo_hz: float,
        x_m: float,
        localized: bool,
        kind: str = "own",
        n_queries: int = 0,
        delivered_s: float | None = None,
    ) -> None:
        """Sighting-tap signature (see ``CityMesh.add_sighting_tap``).

        ``delivered_s`` arrives only from batched backhaul feeds: when
        the read actually reached billing (None means "now", i.e. at
        ``t_s`` — the wired contract).
        """
        self.ingest(
            TollRead(
                t_s=float(t_s),
                zone=edge,
                station=station,
                tag_id=int(tag_id),
                cfo_hz=float(cfo_hz),
                x_m=float(x_m),
                localized=bool(localized),
                kind=kind,
                n_queries=int(n_queries),
                delivered_s=None if delivered_s is None else float(delivered_s),
            )
        )

    def ingest(self, read: TollRead) -> TollEvent | None:
        """Feed one read; returns the toll event it opened, if any."""
        delivered_s = read.t_s if read.delivered_s is None else read.delivered_s
        self.reads += 1
        self.reads_by_kind[read.kind] = self.reads_by_kind.get(read.kind, 0) + 1
        if self.obs is not None:
            self.obs.count("tolling.read", kind=read.kind, zone=read.zone)
        if self.backend is not None:
            for answer in self.backend.drain(delivered_s):
                self._apply_answer(answer)
        key = (read.tag_id, read.zone)
        if not self.dedup.admit(
            read.tag_id, read.zone, read.t_s, delivered_s=delivered_s
        ):
            recent = self._recent.get(key)
            if recent is not None:
                recent.n_reads += 1
            return None
        event = TollEvent(
            tag_id=read.tag_id,
            zone=read.zone,
            window_index=int(read.t_s // self.dedup.window_s),
            first_read_s=read.t_s,
            kind=read.kind,
        )
        if delivered_s >= self._next_recent_sweep_s:
            self._sweep_recent(delivered_s)
            self._next_recent_sweep_s = delivered_s + self.dedup.window_s
        self._recent[key] = event
        if self.keep_events:
            self.events.append(event)
        if self.obs is not None:
            self.obs.count("tolling.event", policy=self.policy, zone=read.zone)
        self._settle(event, read)
        return event

    def _sweep_recent(self, watermark_s: float) -> None:
        # Mirror the dedup sweep horizon (delivery watermark, minus the
        # window, minus the lag allowance): an event stays foldable as
        # long as its window can still admit a duplicate.
        horizon = int(
            (watermark_s - self.dedup.window_s - self.dedup.max_lag_s)
            // self.dedup.window_s
        )
        stale = [
            key
            for key, event in self._recent.items()
            if event.window_index < horizon
        ]
        for key in stale:
            del self._recent[key]

    # -- policy settlement -------------------------------------------------------

    def _settle(self, event: TollEvent, read: TollRead) -> None:
        # A read that rode a batched backhaul could not be acted on
        # before it was delivered: its sync lag is billing latency,
        # on top of whatever the policy itself costs.
        lag_s = (
            0.0 if read.delivered_s is None else max(read.delivered_s - read.t_s, 0.0)
        )
        if self.policy == "push":
            self._post(event, read.tag_id, air=0, latency_s=lag_s)
        elif self.policy == "redecode":
            # Blind re-decode: identification always burns a burst —
            # the one the read actually ran, or a fresh one where the
            # radio layer had resolved the spike for free.
            air = (
                read.n_queries
                if read.kind in _DECODE_KINDS and read.n_queries > 0
                else self.fallback_decode_queries
            )
            self._post(
                event, read.tag_id, air=air,
                latency_s=lag_s + air * self.query_period_s,
            )
        elif self.policy == "as-sighted":
            air = read.n_queries if read.kind in _DECODE_KINDS else 0
            self._post(
                event, read.tag_id, air=air,
                latency_s=lag_s + air * self.query_period_s,
            )
        else:  # pull
            # The lookup leaves when the read reaches billing; its
            # answer latency then stacks on the backhaul lag naturally
            # (ready_s - first_read_s spans both).
            self.backend.submit(read.cfo_hz, read.t_s + lag_s, token=(event, read))

    def _apply_answer(self, answer: BackendAnswer) -> None:
        event, read = answer.token
        if answer.account_id is not None:
            if answer.account_id != read.tag_id:
                # The directory matched the fingerprint to a different
                # account — the mis-attribution hazard its aging bounds
                # exist to keep rare. Bill what the directory said (the
                # plane has nothing better), but count it.
                self.misattributed += 1
                if self.obs is not None:
                    self.obs.count("tolling.misattributed", zone=event.zone)
            self._post(
                event,
                answer.account_id,
                air=0,
                latency_s=answer.ready_s - event.first_read_s,
            )
            return
        if self.fallback_decode_queries <= 0:
            event.status = ev.UNRESOLVED
            self.unresolved += 1
            if self.obs is not None:
                self.obs.count("tolling.unresolved", zone=event.zone)
            return
        # Directory miss: blind decode recovers the identity (air
        # time), and the recovery is reported so later pulls hit.
        self.pull_fallbacks += 1
        air = self.fallback_decode_queries
        decode_done_s = answer.ready_s + air * self.query_period_s
        self.backend.report(
            read.tag_id,
            read.cfo_hz,
            read.station,
            read.zone,
            read.x_m,
            decode_done_s,
            localized=False,
        )
        self._post(
            event,
            read.tag_id,
            air=air,
            latency_s=decode_done_s - event.first_read_s,
        )

    def _post(
        self, event: TollEvent, account_id: int, air: int, latency_s: float
    ) -> None:
        charged_s = event.first_read_s + latency_s
        self.accounts.charge(account_id, self.toll_cents, charged_s)
        event.account_id = int(account_id)
        event.amount_cents = self.toll_cents
        event.air_queries = int(air)
        event.latency_s = float(latency_s)
        event.charged_s = charged_s
        event.status = ev.CHARGED
        self.charged += 1
        self.latency_sum_s += latency_s
        self.latency_max_s = max(self.latency_max_s, latency_s)
        self.air_queries_total += int(air)
        if self.obs is not None:
            self.obs.count("tolling.charge", policy=self.policy, zone=event.zone)
            self.obs.observe("tolling.latency_s", latency_s, policy=self.policy)

    # -- lifecycle ---------------------------------------------------------------

    def advance(self, now_s: float) -> None:
        """Deliver backend answers ready by ``now_s`` (the stream's own
        reads do this implicitly; call between quanta or at idle)."""
        if self.backend is not None:
            for answer in self.backend.drain(now_s):
                self._apply_answer(answer)

    def finish(self) -> dict:
        """Flush in-flight backend answers; returns :meth:`summary`."""
        if self.backend is not None:
            for answer in self.backend.flush():
                self._apply_answer(answer)
        return self.summary()

    @property
    def pending(self) -> int:
        """Toll events awaiting a backend answer."""
        return 0 if self.backend is None else self.backend.pending

    def check_consistent(self) -> None:
        """Billing-plane invariants, end to end.

        Every admitted toll event is charged or unresolved (none lost in
        flight once the backend is drained), the charge count matches
        the account store's, and the store conserves cents exactly.
        """
        settled = self.charged + self.unresolved
        if settled + self.pending != self.dedup.events:
            raise ConfigurationError(
                f"event accounting drifted: {self.charged} charged + "
                f"{self.unresolved} unresolved + {self.pending} pending "
                f"!= {self.dedup.events} admitted"
            )
        if self.accounts.total_charges != self.charged:
            raise ConfigurationError(
                f"store saw {self.accounts.total_charges} charges, "
                f"service posted {self.charged}"
            )
        self.accounts.check_consistent()

    def summary(self) -> dict:
        """Headline numbers, JSON-friendly."""
        mean_latency_s = self.latency_sum_s / self.charged if self.charged else 0.0
        mean_air = self.air_queries_total / self.charged if self.charged else 0.0
        return {
            "policy": self.policy,
            "reads": self.reads,
            "reads_by_kind": dict(sorted(self.reads_by_kind.items())),
            "toll_events": self.dedup.events,
            "duplicates_suppressed": self.dedup.duplicates,
            "charged": self.charged,
            "pending": self.pending,
            "unresolved": self.unresolved,
            "pull_fallbacks": self.pull_fallbacks,
            "misattributed": self.misattributed,
            "total_charged_cents": self.accounts.total_charged_cents,
            "mean_latency_s": mean_latency_s,
            "max_latency_s": self.latency_max_s,
            "air_queries_total": self.air_queries_total,
            "mean_air_queries_per_event": mean_air,
            "dedup": self.dedup.summary(),
            "accounts": self.accounts.summary(),
        }
