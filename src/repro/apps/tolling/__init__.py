"""The billing plane: from sighting stream to settled toll charges (§1).

Caraoke's pitch is that e-toll transponders already on cars can power
city services, tolling first among them — yet everything below this
package stops at the radio/identity layer: sightings resolve to
accounts and then evaporate. This package is the backend that turns the
city-wide sighting stream into money:

* :mod:`~repro.apps.tolling.events` — the records: one raw read, one
  deduplicated toll event;
* :mod:`~repro.apps.tolling.dedup` — the windowed dedup stage: a car
  crossing one gantry produces many reads (own-cache hits, pushes,
  handoffs, decode and overheard combinations across poles); exactly
  one toll event per ``(account, zone, window)`` survives;
* :mod:`~repro.apps.tolling.accounts` — the sharded account store the
  charges post against, bounded by settling cold accounts into
  per-shard aggregates (conservation is checkable at any instant);
* :mod:`~repro.apps.tolling.backend` — the latency-modeled directory
  link: a ``resolve`` submitted now is answered ``k`` backend rounds
  later, which is what makes push vs directory-pull vs blind re-decode
  three *measured* points on one latency/air-time curve instead of a
  slogan;
* :mod:`~repro.apps.tolling.service` — :class:`TollingService`, the
  sighting tap that ties the stages together. Attach it to a serial
  mesh via ``mesh.add_sighting_tap(service)`` — and, unlike
  ``subscribe()`` services, it works under
  :func:`~repro.sim.city.parallel.run_sharded` too: the coordinator
  replays the merged sighting stream through taps in canonical order,
  so billing is identical for any worker count;
* :mod:`~repro.apps.tolling.replay` — seeded synthetic sighting
  streams (no radio synthesis), for load tests at account populations
  no simulated radio could reach.

``python -m repro.apps.tolling --smoke`` runs a small end-to-end
replay and checks the invariants (CI fast tier).
"""

from .accounts import ShardedAccountStore
from .backend import BackendAnswer, DirectoryBackend
from .dedup import TollDedup
from .events import TollEvent, TollRead
from .replay import synthetic_reads
from .service import POLICIES, TollingService

__all__ = [
    "BackendAnswer",
    "DirectoryBackend",
    "POLICIES",
    "ShardedAccountStore",
    "TollDedup",
    "TollEvent",
    "TollRead",
    "TollingService",
    "synthetic_reads",
]
