"""CI smoke for the billing plane: ``python -m repro.apps.tolling --smoke``.

A small seeded replay runs through every policy and the invariants are
checked end to end: dedup exactness against an independent reference
count, exact cent conservation through eviction, event accounting
(charged + unresolved + pending == admitted), determinism across a
repeated run, and the policy ordering the architecture promises —
push <= pull <= re-decode on both latency and air time.
"""

from __future__ import annotations

import argparse
import json

from ...sim.city.directory import IdentityDirectory
from .backend import DirectoryBackend
from .replay import synthetic_reads
from .service import TollingService

WINDOW_S = 5.0


def _seeded_directory(n_accounts: int, cfo_spacing_hz: float) -> IdentityDirectory:
    """A directory that already knows every account (ascending-CFO
    seeding keeps the index inserts append-only)."""
    directory = IdentityDirectory(
        tolerance_hz=cfo_spacing_hz / 4.0,
        max_entries=n_accounts,
        max_age_s=1e9,
    )
    for account in range(n_accounts):
        directory.report(
            account, account * cfo_spacing_hz, "seed", "seed", 0.0, 0.0,
            localized=False,
        )
    return directory


def run_policies(
    n_accounts: int, n_crossings: int, seed: int, keep_events: bool = False
) -> dict[str, dict]:
    """One replay per policy (same seed — same stream), summaries keyed
    by policy."""
    cfo_spacing_hz = 200.0
    summaries: dict[str, dict] = {}
    for policy in ("as-sighted", "push", "pull", "redecode"):
        backend = None
        if policy == "pull":
            backend = DirectoryBackend(
                _seeded_directory(n_accounts, cfo_spacing_hz), latency_rounds=5
            )
        service = TollingService(
            policy=policy,
            window_s=WINDOW_S,
            backend=backend,
            keep_events=keep_events,
        )
        for read in synthetic_reads(
            n_accounts,
            n_crossings,
            cfo_spacing_hz=cfo_spacing_hz,
            rng=seed,
        ):
            service.ingest(read)
        summaries[policy] = service.finish()
        service.check_consistent()
    return summaries


def _reference_events(n_accounts: int, n_crossings: int, seed: int) -> int:
    """Independent dedup truth: distinct (tag, zone, window) triples."""
    triples = set()
    for read in synthetic_reads(n_accounts, n_crossings, rng=seed):
        triples.add((read.tag_id, read.zone, int(read.t_s // WINDOW_S)))
    return len(triples)


def _smoke(n_accounts: int, n_crossings: int, seed: int) -> int:
    summaries = run_policies(n_accounts, n_crossings, seed)
    truth = _reference_events(n_accounts, n_crossings, seed)
    failures = []
    for policy, s in summaries.items():
        if s["toll_events"] != truth:
            failures.append(
                f"{policy}: {s['toll_events']} toll events != {truth} reference"
            )
        if s["pending"] != 0:
            failures.append(f"{policy}: {s['pending']} events stuck in flight")
        if s["charged"] + s["unresolved"] != s["toll_events"]:
            failures.append(f"{policy}: event accounting drifted")
        if s["total_charged_cents"] != s["charged"] * 150:
            failures.append(f"{policy}: cents do not match charges")
    curve = {p: summaries[p] for p in ("push", "pull", "redecode")}
    latencies = [curve[p]["mean_latency_s"] for p in ("push", "pull", "redecode")]
    airs = [curve[p]["air_queries_total"] for p in ("push", "pull", "redecode")]
    if not (latencies[0] <= latencies[1] <= latencies[2]):
        failures.append(f"latency curve out of order: {latencies}")
    if not (airs[0] <= airs[1] <= airs[2]):
        failures.append(f"air-time curve out of order: {airs}")
    again = run_policies(n_accounts, n_crossings, seed)
    if json.dumps(again, sort_keys=True) != json.dumps(summaries, sort_keys=True):
        failures.append("replay is not deterministic under a repeated seed")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        "ok: billing plane smoke — "
        f"{summaries['push']['reads']} reads -> {truth} toll events; "
        "latency/air curve push <= pull <= redecode "
        f"(latency_s={[round(v, 4) for v in latencies]}, air={airs})"
    )
    return 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description="billing plane smoke test")
    parser.add_argument("--smoke", action="store_true", help="run the CI smoke")
    parser.add_argument("--accounts", type=int, default=2000)
    parser.add_argument("--crossings", type=int, default=3000)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()
    if args.smoke:
        raise SystemExit(_smoke(args.accounts, args.crossings, args.seed))
    parser.error("nothing to do (pass --smoke)")
