"""The windowed dedup stage: many reads, one toll event per crossing.

A car crossing one gantry is read many times — every pole of the edge
sights it each query round, a pushed entry resolves it before arrival,
a neighbor handoff re-sights it, an overheard-window decode lands late.
Charging per *read* would bill a crossing five times over; the dedup
stage collapses all reads of one ``(tag, zone)`` inside one time window
into a single admitted event.

Windows are fixed ``window_s`` bins of the sim clock
(``index = floor(t / window_s)``): a second read in the same bin is a
duplicate; a read in the next bin is a new crossing (a car genuinely
circling back through the gantry is a new toll). The table is bounded:
entries whose window can no longer receive a duplicate — the stream's
watermark has moved a full window past them — are swept out, amortized,
so memory tracks *concurrent* crossings, not history length.
"""

from __future__ import annotations

from ...errors import ConfigurationError

__all__ = ["TollDedup"]


class TollDedup:
    """Windowed first-read filter over the (tag, zone) sighting stream.

    Relies on the stream being time-ordered, which both feeds
    guarantee: the serial mesh's taps fire in scheduler order and the
    sharded coordinator replays sightings in canonical
    ``(t_s, group, arrival)`` order. A read older than the watermark by
    more than a window would be unjudgeable (its window may have been
    swept) and raises instead of guessing.

    Attributes:
        window_s: dedup window length.
        events: admitted first reads (one per toll event).
        duplicates: reads suppressed as repeats.
        peak_entries: high-water mark of the live table — the number the
            memory gate in ``benchmarks/bench_billing.py`` bounds.
    """

    def __init__(self, window_s: float = 5.0) -> None:
        if window_s <= 0:
            raise ConfigurationError("the dedup window must be positive")
        self.window_s = float(window_s)
        self._live: dict[tuple[int, str], tuple[int, int]] = {}
        self._watermark_s = float("-inf")
        self._next_sweep_s = float("-inf")
        self.events = 0
        self.duplicates = 0
        self.peak_entries = 0

    def admit(self, tag_id: int, zone: str, t_s: float) -> bool:
        """True when this read opens a new toll event; False for a
        duplicate of one already admitted this window."""
        t_s = float(t_s)
        if t_s < self._watermark_s - self.window_s:
            raise ConfigurationError(
                f"read at t={t_s:.3f}s arrived more than a window behind "
                f"the stream watermark ({self._watermark_s:.3f}s) — the "
                "billing stream must be (near) time-ordered"
            )
        self._watermark_s = max(self._watermark_s, t_s)
        if t_s >= self._next_sweep_s:
            self._sweep()
            self._next_sweep_s = t_s + self.window_s
        index = int(t_s // self.window_s)
        key = (int(tag_id), zone)
        entry = self._live.get(key)
        if entry is not None and entry[0] == index:
            self._live[key] = (index, entry[1] + 1)
            self.duplicates += 1
            return False
        self._live[key] = (index, 1)
        self.events += 1
        if len(self._live) > self.peak_entries:
            self.peak_entries = len(self._live)
        return True

    def reads_in_window(self, tag_id: int, zone: str) -> int:
        """How many reads the (tag, zone)'s current window has seen
        (0 once swept or never seen)."""
        entry = self._live.get((int(tag_id), zone))
        return 0 if entry is None else entry[1]

    def _sweep(self) -> None:
        # An entry in window w can only receive duplicates while the
        # clock is inside w; once the watermark is a full window past
        # its end, no admissible read can match it.
        horizon = int((self._watermark_s - self.window_s) // self.window_s)
        stale = [key for key, (index, _) in self._live.items() if index < horizon]
        for key in stale:
            del self._live[key]

    def __len__(self) -> int:
        return len(self._live)

    def summary(self) -> dict:
        """Headline numbers, JSON-friendly."""
        return {
            "window_s": self.window_s,
            "events": self.events,
            "duplicates": self.duplicates,
            "live_entries": len(self._live),
            "peak_entries": self.peak_entries,
        }
