"""The windowed dedup stage: many reads, one toll event per crossing.

A car crossing one gantry is read many times — every pole of the edge
sights it each query round, a pushed entry resolves it before arrival,
a neighbor handoff re-sights it, an overheard-window decode lands late.
Charging per *read* would bill a crossing five times over; the dedup
stage collapses all reads of one ``(tag, zone)`` inside one time window
into a single admitted event.

Windows are fixed ``window_s`` bins of the sim clock
(``index = floor(t / window_s)``): a second read in the same bin is a
duplicate; a read in the next bin is a new crossing (a car genuinely
circling back through the gantry is a new toll). The table is bounded:
entries whose window can no longer receive a duplicate — the stream's
watermark has moved a full window past them — are swept out, amortized,
so memory tracks *concurrent* crossings, not history length.
"""

from __future__ import annotations

from ...errors import ConfigurationError

__all__ = ["TollDedup"]


class TollDedup:
    """Windowed first-read filter over the (tag, zone) sighting stream.

    Relies on the *delivery* stream being time-ordered, which every
    feed guarantees: the serial mesh's taps fire in scheduler order,
    the sharded coordinator replays sightings in canonical
    ``(t_s, group, arrival)`` order, and a batched backhaul link
    applies its batches in delivery order. Emit times inside those
    deliveries may lag: the watermark tracks delivery time, and a read
    *emitted* more than ``window_s + max_lag_s`` behind it would be
    unjudgeable (its window may have been swept) and raises instead of
    guessing — out-of-order batches are rejected loudly, never
    silently double-charged.

    Attributes:
        window_s: dedup window length (over *emit* time — a crossing
            is a crossing whenever billing hears of it).
        max_lag_s: how far an emit time may trail the delivery
            watermark beyond one window before the stream is declared
            out of contract. 0 (the default) is the wired behavior:
            delivery is emission. A batched feed must cover its
            worst-case sync lag (including the final convergence
            flush), trading sweep memory for tolerance — entries now
            live ``max_lag_s`` longer.
        events: admitted first reads (one per toll event).
        duplicates: reads suppressed as repeats.
        peak_entries: high-water mark of the live table — the number the
            memory gate in ``benchmarks/bench_billing.py`` bounds.
    """

    def __init__(self, window_s: float = 5.0, max_lag_s: float = 0.0) -> None:
        if window_s <= 0:
            raise ConfigurationError("the dedup window must be positive")
        if max_lag_s < 0:
            raise ConfigurationError("max_lag_s cannot be negative")
        self.window_s = float(window_s)
        self.max_lag_s = float(max_lag_s)
        # Per (tag, zone): every un-swept window index -> read count.
        # Remembering *all* windows inside the sweep horizon (not just
        # the latest) is what keeps a reordered batch from re-opening a
        # window that already billed; on an ordered wired stream each
        # key holds exactly one window, as before.
        self._live: dict[tuple[int, str], dict[int, int]] = {}
        self._watermark_s = float("-inf")
        self._next_sweep_s = float("-inf")
        self.events = 0
        self.duplicates = 0
        self.peak_entries = 0

    def admit(
        self,
        tag_id: int,
        zone: str,
        t_s: float,
        delivered_s: float | None = None,
    ) -> bool:
        """True when this read opens a new toll event; False for a
        duplicate of one already admitted this window.

        ``t_s`` is the *emit* time (when the car crossed — the dedup
        window key); ``delivered_s`` is when the read reached billing
        (None: delivered at emission, the wired case). The split is
        load-bearing under batched backhaul: a legitimately late
        delivery of an on-time crossing must be admitted (its window
        is judged by emit time), while a crossing emitted beyond the
        sweep guarantee is rejected loudly.
        """
        t_s = float(t_s)
        delivered = t_s if delivered_s is None else float(delivered_s)
        if delivered < t_s:
            raise ConfigurationError(
                f"read emitted at t={t_s:.3f}s delivered at "
                f"{delivered:.3f}s — delivery cannot precede emission"
            )
        if t_s < self._watermark_s - self.window_s - self.max_lag_s:
            raise ConfigurationError(
                f"read emitted at t={t_s:.3f}s arrived more than a window "
                f"(+{self.max_lag_s:.3f}s lag allowance) behind the "
                f"delivery watermark ({self._watermark_s:.3f}s) — its dedup "
                "window may already be swept, so admitting it could "
                "double-charge; raise max_lag_s to cover the feed's "
                "worst-case sync lag"
            )
        self._watermark_s = max(self._watermark_s, delivered)
        if delivered >= self._next_sweep_s:
            self._sweep()
            self._next_sweep_s = delivered + self.window_s
        index = int(t_s // self.window_s)
        key = (int(tag_id), zone)
        windows = self._live.get(key)
        if windows is not None and index in windows:
            windows[index] += 1
            self.duplicates += 1
            return False
        self._live.setdefault(key, {})[index] = 1
        self.events += 1
        if len(self._live) > self.peak_entries:
            self.peak_entries = len(self._live)
        return True

    def reads_in_window(self, tag_id: int, zone: str) -> int:
        """How many reads the (tag, zone)'s latest live window has seen
        (0 once swept or never seen)."""
        windows = self._live.get((int(tag_id), zone))
        return 0 if not windows else windows[max(windows)]

    def _sweep(self) -> None:
        # An entry in window w can only receive duplicates while
        # admissible emit times can still land inside w; once the
        # delivery watermark is a full window (plus the lag allowance)
        # past its end, no admissible read can match it.
        horizon = int(
            (self._watermark_s - self.window_s - self.max_lag_s) // self.window_s
        )
        stale = []
        for key, windows in self._live.items():
            done = [index for index in windows if index < horizon]
            for index in done:
                del windows[index]
            if not windows:
                stale.append(key)
        for key in stale:
            del self._live[key]

    def __len__(self) -> int:
        return len(self._live)

    def summary(self) -> dict:
        """Headline numbers, JSON-friendly."""
        return {
            "window_s": self.window_s,
            "events": self.events,
            "duplicates": self.duplicates,
            "live_entries": len(self._live),
            "peak_entries": self.peak_entries,
        }
