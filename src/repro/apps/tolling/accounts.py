"""The sharded account store toll charges post against.

A city deployment bills against an account population far larger than
any working set a service instance should hold hot: a million
registered transponders, of which only the cars on the road this minute
have live activity. The store therefore keeps **active** account rows
(balance, charge count, last charge time) sharded by account id, and
**settles** cold rows into per-shard aggregates when a shard outgrows
its bound — the row's money moves into ``settled_cents``; the account's
next charge simply re-opens a fresh row.

Money is integer cents throughout, so conservation is exact and
checkable at any instant: every cent ever charged is either in an
active row or in a shard's settled aggregate —
:meth:`ShardedAccountStore.check_consistent` asserts precisely that,
and the nightly billing bench gates on it at the end of a
million-account replay.
"""

from __future__ import annotations

from ...errors import ConfigurationError

__all__ = ["ShardedAccountStore"]


class _Shard:
    """One shard: active rows plus the settled aggregate they drain to."""

    __slots__ = ("rows", "settled_cents", "settled_charges", "settled_rows")

    def __init__(self) -> None:
        # account id -> [balance_cents, n_charges, last_charge_s]
        self.rows: dict[int, list] = {}
        self.settled_cents = 0
        self.settled_charges = 0
        self.settled_rows = 0


class ShardedAccountStore:
    """Bounded, sharded ledger of toll charges.

    Attributes:
        n_shards: how many shards the id space hashes across.
        max_active_per_shard: active-row bound per shard; exceeding it
            settles the coldest half (by last charge time) into the
            shard's aggregate — amortized, so the hot path stays O(1).
        total_charged_cents: every cent ever posted (active + settled).
        peak_active: high-water mark of active rows across all shards —
            the number the bench's memory gate bounds.
    """

    def __init__(self, n_shards: int = 16, max_active_per_shard: int = 65536) -> None:
        if n_shards < 1:
            raise ConfigurationError("need at least one shard")
        if max_active_per_shard < 2:
            raise ConfigurationError("a shard must hold at least two rows")
        self.n_shards = int(n_shards)
        self.max_active_per_shard = int(max_active_per_shard)
        self._shards = [_Shard() for _ in range(self.n_shards)]
        self.total_charged_cents = 0
        self.total_charges = 0
        self.evictions = 0
        self.peak_active = 0
        self._active = 0

    def _shard_of(self, account_id: int) -> _Shard:
        return self._shards[int(account_id) % self.n_shards]

    def charge(self, account_id: int, amount_cents: int, t_s: float) -> int:
        """Post a charge; returns the account's new active balance."""
        amount_cents = int(amount_cents)
        if amount_cents < 0:
            raise ConfigurationError("charges are non-negative")
        shard = self._shard_of(account_id)
        row = shard.rows.get(int(account_id))
        if row is None:
            row = [0, 0, float(t_s)]
            shard.rows[int(account_id)] = row
            self._active += 1
            if self._active > self.peak_active:
                self.peak_active = self._active
        row[0] += amount_cents
        row[1] += 1
        row[2] = max(row[2], float(t_s))
        self.total_charged_cents += amount_cents
        self.total_charges += 1
        if len(shard.rows) > self.max_active_per_shard:
            self._settle_coldest(shard)
        return row[0]

    def _settle_coldest(self, shard: _Shard) -> None:
        # Settling half the shard keeps the resize amortized: the next
        # overflow is at least max_active_per_shard/2 charges away.
        victims = sorted(shard.rows.items(), key=lambda item: (item[1][2], item[0]))
        for account_id, row in victims[: len(victims) // 2]:
            shard.settled_cents += row[0]
            shard.settled_charges += row[1]
            shard.settled_rows += 1
            del shard.rows[account_id]
            self._active -= 1
            self.evictions += 1

    def balance_cents(self, account_id: int) -> int | None:
        """The account's *active* balance (None once settled/never seen)."""
        row = self._shard_of(account_id).rows.get(int(account_id))
        return None if row is None else row[0]

    @property
    def active_rows(self) -> int:
        return self._active

    def check_consistent(self) -> None:
        """Exact conservation: charged == active + settled, to the cent.

        Raises :class:`~repro.errors.ConfigurationError` on violation —
        a cent lost (or minted) by eviction is a billing bug, not a
        rounding artifact.
        """
        active_cents = sum(
            row[0] for shard in self._shards for row in shard.rows.values()
        )
        settled_cents = sum(shard.settled_cents for shard in self._shards)
        if active_cents + settled_cents != self.total_charged_cents:
            raise ConfigurationError(
                f"conservation violated: {active_cents} active + "
                f"{settled_cents} settled != {self.total_charged_cents} charged"
            )
        active_charges = sum(
            row[1] for shard in self._shards for row in shard.rows.values()
        )
        settled_charges = sum(shard.settled_charges for shard in self._shards)
        if active_charges + settled_charges != self.total_charges:
            raise ConfigurationError(
                f"charge-count conservation violated: {active_charges} + "
                f"{settled_charges} != {self.total_charges}"
            )
        n_rows = sum(len(shard.rows) for shard in self._shards)
        if n_rows != self._active:
            raise ConfigurationError(
                f"active-row counter drifted: {n_rows} rows, "
                f"counter says {self._active}"
            )

    def summary(self) -> dict:
        """Headline numbers, JSON-friendly."""
        return {
            "n_shards": self.n_shards,
            "active_rows": self._active,
            "peak_active": self.peak_active,
            "settled_rows": sum(s.settled_rows for s in self._shards),
            "evictions": self.evictions,
            "total_charges": self.total_charges,
            "total_charged_cents": self.total_charged_cents,
        }
