"""Seeded synthetic sighting replays — load without a radio.

A simulated radio tops out at thousands of cars; the billing plane has
to be credible at a *million accounts*. This module mints the sighting
stream directly: seeded, time-ordered
:class:`~repro.apps.tolling.events.TollRead` records whose shape
matches what a real mesh tap emits — crossings arrive as a Poisson
process, each crossing is read several times within a second or two
(the gantry's poles, a push consumption, a handoff, a late overheard
decode), and each read carries a provenance kind drawn from a plausible
mix. No waveform is synthesized and no clock but the sim clock exists,
so a replay of ten million reads is minutes, not days — and the same
seed is the same stream, byte for byte.
"""

from __future__ import annotations

import numpy as np

from ...errors import ConfigurationError
from ...utils import as_rng
from .events import TollRead

__all__ = ["synthetic_reads", "KIND_MIX"]

#: Provenance mix for duplicate reads of one crossing, roughly what a
#: push-policy mesh run produces: most reads are own-cache re-sightings,
#: the first read of a fresh car is a decode, pushes and handoffs cover
#: corridor boundaries, and the odd redecode marks a handoff the
#: machinery missed.
KIND_MIX = (
    ("own", 0.55),
    ("push", 0.15),
    ("handoff", 0.12),
    ("decode", 0.12),
    ("redecode", 0.06),
)


def synthetic_reads(
    n_accounts: int,
    n_crossings: int,
    *,
    n_zones: int = 8,
    rate_per_s: float = 50.0,
    reads_per_crossing: int = 4,
    crossing_spread_s: float = 1.5,
    decode_queries_range: tuple[int, int] = (4, 24),
    cfo_spacing_hz: float = 200.0,
    rng=None,
):
    """Yield time-ordered :class:`TollRead` records for a synthetic city.

    Args:
        n_accounts: account-id population crossings draw from
            (uniformly — every account is somebody's car).
        n_crossings: how many gantry crossings to generate.
        n_zones: toll zones (edges) the crossings spread over.
        rate_per_s: city-wide crossing arrival rate (Poisson).
        reads_per_crossing: mean duplicate reads per crossing (>= 1;
            actual counts are 1 + Poisson(mean - 1)).
        crossing_spread_s: duplicate reads land within this span after
            the first read. Keep it below the consumer's dedup window
            or boundary-straddling crossings will (correctly) double.
        decode_queries_range: inclusive bounds for a decode-kind read's
            query count.
        cfo_spacing_hz: account k's fingerprint is ``k * spacing`` —
            distinct by construction, as §5 measures for real cars.
        rng: seed or ``numpy`` Generator (see
            :func:`repro.utils.as_rng`).

    Yields:
        :class:`TollRead`, nondecreasing in ``t_s``.
    """
    if n_accounts < 1 or n_crossings < 0:
        raise ConfigurationError("need accounts and a non-negative crossing count")
    if reads_per_crossing < 1:
        raise ConfigurationError("a crossing is read at least once")
    rng = as_rng(rng)
    kinds = np.array([k for k, _ in KIND_MIX])
    kind_p = np.array([p for _, p in KIND_MIX])
    kind_p = kind_p / kind_p.sum()
    lo_q, hi_q = decode_queries_range

    # Vectorized draw, then one global time sort: crossings overlap, so
    # reads interleave across crossings exactly as a mesh's do.
    starts = np.cumsum(rng.exponential(1.0 / rate_per_s, size=n_crossings))
    accounts = rng.integers(0, n_accounts, size=n_crossings)
    zones = rng.integers(0, n_zones, size=n_crossings)
    n_reads = 1 + rng.poisson(reads_per_crossing - 1.0, size=n_crossings)

    total = int(n_reads.sum())
    crossing_of = np.repeat(np.arange(n_crossings), n_reads)
    offsets = rng.uniform(0.0, crossing_spread_s, size=total)
    # The first read of each crossing is at its start proper.
    first = np.cumsum(n_reads) - n_reads
    offsets[first] = 0.0
    t_read = starts[crossing_of] + offsets
    read_kind = rng.choice(len(kinds), size=total, p=kind_p)
    # First reads of fresh spikes skew toward decode; keep it simple:
    # the first read keeps its drawn kind, which the mix already covers.
    read_queries = rng.integers(lo_q, hi_q + 1, size=total)
    pole = rng.integers(0, 3, size=total)

    order = np.argsort(t_read, kind="stable")
    zone_names = [f"edge-{z}" for z in range(n_zones)]
    for i in order:
        crossing = int(crossing_of[i])
        account = int(accounts[crossing])
        kind = str(kinds[read_kind[i]])
        zone = zone_names[int(zones[crossing])]
        yield TollRead(
            t_s=float(t_read[i]),
            zone=zone,
            station=f"{zone}/pole-{int(pole[i])}",
            tag_id=account,
            cfo_hz=account * cfo_spacing_hz,
            x_m=float(40.0 * int(pole[i])),
            localized=False,
            kind=kind,
            n_queries=int(read_queries[i]) if kind in ("decode", "redecode") else 0,
        )
