"""The latency-modeled backend link to the identity directory.

The :class:`~repro.sim.city.directory.IdentityDirectory` itself answers
instantly — it is a data structure. A *deployed* directory is a backend
service on the other side of a link: a pole (or the billing plane)
submitting a fingerprint resolution gets the answer ``k`` backend
rounds later. That latency is the whole trade the paper's handoff
machinery navigates — push plants identity *ahead* of the car (zero
lookup latency, zero air time), pull pays the round trip, blind
re-decode pays air time instead — and modeling it is what turns the
three policies into measured points on one curve.

The model is deliberately simple and deterministic: a FIFO of pending
resolutions, each ready ``latency_rounds * round_s`` after submission,
resolved against the directory *at delivery time* (the answer reflects
directory state when the backend got around to it, not when the
question was asked — exactly how a real queue behaves).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ...errors import ConfigurationError

__all__ = ["BackendAnswer", "DirectoryBackend"]


@dataclass(frozen=True)
class BackendAnswer:
    """One completed resolution, delivered ``ready_s - submitted_s`` late.

    ``token`` is the caller's correlation handle, returned verbatim —
    the billing plane passes the pending toll event's key through it.
    """

    account_id: int | None
    cfo_hz: float
    submitted_s: float
    ready_s: float
    token: object = None


class DirectoryBackend:
    """FIFO resolve queue in front of an identity directory.

    Attributes:
        directory: anything with ``resolve(cfo_hz, now_s) -> int | None``
            (an :class:`~repro.sim.city.directory.IdentityDirectory`).
        latency_rounds: scheduler rounds between submit and answer.
        round_s: length of one backend round.
    """

    def __init__(self, directory, latency_rounds: int = 5, round_s: float = 1e-3):
        if latency_rounds < 0:
            raise ConfigurationError("backend latency cannot be negative")
        if round_s <= 0:
            raise ConfigurationError("the backend round must be positive")
        self.directory = directory
        self.latency_rounds = int(latency_rounds)
        self.round_s = float(round_s)
        self._pending: deque[tuple[float, float, float, object]] = deque()
        self.submitted = 0
        self.delivered = 0

    @property
    def latency_s(self) -> float:
        """The link's round trip: submit -> answer."""
        return self.latency_rounds * self.round_s

    def submit(self, cfo_hz: float, t_s: float, token: object = None) -> float:
        """Queue one resolution; returns when its answer will be ready."""
        ready_s = float(t_s) + self.latency_s
        self._pending.append((ready_s, float(cfo_hz), float(t_s), token))
        self.submitted += 1
        return ready_s

    def drain(self, now_s: float) -> list[BackendAnswer]:
        """Deliver every answer that is ready by ``now_s``, in FIFO
        order (submissions are time-ordered, so the FIFO is too)."""
        answers = []
        while self._pending and self._pending[0][0] <= now_s:
            ready_s, cfo_hz, submitted_s, token = self._pending.popleft()
            account_id = self.directory.resolve(cfo_hz, now_s=ready_s)
            answers.append(
                BackendAnswer(account_id, cfo_hz, submitted_s, ready_s, token)
            )
            self.delivered += 1
        return answers

    def report(
        self,
        tag_id: int,
        cfo_hz: float,
        station: str,
        zone: str,
        x_m: float,
        t_s: float,
        localized: bool = False,
    ) -> None:
        """Ride a recovered identity back to the directory over this
        link (e.g. a pull-miss fallback decode) — the one sanctioned
        path for billing-plane writes; the ``backhaul-policy`` analyzer
        rule keeps callers from reaching around it. The answer channel
        carries it in the same round, so it applies at ``t_s``. A plain
        account-store directory (no ``report``) absorbs it silently."""
        directory = self.directory
        if hasattr(directory, "report"):
            directory.report(
                tag_id, cfo_hz, station, zone, x_m, t_s, localized=localized
            )

    def flush(self) -> list[BackendAnswer]:
        """End of run: deliver everything still in flight."""
        if not self._pending:
            return []
        return self.drain(self._pending[-1][0])

    @property
    def pending(self) -> int:
        return len(self._pending)
