"""Billing-plane records: raw reads in, deduplicated toll events out."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TollRead", "TollEvent"]

#: Charge lifecycle states. A toll event is born CHARGED under the
#: immediate policies (push / re-decode / as-sighted), or PENDING under
#: directory pull — the backend's answer arrives k rounds later and
#: either charges it or, when even the directory has no account for the
#: fingerprint, marks it UNRESOLVED after the fallback decode's account
#: recovery is charged instead.
CHARGED = "charged"
PENDING = "pending"
UNRESOLVED = "unresolved"


@dataclass(frozen=True)
class TollRead:
    """One raw sighting as the billing plane receives it from the mesh.

    Field-for-field the sighting-tap payload (see
    ``CityMesh.add_sighting_tap``): names, not objects, so a read can
    cross a process boundary and a synthetic replay can mint them
    without a radio.

    Attributes:
        t_s: sim time of the read.
        zone: toll zone name — the mesh edge (one gantry) it happened
            on.
        station: reader pole that resolved the spike.
        tag_id: the radio identity (decoded account id, §8).
        cfo_hz: the CFO fingerprint the spike carried.
        x_m: along-city coordinate (§6 fix, or pole stand-in).
        localized: whether ``x_m`` is a real §6 fix.
        kind: resolution provenance — a
            :mod:`~repro.sim.city.handoff` kind (``own`` / ``push`` /
            ``handoff`` / ``decode`` / ``redecode``).
        n_queries: decode queries this read itself put on the air
            (zero for cache hits).
        delivered_s: when the read reached the billing plane, for reads
            that rode a batched backhaul link (see
            :mod:`repro.sim.city.backhaul`); None means delivered at
            ``t_s`` (wired). Dedup windows key on the emit time ``t_s``
            (the crossing), while watermarks, sweeps and charge
            latency run on delivery time (when billing could act).
    """

    t_s: float
    zone: str
    station: str
    tag_id: int
    cfo_hz: float
    x_m: float = 0.0
    localized: bool = False
    kind: str = "own"
    n_queries: int = 0
    delivered_s: float | None = None


@dataclass
class TollEvent:
    """One deduplicated crossing: the unit that gets charged.

    Attributes:
        tag_id: radio identity of the crossing car.
        zone: the gantry's toll zone.
        window_index: dedup window ordinal (``floor(t / window_s)``).
        first_read_s: when the zone first read the car this window.
        kind: provenance of that first read.
        n_reads: how many raw reads the window collapsed into this one
            event (own/push/handoff/decode mixed).
        account_id: the account the charge posted to, once resolved.
        amount_cents: the toll posted (integer cents — conservation is
            checked exactly, never to within float epsilon).
        air_queries: decode queries identification cost *under the
            service's policy* (0 for push, backend-miss fallback for
            pull, a full burst for blind re-decode).
        latency_s: first read -> charge posted. The curve the policies
            are compared on.
        charged_s: sim time the charge posted (None while pending).
        status: ``charged`` / ``pending`` / ``unresolved``.
    """

    tag_id: int
    zone: str
    window_index: int
    first_read_s: float
    kind: str
    n_reads: int = 1
    account_id: int | None = None
    amount_cents: int = 0
    air_queries: int = 0
    latency_s: float = 0.0
    charged_s: float | None = None
    status: str = PENDING
