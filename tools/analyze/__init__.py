"""`repro-analyze`: domain-aware static analysis for the Caraoke repo.

The repo's hardest-won guarantees — seeded end-to-end determinism,
bit-for-bit ablation pins, unit-suffixed arithmetic — are enforced at
runtime by regression tests, which catch violations only after they
ship. This package moves that enforcement to the tool layer: a small
AST-based framework (`python -m tools.analyze`, `make analyze`) with a
registry of domain-aware checkers:

* ``determinism``   — unseeded RNG construction, legacy ``np.random``
  global state, stdlib ``random``, wall-clock reads in library code,
  and RNG *stream-discipline* violations (a function that accepts an
  ``rng`` parameter but mints a fresh generator internally).
* ``unit-suffix``   — propagates the ``_s``/``_hz``/``_m``/``_mps``/
  ``_db`` naming convention through assignments, ``+``/``-``,
  comparisons, and keyword arguments, flagging cross-unit mixing.
* ``rng-policy``    — every ``rng`` field/attribute must be routed
  through :func:`repro.utils.as_rng` (or spawned from a parent stream).
* ``ablation-api``  — public callables exposing ``combining`` /
  ``opportunistic`` / ``scheduling`` / ``handoff`` must document the
  allowed values; the deprecated ``antenna_index`` keyword is flagged.
* ``unused-import`` — the original ``tools/lint.py`` pass, registered
  as the first checker.

Findings can be suppressed per line with ``# repro: allow[<rule>]``
(with a justification after the closing bracket), or grandfathered in
the tracked baseline file ``tools/analyze/baseline.json``. See
``docs/ANALYSIS.md`` for the full workflow.
"""

from __future__ import annotations

from .core import (
    Checker,
    Finding,
    ModuleInfo,
    all_checkers,
    get_checker,
    load_baseline,
    register,
    run_analysis,
)

# Importing the checkers package populates the registry as a side effect.
from . import checkers  # noqa: F401  (registration import)

__all__ = [
    "Checker",
    "Finding",
    "ModuleInfo",
    "all_checkers",
    "get_checker",
    "load_baseline",
    "register",
    "run_analysis",
]
