"""CLI for the static analysis suite: ``python -m tools.analyze [paths...]``.

Exit status: 0 when no unbaselined findings, 1 when findings remain,
2 on usage errors. ``--json`` writes the machine-readable report CI
uploads as an artifact; ``--update-baseline`` grandfathers the current
findings into ``tools/analyze/baseline.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from . import all_checkers
from .core import (
    DEFAULT_BASELINE,
    DEFAULT_PATHS,
    REPO_ROOT,
    load_baseline,
    run_analysis,
    write_baseline,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.analyze",
        description="Domain-aware static analysis for the Caraoke repro "
        "(determinism, unit suffixes, RNG policy, ablation API, unused imports).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files/directories to analyze (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated subset of rules to run (default: all registered)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="write the machine-readable findings report to FILE ('-' for stdout)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=str(DEFAULT_BASELINE),
        help="baseline file of grandfathered findings (default: %(default)s)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report every finding as new",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--show-baselined",
        action="store_true",
        help="also print findings suppressed by the baseline",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, checker in sorted(all_checkers().items()):
            print(f"{name:15s} {checker.description}")
        return 0

    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = set(rules) - set(all_checkers())
        if unknown:
            print(f"unknown rule(s): {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2

    raw_paths = args.paths or [str(REPO_ROOT / p) for p in DEFAULT_PATHS]
    paths = []
    for raw in raw_paths:
        path = Path(raw)
        if not path.is_absolute():
            path = (REPO_ROOT / path) if (REPO_ROOT / path).exists() else path.resolve()
        if not path.exists():
            print(f"no such path: {raw}", file=sys.stderr)
            return 2
        paths.append(path)

    baseline_path = Path(args.baseline)
    baseline = set() if args.no_baseline else load_baseline(baseline_path)
    report = run_analysis(paths, rules=rules, baseline=baseline)

    if args.update_baseline:
        write_baseline(report.all_findings, baseline_path)
        print(
            f"baseline updated: {len(report.all_findings)} finding(s) -> "
            f"{baseline_path}"
        )
        return 0

    if args.json:
        payload = json.dumps(report.to_json(), indent=2) + "\n"
        if args.json == "-":
            sys.stdout.write(payload)
        else:
            out = Path(args.json)
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(payload)

    for error in report.parse_errors:
        print(f"parse error: {error}", file=sys.stderr)
    for finding in report.new:
        print(finding.render())
    if args.show_baselined:
        for finding in report.baselined:
            print(f"{finding.render()}  [baselined]")

    if report.new:
        print(
            f"\nanalyze: {len(report.new)} finding(s) "
            f"({len(report.baselined)} baselined) across "
            f"{report.files_checked} files"
        )
        return 1
    suffix = f", {len(report.baselined)} baselined" if report.baselined else ""
    print(f"analyze: ok ({report.files_checked} files{suffix})")
    return 1 if report.parse_errors else 0


if __name__ == "__main__":
    sys.exit(main())
