"""Framework plumbing: findings, checker registry, pragmas, baseline, runner.

A checker is a class with a ``name``, a ``description``, and a
``check(module)`` method yielding :class:`Finding`s. Checkers register
themselves with the :func:`register` decorator; the CLI discovers them
through the registry, so adding a rule is one new module under
``tools/analyze/checkers/`` plus an import in that package's
``__init__``.

Suppression happens at two layers:

* **Pragmas** — ``# repro: allow[rule]`` (or ``allow[rule-a,rule-b]``)
  on the offending line, or on a comment-only line immediately above
  it, silences those rules for that line. Anything after the closing
  bracket is the human justification and is encouraged.
* **Baseline** — ``tools/analyze/baseline.json`` holds grandfathered
  findings keyed by ``(rule, path, message)`` (line numbers are
  deliberately excluded so unrelated edits don't churn the file).
  Baselined findings are reported as such but don't fail the run;
  ``--update-baseline`` rewrites the file from the current findings.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"

#: Directories analyzed when the CLI gets no explicit paths. ``tools``
#: rides along so the analyzer keeps itself honest (lint.py always
#: covered it).
DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples", "tools")

_PRAGMA = re.compile(r"#\s*repro:\s*allow\[([a-z0-9_,\s-]+)\]", re.I)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific site."""

    rule: str
    path: str  # repo-relative, posix separators
    line: int
    message: str

    def key(self) -> tuple[str, str, str]:
        """Baseline identity: stable across line-number drift."""
        return (self.rule, self.path, self.message)

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


class ModuleInfo:
    """One parsed source file plus the pragma map checkers consult."""

    def __init__(self, path: Path, rel_path: str, source: str):
        self.path = path
        self.rel_path = rel_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=rel_path)
        self._allow: dict[int, set[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _PRAGMA.search(line)
            if not match:
                continue
            rules = {r.strip().lower() for r in match.group(1).split(",") if r.strip()}
            self._allow.setdefault(lineno, set()).update(rules)
            # A comment-only pragma line covers the next line of code.
            if line.split("#", 1)[0].strip() == "":
                self._allow.setdefault(lineno + 1, set()).update(rules)

    def allowed(self, line: int, rule: str) -> bool:
        rules = self._allow.get(line)
        return bool(rules) and (rule in rules or "*" in rules)

    def in_library(self) -> bool:
        """Whether this file is library code (``src/repro``)."""
        return self.rel_path.startswith("src/")

    def finding(self, rule: str, node_or_line, message: str) -> Finding:
        line = getattr(node_or_line, "lineno", node_or_line)
        return Finding(rule=rule, path=self.rel_path, line=int(line), message=message)


class Checker:
    """Base class: subclass, set ``name``/``description``, implement ``check``."""

    name: str = ""
    description: str = ""

    def check(self, module: ModuleInfo) -> Iterable[Finding]:  # pragma: no cover
        raise NotImplementedError


_REGISTRY: dict[str, Checker] = {}


def register(cls: type[Checker]) -> type[Checker]:
    """Class decorator adding a checker instance to the registry."""
    if not cls.name:
        raise ValueError(f"checker {cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate checker name {cls.name!r}")
    _REGISTRY[cls.name] = cls()
    return cls


def all_checkers() -> dict[str, Checker]:
    return dict(_REGISTRY)


def get_checker(name: str) -> Checker:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown rule {name!r} (known: {known})") from None


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            yield path
        elif path.is_dir():
            yield from sorted(path.rglob("*.py"))


def load_baseline(path: Path = DEFAULT_BASELINE) -> set[tuple[str, str, str]]:
    if not path.exists():
        return set()
    data = json.loads(path.read_text())
    return {
        (entry["rule"], entry["path"], entry["message"])
        for entry in data.get("findings", [])
    }


def write_baseline(findings: list[Finding], path: Path = DEFAULT_BASELINE) -> None:
    entries = [
        {"rule": rule, "path": rel_path, "message": message}
        for rule, rel_path, message in sorted(
            {f.key() for f in findings}, key=lambda k: (k[1], k[0], k[2])
        )
    ]
    payload = {
        "comment": (
            "Grandfathered repro-analyze findings. Entries are keyed by "
            "(rule, path, message) so line drift does not churn this file. "
            "Shrink it when you can; `python -m tools.analyze --update-baseline` "
            "rewrites it from the current tree."
        ),
        "findings": entries,
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True, ensure_ascii=False) + "\n"
    )


@dataclass
class AnalysisReport:
    """Everything one run produced, split by baseline status."""

    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: list[str] = field(default_factory=list)

    @property
    def all_findings(self) -> list[Finding]:
        return self.new + self.baselined

    def to_json(self) -> dict:
        counts: dict[str, int] = {}
        for finding in self.new:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return {
            "files_checked": self.files_checked,
            "parse_errors": self.parse_errors,
            "counts_by_rule": counts,
            "findings": [f.to_json() for f in sorted(self.new, key=Finding.key)],
            "baselined": [f.to_json() for f in sorted(self.baselined, key=Finding.key)],
        }


def run_analysis(
    paths: Iterable[Path],
    rules: Iterable[str] | None = None,
    baseline: set[tuple[str, str, str]] | None = None,
    *,
    on_module: Callable[[ModuleInfo], None] | None = None,
) -> AnalysisReport:
    """Run the selected checkers over every ``.py`` file under ``paths``."""
    checkers = (
        list(all_checkers().values())
        if rules is None
        else [get_checker(name) for name in rules]
    )
    baseline = baseline or set()
    report = AnalysisReport()
    for file_path in iter_python_files(paths):
        try:
            rel = file_path.resolve().relative_to(REPO_ROOT).as_posix()
        except ValueError:
            rel = file_path.as_posix()
        try:
            module = ModuleInfo(file_path, rel, file_path.read_text())
        except (SyntaxError, UnicodeDecodeError) as exc:
            report.parse_errors.append(f"{rel}: {exc}")
            continue
        report.files_checked += 1
        if on_module is not None:
            on_module(module)
        for checker in checkers:
            for finding in checker.check(module):
                if module.allowed(finding.line, finding.rule):
                    continue
                if finding.key() in baseline:
                    report.baselined.append(finding)
                else:
                    report.new.append(finding)
    report.new.sort(key=lambda f: (f.path, f.line, f.rule))
    report.baselined.sort(key=lambda f: (f.path, f.line, f.rule))
    return report
