"""``unit-suffix``: propagate the repo's unit-suffix naming through expressions.

Quantities in this codebase carry their unit in the identifier —
``duration_s``, ``carrier_hz``, ``range_m``, ``speed_mps``,
``snr_db`` — which makes a whole class of physics bugs *visible in the
AST*: adding metres to seconds, comparing Hz against kHz, or passing a
``*_s`` value to a ``*_hz`` keyword are all cross-unit mixes that the
checker flags without any type inference. Multiplication and division
legitimately change units (``x_m / t_s`` is a speed), so only unit-
preserving operations are checked:

* ``+`` / ``-`` (and ``+=`` / ``-=``) between differently-suffixed names,
* ordering/equality comparisons between differently-suffixed names,
* keyword arguments: ``f(foo_hz=bar_s)``,
* plain aliasing assignments: ``x_hz = y_s``.

Same-dimension, different-scale pairs (``_s`` vs ``_ms``, ``_hz`` vs
``_khz``) are deliberately *also* flagged: mixing them is exactly the
missing-conversion bug the convention exists to prevent.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..core import Checker, Finding, ModuleInfo, register

#: Trailing two-token unit suffixes, checked before the single-token map
#: (``speed_m_s`` is a speed, not seconds).
_MULTI = {
    ("m", "s"): "m/s",
    ("m", "s2"): "m/s^2",
    ("per", "s"): "1/s",
    ("per", "m"): "1/m",
}

_SINGLE = {
    "s": "s",
    "ms": "ms",
    "us": "us",
    "ns": "ns",
    "hz": "Hz",
    "khz": "kHz",
    "mhz": "MHz",
    "ghz": "GHz",
    "m": "m",
    "km": "km",
    "cm": "cm",
    "mm": "mm",
    "mps": "m/s",
    "kph": "km/h",
    "mph": "mi/h",
    "db": "dB",
    "dbm": "dBm",
    "dbi": "dBi",
    "w": "W",
    "mw": "mW",
    "ppm": "ppm",
}


def unit_of_name(identifier: str) -> str | None:
    """The unit a suffixed identifier declares, or None."""
    tokens = [t for t in identifier.lower().split("_") if t]
    if len(tokens) < 2:
        return None
    if len(tokens) >= 3 and (tokens[-2], tokens[-1]) in _MULTI:
        return _MULTI[(tokens[-2], tokens[-1])]
    return _SINGLE.get(tokens[-1])


def _identifier(node: ast.expr) -> str | None:
    """The final identifier of a Name/Attribute (through subscripts), or None."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _unit(node: ast.expr) -> tuple[str, str] | None:
    """(identifier, unit) when the expression is a unit-suffixed reference."""
    ident = _identifier(node)
    if ident is None:
        return None
    unit = unit_of_name(ident)
    if unit is None:
        return None
    return ident, unit


_ORDERED_CMP = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


@register
class UnitSuffixChecker(Checker):
    name = "unit-suffix"
    description = (
        "cross-unit mixing between _s/_hz/_m/_mps/_db-suffixed names in "
        "add/sub, comparisons, keyword args and aliasing assignments"
    )

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
                yield from self._pair(
                    module, node, node.left, node.right,
                    "adds" if isinstance(node.op, ast.Add) else "subtracts",
                )
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                yield from self._pair(
                    module, node, node.target, node.value, "accumulates"
                )
            elif isinstance(node, ast.Compare):
                left = node.left
                for op, comparator in zip(node.ops, node.comparators):
                    if isinstance(op, _ORDERED_CMP):
                        yield from self._pair(
                            module, node, left, comparator, "compares"
                        )
                    left = comparator
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg is None:
                        continue
                    param_unit = unit_of_name(kw.arg)
                    value = _unit(kw.value)
                    if param_unit and value and value[1] != param_unit:
                        ident, unit = value
                        yield module.finding(
                            self.name,
                            kw.value,
                            f"passes `{ident}` ({unit}) to parameter "
                            f"`{kw.arg}` ({param_unit})",
                        )
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                yield from self._alias(module, node, node.targets[0], node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                yield from self._alias(module, node, node.target, node.value)

    def _pair(self, module, node, left, right, verb):
        a, b = _unit(left), _unit(right)
        if a and b and a[1] != b[1]:
            yield module.finding(
                self.name,
                node,
                f"{verb} `{a[0]}` ({a[1]}) and `{b[0]}` ({b[1]}) — "
                "cross-unit arithmetic needs an explicit conversion",
            )

    def _alias(self, module, node, target, value):
        # Only pure aliasing (`x_hz = y_s`) is checked: any arithmetic on
        # the right-hand side may legitimately convert units.
        if not isinstance(value, (ast.Name, ast.Attribute, ast.Subscript)):
            return
        a, b = _unit(target), _unit(value)
        if a and b and a[1] != b[1]:
            yield module.finding(
                self.name,
                node,
                f"assigns `{b[0]}` ({b[1]}) to `{a[0]}` ({a[1]}) — "
                "alias crosses units without a conversion",
            )
