"""``unused-import``: the original ``tools/lint.py`` pass, as a registered checker.

Behavior is unchanged from the lint-gate original (which remains the
``make check`` entry point via the ``tools/lint.py`` shim):

* ``__init__.py`` files are skipped (imports there are re-exports);
* names listed in ``__all__`` are considered used;
* underscore-prefixed aliases (``import x as _``) are exempt;
* a bare ``import a.b`` counts usage of the root name ``a``;
* lines marked ``# noqa`` (bare, or with code F401) are skipped, in
  addition to the framework's ``# repro: allow[unused-import]`` pragma.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from ..core import Checker, Finding, ModuleInfo, register

_NOQA = re.compile(r"#\s*noqa(?::\s*[A-Z0-9, ]*F401[A-Z0-9, ]*)?\s*(?:\(|$)", re.I)


def _exported_names(tree: ast.Module) -> set[str]:
    """String entries of any top-level ``__all__`` literal."""
    names: set[str] = set()
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        if not any(isinstance(t, ast.Name) and t.id == "__all__" for t in targets):
            continue
        for constant in ast.walk(node):
            if isinstance(constant, ast.Constant) and isinstance(constant.value, str):
                names.add(constant.value)
    return names


@register
class UnusedImportChecker(Checker):
    name = "unused-import"
    description = "imports the module never references (ruff F401 fallback)"

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        if module.path.name == "__init__.py":
            return
        tree = module.tree
        exports = _exported_names(tree)
        lines = module.lines

        def suppressed(node: ast.stmt) -> bool:
            for lineno in range(node.lineno, (node.end_lineno or node.lineno) + 1):
                if _NOQA.search(lines[lineno - 1]):
                    return True
            return False

        imported: dict[str, int] = {}
        for node in ast.walk(tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)) and suppressed(node):
                continue
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    imported.setdefault(name, node.lineno)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    name = alias.asname or alias.name
                    imported.setdefault(name, node.lineno)

        used: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Name):
                used.add(node.id)
            elif isinstance(node, ast.Attribute):
                root = node
                while isinstance(root, ast.Attribute):
                    root = root.value
                if isinstance(root, ast.Name):
                    used.add(root.id)

        for name, line in sorted(imported.items(), key=lambda kv: kv[1]):
            if name in used or name in exports or name.startswith("_"):
                continue
            yield Finding(
                rule=self.name,
                path=module.rel_path,
                line=line,
                message=f"unused import '{name}'",
            )
