"""``determinism``: unseeded RNGs, legacy global state, wall clocks, stream discipline.

The repo's reproducibility contract is that every stochastic draw
descends from an explicit seed threaded through ``rng=`` parameters
(see ``repro.utils.as_rng``) and that nothing in the library reads the
wall clock. This checker flags the ways that contract silently breaks:

* ``np.random.default_rng()`` / ``default_rng(None)`` / ``as_rng(None)``
  — a generator seeded from OS entropy; two runs differ.
* ``np.random.<fn>(...)`` legacy calls — the module-level global state
  (``np.random.seed``, ``np.random.normal``, ``RandomState``…) is
  process-wide and invisible to the seeding discipline.
* stdlib ``random`` — same problem, different module.
* ``time.time()``-family calls inside ``src/`` — library results must
  not depend on when they were computed (benchmarks may time
  themselves; the library may not).
* **Stream discipline** — a function that *accepts* an ``rng``
  parameter but internally mints a fresh generator. The caller thinks
  it controls the randomness; it doesn't. (This is the exact bug class
  the corridor's spawned ``overhear_rng`` was built to avoid.)
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..core import Checker, Finding, ModuleInfo, register
from ._ast_utils import arg_names, call_name, walk_function_body

#: np.random attributes that belong to the *new* Generator API and are
#: fine to reference; everything else under np.random is legacy global
#: state (or a seeding footgun like RandomState).
_NEW_API = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


def _is_unseeded(call: ast.Call) -> bool:
    """True for ``f()`` or ``f(None)`` — no reproducible seed supplied."""
    if call.keywords:
        return any(
            kw.arg == "seed"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is None
            for kw in call.keywords
        )
    if not call.args:
        return True
    first = call.args[0]
    return isinstance(first, ast.Constant) and first.value is None


def _numpy_random_fn(name: str | None) -> str | None:
    """The trailing attribute if ``name`` is an np.random.<fn> reference."""
    if not name:
        return None
    for prefix in ("np.random.", "numpy.random."):
        if name.startswith(prefix) and name.count(".") == 2:
            return name[len(prefix):]
    return None


@register
class DeterminismChecker(Checker):
    name = "determinism"
    description = (
        "unseeded RNG construction, legacy np.random global state, stdlib "
        "random, wall-clock reads in library code, rng stream discipline"
    )

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        yield from self._module_wide(module)
        yield from self._stream_discipline(module)

    def _module_wide(self, module: ModuleInfo) -> Iterator[Finding]:
        stdlib_random_aliases: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        stdlib_random_aliases.add(alias.asname or "random")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield module.finding(
                        self.name,
                        node,
                        "imports from stdlib `random` (process-global state; "
                        "use a seeded np.random.Generator via repro.utils.as_rng)",
                    )

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            leaf = name.rsplit(".", 1)[-1]

            if leaf == "default_rng" and _is_unseeded(node):
                yield module.finding(
                    self.name,
                    node,
                    "`default_rng()` without a seed draws OS entropy — "
                    "results are not reproducible; pass a seed or thread an rng through",
                )
            elif leaf == "as_rng" and _is_unseeded(node) and module.in_library():
                yield module.finding(
                    self.name,
                    node,
                    "`as_rng(None)` mints an unseeded generator — "
                    "simulation-critical paths must receive an explicit seed",
                )

            legacy = _numpy_random_fn(name)
            if legacy is not None and legacy not in _NEW_API:
                yield module.finding(
                    self.name,
                    node,
                    f"legacy `np.random.{legacy}` uses process-global RNG state; "
                    "use a Generator from repro.utils.as_rng",
                )

            root = name.split(".", 1)[0]
            if root in stdlib_random_aliases and "." in name:
                yield module.finding(
                    self.name,
                    node,
                    f"stdlib `{name}` uses process-global RNG state; "
                    "use a seeded np.random.Generator via repro.utils.as_rng",
                )

            if module.in_library() and name in _WALL_CLOCK:
                yield module.finding(
                    self.name,
                    node,
                    f"wall-clock read `{name}()` in library code — results must "
                    "not depend on when they are computed; take a time parameter",
                )

    def _stream_discipline(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if "rng" not in arg_names(node):
                continue
            for inner in walk_function_body(node):
                if not isinstance(inner, ast.Call):
                    continue
                name = call_name(inner)
                if name is None:
                    continue
                leaf = name.rsplit(".", 1)[-1]
                minted = leaf == "default_rng" or (
                    leaf == "as_rng"
                    and inner.args
                    and isinstance(inner.args[0], ast.Constant)
                )
                if minted:
                    yield module.finding(
                        self.name,
                        inner,
                        f"`{node.name}` accepts an `rng` parameter but mints a "
                        f"fresh generator via `{leaf}` — callers lose control of "
                        "the stream (spawn from the passed rng instead)",
                    )
