"""``obs-policy``: instrumentation goes through the nullable ``obs`` hook.

The observability contract (see ``src/repro/obs`` and
``docs/OBSERVABILITY.md``): library code never *owns* instrumentation
state — it receives a nullable hook via an ``obs=`` parameter and guards
every recording with ``if obs is not None``. That keeps disabled runs
zero-cost and bit-identical, and keeps metric/trace state out of module
globals where two simulations in one process would share it. This
checker flags the ways the contract breaks:

* ``import repro.obs`` (or ``from repro.obs import ...``) in library
  modules outside the obs package — instrumented code must stay
  import-decoupled from the hook implementation (the hook is duck-typed
  and arrives as a parameter, so ``repro.core`` / ``repro.sim`` never
  gain a dependency on ``repro.obs``).
* constructing ``Obs`` / ``MetricsRegistry`` / ``SpanTracer`` in library
  code outside the obs package — the application layer (examples,
  benches, tests) builds the hook; the library only threads it through.
  A module-level construction would be a de-facto process-global
  registry.
* wall-clock *references* (not just calls) inside the obs package —
  recordings must derive from sim time alone, so even storing
  ``time.perf_counter`` as a default timer function is a contract
  breach the determinism checker's call-site rule would miss.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..core import Checker, Finding, ModuleInfo, register
from ._ast_utils import call_name, dotted_name

#: The obs package — the one library location allowed to construct the
#: instrumentation classes (it defines them) and to import itself.
_OBS_PACKAGE = "src/repro/obs"

#: Classes library code may not construct directly: the hook must be
#: handed in, never minted where it is used.
_HOOK_CLASSES = {"Obs", "MetricsRegistry", "SpanTracer"}

#: Wall-clock reads the obs package may not even reference (the
#: determinism rule flags calls across all of src/; references could
#: still smuggle a clock in as a stored callable).
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


def _in_obs_package(module: ModuleInfo) -> bool:
    return module.rel_path.startswith(_OBS_PACKAGE)


@register
class ObsPolicyChecker(Checker):
    name = "obs-policy"
    description = (
        "library instrumentation must flow through the nullable obs= hook: "
        "no repro.obs imports or hook construction outside the obs package, "
        "no wall-clock references inside it"
    )

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        if not module.in_library():
            return
        if _in_obs_package(module):
            yield from self._no_wall_clock_references(module)
        else:
            yield from self._no_obs_coupling(module)

    def _no_obs_coupling(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                target = node.module or ""
                if target == "repro.obs" or target.startswith("repro.obs."):
                    yield module.finding(
                        self.name,
                        node,
                        "library module imports `repro.obs` — the hook is "
                        "duck-typed and must arrive via an `obs=` parameter, "
                        "keeping instrumented code import-decoupled",
                    )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "repro.obs" or alias.name.startswith(
                        "repro.obs."
                    ):
                        yield module.finding(
                            self.name,
                            node,
                            "library module imports `repro.obs` — the hook is "
                            "duck-typed and must arrive via an `obs=` "
                            "parameter, keeping instrumented code "
                            "import-decoupled",
                        )
            elif isinstance(node, ast.Call):
                name = call_name(node)
                if name is None:
                    continue
                leaf = name.rsplit(".", 1)[-1]
                if leaf in _HOOK_CLASSES:
                    yield module.finding(
                        self.name,
                        node,
                        f"library code constructs `{leaf}` — instrumentation "
                        "state belongs to the caller; accept a nullable "
                        "`obs=` hook instead of minting one",
                    )

    def _no_wall_clock_references(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            name = dotted_name(node)
            if name in _WALL_CLOCK:
                yield module.finding(
                    self.name,
                    node,
                    f"obs package references wall clock `{name}` — "
                    "recordings must derive from sim time and seeded state "
                    "only (profiling lives in benchmarks/ and tools/)",
                )
