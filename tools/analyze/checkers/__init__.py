"""Checker registry population: importing this package registers every rule."""

from __future__ import annotations

from . import ablation, determinism, imports, rng_policy, units  # noqa: F401

__all__ = ["ablation", "determinism", "imports", "rng_policy", "units"]
