"""Checker registry population: importing this package registers every rule."""

from __future__ import annotations

from . import (  # noqa: F401
    ablation,
    backhaul_policy,
    determinism,
    imports,
    obs_policy,
    parallel_policy,
    rng_policy,
    units,
)

__all__ = [
    "ablation",
    "backhaul_policy",
    "determinism",
    "imports",
    "obs_policy",
    "parallel_policy",
    "rng_policy",
    "units",
]
