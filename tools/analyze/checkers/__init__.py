"""Checker registry population: importing this package registers every rule."""

from __future__ import annotations

from . import (  # noqa: F401
    ablation,
    determinism,
    imports,
    obs_policy,
    parallel_policy,
    rng_policy,
    units,
)

__all__ = [
    "ablation",
    "determinism",
    "imports",
    "obs_policy",
    "parallel_policy",
    "rng_policy",
    "units",
]
