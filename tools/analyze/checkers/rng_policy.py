"""``rng-policy``: every rng attribute/field routes through ``repro.utils.as_rng``.

``as_rng`` is the single funnel that lets every component accept a
seed, a Generator, or None interchangeably; an rng attribute assigned
any other way re-introduces ad-hoc seeding semantics. Blessed
constructions for ``self.rng`` / ``self.*_rng`` / dataclass ``rng``
fields:

* a call to ``as_rng(...)`` (any argument),
* a child stream spawned from an existing generator
  (``parent.spawn(n)[k]``),
* a plain copy of another already-normalized rng attribute,
* conditionals whose branches are themselves blessed,
* a dataclass default of ``None`` or a ``field(...)`` whose
  ``default_factory`` routes through ``as_rng`` (the ``__post_init__``
  normalization is then checked at its own assignment site).

Direct ``np.random.default_rng(...)`` construction is flagged even when
seeded — the point is one auditable construction path, not many.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..core import Checker, Finding, ModuleInfo, register
from ._ast_utils import call_name


def _is_rng_name(identifier: str) -> bool:
    return identifier == "rng" or identifier.endswith("_rng")


def _blessed(value: ast.expr) -> bool:
    """Whether an expression constructs its rng through an approved path."""
    while isinstance(value, ast.Subscript):
        value = value.value
    if isinstance(value, (ast.Name, ast.Attribute)):
        # Copying another rng attribute/variable keeps the stream intact.
        ident = value.id if isinstance(value, ast.Name) else value.attr
        return _is_rng_name(ident)
    if isinstance(value, ast.IfExp):
        return _blessed(value.body) and _blessed(value.orelse)
    if isinstance(value, ast.Call):
        name = call_name(value)
        if name is None:
            return False
        leaf = name.rsplit(".", 1)[-1]
        return leaf in ("as_rng", "spawn")
    if isinstance(value, ast.Constant) and value.value is None:
        return True
    return False


def _factory_blessed(field_call: ast.Call) -> bool:
    """Whether a ``field(...)`` call's default_factory routes through as_rng."""
    for kw in field_call.keywords:
        if kw.arg != "default_factory":
            continue
        for node in ast.walk(kw.value):
            if isinstance(node, ast.Call):
                name = call_name(node)
                if name and name.rsplit(".", 1)[-1] == "as_rng":
                    return True
            elif isinstance(node, ast.Name) and node.id == "as_rng":
                return True
        return False
    return False


@register
class RngPolicyChecker(Checker):
    name = "rng-policy"
    description = (
        "rng attributes and dataclass rng fields must be constructed via "
        "repro.utils.as_rng (or spawned from an existing stream)"
    )

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        if not module.in_library():
            return
        yield from self._attribute_assignments(module)
        yield from self._dataclass_fields(module)

    def _attribute_assignments(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            for target in targets:
                if not isinstance(target, ast.Attribute):
                    continue
                if not _is_rng_name(target.attr):
                    continue
                if not _blessed(value):
                    yield module.finding(
                        self.name,
                        node,
                        f"`{target.attr}` is assigned outside the as_rng funnel — "
                        "route construction through repro.utils.as_rng or spawn "
                        "from an existing stream",
                    )

    def _dataclass_fields(self, module: ModuleInfo) -> Iterator[Finding]:
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            for stmt in cls.body:
                if not isinstance(stmt, ast.AnnAssign) or stmt.value is None:
                    continue
                if not isinstance(stmt.target, ast.Name):
                    continue
                if not _is_rng_name(stmt.target.id):
                    continue
                value = stmt.value
                if isinstance(value, ast.Constant) and value.value is None:
                    continue
                if isinstance(value, ast.Call):
                    name = call_name(value)
                    leaf = name.rsplit(".", 1)[-1] if name else ""
                    if leaf == "field" and _factory_blessed(value):
                        continue
                    if leaf == "as_rng":
                        continue
                yield module.finding(
                    self.name,
                    stmt,
                    f"dataclass field `{stmt.target.id}` defaults outside the "
                    "as_rng funnel — use None (normalized in __post_init__) or "
                    "a field(default_factory=...) that calls as_rng",
                )
