"""``parallel-policy``: process parallelism stays in the sharding engine.

The library's determinism story depends on exactly one concurrency
model: ``repro.sim.city.parallel`` forks interference-closed shard
groups and merges their results canonically (worker-count invariance is
tested bit-for-bit). A second, ad-hoc pool elsewhere in ``src/`` —
a ``multiprocessing.Pool`` inside a DSP routine, a thread executor in a
simulator — would interleave RNG draws and float reductions in
scheduler-dependent order, silently breaking the reproducibility
contract the rest of the suite asserts.

This checker flags any ``import`` of the process/thread orchestration
modules (``multiprocessing``, ``concurrent.futures``, ``threading``) in
library code outside the sharding engine. Benches, examples, tools and
tests are free to parallelize however they like (they own their own
determinism trade-offs); library code routes scale-out through the one
audited engine.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..core import Checker, Finding, ModuleInfo, register

#: The one library module allowed to orchestrate processes.
_ENGINE = "src/repro/sim/city/parallel.py"

#: Orchestration modules whose import marks an ad-hoc parallelism site.
#: Matched on the root module name, so ``concurrent.futures`` and
#: ``from concurrent import futures`` are both caught via ``concurrent``.
_ORCHESTRATION_ROOTS = {"multiprocessing", "concurrent", "threading"}


@register
class ParallelPolicyChecker(Checker):
    name = "parallel-policy"
    description = (
        "process/thread orchestration imports belong to the sharded mesh "
        "engine (repro.sim.city.parallel) alone inside src/"
    )

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        if not module.in_library() or module.rel_path == _ENGINE:
            return
        for node in ast.walk(module.tree):
            names: list[str] = []
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                names = [node.module] if node.module else []
            for name in names:
                root = name.split(".")[0]
                if root in _ORCHESTRATION_ROOTS:
                    yield module.finding(
                        self.name,
                        node.lineno,
                        f"`{name}` imported outside the sharding engine — "
                        "library parallelism must go through "
                        "repro.sim.city.parallel (worker-count-invariant, "
                        "canonically merged); ad-hoc pools break the "
                        "determinism contract",
                    )
