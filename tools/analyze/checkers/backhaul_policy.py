"""``backhaul-policy``: directory traffic rides the modeled links.

PR 10 made every pole↔directory hop a modeled :class:`BackhaulLink`
(``src/repro/sim/city/backhaul.py``): sighting reports, delta batches
and push intents all cross a :class:`BackhaulPlane`, whose delivery
policy (wired / scheduled / mule) and :class:`FaultPlan` decide *when*
the directory hears about them. Library code that calls the directory's
write/read surface directly — ``directory.report(...)``,
``directory.apply_delta(...)``, ``directory.resolve(...)`` — teleports
data across that link: it is invisible to the fault plan, skips the
sync-lag accounting, and silently re-wires a batched deployment back
into the free-uplink world the module exists to retire.

Two call paths are sanctioned, and only those files may touch the
directory surface:

* the :class:`BackhaulPlane` itself (``src/repro/sim/city/backhaul.py``)
  — it *is* the link layer;
* the latency-modeled :class:`DirectoryBackend`
  (``src/repro/apps/tolling/backend.py``) — the billing plane's resolve
  queue and its ``report`` write-back channel.

The directory module may of course call itself, and application entry
points (``__main__.py`` CLIs) drive directories directly by design —
they build the fixture, they are not the pole path. Everything else in
``src/`` must hand its traffic to a plane or a backend.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..core import Checker, Finding, ModuleInfo, register
from ._ast_utils import call_name

#: The directory surface a pole path must never touch directly.
_GUARDED_METHODS = {"report", "apply_delta", "resolve"}

#: Library files allowed to call it: the link layer itself, the modeled
#: billing backend, and the directory's own module.
_SANCTIONED = {
    "src/repro/sim/city/backhaul.py",
    "src/repro/sim/city/directory.py",
    "src/repro/apps/tolling/backend.py",
}


def _is_directory_receiver(name: str) -> bool:
    # `directory.report`, `self.directory.resolve`,
    # `mesh._directory.apply_delta`, ... — the receiver segment (the one
    # right before the method) names a directory. Per-pole caches
    # (`cache.resolve`) and backends (`backend.report`) stay untouched.
    receiver = name.split(".")[-2]
    return "directory" in receiver.lower()


@register
class BackhaulPolicyChecker(Checker):
    name = "backhaul-policy"
    description = (
        "directory report/apply_delta/resolve calls must ride the "
        "BackhaulPlane or the DirectoryBackend, never reach around the "
        "modeled link"
    )

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        if not module.in_library():
            return
        if module.rel_path in _SANCTIONED or module.rel_path.endswith(
            "__main__.py"
        ):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None or "." not in name:
                continue
            method = name.rsplit(".", 1)[-1]
            if method not in _GUARDED_METHODS:
                continue
            if not _is_directory_receiver(name):
                continue
            yield module.finding(
                self.name,
                node,
                f"`{name}(...)` reaches around the backhaul: directory "
                "traffic must cross a BackhaulPlane (pole path) or a "
                "DirectoryBackend (billing path) so delivery policy and "
                "fault plans apply",
            )
