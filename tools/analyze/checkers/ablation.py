"""``ablation-api``: ablation knobs must be documented; deprecated aliases flagged.

The evaluation rests on ablation switches whose string values are
golden-pinned bit-for-bit (``combining="mrc"|"single"``,
``opportunistic="accept"|"ignore"``, ``scheduling="event"|"rounds"``,
``handoff`` policies). A public callable or dataclass exposing one of
these knobs without documenting the allowed values invites silent
misconfiguration — a typo'd policy string that falls through to a
default changes published numbers without an error. Two rules:

* every public function/method/dataclass in ``src/`` exposing an
  ablation parameter must have a docstring that names the parameter
  and quotes at least one allowed value (``"mrc"``-style), and
* call sites passing the deprecated ``antenna_index=`` keyword are
  flagged — it survives only as a back-compat alias for
  ``combining="single"`` plus an antenna selection.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from ..core import Checker, Finding, ModuleInfo, register

ABLATION_PARAMS = ("combining", "opportunistic", "scheduling", "handoff")

#: A double-quoted policy value somewhere in the docstring, e.g. ``"mrc"``.
_QUOTED_VALUE = re.compile(r'"[A-Za-z][A-Za-z0-9_|/-]*"')


def _documents(docstring: str | None, param: str) -> bool:
    if not docstring:
        return False
    if param not in docstring:
        return False
    return bool(_QUOTED_VALUE.search(docstring))


@register
class AblationApiChecker(Checker):
    name = "ablation-api"
    description = (
        "public ablation knobs (combining/opportunistic/scheduling/handoff) "
        "must document allowed values; deprecated antenna_index= is flagged"
    )

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        yield from self._deprecated_keywords(module)
        if module.in_library():
            yield from self._documented_knobs(module)

    def _deprecated_keywords(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if kw.arg == "antenna_index":
                    yield module.finding(
                        self.name,
                        kw.value,
                        "passes deprecated `antenna_index=` — use "
                        'combining="single" with the session antenna selection',
                    )

    def _documented_knobs(self, module: ModuleInfo) -> Iterator[Finding]:
        def visit(node: ast.AST, cls: ast.ClassDef | None) -> Iterator[Finding]:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from self._check_function(module, child, cls)
                    yield from visit(child, None)
                elif isinstance(child, ast.ClassDef):
                    yield from self._check_dataclass_fields(module, child)
                    yield from visit(child, child)
                else:
                    yield from visit(child, cls)

        yield from visit(module.tree, None)

    def _check_function(self, module, func, cls) -> Iterator[Finding]:
        public_method = not func.name.startswith("_") or func.name == "__init__"
        if not public_method or (cls is not None and cls.name.startswith("_")):
            return
        params = {a.arg for a in func.args.args + func.args.kwonlyargs}
        exposed = [p for p in ABLATION_PARAMS if p in params]
        if not exposed:
            return
        docs = [ast.get_docstring(func)]
        if func.name == "__init__" and cls is not None:
            # Dataclass-style classes document constructor knobs on the class.
            docs.append(ast.get_docstring(cls))
        owner = func.name if cls is None else f"{cls.name}.{func.name}"
        for param in exposed:
            if not any(_documents(doc, param) for doc in docs):
                yield module.finding(
                    self.name,
                    func,
                    f"`{owner}` exposes ablation knob `{param}` without "
                    'documenting its allowed values (quote them, e.g. "mrc")',
                )

    def _check_dataclass_fields(self, module, cls) -> Iterator[Finding]:
        if cls.name.startswith("_"):
            return
        doc = ast.get_docstring(cls)
        for stmt in cls.body:
            if not isinstance(stmt, ast.AnnAssign):
                continue
            if not isinstance(stmt.target, ast.Name):
                continue
            param = stmt.target.id
            if param in ABLATION_PARAMS and not _documents(doc, param):
                yield module.finding(
                    self.name,
                    stmt,
                    f"`{cls.name}` exposes ablation field `{param}` without "
                    'documenting its allowed values (quote them, e.g. "mrc")',
                )
