"""Small AST helpers shared by the checkers."""

from __future__ import annotations

import ast
from typing import Iterator


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """Dotted name of a call's callee, else None."""
    return dotted_name(node.func)


def walk_function_body(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's body without descending into nested def/class scopes.

    Nested functions own their signatures (and their own ``rng``
    discipline); attributing their bodies to the enclosing function
    produces false positives.
    """
    stack: list[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def arg_names(func: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda) -> set[str]:
    """Every parameter name of a function, positional/keyword/variadic."""
    args = func.args
    names = {a.arg for a in args.args}
    names.update(a.arg for a in args.posonlyargs)
    names.update(a.arg for a in args.kwonlyargs)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


def iter_functions(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, ast.ClassDef | None]]:
    """Every function definition in a module, with its enclosing class (if any)."""

    def visit(node: ast.AST, cls: ast.ClassDef | None) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, cls
                yield from visit(child, None)
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, child)
            else:
                yield from visit(child, cls)

    yield from visit(tree, None)
