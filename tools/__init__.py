"""Developer tooling: `tools.analyze` (static analysis), link checker, lint shim."""
