#!/usr/bin/env python
"""Fail on broken intra-repo links in the markdown docs.

Scans ``README.md`` and ``docs/*.md`` for markdown links and images.
External targets (``http(s)://``, ``mailto:``) are left alone — CI must
not depend on the network — but every *relative* target must resolve to
a real file or directory in the repository, and a ``path#anchor``
fragment must match a heading in the target markdown file (GitHub-style
slugs: lowercase, punctuation dropped, spaces to dashes).

Exit status 1 lists every broken link with its file and line.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Inline markdown links/images: [text](target) / ![alt](target).
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_EXTERNAL = ("http://", "https://", "mailto:")


def doc_files() -> list[Path]:
    files = [REPO / "README.md"]
    files.extend(sorted((REPO / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def heading_slugs(markdown: Path) -> set[str]:
    """GitHub-flavored anchor slugs for every heading in a file."""
    slugs: set[str] = set()
    in_fence = False
    for line in markdown.read_text().splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence or not line.startswith("#"):
            continue
        title = line.lstrip("#").strip()
        slug = re.sub(r"[^\w\- ]", "", title.lower()).replace(" ", "-")
        slugs.add(slug)
    return slugs


def check_file(doc: Path) -> list[str]:
    problems: list[str] = []
    in_fence = False
    for line_number, line in enumerate(doc.read_text().splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(_EXTERNAL):
                continue
            path_part, _, anchor = target.partition("#")
            where = f"{doc.relative_to(REPO)}:{line_number}"
            if not path_part:
                resolved = doc  # pure in-page anchor
            else:
                resolved = (doc.parent / path_part).resolve()
                try:
                    resolved.relative_to(REPO)
                except ValueError:
                    problems.append(f"{where}: {target!r} escapes the repository")
                    continue
                if not resolved.exists():
                    problems.append(f"{where}: {target!r} does not exist")
                    continue
            if anchor:
                if resolved.suffix.lower() != ".md" or resolved.is_dir():
                    continue  # line anchors into code etc.: not checked
                if anchor not in heading_slugs(resolved):
                    problems.append(
                        f"{where}: {target!r} anchor matches no heading"
                    )
    return problems


def main() -> int:
    docs = doc_files()
    problems = [problem for doc in docs for problem in check_file(doc)]
    for problem in problems:
        print(f"broken link: {problem}")
    print(
        f"checked {len(docs)} markdown files: "
        f"{'OK' if not problems else f'{len(problems)} broken links'}"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
