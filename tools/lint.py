#!/usr/bin/env python
"""Lint gate for `make check`: unused imports fail fast.

Runs ``ruff check`` when ruff is installed (the full rule set); otherwise
falls back to the ``unused-import`` checker from the static analysis
suite (``tools/analyze``), which absorbed the AST pass that used to live
here — the class of rot this repo has actually accumulated (e.g. a dead
exception import left behind by a refactor). The fallback keeps the
original conservative behavior: ``__init__.py`` skipped, ``__all__``
honored, underscore aliases exempt, ``# noqa``/F401 respected.

Usage:  python tools/lint.py [paths...]   (defaults to the repo tree)

This shim exists for backward compatibility; new checks belong in
``tools/analyze`` (see docs/ANALYSIS.md). ``make analyze`` runs the full
domain-aware suite.
"""

from __future__ import annotations

import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples", "tools")


def main(argv: list[str]) -> int:
    raw = argv or [str(REPO_ROOT / p) for p in DEFAULT_PATHS]
    paths = [Path(p).resolve() for p in raw]
    ruff = shutil.which("ruff")
    if ruff:
        result = subprocess.run([ruff, "check", *map(str, paths)], cwd=REPO_ROOT)
        return result.returncode

    sys.path.insert(0, str(REPO_ROOT))
    from tools.analyze import run_analysis

    report = run_analysis(paths, rules=["unused-import"])
    for error in report.parse_errors:
        print(f"parse error: {error}", file=sys.stderr)
    for finding in report.new:
        print(f"{finding.path}:{finding.line}: {finding.message}")
    if report.new:
        print(f"\nlint: {len(report.new)} unused import(s)")
        return 1
    print("lint: ok (builtin unused-import check)")
    return 1 if report.parse_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
