#!/usr/bin/env python
"""Lint gate for `make check`: unused imports fail fast.

Runs ``ruff check`` when ruff is installed (the full rule set); otherwise
falls back to a built-in AST pass that flags unused imports — the class of
rot this repo has actually accumulated (e.g. a dead exception import left
behind by a refactor). The fallback is deliberately conservative:

* ``__init__.py`` files are skipped (imports there are re-exports);
* names listed in ``__all__`` are considered used;
* ``import x as _`` / underscore-prefixed aliases are exempt;
* a bare ``import a.b`` counts usage of the root name ``a``;
* lines marked ``# noqa`` (bare, or with code F401) are skipped.

Usage:  python tools/lint.py [paths...]   (defaults to the repo tree)
"""

from __future__ import annotations

import ast
import re
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples", "tools")


def iter_python_files(paths: list[Path]):
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            yield path
        elif path.is_dir():
            yield from sorted(path.rglob("*.py"))


def exported_names(tree: ast.Module) -> set[str]:
    """String entries of any top-level ``__all__`` literal."""
    names: set[str] = set()
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in targets
        ):
            continue
        for constant in ast.walk(node):
            if isinstance(constant, ast.Constant) and isinstance(constant.value, str):
                names.add(constant.value)
    return names


_NOQA = re.compile(r"#\s*noqa(?::\s*[A-Z0-9, ]*F401[A-Z0-9, ]*)?\s*(?:\(|$)", re.I)


def unused_imports(path: Path) -> list[tuple[int, str]]:
    """(line, name) for every import the module never references."""
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    exports = exported_names(tree)
    lines = source.splitlines()

    def suppressed(node: ast.stmt) -> bool:
        for lineno in range(node.lineno, (node.end_lineno or node.lineno) + 1):
            if _NOQA.search(lines[lineno - 1]):
                return True
        return False

    imported: dict[str, int] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)) and suppressed(node):
            continue
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.asname or alias.name.split(".")[0]
                imported.setdefault(name, node.lineno)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                name = alias.asname or alias.name
                imported.setdefault(name, node.lineno)

    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            root = node
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name):
                used.add(root.id)

    return sorted(
        (line, name)
        for name, line in imported.items()
        if name not in used and name not in exports and not name.startswith("_")
    )


def run_fallback(paths: list[Path]) -> int:
    failures = 0
    for path in iter_python_files(paths):
        if path.name == "__init__.py":
            continue
        try:
            shown = path.relative_to(REPO_ROOT)
        except ValueError:
            shown = path
        for line, name in unused_imports(path):
            print(f"{shown}:{line}: unused import '{name}'")
            failures += 1
    if failures:
        print(f"\nlint: {failures} unused import(s)")
    else:
        print("lint: ok (builtin unused-import check)")
    return 1 if failures else 0


def main(argv: list[str]) -> int:
    raw = argv or [str(REPO_ROOT / p) for p in DEFAULT_PATHS]
    paths = [Path(p).resolve() for p in raw]
    ruff = shutil.which("ruff")
    if ruff:
        result = subprocess.run([ruff, "check", *map(str, paths)], cwd=REPO_ROOT)
        return result.returncode
    return run_fallback(paths)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
