#!/usr/bin/env python
"""Speed enforcement without radar guns (§7, §12.3).

A car with an E-ZPass drives past two pole stations 200 feet apart. Each
station localizes the transponder from its collision AoAs; dividing the
displacement by the (NTP-synchronized) time difference gives the speed —
attributed to a *specific account*, unlike a radar gun, which measures a
beam and leaves the car attribution to a human (wrong 10-30% of the time,
§4).

Run:  python examples/speed_enforcement.py
"""

import numpy as np

from repro.baselines.radar import RadarGun
from repro.constants import M_S_PER_MPH, SPEED_EXPERIMENT_BASELINE_M
from repro.core import (
    AoAEstimator,
    ReaderGeometry,
    SpeedEstimator,
    SpeedObservation,
    TwoReaderLocalizer,
)
from repro.sim.clock import NtpClock
from repro.sim.mobility import ConstantSpeedTrajectory
from repro.sim.scenario import Scene, make_tags, two_pole_speed_scene


def measure_speed(true_mph: float, seed: int) -> float:
    baseline = SPEED_EXPERIMENT_BASELINE_M
    arrays, road = two_pole_speed_scene(baseline_m=baseline)
    v = true_mph * M_S_PER_MPH
    trajectory = ConstantSpeedTrajectory(
        start_m=np.array([-25.0, -1.8, 1.0]), velocity_m_s=np.array([v, 0.0, 0.0])
    )
    estimators = [AoAEstimator(a) for a in arrays]
    localizers = [
        TwoReaderLocalizer(ReaderGeometry(arrays[0], road), ReaderGeometry(arrays[1], road)),
        TwoReaderLocalizer(ReaderGeometry(arrays[2], road), ReaderGeometry(arrays[3], road)),
    ]
    rng = np.random.default_rng(seed)
    clocks = [NtpClock(rng=rng), NtpClock(rng=rng)]

    observations = []
    for station, station_x in enumerate((0.0, baseline)):
        t = trajectory.time_of_closest_approach(np.array([station_x - 8.0, 0.0, 1.0]))
        position = trajectory.position(t)
        tags = make_tags(position[None, :], rng=rng)
        scene = Scene(tags=tags, road=road, arrays=arrays)
        base = 2 * station
        col_a = scene.simulator(base, rng=rng).query(t)
        col_b = scene.simulator(base + 1, rng=rng).query(t)
        aoa_a = estimators[base].estimate_all(col_a)[0]
        aoa_b = estimators[base + 1].estimate_all(col_b)[0]
        fix = localizers[station].locate(
            aoa_a, aoa_b, estimators[base], estimators[base + 1], hint_xy=position[:2]
        )
        observations.append(SpeedObservation(fix, clocks[station].now(t), f"s{station}"))

    return SpeedEstimator().estimate(observations[0], observations[1]).speed_mph


def main() -> None:
    print("=== Caraoke speed enforcement (two poles, 200 ft apart) ===")
    print(f"{'true [mph]':>11} {'measured':>9} {'error':>7}")
    for i, mph in enumerate((10, 20, 30, 40, 50)):
        measured = measure_speed(mph, seed=100 + i)
        err = abs(measured - mph) / mph * 100
        print(f"{mph:11.0f} {measured:9.1f} {err:6.1f}%")
    print("(§12.3 reports errors within 8% across this range)")

    print()
    print("=== Radar-gun baseline: great speed, wrong car ===")
    gun = RadarGun(rng=np.random.default_rng(0))
    for cars in (1, 2, 4, 7):
        rate = gun.wrong_ticket_rate(cars_in_beam=cars, trials=2000)
        print(f"  {cars} car(s) in beam: {rate * 100:5.1f}% of tickets hit the wrong car")
    print("Caraoke decodes the speeding car's own transponder id — the")
    print("attribution problem does not exist.")


if __name__ == "__main__":
    main()
