#!/usr/bin/env python
"""A city corridor on one shared time axis: async poles, moving cars.

Six reader poles watch a 240 m two-lane corridor. Cars stream in on
constant-speed trajectories; every pole runs its own query cadence
through the §9 CSMA policy on a single discrete-event timeline, so poles
back off each other's response slots instead of taking turns. A car
decoded once is *handed off* down the corridor: when its CFO fingerprint
shows up at the next pole, the identity-cache entry is forwarded instead
of re-decoding — the HandoffLedger at the end shows how much decode air
time that saved. A CarFinder service subscribes to the observation
stream, exactly as in the round-based reader_network example.

Everything here is the promoted library surface — cells, handoff and
moving-tag synthesis live in :mod:`repro.sim.city`
(:class:`~repro.sim.city.StationCell`,
:class:`~repro.sim.city.HandoffLedger`,
:class:`~repro.sim.city.MovingCollisionSource`), not in example code.
One street is one :class:`~repro.sim.city.CityCorridor`; for the graph
of corridors above it (intersections, routed traffic, the city-wide
identity directory and predictive push handoff) see
``examples/city_mesh.py`` and :class:`repro.sim.city.CityMesh`.

Run:  python examples/city_corridor.py   (about a minute of compute)
"""

from repro.apps import CarFinder
from repro.sim.city import CityCorridor
from repro.sim.scenario import city_corridor_scene

LANES = (-1.75, -5.25)


def main() -> None:
    scene, trajectories = city_corridor_scene(
        n_poles=6,
        pole_spacing_m=40.0,
        lane_ys_m=LANES,
        n_cars=18,
        speed_range_m_s=(9.0, 16.0),
        entry_window_s=5.0,
        rng=42,
    )
    corridor = CityCorridor.build(
        scene, trajectories, lane_ys_m=LANES, rng=42, max_queries=24
    )
    finder = corridor.subscribe(CarFinder())

    print("=== 6-pole corridor, 18 moving cars, event-driven ===")
    result = corridor.run(10.0)

    print(
        f"{result.rounds} measurement rounds in {result.duration_s:.0f} s "
        f"({result.queries_per_s:.0f} queries/s, "
        f"{result.queries_deferred} CSMA deferrals, "
        f"{result.corrupted_responses} corrupted responses)"
    )
    print(
        f"cars seen: {result.tags_seen}, identified: {result.identified}, "
        f"mean identification delay {result.mean_identification_delay_s:.2f} s "
        f"({result.mean_identification_queries:.1f} decode queries each)"
    )

    ledger = result.ledger
    print(
        f"sightings: {ledger.counts()}\n"
        f"downstream first-sightings: {ledger.downstream_sightings}, "
        f"{100 * ledger.handoff_resolution_rate:.0f}% resolved by handoff "
        f"({ledger.handoffs} re-decodes avoided)"
    )
    print(
        f"shared air: {result.overheard_windows} trigger windows published, "
        f"{result.overheard_donated} overheard captures donated to decode "
        f"bursts, {ledger.overheard_captures_used()} combined as free evidence"
    )

    print("\nlast known positions (find-my-car):")
    for tag_id in finder.known_tags()[:6]:
        fix = finder.locate(tag_id)
        print(
            f"  account {tag_id}: ({fix.position_m[0]:6.1f}, "
            f"{fix.position_m[1]:5.1f}) m at t={fix.timestamp_s:5.2f} s "
            f"via {fix.station}/{fix.cell}"
        )


if __name__ == "__main__":
    main()
