#!/usr/bin/env python
"""Reader power budget: solar-powered operation (§10, §12.5).

Reproduces the paper's §12.5 arithmetic with the explicit hardware
models: 900 mW active / 69 µW sleep, 10 ms bursts at 1 Hz -> ~9 mW
average, 56x under the 500 mW panel; then simulates two weeks of mixed
weather to show the battery never browns out, and the paper's "3 hours of
sun run a week" claim.

Run:  python examples/power_budget.py
"""

from repro.constants import SOLAR_PEAK_W
from repro.hw.battery import Battery, simulate_energy_budget
from repro.hw.power import DutyCycle, PowerModel
from repro.hw.solar import SolarPanel, cloudy_day, night_only


def main() -> None:
    model = PowerModel()
    duty = DutyCycle(active_s=10e-3, period_s=1.0)

    print("=== Caraoke reader power budget (§12.5) ===")
    print(f"active power:         {model.active_power_w * 1e3:7.1f} mW")
    print(f"sleep power:          {model.sleep_power_w * 1e6:7.1f} uW")
    print(f"duty cycle:           {duty.active_s * 1e3:.0f} ms burst / {duty.period_s:.0f} s")
    average = model.average_power_w(duty)
    print(f"average power:        {average * 1e3:7.2f} mW   (paper: ~9 mW)")
    margin = model.harvest_margin(duty, SOLAR_PEAK_W)
    print(f"solar harvest margin: {margin:7.1f} x    (paper: ~56 x)")
    print()

    # --- the "3 hours of sun runs a week" claim ----------------------------
    harvest_3h = SOLAR_PEAK_W * 3 * 3600
    week = 7 * 86_400.0
    battery = Battery(capacity_j=harvest_3h, charge_j=harvest_3h)
    result = simulate_energy_budget(
        battery=battery,
        panel=SolarPanel(),
        profile=night_only(),
        power=model,
        duty=duty,
        duration_s=week,
    )
    days = result.uptime_s / 86_400.0
    print(f"3 h of full sun = {harvest_3h / 1e3:.1f} kJ stored")
    print(
        f"running dark on that charge: {days:.1f} days "
        f"({'survived the week' if result.survived else 'brown-out'})"
    )
    print()

    # --- two cloudy weeks with a realistic battery --------------------------
    battery = Battery(capacity_j=10_000.0, charge_j=5_000.0)
    result = simulate_energy_budget(
        battery=battery,
        panel=SolarPanel(),
        profile=cloudy_day(attenuation=0.18),
        power=model,
        duty=duty,
        duration_s=14 * 86_400.0,
    )
    print("two heavily overcast weeks (18% of clear-sky harvest):")
    print(f"  harvested {result.harvested_j / 1e3:7.1f} kJ, consumed {result.consumed_j / 1e3:6.1f} kJ")
    print(f"  min state of charge {result.min_state_of_charge * 100:5.1f}%  ->"
          f" {'OK' if result.survived else 'brown-out'}")
    print()

    # --- what if the reader measured more often? ----------------------------
    print("measurement rate sweep (average power / harvest margin):")
    for period in (0.25, 0.5, 1.0, 2.0, 5.0):
        d = DutyCycle(active_s=10e-3, period_s=period)
        p = model.average_power_w(d)
        print(f"  every {period:4.2f} s: {p * 1e3:6.2f} mW  ({SOLAR_PEAK_W / p:5.1f}x margin)")


if __name__ == "__main__":
    main()
