#!/usr/bin/env python
"""A city mesh: three corridors, two intersections, predictive handoff.

Three two-pole corridors A -> B -> C joined by signalized intersections;
Poisson traffic enters at A, most of it routed all the way to C, some
turning off after B. Every pole runs its own CSMA cadence on one shared
discrete-event timeline (`repro.sim.city.mesh.CityMesh`), every resolved
sighting is reported to the city-wide `IdentityDirectory`, and handoff
is *predictive*: a pole whose fixes complete a §7 cross-pole speed
estimate pushes the car's identity-cache entry to the predicted next
pole — across the intersection — ahead of arrival, so the entered
corridor's first pole resolves the car from its own cache at zero decode
queries. Cars that turn off-route leave their pushed entry unconsumed
(a push *miss*, audited on the shared HandoffLedger) and simply
re-decode wherever they actually went.

Run:  python examples/city_mesh.py    (about ten seconds of compute;
      set REPRO_MESH_DURATION_S to shorten/lengthen the simulation)

``--workers N`` (N >= 2) runs the city through the sharded engine
(`repro.sim.city.parallel.run_sharded`): interference-closed edge
groups in forked worker processes, rendezvousing at sync barriers for
directory replay and push delivery. **Determinism note:** the sharded
engine is worker-count invariant — any N produces bit-for-bit the same
result — but it is *not* bit-identical to the serial run (``--workers
1``, the default, which runs ``CityMesh.run`` untouched): the serial
mesh interleaves one RNG stream across all corridors in global event
order, which sharding by design does not reproduce. Compare sharded
runs with sharded runs, serial with serial. See docs/PERFORMANCE.md.

``--grid ROWSxCOLS`` swaps the 3-corridor demo for a generated downtown
(`repro.sim.city.mesh.downtown_grid`) — e.g. ``--grid 10x10 --workers
4`` for the 100-corridor benchmark city (the pull ablation and the
find-my-car service are skipped in grid mode to keep the run short).

Pass ``--trace trace.json`` and/or ``--metrics metrics.json`` to record
the push run through ``repro.obs`` (see docs/OBSERVABILITY.md): the
trace is Chrome trace_event JSON — load it at https://ui.perfetto.dev —
and both files render via ``python -m repro.obs.report``. Sim-time
tracing requires the serial path (``--workers 1``); metrics work under
both (per-shard registries merge in deterministic order).
"""

import argparse
import os

from repro.apps import CarFinder
from repro.obs import Obs
from repro.sim.city import CityMesh, downtown_grid, run_sharded
from repro.sim.traffic import TrafficLight


def build_mesh(handoff: str, seed: int = 7, obs: Obs | None = None) -> CityMesh:
    mesh = CityMesh(rng=seed, handoff=handoff, obs=obs)
    mesh.add_node("u", light=TrafficLight(green_s=8.0, yellow_s=1.0, red_s=4.0))
    mesh.add_node(
        "v", light=TrafficLight(green_s=8.0, yellow_s=1.0, red_s=4.0, offset_s=3.0)
    )
    mesh.add_edge("A", dst="u", n_poles=2)
    mesh.add_edge("B", src="u", dst="v", n_poles=2)
    mesh.add_edge("C", src="v", n_poles=2)
    # 80% of cars ride the whole main line; 20% turn off after B — the
    # mis-push population the ledger audits.
    mesh.add_traffic(
        [(("A", "B", "C"), 0.8), (("A", "B"), 0.2)],
        rate_per_s=0.5,
        speed_range_m_s=(10.0, 16.0),
    )
    return mesh


def parse_grid(text: str) -> tuple[int, int]:
    try:
        rows, cols = (int(part) for part in text.lower().split("x"))
    except ValueError:
        raise SystemExit(f"--grid wants ROWSxCOLS (e.g. 10x10), got {text!r}")
    return rows, cols


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[1])
    parser.add_argument(
        "--trace", metavar="PATH", help="write a Chrome trace_event JSON here"
    )
    parser.add_argument(
        "--metrics", metavar="PATH", help="write a metrics snapshot JSON here"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="1 (default): the serial CityMesh.run reference; >= 2: the "
        "sharded engine, worker-count invariant but not bit-identical "
        "to serial (see the docstring)",
    )
    parser.add_argument(
        "--grid",
        metavar="ROWSxCOLS",
        help="run a generated downtown grid of corridors instead of the "
        "3-corridor demo (e.g. 10x10)",
    )
    args = parser.parse_args()
    if args.workers < 1:
        parser.error("--workers wants a positive count")
    if args.trace and args.workers > 1:
        parser.error("sim-time tracing needs the serial path (--workers 1)")
    obs = None
    if args.trace or args.metrics:
        obs = Obs(trace=bool(args.trace))

    duration_s = float(os.environ.get("REPRO_MESH_DURATION_S", "30"))
    finder = None
    if args.grid:
        rows, cols = parse_grid(args.grid)
        print(
            f"=== {rows}x{cols} downtown grid ({rows * cols} corridors), "
            f"predictive push handoff, workers={args.workers} ==="
        )

        def fresh_mesh(handoff: str) -> CityMesh:
            return downtown_grid(rows, cols, rng=7, handoff=handoff, obs=obs)

    else:
        print(
            "=== 3-corridor / 2-intersection mesh, predictive push handoff, "
            f"workers={args.workers} ==="
        )
        fresh_mesh = lambda handoff: build_mesh(handoff, obs=obs)  # noqa: E731

    mesh = fresh_mesh("push")
    if args.workers == 1:
        if not args.grid:
            finder = mesh.subscribe(CarFinder())
        result = mesh.run(duration_s)
    else:
        result = run_sharded(
            mesh,
            duration_s,
            workers=args.workers,
            shard_obs_factory=Obs if obs is not None else None,
        )
    ledger = result.ledger

    if args.metrics:
        obs.metrics.write(args.metrics)
        n = sum(len(t) for t in obs.metrics.snapshot().values())
        print(f"metrics: {n} series -> {args.metrics}")
    if args.trace:
        obs.tracer.write(args.trace)
        print(f"trace: {len(obs.tracer.events)} events -> {args.trace}")

    print(
        f"{result.cars_injected} edge entries ({result.cars_transferred} "
        f"intersection transfers, {result.cars_departed} cars left the mesh) "
        f"in {result.duration_s:.0f} s"
    )
    print(
        f"air: {result.queries_sent} queries, {result.responses} responses, "
        f"{result.corrupted_responses} corrupted (CSMA on, one shared log)"
    )
    print(
        f"sightings: {ledger.counts()}\n"
        f"pushes: {ledger.pushes_sent} sent, {ledger.push_hits} consumed at "
        f"the predicted pole, {len(ledger.push_misses)} missed (off-route or "
        f"still en route)"
    )
    print(
        f"cross-corridor entries: {result.cross_entries}, "
        f"{100 * result.cross_resolution_rate:.0f}% resolved without a "
        f"re-decode; first sighting at the entered corridor's first pole "
        f"cost {result.mean_first_pole_queries:.2f} decode queries on average"
    )
    print(f"directory: {result.directory}")
    if args.workers > 1:
        shards = len(result.groups)
        events = sum(result.events_processed.values())
        print(
            f"shards: {shards} interference-closed groups across "
            f"{result.workers} workers, {events} scheduler events, "
            f"sync quantum {result.sync_quantum_s * 1e3:.0f} ms"
        )

    if finder is not None:
        print("\nlast known positions (find-my-car, city-wide):")
        for tag_id in finder.known_tags()[:5]:
            fix = finder.locate(tag_id)
            print(
                f"  account {tag_id}: x={fix.position_m[0]:7.1f} m at "
                f"t={fix.timestamp_s:5.2f} s via {fix.station}"
            )

    if not args.grid:
        print("\n--- the same world under pull-at-sighting (the ablation) ---")
        pull_mesh = fresh_mesh("pull")
        if args.workers == 1:
            pull = pull_mesh.run(duration_s)
        else:
            pull = run_sharded(pull_mesh, duration_s, workers=args.workers)
        print(
            f"pull: {100 * pull.cross_resolution_rate:.0f}% of "
            f"{pull.cross_entries} cross-corridor entries resolved; first pole "
            f"costs {pull.mean_first_pole_queries:.2f} decode queries "
            f"(vs {result.mean_first_pole_queries:.2f} with push)"
        )


if __name__ == "__main__":
    main()
