#!/usr/bin/env python
"""A city mesh: three corridors, two intersections, predictive handoff.

Three two-pole corridors A -> B -> C joined by signalized intersections;
Poisson traffic enters at A, most of it routed all the way to C, some
turning off after B. Every pole runs its own CSMA cadence on one shared
discrete-event timeline (`repro.sim.city.mesh.CityMesh`), every resolved
sighting is reported to the city-wide `IdentityDirectory`, and handoff
is *predictive*: a pole whose fixes complete a §7 cross-pole speed
estimate pushes the car's identity-cache entry to the predicted next
pole — across the intersection — ahead of arrival, so the entered
corridor's first pole resolves the car from its own cache at zero decode
queries. Cars that turn off-route leave their pushed entry unconsumed
(a push *miss*, audited on the shared HandoffLedger) and simply
re-decode wherever they actually went.

Run:  python examples/city_mesh.py    (about ten seconds of compute;
      set REPRO_MESH_DURATION_S to shorten/lengthen the simulation)

Pass ``--trace trace.json`` and/or ``--metrics metrics.json`` to record
the push run through ``repro.obs`` (see docs/OBSERVABILITY.md): the
trace is Chrome trace_event JSON — load it at https://ui.perfetto.dev —
and both files render via ``python -m repro.obs.report``.
"""

import argparse
import os

from repro.apps import CarFinder
from repro.obs import Obs
from repro.sim.city import CityMesh
from repro.sim.traffic import TrafficLight


def build_mesh(handoff: str, seed: int = 7, obs: Obs | None = None) -> CityMesh:
    mesh = CityMesh(rng=seed, handoff=handoff, obs=obs)
    mesh.add_node("u", light=TrafficLight(green_s=8.0, yellow_s=1.0, red_s=4.0))
    mesh.add_node(
        "v", light=TrafficLight(green_s=8.0, yellow_s=1.0, red_s=4.0, offset_s=3.0)
    )
    mesh.add_edge("A", dst="u", n_poles=2)
    mesh.add_edge("B", src="u", dst="v", n_poles=2)
    mesh.add_edge("C", src="v", n_poles=2)
    # 80% of cars ride the whole main line; 20% turn off after B — the
    # mis-push population the ledger audits.
    mesh.add_traffic(
        [(("A", "B", "C"), 0.8), (("A", "B"), 0.2)],
        rate_per_s=0.5,
        speed_range_m_s=(10.0, 16.0),
    )
    return mesh


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[1])
    parser.add_argument(
        "--trace", metavar="PATH", help="write a Chrome trace_event JSON here"
    )
    parser.add_argument(
        "--metrics", metavar="PATH", help="write a metrics snapshot JSON here"
    )
    args = parser.parse_args()
    obs = None
    if args.trace or args.metrics:
        obs = Obs(trace=bool(args.trace))

    duration_s = float(os.environ.get("REPRO_MESH_DURATION_S", "30"))
    print("=== 3-corridor / 2-intersection mesh, predictive push handoff ===")
    mesh = build_mesh("push", obs=obs)
    finder = mesh.subscribe(CarFinder())
    result = mesh.run(duration_s)
    ledger = result.ledger

    if args.metrics:
        obs.metrics.write(args.metrics)
        n = sum(len(t) for t in obs.metrics.snapshot().values())
        print(f"metrics: {n} series -> {args.metrics}")
    if args.trace:
        obs.tracer.write(args.trace)
        print(f"trace: {len(obs.tracer.events)} events -> {args.trace}")

    print(
        f"{result.cars_injected} edge entries ({result.cars_transferred} "
        f"intersection transfers, {result.cars_departed} cars left the mesh) "
        f"in {result.duration_s:.0f} s"
    )
    print(
        f"air: {result.queries_sent} queries, {result.responses} responses, "
        f"{result.corrupted_responses} corrupted (CSMA on, one shared log)"
    )
    print(
        f"sightings: {ledger.counts()}\n"
        f"pushes: {ledger.pushes_sent} sent, {ledger.push_hits} consumed at "
        f"the predicted pole, {len(ledger.push_misses)} missed (off-route or "
        f"still en route)"
    )
    print(
        f"cross-corridor entries: {result.cross_entries}, "
        f"{100 * result.cross_resolution_rate:.0f}% resolved without a "
        f"re-decode; first sighting at the entered corridor's first pole "
        f"cost {result.mean_first_pole_queries:.2f} decode queries on average"
    )
    print(f"directory: {result.directory}")

    print("\nlast known positions (find-my-car, city-wide):")
    for tag_id in finder.known_tags()[:5]:
        fix = finder.locate(tag_id)
        print(
            f"  account {tag_id}: x={fix.position_m[0]:7.1f} m at "
            f"t={fix.timestamp_s:5.2f} s via {fix.station}"
        )

    print("\n--- the same world under pull-at-sighting (the ablation) ---")
    pull = build_mesh("pull").run(duration_s)
    print(
        f"pull: {100 * pull.cross_resolution_rate:.0f}% of "
        f"{pull.cross_entries} cross-corridor entries resolved; first pole "
        f"costs {pull.mean_first_pole_queries:.2f} decode queries "
        f"(vs {result.mean_first_pole_queries:.2f} with push)"
    )


if __name__ == "__main__":
    main()
