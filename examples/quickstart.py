#!/usr/bin/env python
"""Quickstart: count, localize and decode tags from one collision.

Builds a street scene with five parked, E-ZPass-equipped cars, queries
them through a simulated pole-mounted Caraoke reader, and runs the three
§5/§6/§8 algorithms on the resulting collision.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import CaraokeReader, ReaderGeometry
from repro.sim.scenario import parking_scene


def main() -> None:
    # A pole at the origin watching six curbside parking spots; tags in
    # spots 1, 2, 3, 5 and 6 (spot 4 left empty). CFOs are drawn from the
    # synthetic "155 measured transponders" population.
    scene, street, _ = parking_scene(
        target_spots=[1, 2, 3, 5, 6], n_background_cars=0, rng=7
    )
    reader = CaraokeReader(
        geometry=ReaderGeometry(scene.arrays[0], scene.road),
        sample_rate_hz=scene.sample_rate_hz,
    )
    simulator = scene.simulator(0, rng=8)

    # --- one query: every tag answers at once (no MAC!), and the reader
    # --- works entirely from the collision.
    collision = simulator.query(0.0)
    report = reader.observe(collision)

    print("=== Caraoke quickstart ===")
    print(f"tags present:   {len(scene.tags)}")
    print(f"counted (§5):   {report.n_tags}")
    print()
    print("per-tag angle of arrival (§6):")
    for aoa in report.aoas:
        estimator = reader.estimator
        pair = estimator.best_pair(aoa)
        diffs = [
            abs(t.oscillator.carrier_hz - collision.lo_hz - aoa.cfo_hz)
            for t in scene.tags
        ]
        tag = scene.tags[int(np.argmin(diffs))]
        truth = np.rad2deg(pair.true_spatial_angle_rad(tag.position_m))
        print(
            f"  CFO {aoa.cfo_hz / 1e3:7.1f} kHz  alpha = {aoa.alpha_deg:6.2f} deg "
            f"(truth {truth:6.2f}, pair {aoa.best_pair_index})"
        )

    # --- decode every tag id from repeated queries (§8).
    print()
    print("decoding ids by coherent combining (§8):")
    session = reader.decode_session(lambda t: simulator.query(t))
    results = session.decode_all(
        [float(c) for c in report.count.cfos_hz()], max_queries=64
    )
    for cfo, result in sorted(results.items()):
        if result.success:
            fields = result.packet.fields
            print(
                f"  CFO {cfo / 1e3:7.1f} kHz -> agency {fields.agency_id:3d}, "
                f"serial {fields.serial_number:10d}  "
                f"({result.n_queries} queries, {result.identification_time_ms:.1f} ms)"
            )
        else:
            print(f"  CFO {cfo / 1e3:7.1f} kHz -> not decoded in budget")
    print(f"total air time: {session.total_air_time_s * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
