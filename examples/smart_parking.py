#!/usr/bin/env python
"""Smart street parking (§1, §6, §12.2).

A reader on a street lamp watches six curbside spots. Cars park, the city
localizes each car by its transponder's AoA and bills the right account —
no asphalt sensors, no enforcement officers. The example parks cars in
three spots, localizes them from collisions, maps each to a spot, and
reports per-spot occupancy alongside ground truth.

Run:  python examples/smart_parking.py
"""

import numpy as np

from repro.core import AoAEstimator, CaraokeReader, ReaderGeometry
from repro.sim.scenario import parking_scene


def main() -> None:
    occupied_spots = [1, 3, 6]
    scene, street, targets = parking_scene(
        target_spots=occupied_spots, n_background_cars=0, rng=11
    )
    reader = CaraokeReader(
        geometry=ReaderGeometry(scene.arrays[0], scene.road),
        sample_rate_hz=scene.sample_rate_hz,
    )
    simulator = scene.simulator(0, rng=12)
    collision = simulator.query(0.0)
    report = reader.observe(collision)

    print("=== Smart street parking ===")
    print(f"spots: {street.n_spots}, occupied (truth): {occupied_spots}")
    print(f"tags counted: {report.n_tags}")
    print()

    # Map each measured AoA to the nearest spot. A single pair's angle is
    # ambiguous (one cone can graze two spots), but the triangle measures
    # *three* angles per tag; matching on all three pins the spot down.
    estimator: AoAEstimator = reader.estimator
    pairs = estimator.array.pairs()
    spot_assignments: dict[int, float] = {}
    for aoa in report.aoas:
        best_spot, best_err = None, np.inf
        for spot in street.spots():
            position = spot.transponder_position()
            err = np.sqrt(
                np.mean(
                    [
                        (
                            np.rad2deg(pair.true_spatial_angle_rad(position))
                            - np.rad2deg(alpha)
                        )
                        ** 2
                        for pair, alpha in zip(pairs, aoa.alphas_rad)
                    ]
                )
            )
            if err < best_err:
                best_spot, best_err = spot.index, err
        spot_assignments[best_spot] = aoa.alpha_deg
        print(
            f"  tag at CFO {aoa.cfo_hz / 1e3:7.1f} kHz: alpha {aoa.alpha_deg:6.2f} deg"
            f" -> spot {best_spot} (joint angular margin {best_err:.2f} deg)"
        )

    print()
    print("spot  occupancy (measured vs truth)")
    correct = 0
    for index in range(1, street.n_spots + 1):
        measured = index in spot_assignments
        truth = index in occupied_spots
        correct += measured == truth
        print(f"  {index}    {'occupied' if measured else 'free   ':<9} "
              f"{'occupied' if truth else 'free'}  {'OK' if measured == truth else 'X'}")
    print(f"\n{correct}/{street.n_spots} spots classified correctly")
    print("(§12.2: 4-degree mean AoA accuracy suffices to tell adjacent spots apart)")


if __name__ == "__main__":
    main()
