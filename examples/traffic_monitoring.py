#!/usr/bin/env python
"""Traffic monitoring at an intersection (the Fig 12 application).

Simulates the intersection of a quiet street (A) and the busiest street
on campus (C), with a shared traffic light whose green time for C is only
3x that of A although C carries ~10x the traffic. The reader samples each
approach once per second; queues build during red and drain during green.

Also contrasts Caraoke's count with a traffic-camera baseline operating
at night in wind — the §1/§4 motivation.

Run:  python examples/traffic_monitoring.py
"""

import numpy as np

from repro.baselines.camera import CameraConditions, CameraCounter
from repro.sim.traffic import IntersectionSimulator, PoissonArrivals, TrafficLight


def bar(n: int, scale: float = 1.0) -> str:
    return "#" * int(round(n * scale))


def main() -> None:
    cycle = dict(green_s=0.0, yellow_s=3.0, red_s=0.0)
    # Street C: 45 s green; street A: 15 s green (3x, §12.1); both share a
    # 66 s cycle, A's green sitting inside C's red.
    light_c = TrafficLight(green_s=45.0, yellow_s=3.0, red_s=18.0)
    light_a = TrafficLight(green_s=15.0, yellow_s=3.0, red_s=48.0, offset_s=48.0)

    street_c = IntersectionSimulator(
        light=light_c,
        arrivals=PoissonArrivals(0.30, rng=np.random.default_rng(1)),  # busy
        transponder_penetration=0.85,
        rng=np.random.default_rng(2),
    )
    street_a = IntersectionSimulator(
        light=light_a,
        arrivals=PoissonArrivals(0.03, rng=np.random.default_rng(3)),  # 10x quieter
        transponder_penetration=0.85,
        rng=np.random.default_rng(4),
    )

    duration = 132.0  # two light cycles, like Fig 12
    samples_c = street_c.simulate(duration, sample_period_s=3.0)
    samples_a = street_a.simulate(duration, sample_period_s=3.0)

    print("=== Intersection monitoring (two light cycles) ===")
    print(f"{'t[s]':>5} {'C':>3} {'light':<7}{'cars C':<26} {'A':>3} {'light':<7}cars A")
    for sc, sa in zip(samples_c, samples_a):
        print(
            f"{sc.t_s:5.0f} {sc.in_range:3d} {sc.phase:<7}{bar(sc.in_range):<26} "
            f"{sa.in_range:3d} {sa.phase:<7}{bar(sa.in_range)}"
        )

    mean_c = np.mean([s.in_range for s in samples_c])
    mean_a = np.mean([s.in_range for s in samples_a])
    print()
    print(f"mean tagged cars in range: C = {mean_c:.1f}, A = {mean_a:.1f} "
          f"(ratio {mean_c / max(mean_a, 0.1):.1f}x)")

    # --- camera baseline under adverse conditions -------------------------
    camera = CameraCounter(
        CameraConditions(illumination="night", wind=0.6, occlusion=0.25),
        rng=np.random.default_rng(5),
    )
    truth = [s.in_range for s in samples_c if s.in_range > 0]
    camera_counts = [camera.count(n) for n in truth]
    errors = [abs(c - n) / n for c, n in zip(camera_counts, truth)]
    print()
    print("camera baseline (night, wind, occlusion):")
    print(f"  mean |error| = {np.mean(errors) * 100:.1f}% "
          f"(the paper cites a few %% up to 26%% for video detection)")
    print("  Caraoke counts transponders directly and is immune to all of this;")
    print("  its counting error is set by CFO bin collisions (see Fig 11 bench).")


if __name__ == "__main__":
    main()
