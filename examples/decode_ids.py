#!/usr/bin/env python
"""Decoding transponder ids from collisions (§8, Fig 8, Fig 16).

Shows coherent combining at work: with five tags colliding, the raw
signal is undecodable, but averaging CFO/channel-compensated replies
makes the target's Manchester bits emerge. Also shows why the obvious
band-pass-filter decoder cannot work (§8's opening argument).

Run:  python examples/decode_ids.py
"""

import numpy as np

from repro.baselines.bandpass_decoder import BandpassDecoder
from repro.core import CoherentDecoder, DecodeSession
from repro.core.cfo import estimate_channel, extract_cfo_peaks, refine_frequency
from repro.sim.scenario import parking_scene


def ascii_eye(samples: np.ndarray, n_chips: int = 40, per_chip: int = 4) -> str:
    """A crude text rendering of the first chips of a real signal."""
    chips = samples[: n_chips * per_chip].reshape(n_chips, per_chip).mean(axis=1)
    lo, hi = np.percentile(chips, 5), np.percentile(chips, 95)
    span = max(hi - lo, 1e-12)
    return "".join("#" if (c - lo) / span > 0.5 else "_" for c in chips)


def main() -> None:
    scene, _, _ = parking_scene(target_spots=[1, 2, 3, 4, 5], n_background_cars=0, rng=31)
    simulator = scene.simulator(0, rng=32)

    first = simulator.query(0.0)
    peaks = extract_cfo_peaks(first.antenna(0), min_snr_db=15)
    target = peaks[0]
    print("=== Decoding under collision: 5 tags answering at once ===")
    print(f"detected spikes: {[round(p.cfo_hz / 1e3, 1) for p in peaks]} kHz")
    print(f"target: CFO {target.cfo_hz / 1e3:.1f} kHz")
    print()

    # --- Fig 8: the averaged signal becomes decodable -----------------------
    captures = [simulator.query(i * 1e-3).antenna(0) for i in range(16)]
    cfo = refine_frequency(captures[0], target.cfo_hz, span_hz=977.0)
    accumulator = np.zeros(captures[0].n_samples, dtype=complex)
    print("chip pattern of the compensated accumulation (first 40 chips):")
    for j, capture in enumerate(captures, start=1):
        h = estimate_channel(capture, cfo)
        t = capture.times()
        accumulator += capture.samples * np.exp(-2j * np.pi * cfo * t) / h
        if j in (1, 8, 16):
            print(f"  after {j:2d} replies: {ascii_eye(accumulator.real)}")
    print("  (Fig 8: random -> bits emerge after ~8-16 averages)")
    print()

    # --- the full stopping-rule decoder (§12.4), MRC vs one antenna ---------
    decoder = CoherentDecoder(scene.sample_rate_hz)
    sessions = {
        policy: DecodeSession(
            query_fn=lambda t: simulator.query(t), decoder=decoder, combining=policy
        )
        for policy in ("mrc", "single")
    }
    results = {
        policy: session.decode_all([p.cfo_hz for p in peaks], max_queries=64)
        for policy, session in sessions.items()
    }
    print("per-tag decode cost (1 query = 1 ms of air time):")
    for cfo_hz, result in sorted(results["mrc"].items()):
        status = (
            f"serial {result.packet.fields.serial_number:10d} "
            f"in {result.n_queries:2d} queries ({result.identification_time_ms:4.1f} ms)"
            if result.success
            else "FAILED within budget"
        )
        baseline = results["single"][cfo_hz]
        print(
            f"  CFO {cfo_hz / 1e3:7.1f} kHz: {status}"
            f"  [1 antenna: {baseline.n_queries:2d} queries]"
        )
    print("(Fig 16: ~4 ms at 2 colliding tags, ~16 ms at 5, growing with density;")
    print(" maximum-ratio combining the three antennas cuts the query count)")
    print()

    # --- the strawman: band-pass filtering (§8) -----------------------------
    bandpass = BandpassDecoder(half_bandwidth_hz=25e3)
    packet = bandpass.decode(captures[0], cfo)
    print("band-pass-filter decoder on the same capture:",
          "decoded (?!)" if packet else "fails (CRC never passes)")
    print("OOK data is spread across the band - filtering around the spike")
    print("throws the data away with the interference.")


if __name__ == "__main__":
    main()
