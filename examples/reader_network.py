#!/usr/bin/env python
"""A reader *network* serving the §1 city services in one pipeline.

Two pole stations watch a two-lane corridor with curbside parking. Each
:class:`ReaderNetwork` round counts the tags in range (§5), decodes any
account id it has not seen before from the shared collision stream
(§8/§12.4, batched across tags), localizes every spike with a single
pole (AoA cone x known lanes), and fans the resulting observations into
the parking-billing and find-my-car services. A second segment re-uses
the same machinery for red-light enforcement with a moving car.

Historical note: the hand-carved per-station coverage segments below
are where the library's cell machinery came from — they have since been
promoted to :class:`repro.sim.city.StationCell` / ``carve_cells``
(first-class cells with neighbor links and per-cell localizers), and
the per-pole identity caches shown here grew into the corridor's
fingerprint-keyed cache *handoff* (:mod:`repro.sim.city.handoff`) and
the mesh's city-wide :class:`repro.sim.city.IdentityDirectory`. This
example keeps the minimal by-hand version to show the round-based
pipeline itself; see ``examples/city_corridor.py`` and
``examples/city_mesh.py`` for the promoted APIs.

Run:  python examples/reader_network.py
"""

import numpy as np

from repro.apps import CarFinder, ParkingBillingService, RedLightDetector, TagObservation
from repro.channel.geometry import RoadSegment
from repro.core import LaneProjectionLocalizer, ReaderNetwork, ReaderStation
from repro.sim.scenario import corridor_scene
from repro.sim.traffic import TrafficLight

LANES = (-1.75, -5.25)


def parking_and_car_finder() -> None:
    print("=== Corridor network: parking billing + find-my-car ===")
    cars = [(-6.0, 0), (5.0, 1), (26.0, 0)]
    scene = corridor_scene(
        pole_xs_m=[0.0, 24.0],
        lane_ys_m=list(LANES),
        cars=cars,
        rng=21,
    )
    network = ReaderNetwork(max_queries=32)
    # Each pole owns a coverage cell: fixes outside it are left to the
    # neighbor with better geometry (AoA error grows with range).
    cells = ((scene.road.x_min_m, 12.0), (12.0, scene.road.x_max_m))
    for index, (name, cell) in enumerate(zip(("pole-west", "pole-east"), cells)):
        sim = scene.simulator(index, rng=50 + index)
        cell_road = RoadSegment(
            x_min_m=cell[0],
            x_max_m=cell[1],
            y_center_m=scene.road.y_center_m,
            width_m=scene.road.width_m,
        )
        network.add_station(
            ReaderStation(
                name=name,
                reader=scene.reader(index),
                query_fn=sim.query,
                localizer=LaneProjectionLocalizer(road=cell_road, lane_ys_m=LANES),
            )
        )

    finder = network.subscribe(CarFinder())
    spots = {i: tag.position_m[:2] for i, tag in enumerate(scene.tags)}
    parking = network.subscribe(
        ParkingBillingService(spot_positions_m=spots, rate_per_hour=3.0)
    )

    for round_index, t in enumerate((0.0, 120.0, 240.0)):
        reports = network.step(t)
        decoded = sum(len(r.decode_results) for r in reports)
        observed = sum(len(r.observations) for r in reports)
        print(
            f"round {round_index} (t={t:5.0f} s): "
            f"{observed} observations, {decoded} fresh decodes "
            f"({'identities cached' if decoded == 0 else 'decoding new tags'})"
        )

    print(f"occupied spots: {sorted(parking.occupancy())}")
    for tag in scene.tags:
        fix = finder.locate(tag.packet.tag_id)
        err = np.linalg.norm(fix.position_m - tag.position_m[:2])
        print(
            f"  account {tag.packet.tag_id}: last seen at "
            f"({fix.position_m[0]:6.2f}, {fix.position_m[1]:6.2f}) m "
            f"[error {err * 100:.0f} cm]"
        )

    # The east car drives away; its parking session times out and bills.
    bills = parking.sweep(now_s=240.0 + 180.0)
    print(f"bills issued after sweep: {len(bills)}")
    for bill in bills:
        print(
            f"  account {bill.tag_id}: spot {bill.spot_index}, "
            f"{bill.duration_s / 60:.0f} min -> ${bill.amount:.2f}"
        )


def red_light_via_network() -> None:
    print("\n=== Single-pole red-light enforcement via the network ===")
    light = TrafficLight(green_s=30.0, yellow_s=3.0, red_s=27.0)
    stop_line_x = 8.0
    detector = RedLightDetector(light=light, stop_line_x_m=stop_line_x)

    # One car crossing the stop line during the red phase (t ~ 42 s,
    # 6 m/s): the network localizes it from the stop-line pole alone.
    speed = 6.0
    times = (41.0, 43.0)
    xs = [stop_line_x + speed * (t - 42.0) for t in times]

    violations = 0
    network = ReaderNetwork(max_queries=32)

    def scene_at(x: float):
        scene = corridor_scene(
            pole_xs_m=[stop_line_x],
            lane_ys_m=[LANES[0]],
            cars=[(x, 0)],
            rng=23,
        )
        return scene

    scene0 = scene_at(xs[0])
    car_packet = scene0.tags[0].packet
    finder = network.subscribe(CarFinder())
    station = network.add_station(
        ReaderStation(
            name="stop-line-pole",
            reader=scene0.reader(0),
            query_fn=scene0.simulator(0, rng=60).query,
            localizer=LaneProjectionLocalizer(road=scene0.road, lane_ys_m=(LANES[0],)),
        )
    )

    for t, x in zip(times, xs):
        scene = scene_at(x)
        scene.tags[0].packet = car_packet
        station.query_fn = scene.simulator(0, rng=60 + int(t)).query
        network.step(t)
        fix = finder.locate(car_packet.tag_id)
        print(
            f"t = {t:4.1f} s ({light.phase(t)}): car at x = {fix.position_m[0]:6.2f} m "
            f"(true {x:6.2f} m)"
        )
        ticket = detector.observe(
            TagObservation(
                tag_id=car_packet.tag_id,
                position_m=fix.position_m,
                timestamp_s=t,
            )
        )
        if ticket:
            violations += 1
            print(
                f"  -> TICKET: account {ticket.tag_id} crossed at "
                f"t = {ticket.crossed_at_s:.2f} s ({ticket.phase}) doing "
                f"{ticket.speed_m_s:.1f} m/s"
            )
    print(f"violations recorded: {violations} (expected: 1)")


def main() -> None:
    parking_and_car_finder()
    red_light_via_network()


if __name__ == "__main__":
    main()
