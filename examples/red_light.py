#!/usr/bin/env python
"""Red-light enforcement (§1): full pipeline from collisions to tickets.

A reader pair watches the approach to a signalized stop line. Cars are
tracked by localizing their transponders from collisions as they
approach; the :class:`RedLightDetector` interpolates stop-line crossings
and checks them against the light's phase. A law-abiding car and a
red-light runner drive through; only the runner is ticketed, *with its
decoded account id* — no camera, no officer.

Run:  python examples/red_light.py
"""

import numpy as np

from repro.apps import RedLightDetector, TagObservation
from repro.core import AoAEstimator, ReaderGeometry, TwoReaderLocalizer
from repro.sim.mobility import ConstantSpeedTrajectory
from repro.sim.scenario import Scene, make_tags, two_pole_speed_scene
from repro.sim.traffic import TrafficLight


def track_drive_by(arrays, road, trajectory, tag_seed, sample_xs):
    """Localize one car at several positions along its approach."""
    estimators = [AoAEstimator(a) for a in arrays]
    localizer = TwoReaderLocalizer(
        ReaderGeometry(arrays[0], road), ReaderGeometry(arrays[1], road)
    )
    fixes = []
    rng = np.random.default_rng(tag_seed)
    # One car = one transponder; only its position changes between probes.
    car_tag = make_tags(trajectory.start_m[None, :], rng=rng)[0]
    for x_probe in sample_xs:
        t = (x_probe - trajectory.start_m[0]) / trajectory.velocity_m_s[0]
        position = trajectory.position(t)
        car_tag.position_m = position
        scene = Scene(tags=[car_tag], road=road, arrays=arrays)
        col_a = scene.simulator(0, rng=rng).query(t)
        col_b = scene.simulator(1, rng=rng).query(t)
        aoa_a = estimators[0].estimate_all(col_a)[0]
        aoa_b = estimators[1].estimate_all(col_b)[0]
        fix = localizer.locate(aoa_a, aoa_b, estimators[0], estimators[1],
                               hint_xy=position[:2])
        fixes.append((t, fix, car_tag.packet.tag_id))
    return fixes


def main() -> None:
    # Stop line at x = 30 m; the reader station straddles x ~ 0-5 m.
    arrays, road = two_pole_speed_scene(baseline_m=60.0)
    arrays = arrays[:2]
    light = TrafficLight(green_s=30.0, yellow_s=3.0, red_s=27.0)
    detector = RedLightDetector(light=light, stop_line_x_m=30.0)

    print("=== Red-light enforcement ===")
    print("light: green 0-30 s, yellow 30-33 s, red 33-60 s; stop line at x = 30 m")

    # Car A crosses at ~t=12 (green); car B crosses at ~t=45 (red).
    runs = [
        ("law-abiding", 10.0, 12.0, 101),
        ("red-light runner", 12.0, 45.0, 202),
    ]
    for label, speed, crossing_t, seed in runs:
        start_x = 30.0 - speed * crossing_t
        trajectory = ConstantSpeedTrajectory(
            start_m=np.array([start_x, -1.8, 1.0]),
            velocity_m_s=np.array([speed, 0.0, 0.0]),
        )
        fixes = track_drive_by(arrays, road, trajectory, seed, sample_xs=(20.0, 38.0))
        print(f"\n{label} (true crossing at t = {crossing_t:.0f} s, "
              f"{speed:.0f} m/s):")
        ticket = None
        for t, fix, tag_id in fixes:
            print(f"  t = {t:6.2f} s: localized at x = {fix[0]:6.2f} m")
            ticket = detector.observe(
                TagObservation(tag_id=tag_id, position_m=fix, timestamp_s=t)
            ) or ticket
        if ticket:
            print(f"  -> TICKET: account {ticket.tag_id} crossed at "
                  f"t = {ticket.crossed_at_s:.2f} s ({ticket.phase}) doing "
                  f"{ticket.speed_m_s:.1f} m/s")
        else:
            print("  -> no violation")

    print(f"\nviolations recorded: {len(detector.violations)} (expected: 1)")


if __name__ == "__main__":
    main()
