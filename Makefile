# Developer entrypoints. `make check` is the gate a change must pass:
# lint (unused imports fail fast) + the domain-aware static analysis
# suite (determinism, unit suffixes, RNG policy, ablation API — see
# docs/ANALYSIS.md) + the full tier-1 test suite. `make check-fast` is
# the per-push CI tier: it deselects the `slow` whole-corridor
# simulations (the nightly schedule runs everything plus the perf-gate
# benchmarks).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check check-fast check-docs lint analyze test test-fast bench

check: lint analyze test

check-fast: lint analyze test-fast

# Docs tier: intra-repo links must resolve and the city-mesh example
# must run end to end (short simulation via REPRO_MESH_DURATION_S).
check-docs:
	$(PYTHON) tools/check_links.py
	REPRO_MESH_DURATION_S=12 $(PYTHON) examples/city_mesh.py

lint:
	$(PYTHON) tools/lint.py

# Static analysis suite (`python -m tools.analyze`): zero unbaselined
# findings or the build fails. The JSON report is the CI artifact.
analyze:
	$(PYTHON) -m tools.analyze --json benchmarks/results/ANALYZE_findings.json

test:
	$(PYTHON) -m pytest -x -q

test-fast:
	$(PYTHON) -m pytest -x -q -m "not slow"

# Paper-figure regeneration (slow). REPRO_BENCH_SCALE scales MC runs.
bench:
	$(PYTHON) -m pytest benchmarks -q \
		-o python_files='bench_*.py' -o python_functions='bench_*' \
		-p no:cacheprovider
