# Developer entrypoints. `make check` is the gate a change must pass:
# lint (unused imports fail fast) + the full tier-1 test suite.
# `make check-fast` is the per-push CI tier: it deselects the `slow`
# whole-corridor simulations (the nightly schedule runs everything plus
# the perf-gate benchmarks).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check check-fast check-docs lint test test-fast bench

check: lint test

check-fast: lint test-fast

# Docs tier: intra-repo links must resolve and the city-mesh example
# must run end to end (short simulation via REPRO_MESH_DURATION_S).
check-docs:
	$(PYTHON) tools/check_links.py
	REPRO_MESH_DURATION_S=12 $(PYTHON) examples/city_mesh.py

lint:
	$(PYTHON) tools/lint.py

test:
	$(PYTHON) -m pytest -x -q

test-fast:
	$(PYTHON) -m pytest -x -q -m "not slow"

# Paper-figure regeneration (slow). REPRO_BENCH_SCALE scales MC runs.
bench:
	$(PYTHON) -m pytest benchmarks -q \
		-o python_files='bench_*.py' -o python_functions='bench_*' \
		-p no:cacheprovider
