# Developer entrypoints. `make check` is the gate a change must pass:
# lint (unused imports fail fast) + the tier-1 test suite.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check lint test bench

check: lint test

lint:
	$(PYTHON) tools/lint.py

test:
	$(PYTHON) -m pytest -x -q

# Paper-figure regeneration (slow). REPRO_BENCH_SCALE scales MC runs.
bench:
	$(PYTHON) -m pytest benchmarks -q \
		-o python_files='bench_*.py' -o python_functions='bench_*' \
		-p no:cacheprovider
