"""Unit tests for repro.core.mac and repro.sim.medium (§9)."""

import pytest

from repro.constants import CSMA_LISTEN_S, QUERY_DURATION_S, TURNAROUND_S
from repro.core.mac import CsmaState, ReaderMac
from repro.errors import ConfigurationError
from repro.sim.medium import Medium, ReaderNode, Transmission, TxKind


class TestCsmaState:
    def test_idle_forever_when_silent(self):
        assert CsmaState().idle_since(5.0) == float("inf")

    def test_busy_interval_blocks(self):
        state = CsmaState()
        state.add_busy(1.0, 2.0)
        assert state.idle_since(1.5) == 0.0

    def test_idle_after_interval(self):
        state = CsmaState()
        state.add_busy(1.0, 2.0)
        assert state.idle_since(2.5) == pytest.approx(0.5)

    def test_intervals_merge(self):
        state = CsmaState()
        state.add_busy(1.0, 2.0)
        state.add_busy(1.5, 3.0)
        assert state.busy_intervals == [(1.0, 3.0)]

    def test_disjoint_intervals_kept(self):
        state = CsmaState()
        state.add_busy(1.0, 2.0)
        state.add_busy(5.0, 6.0)
        assert len(state.busy_intervals) == 2

    def test_empty_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            CsmaState().add_busy(2.0, 2.0)


class TestReaderMac:
    def test_listen_window_is_120us(self):
        assert CSMA_LISTEN_S == pytest.approx(120e-6)
        assert ReaderMac().listen_s == pytest.approx(QUERY_DURATION_S + TURNAROUND_S)

    def test_transmit_allowed_on_silent_medium(self):
        assert ReaderMac().can_transmit(0.0, CsmaState())

    def test_blocked_right_after_activity(self):
        state = CsmaState()
        state.add_busy(0.0, 1e-3)
        mac = ReaderMac()
        assert not mac.can_transmit(1e-3 + 50e-6, state)

    def test_allowed_after_full_listen(self):
        state = CsmaState()
        state.add_busy(0.0, 1e-3)
        mac = ReaderMac()
        assert mac.can_transmit(1e-3 + 121e-6, state)

    def test_next_opportunity(self):
        state = CsmaState()
        state.add_busy(0.0, 1e-3)
        mac = ReaderMac()
        t = mac.next_opportunity(1e-3, state)
        assert t == pytest.approx(1e-3 + CSMA_LISTEN_S)
        assert mac.can_transmit(t, state)

    def test_guaranteed_safe_predicate(self):
        mac = ReaderMac()
        assert mac.guaranteed_safe(130e-6)
        assert not mac.guaranteed_safe(100e-6)


class TestMedium:
    def test_csma_avoids_query_response_corruption(self):
        """§9's claim: with the 120 us listen rule, no reader query ever
        lands on top of a tag response."""
        medium = Medium(n_tags=3, rng=1)
        for name in ("A", "B", "C"):
            medium.add_reader(ReaderNode(name=name, use_csma=True))
        stats = medium.run(duration_s=0.5)
        assert stats["responses"] > 100
        assert stats["corrupted_responses"] == 0

    def test_blind_readers_corrupt_responses(self):
        """Without carrier sense, queries land inside response windows."""
        medium = Medium(n_tags=3, rng=2)
        for name in ("A", "B", "C"):
            medium.add_reader(ReaderNode(name=name, use_csma=False))
        stats = medium.run(duration_s=0.5)
        assert stats["corrupted_responses"] > 0

    def test_csma_defers_sometimes(self):
        medium = Medium(n_tags=2, rng=3)
        medium.add_reader(ReaderNode(name="A", use_csma=True, query_interval_s=0.7e-3))
        medium.add_reader(ReaderNode(name="B", use_csma=True, query_interval_s=0.7e-3))
        stats = medium.run(duration_s=0.5)
        assert stats["queries_deferred"] > 0
        assert stats["corrupted_responses"] == 0

    def test_queries_trigger_responses(self):
        medium = Medium(n_tags=4, rng=4)
        medium.add_reader(ReaderNode(name="A"))
        stats = medium.run(duration_s=0.1)
        assert stats["responses"] == 4 * stats["queries_sent"]

    def test_single_reader_never_defers(self):
        medium = Medium(n_tags=1, rng=5)
        medium.add_reader(ReaderNode(name="solo", query_interval_s=2e-3))
        stats = medium.run(duration_s=0.2)
        assert stats["queries_deferred"] == 0
        assert stats["corrupted_responses"] == 0

    def test_transmission_overlap_logic(self):
        a = Transmission(TxKind.QUERY, "A", 0.0, 1.0)
        b = Transmission(TxKind.RESPONSE, "t", 0.5, 1.5)
        c = Transmission(TxKind.RESPONSE, "t", 1.0, 2.0)
        assert a.overlaps(b)
        assert not a.overlaps(c)
