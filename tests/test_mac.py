"""Unit tests for repro.core.mac and repro.sim.medium (§9)."""

import pytest

from repro.constants import (
    CSMA_LISTEN_S,
    QUERY_DURATION_S,
    RESPONSE_DURATION_S,
    TURNAROUND_S,
)
from repro.core.mac import CsmaState, ReaderMac
from repro.errors import ConfigurationError
from repro.sim.medium import AirLog, Medium, ReaderNode, Transmission, TxKind


class TestCsmaState:
    def test_idle_forever_when_silent(self):
        assert CsmaState().idle_since(5.0) == float("inf")

    def test_busy_interval_blocks(self):
        state = CsmaState()
        state.add_busy(1.0, 2.0)
        assert state.idle_since(1.5) == 0.0

    def test_idle_after_interval(self):
        state = CsmaState()
        state.add_busy(1.0, 2.0)
        assert state.idle_since(2.5) == pytest.approx(0.5)

    def test_intervals_merge(self):
        state = CsmaState()
        state.add_busy(1.0, 2.0)
        state.add_busy(1.5, 3.0)
        assert state.busy_intervals == [(1.0, 3.0)]

    def test_disjoint_intervals_kept(self):
        state = CsmaState()
        state.add_busy(1.0, 2.0)
        state.add_busy(5.0, 6.0)
        assert len(state.busy_intervals) == 2

    def test_empty_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            CsmaState().add_busy(2.0, 2.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            CsmaState().add_busy(1.0, 2.0, kind="chirp")

    def test_interval_ending_exactly_at_t_is_zero_idle(self):
        """A transmission ending exactly at ``t_s`` means the medium has
        been idle for zero time — the listen window starts over."""
        state = CsmaState()
        state.add_busy(1.0, 2.0)
        assert state.idle_since(2.0) == 0.0
        assert not ReaderMac().can_transmit(2.0, state)
        assert not ReaderMac(defer_to_queries=True).can_transmit(2.0, state)

    def test_abutting_intervals_merge(self):
        """Back-to-back energy is one continuous busy stretch."""
        state = CsmaState()
        state.add_busy(1.0, 2.0)
        state.add_busy(2.0, 3.0)
        assert state.busy_intervals == [(1.0, 3.0)]
        assert state.idle_since(3.0) == 0.0
        assert state.idle_since(3.5) == pytest.approx(0.5)

    def test_response_energy_subtracts_query_spans(self):
        state = CsmaState()
        state.add_busy(1.0, 4.0)  # unknown energy
        state.add_busy(2.0, 3.0, kind="query")
        assert state.response_energy_intervals() == [(1.0, 2.0), (3.0, 4.0)]

    def test_pure_query_energy_leaves_no_response_energy(self):
        state = CsmaState()
        state.add_busy(1.0, 2.0, kind="query")
        assert state.response_energy_intervals() == []
        assert state.response_idle_since(5.0) == float("inf")

    def test_response_windows_follow_each_query(self):
        state = CsmaState()
        state.add_busy(0.0, 20e-6, kind="query")
        (window,) = state.response_windows()
        assert window[0] == pytest.approx(20e-6 + TURNAROUND_S)
        assert window[1] == pytest.approx(20e-6 + TURNAROUND_S + RESPONSE_DURATION_S)


class TestReaderMac:
    def test_listen_window_is_120us(self):
        assert CSMA_LISTEN_S == pytest.approx(120e-6)
        assert ReaderMac().listen_s == pytest.approx(QUERY_DURATION_S + TURNAROUND_S)

    def test_transmit_allowed_on_silent_medium(self):
        assert ReaderMac().can_transmit(0.0, CsmaState())

    def test_blocked_right_after_activity(self):
        state = CsmaState()
        state.add_busy(0.0, 1e-3)
        mac = ReaderMac()
        assert not mac.can_transmit(1e-3 + 50e-6, state)

    def test_allowed_after_full_listen(self):
        state = CsmaState()
        state.add_busy(0.0, 1e-3)
        mac = ReaderMac()
        assert mac.can_transmit(1e-3 + 121e-6, state)

    def test_next_opportunity(self):
        state = CsmaState()
        state.add_busy(0.0, 1e-3)
        mac = ReaderMac()
        t = mac.next_opportunity(1e-3, state)
        assert t == pytest.approx(1e-3 + CSMA_LISTEN_S)
        assert mac.can_transmit(t, state)

    def test_guaranteed_safe_predicate(self):
        mac = ReaderMac()
        assert mac.guaranteed_safe(130e-6)
        assert not mac.guaranteed_safe(100e-6)


class TestDeferToQueriesPolicies:
    """The §9 refinement: classified query energy is benign, and the
    ``defer_to_queries=True`` ablation treats it like any other energy."""

    def query_just_ended(self, end_s=1.0):
        state = CsmaState()
        state.add_busy(end_s - QUERY_DURATION_S, end_s, kind="query")
        return state

    def test_default_policy_ignores_query_energy(self):
        """Right after another reader's query ends, a §9 reader may
        transmit — its own 20 µs query finishes before the other
        query's response slot opens."""
        state = self.query_just_ended(1.0)
        assert ReaderMac().can_transmit(1.0 + 10e-6, state)

    def test_ablation_policy_defers_to_query_energy(self):
        state = self.query_just_ended(1.0)
        mac = ReaderMac(defer_to_queries=True)
        assert not mac.can_transmit(1.0 + 10e-6, state)
        assert mac.can_transmit(1.0 + CSMA_LISTEN_S + 1e-9, state)

    def test_default_policy_honors_response_window(self):
        """The query may not land inside the response slot a heard query
        opened (that is the §9 harmful case)."""
        state = self.query_just_ended(1.0)
        inside = 1.0 + TURNAROUND_S + 50e-6
        assert not ReaderMac().can_transmit(inside, state)

    def test_default_policy_keeps_own_slot_clear_of_announced_queries(self):
        """A reader never invites responses into a query it already
        knows is coming (an announced burst query)."""
        state = CsmaState()
        now = 1.0
        state.add_busy(now + 300e-6, now + 320e-6, kind="query")  # announced
        mac = ReaderMac()
        assert not mac.can_transmit(now, state)  # slot would cover it
        t = mac.next_opportunity(now, state)
        assert t > now
        assert mac.can_transmit(t, state)

    def test_both_policies_defer_to_unclassified_energy(self):
        state = CsmaState()
        state.add_busy(1.0 - 50e-6, 1.0)  # unknown kind
        assert not ReaderMac().can_transmit(1.0 + 50e-6, state)
        assert not ReaderMac(defer_to_queries=True).can_transmit(1.0 + 50e-6, state)

    def test_next_opportunity_agrees_with_can_transmit(self):
        for defer in (False, True):
            state = CsmaState()
            state.add_busy(0.0, 1e-3)
            state.add_busy(2e-3, 2.02e-3, kind="query")
            mac = ReaderMac(defer_to_queries=defer)
            t = mac.next_opportunity(1e-3, state)
            assert mac.can_transmit(t, state)


class TestAirLog:
    def test_heard_state_classifies_kinds(self):
        air = AirLog()
        air.record_query("A", 0.0)
        air.record_response("tag0", 120e-6)
        state = air.heard_state(1e-3)
        assert state.query_spans() == [(0.0, QUERY_DURATION_S)]
        assert state.response_energy_intervals() == [
            (120e-6, 120e-6 + RESPONSE_DURATION_S)
        ]

    def test_announced_transmissions_visible(self):
        """Future-start recorded transmissions (a burst's remaining
        queries) are part of the carrier-sense picture."""
        air = AirLog()
        air.record_query("A", 5e-3)
        state = air.heard_state(1e-3)
        assert state.query_spans() == [(5e-3, 5e-3 + QUERY_DURATION_S)]
        # ... but future energy does not reset the idle clock.
        assert state.idle_since(1e-3) == float("inf")

    def test_corruption_accounting(self):
        air = AirLog()
        response = air.record_response("tag0", 0.0)
        air.record_query("B", 100e-6)  # lands inside the response
        assert air.corrupted_responses() == [response]
        assert air.response_corrupted(response)

    def test_horizon_drops_ancient_history(self):
        air = AirLog()
        air.record_query("A", 0.0)
        state = air.heard_state(1.0, horizon_s=10e-3)
        assert state.busy_intervals == []

    def test_distance_gates_sensing_and_corruption(self):
        """Mesh worlds: a far-away street's query is neither carrier-
        sensed nor able to corrupt a response; placing it near restores
        the single-street behavior; positions or range missing mean
        'audible everywhere' (the pre-mesh default, unchanged)."""
        air = AirLog()
        air.record_query("far", 100e-6, x_m=2000.0)
        response = air.record_response("tag0", 0.0, x_m=0.0)
        # A listener at x=0 with a 500 m hearing range hears the nearby
        # response but not the distant query.
        state = air.heard_state(1e-3, x_m=0.0, hear_range_m=500.0)
        assert state.query_spans() == []
        assert state.response_energy_intervals() == [(0.0, RESPONSE_DURATION_S)]
        assert not air.any_query_overlapping(
            response.start_s, response.end_s, x_m=0.0, hear_range_m=500.0
        )
        assert air.corrupted_responses(interference_range_m=500.0) == []
        assert not air.response_corrupted(response, interference_range_m=500.0)
        # The same query placed nearby is heard and corrupts.
        near = air.record_query("near", 150e-6, x_m=100.0)
        assert air.any_query_overlapping(
            response.start_s, response.end_s, x_m=0.0, hear_range_m=500.0
        )
        assert air.corrupted_responses(interference_range_m=500.0) == [response]
        # Without a range (or without positions), everything interferes.
        assert air.corrupted_responses() == [response]
        legacy = AirLog()
        legacy_response = legacy.record_response("tag0", 0.0)
        legacy.record_query("B", 100e-6)
        assert legacy.corrupted_responses(interference_range_m=1.0) == [
            legacy_response
        ]
        assert near.reaches(0.0, 500.0)


class TestMedium:
    def test_csma_avoids_query_response_corruption(self):
        """§9's claim: with the 120 us listen rule, no reader query ever
        lands on top of a tag response."""
        medium = Medium(n_tags=3, rng=1)
        for name in ("A", "B", "C"):
            medium.add_reader(ReaderNode(name=name, use_csma=True))
        stats = medium.run(duration_s=0.5)
        assert stats["responses"] > 100
        assert stats["corrupted_responses"] == 0

    def test_blind_readers_corrupt_responses(self):
        """Without carrier sense, queries land inside response windows."""
        medium = Medium(n_tags=3, rng=2)
        for name in ("A", "B", "C"):
            medium.add_reader(ReaderNode(name=name, use_csma=False))
        stats = medium.run(duration_s=0.5)
        assert stats["corrupted_responses"] > 0

    def test_csma_defers_sometimes(self):
        medium = Medium(n_tags=2, rng=3)
        medium.add_reader(ReaderNode(name="A", use_csma=True, query_interval_s=0.7e-3))
        medium.add_reader(ReaderNode(name="B", use_csma=True, query_interval_s=0.7e-3))
        stats = medium.run(duration_s=0.5)
        assert stats["queries_deferred"] > 0
        assert stats["corrupted_responses"] == 0

    def test_queries_trigger_responses(self):
        medium = Medium(n_tags=4, rng=4)
        medium.add_reader(ReaderNode(name="A"))
        stats = medium.run(duration_s=0.1)
        assert stats["responses"] == 4 * stats["queries_sent"]

    def test_single_reader_never_defers(self):
        medium = Medium(n_tags=1, rng=5)
        medium.add_reader(ReaderNode(name="solo", query_interval_s=2e-3))
        stats = medium.run(duration_s=0.2)
        assert stats["queries_deferred"] == 0
        assert stats["corrupted_responses"] == 0

    def test_transmission_overlap_logic(self):
        a = Transmission(TxKind.QUERY, "A", 0.0, 1.0)
        b = Transmission(TxKind.RESPONSE, "t", 0.5, 1.5)
        c = Transmission(TxKind.RESPONSE, "t", 1.0, 2.0)
        assert a.overlaps(b)
        assert not a.overlaps(c)
