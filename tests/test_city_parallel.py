"""The sharded mesh engine: partition, itinerary, invariance, merge.

The contract under test (see ``src/repro/sim/city/parallel.py``):

* the serial :meth:`CityMesh.run` is untouched reference semantics —
  its output is golden-pinned against the pre-sharding behavior;
* ``run_sharded`` is worker-count invariant bit-for-bit: every worker
  count (and the forkless in-process mode) produces identical
  summaries, merged ledgers, and metrics snapshots;
* car motion is radio-free, so the coordinator's precomputed itinerary
  reproduces the serial mesh's traffic exactly (counters, cell entries);
* the interference partition is derived from geometry, not assumed.
"""

from __future__ import annotations

import hashlib
import json
from types import SimpleNamespace

import pytest

from repro.errors import ConfigurationError
from repro.obs import Obs
from repro.sim.city import downtown_grid, interference_groups, run_sharded
from repro.sim.city.parallel import _quantum_boundaries

from tests.test_city_mesh import chain_mesh

#: sha256 of the serial chain mesh's summary JSON (push, seed 7, 16 s),
#: captured on the commit *before* the sharding engine landed and
#: verified identical after: the sharded PR may not move the serial
#: golden path by a bit.
SERIAL_GOLDEN_SHA256 = (
    "2b6c318a25fd44da14257b45d9d4e4be517043ce2e32f06907bbfea3f12b4974"
)


def summary_json(result) -> str:
    # NaN-tolerant canonical form (an edge with no identified tags has
    # NaN means; as JSON text they compare equal).
    return json.dumps(result.summary(), sort_keys=True)


class TestInterferenceGroups:
    def test_standard_layout_is_all_singletons(self):
        mesh = downtown_grid(2, 3, rng=0)
        groups = interference_groups(mesh)
        assert groups == [[name] for name in sorted(mesh.edges)]

    def test_groups_cover_every_edge_exactly_once(self):
        mesh = chain_mesh("push", seed=3)
        groups = interference_groups(mesh)
        flat = [name for group in groups for name in group]
        assert sorted(flat) == sorted(mesh.edges)

    def test_overlapping_frames_merge_into_one_group(self):
        # The real mesh validator forbids this layout; feed the
        # partition a geometry stub to exercise the coupled path.
        def fake_edge(x0, x1):
            return SimpleNamespace(entry_x_m=x0, exit_x_m=x1)

        mesh = SimpleNamespace(
            edges={
                "a": fake_edge(0.0, 100.0),
                "b": fake_edge(150.0, 250.0),  # 50 m gap: couples with a
                "c": fake_edge(5000.0, 5100.0),  # far: own group
            },
            interference_range_m=500.0,
        )
        assert interference_groups(mesh) == [["a", "b"], ["c"]]


class TestQuantumBoundaries:
    def test_covers_duration_exactly_once(self):
        ts = _quantum_boundaries(1.0, 0.25)
        assert ts == [0.25, 0.5, 0.75, 1.0]

    def test_non_divisible_duration_ends_on_duration(self):
        ts = _quantum_boundaries(0.9, 0.25)
        assert ts[-1] == 0.9
        assert ts[:-1] == [0.25, 0.5, 0.75]

    def test_short_run_is_one_barrier(self):
        assert _quantum_boundaries(0.1, 0.25) == [0.1]


class TestSerialGoldenPin:
    @pytest.mark.slow
    def test_serial_mesh_unchanged_by_sharding_pr(self):
        result = chain_mesh("push", seed=7).run(16.0)
        digest = hashlib.sha256(summary_json(result).encode()).hexdigest()
        assert digest == SERIAL_GOLDEN_SHA256


class TestItineraryFidelity:
    @pytest.mark.slow
    def test_sharded_traffic_matches_serial_exactly(self):
        """Car motion never depends on radio events, so the sharded
        itinerary reproduces the serial counters and cell crossings
        bit-for-bit even though radio streams differ."""
        serial = downtown_grid(2, 2, rng=11, rate_per_s=0.5).run(8.0)
        sharded = run_sharded(
            downtown_grid(2, 2, rng=11, rate_per_s=0.5), 8.0, workers=2
        )
        assert sharded.cars_injected == serial.cars_injected
        assert sharded.cars_transferred == serial.cars_transferred
        assert sharded.cars_departed == serial.cars_departed
        assert sorted(sharded.ledger.cell_entries) == sorted(
            serial.ledger.cell_entries
        )
        assert sorted(sharded.ledger.cell_exits) == sorted(
            serial.ledger.cell_exits
        )


def run_grid(workers, *, in_process=False, with_obs=False, seed=11):
    obs = Obs() if with_obs else None
    mesh = downtown_grid(2, 2, rng=seed, rate_per_s=0.5, obs=obs)
    result = run_sharded(
        mesh,
        6.0,
        workers=workers,
        in_process=in_process,
        shard_obs_factory=Obs if with_obs else None,
    )
    return result, obs


class TestWorkerCountInvariance:
    @pytest.mark.slow
    def test_1_vs_2_vs_4_workers_bit_identical(self):
        results = {}
        for workers in (1, 2, 4):
            result, obs = run_grid(workers, with_obs=True)
            results[workers] = (
                summary_json(result),
                result.ledger.records,
                result.ledger.pushes,
                result.ledger.push_misses,
                obs.metrics.snapshot_json(),
                result.events_processed,
            )
        assert results[1] == results[2] == results[4]

    @pytest.mark.slow
    def test_in_process_matches_forked(self):
        forked, _ = run_grid(2)
        local, _ = run_grid(2, in_process=True)
        assert summary_json(forked) == summary_json(local)
        assert forked.ledger.records == local.ledger.records

    @pytest.mark.slow
    def test_sharded_run_is_seed_deterministic(self):
        first, _ = run_grid(2)
        second, _ = run_grid(2)
        assert summary_json(first) == summary_json(second)


class TestMergedResultShape:
    @pytest.mark.slow
    def test_merge_produces_mesh_wide_views(self):
        result, _ = run_grid(2)
        # Every edge result references the one merged ledger, as the
        # serial mesh's shared-ledger structure does.
        for edge_result in result.edges.values():
            assert edge_result.ledger is result.ledger
        # The partition is recorded, and the work proxy covers it.
        assert sorted(k for g in result.groups for k in g) == sorted(result.edges)
        assert set(result.events_processed) == {g[0] for g in result.groups}
        assert all(n > 0 for n in result.events_processed.values())
        # Cross-corridor accounting ran on the merged ledger.
        summary = result.summary()
        assert "cross_corridor" in summary
        assert summary["handoff_ledger"]["sightings"] == len(result.ledger.records)

    @pytest.mark.slow
    def test_redecode_classification_is_global(self):
        """A tag decoded on one shard then re-decoded on another must be
        classified 'redecode' in the merged ledger — shard-local ledgers
        cannot know, the merge replay must."""
        result, _ = run_grid(2, seed=11)
        by_tag = {}
        for record in sorted(result.ledger.records, key=lambda r: r.t_s):
            if record.tag_id is None:
                continue
            stations = by_tag.setdefault(record.tag_id, [])
            if record.kind in ("decode", "redecode"):
                # Any decode after the tag was known at another station
                # must have been reclassified.
                known_elsewhere = any(s != record.station for s in stations)
                if known_elsewhere:
                    assert record.kind == "redecode"
            stations.append(record.station)


class TestGuards:
    def test_runs_once(self):
        mesh = downtown_grid(1, 1, rng=0)
        run_sharded(mesh, 0.5, workers=1, in_process=True)
        with pytest.raises(ConfigurationError):
            run_sharded(mesh, 0.5, workers=1, in_process=True)
        with pytest.raises(ConfigurationError):
            mesh.run(0.5)

    def test_rejects_services(self):
        mesh = downtown_grid(1, 1, rng=0)
        mesh.subscribe(SimpleNamespace(observe=lambda *a, **k: None))
        with pytest.raises(ConfigurationError):
            run_sharded(mesh, 0.5, workers=1, in_process=True)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            run_sharded(downtown_grid(1, 1, rng=0), 0.5, workers=0)
        with pytest.raises(ConfigurationError):
            run_sharded(
                downtown_grid(1, 1, rng=0), 0.5, workers=1, sync_quantum_s=0.0
            )


class TestDowntownGrid:
    def test_grid_shape(self):
        mesh = downtown_grid(3, 4, rng=0)
        assert len(mesh.edges) == 12
        # Paired avenues share junctions: 2 junction rows x 2 pairs.
        assert len(mesh.nodes) == 4
        # One traffic source per avenue.
        assert len(mesh._sources) == 4

    def test_single_block_grid_runs(self):
        result = run_sharded(
            downtown_grid(1, 2, rng=3), 2.0, workers=2, in_process=True
        )
        assert result.duration_s == 2.0

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            downtown_grid(0, 1)
