"""Unit tests for repro.phy.manchester."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ModulationError
from repro.phy.manchester import (
    manchester_decode,
    manchester_encode,
    manchester_soft_decode,
)


class TestEncode:
    def test_one_becomes_10(self):
        assert list(manchester_encode(np.array([1]))) == [1, 0]

    def test_zero_becomes_01(self):
        assert list(manchester_encode(np.array([0]))) == [0, 1]

    def test_length_doubles(self):
        assert manchester_encode(np.zeros(100, dtype=np.uint8)).size == 200

    def test_dc_balance(self):
        """The Manchester guarantee behind Eq 5: exactly half the chips
        are on for ANY bit pattern."""
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, size=256)
        chips = manchester_encode(bits)
        assert chips.mean() == pytest.approx(0.5)

    def test_rejects_non_binary(self):
        with pytest.raises(ModulationError):
            manchester_encode(np.array([0, 2]))


class TestDecode:
    def test_roundtrip(self):
        bits = np.array([1, 0, 1, 1, 0], dtype=np.uint8)
        assert np.array_equal(manchester_decode(manchester_encode(bits)), bits)

    def test_rejects_odd_length(self):
        with pytest.raises(ModulationError):
            manchester_decode(np.array([1, 0, 1]))

    def test_rejects_invalid_pair(self):
        with pytest.raises(ModulationError):
            manchester_decode(np.array([1, 1]))

    def test_rejects_00_pair(self):
        with pytest.raises(ModulationError):
            manchester_decode(np.array([1, 0, 0, 0]))

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=256))
    def test_roundtrip_property(self, bits):
        bits = np.array(bits, dtype=np.uint8)
        assert np.array_equal(manchester_decode(manchester_encode(bits)), bits)


class TestSoftDecode:
    def test_clean_soft_values(self):
        bits = np.array([1, 0, 0, 1], dtype=np.uint8)
        soft = manchester_encode(bits).astype(float)
        assert np.array_equal(manchester_soft_decode(soft), bits)

    def test_dc_offset_invariance(self):
        """The decoder's DC immunity is what lets §8 ignore the OOK 0.5
        pedestal after averaging."""
        bits = np.array([1, 0, 1], dtype=np.uint8)
        soft = manchester_encode(bits).astype(float) + 42.0
        assert np.array_equal(manchester_soft_decode(soft), bits)

    def test_scale_invariance(self):
        bits = np.array([0, 1, 1, 0], dtype=np.uint8)
        soft = manchester_encode(bits).astype(float) * 1e-6
        assert np.array_equal(manchester_soft_decode(soft), bits)

    def test_survives_mild_noise(self):
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, size=256).astype(np.uint8)
        soft = manchester_encode(bits).astype(float) + rng.normal(0, 0.2, 512)
        assert np.array_equal(manchester_soft_decode(soft), bits)

    def test_rejects_odd_length(self):
        with pytest.raises(ModulationError):
            manchester_soft_decode(np.array([0.3, 0.5, 0.1]))

    @given(
        st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=64),
        st.floats(min_value=-5.0, max_value=5.0),
        st.floats(min_value=0.01, max_value=10.0),
    )
    def test_affine_invariance_property(self, bits, offset, scale):
        bits = np.array(bits, dtype=np.uint8)
        soft = manchester_encode(bits).astype(float) * scale + offset
        assert np.array_equal(manchester_soft_decode(soft), bits)
