"""Unit tests for repro.sim.events and repro.sim.clock."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.clock import DriftingClock, NtpClock
from repro.sim.events import EventScheduler


class TestEventScheduler:
    def test_time_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule(2.0, lambda s: order.append("late"))
        scheduler.schedule(1.0, lambda s: order.append("early"))
        scheduler.run()
        assert order == ["early", "late"]

    def test_priority_breaks_ties(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule(1.0, lambda s: order.append("low"), priority=1)
        scheduler.schedule(1.0, lambda s: order.append("high"), priority=0)
        scheduler.run()
        assert order == ["high", "low"]

    def test_fifo_within_same_priority(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule(1.0, lambda s: order.append("first"))
        scheduler.schedule(1.0, lambda s: order.append("second"))
        scheduler.run()
        assert order == ["first", "second"]

    def test_callbacks_can_schedule(self):
        scheduler = EventScheduler()
        seen = []

        def chain(s):
            seen.append(s.now_s)
            if len(seen) < 3:
                s.schedule_in(1.0, chain)

        scheduler.schedule(0.0, chain)
        scheduler.run()
        assert seen == [0.0, 1.0, 2.0]

    def test_run_until_stops(self):
        scheduler = EventScheduler()
        seen = []
        for t in (1.0, 2.0, 3.0):
            scheduler.schedule(t, lambda s, t=t: seen.append(t))
        ran = scheduler.run_until(2.0)
        assert ran == 2 and seen == [1.0, 2.0]
        assert scheduler.pending == 1
        assert scheduler.now_s == 2.0

    def test_past_scheduling_rejected(self):
        scheduler = EventScheduler(start_s=5.0)
        with pytest.raises(SimulationError):
            scheduler.schedule(4.0, lambda s: None)

    def test_runaway_guard(self):
        scheduler = EventScheduler()

        def forever(s):
            s.schedule_in(1e-9, forever)

        scheduler.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            scheduler.run_until(1.0, max_events=100)

    def test_step_returns_event(self):
        scheduler = EventScheduler()
        scheduler.schedule(1.0, lambda s: None, label="tick")
        event = scheduler.step()
        assert event.label == "tick"
        assert scheduler.step() is None

    def test_cancel_skips_event(self):
        ran = []
        scheduler = EventScheduler()
        scheduler.schedule(1.0, lambda s: ran.append("a"))
        doomed = scheduler.schedule(2.0, lambda s: ran.append("b"))
        scheduler.schedule(3.0, lambda s: ran.append("c"))
        assert scheduler.cancel(doomed)
        assert scheduler.pending == 2
        scheduler.run()
        assert ran == ["a", "c"]
        assert scheduler.processed == 2

    def test_cancel_twice_or_after_run_is_false(self):
        scheduler = EventScheduler()
        event = scheduler.schedule(1.0, lambda s: None)
        assert scheduler.cancel(event)
        assert not scheduler.cancel(event)
        other = scheduler.schedule(2.0, lambda s: None)
        scheduler.run()
        assert not scheduler.cancel(other)

    def test_cancelled_head_does_not_stall_run_until(self):
        ran = []
        scheduler = EventScheduler()
        head = scheduler.schedule(1.0, lambda s: ran.append("head"))
        scheduler.schedule(5.0, lambda s: ran.append("late"))
        scheduler.cancel(head)
        assert scheduler.run_until(2.0) == 0
        assert ran == []
        assert scheduler.now_s == 2.0
        scheduler.run_until(6.0)
        assert ran == ["late"]

    def test_peek_time_ignores_cancelled(self):
        scheduler = EventScheduler()
        first = scheduler.schedule(1.0, lambda s: None)
        scheduler.schedule(4.0, lambda s: None)
        scheduler.cancel(first)
        assert scheduler.peek_time() == 4.0


class TestClocks:
    def test_drifting_clock_offset(self):
        clock = DriftingClock(offset_s=0.5)
        assert clock.now(10.0) == pytest.approx(10.5)

    def test_drifting_clock_ppm(self):
        clock = DriftingClock(drift_ppm=100.0)
        assert clock.now(1000.0) == pytest.approx(1000.1)

    def test_ntp_clock_error_bounded(self):
        clock = NtpClock(sync_sigma_s=0.01, rng=np.random.default_rng(0))
        errors = [abs(clock.now(t) - t) for t in np.linspace(0, 600, 100)]
        assert max(errors) < 0.06  # few sigma plus drift

    def test_ntp_resync_changes_offset(self):
        clock = NtpClock(sync_sigma_s=0.01, sync_interval_s=10.0, rng=np.random.default_rng(1))
        first = clock.current_offset_s
        clock.now(25.0)  # crosses two sync boundaries
        assert clock.current_offset_s != first

    def test_ntp_typical_error_tens_of_ms(self):
        """The paper's 'tens of ms' synchronization regime."""
        rng = np.random.default_rng(2)
        offsets = [abs(NtpClock(rng=rng).current_offset_s) for _ in range(300)]
        assert 0.005 < np.mean(offsets) < 0.02  # sigma = 10 ms default

    def test_bad_interval_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            NtpClock(sync_interval_s=0.0)
