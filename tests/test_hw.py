"""Unit tests for repro.hw (ADC §11, power §10/§12.5, solar, battery)."""

import numpy as np
import pytest

from repro.constants import ACTIVE_POWER_W, SLEEP_POWER_W, SOLAR_PEAK_W
from repro.errors import ConfigurationError, PowerModelError
from repro.hw.adc import ADC
from repro.hw.battery import Battery, simulate_energy_budget
from repro.hw.power import DutyCycle, PowerModel, PowerState
from repro.hw.solar import SolarPanel, clear_day, cloudy_day, night_only
from repro.phy.waveform import Waveform


class TestADC:
    def test_quantization_error_bounded(self):
        adc = ADC(n_bits=12, full_scale=1.0)
        rng = np.random.default_rng(0)
        samples = rng.uniform(-0.9, 0.9, 1000) + 1j * rng.uniform(-0.9, 0.9, 1000)
        error = adc.quantize(samples) - samples
        assert np.max(np.abs(error.real)) <= adc.step / 2 + 1e-12
        assert np.max(np.abs(error.imag)) <= adc.step / 2 + 1e-12

    def test_clipping(self):
        adc = ADC(n_bits=12, full_scale=1.0)
        out = adc.quantize(np.array([10.0 + 0j]))
        assert out[0].real <= 1.0

    def test_clip_fraction(self):
        adc = ADC(n_bits=12, full_scale=1.0)
        samples = np.array([0.5 + 0j, 2.0 + 0j])
        assert adc.clip_fraction(samples) == pytest.approx(0.5)

    def test_sqnr_formula(self):
        assert ADC(n_bits=12).theoretical_sqnr_db() == pytest.approx(74.0, abs=0.1)

    def test_agc_backoff(self):
        adc = ADC(n_bits=12, agc_backoff_db=12.0)
        wave = Waveform.tone(100e3, 1e-4, 4e6, amplitude=0.001)
        digitized, gain = adc.quantize_waveform(wave)
        assert digitized.rms() == pytest.approx(10 ** (-12 / 20), rel=0.01)
        assert gain > 1.0

    def test_quantization_preserves_caraoke_snr(self):
        """12 bits leaves quantization ~74 dB down - far below the data
        floor, so the algorithms are unaffected (§11 design point)."""
        adc = ADC(n_bits=12)
        wave = Waveform.tone(400e3, 512e-6, 4e6, amplitude=0.05)
        digitized, gain = adc.quantize_waveform(wave)
        error = digitized.samples / gain - wave.samples
        snr_db = 10 * np.log10(wave.power() / np.mean(np.abs(error) ** 2))
        assert snr_db > 55.0

    def test_bad_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            ADC(n_bits=1)


class TestPowerModel:
    def test_average_power_paper_number(self):
        """§12.5: 10 ms active per second -> ~9 mW average."""
        model = PowerModel()
        duty = DutyCycle(active_s=10e-3, period_s=1.0)
        assert model.average_power_w(duty) == pytest.approx(9.07e-3, rel=0.01)

    def test_harvest_margin_56x(self):
        """§12.5: 500 mW harvest is ~56x the average draw."""
        model = PowerModel()
        duty = DutyCycle(active_s=10e-3, period_s=1.0)
        assert model.harvest_margin(duty, SOLAR_PEAK_W) == pytest.approx(56.0, rel=0.02)

    def test_state_machine_matches_closed_form(self):
        model = PowerModel()
        duty = DutyCycle(active_s=10e-3, period_s=1.0)
        energy = model.simulate_schedule(duty, duration_s=100.0)
        assert energy == pytest.approx(model.average_power_w(duty) * 100.0, rel=0.01)

    def test_transition_accounting(self):
        model = PowerModel()
        model.transition(PowerState.ACTIVE, 0.0)
        model.transition(PowerState.SLEEP, 1.0)
        assert model.energy_j(2.0) == pytest.approx(ACTIVE_POWER_W + SLEEP_POWER_W)

    def test_time_reversal_rejected(self):
        model = PowerModel()
        model.transition(PowerState.ACTIVE, 1.0)
        with pytest.raises(PowerModelError):
            model.transition(PowerState.SLEEP, 0.5)

    def test_duty_cycle_validation(self):
        with pytest.raises(PowerModelError):
            DutyCycle(active_s=2.0, period_s=1.0)

    def test_sleep_dominates_energy_budget(self):
        """At 1 query/s the active bursts are 99% of the energy even at
        1% of the time - the design insight behind duty cycling."""
        model = PowerModel()
        duty = DutyCycle(active_s=10e-3, period_s=1.0)
        active_energy = ACTIVE_POWER_W * duty.active_s
        sleep_energy = SLEEP_POWER_W * (duty.period_s - duty.active_s)
        assert active_energy > 100 * sleep_energy


class TestSolar:
    def test_clear_day_peaks_at_noon(self):
        profile = clear_day()
        assert profile.at(12 * 3600.0) == pytest.approx(1.0)
        assert profile.at(0.0) == 0.0

    def test_cloudy_attenuates(self):
        assert cloudy_day(0.15).at(12 * 3600.0) == pytest.approx(0.15)

    def test_night_only(self):
        assert night_only().at(12 * 3600.0) == 0.0

    def test_panel_output(self):
        panel = SolarPanel()
        assert panel.output_w(clear_day(), 12 * 3600.0) == pytest.approx(SOLAR_PEAK_W)

    def test_daily_energy(self):
        panel = SolarPanel()
        energy = panel.energy_j(clear_day(), 0.0, 86_400.0)
        # Half-sine over 12 h: mean 2/pi of peak -> ~13.75 kJ.
        expected = SOLAR_PEAK_W * (2 / np.pi) * 12 * 3600
        assert energy == pytest.approx(expected, rel=0.01)

    def test_profile_wraps_daily(self):
        profile = clear_day()
        assert profile.at(12 * 3600.0) == pytest.approx(profile.at(86_400.0 + 12 * 3600.0))


class TestBattery:
    def test_store_respects_capacity(self):
        battery = Battery(capacity_j=100.0, charge_j=95.0, charge_efficiency=1.0)
        stored = battery.store(20.0)
        assert stored == pytest.approx(5.0)
        assert battery.charge_j == pytest.approx(100.0)

    def test_draw_success_and_brownout(self):
        battery = Battery(capacity_j=100.0, charge_j=10.0)
        assert battery.draw(5.0)
        assert not battery.draw(50.0)
        assert battery.charge_j == 0.0

    def test_charge_efficiency(self):
        battery = Battery(capacity_j=100.0, charge_efficiency=0.9)
        battery.store(10.0)
        assert battery.charge_j == pytest.approx(9.0)

    def test_validation(self):
        with pytest.raises(PowerModelError):
            Battery(capacity_j=-1.0)
        with pytest.raises(PowerModelError):
            Battery(capacity_j=10.0, charge_j=20.0)


class TestEnergyBudget:
    def test_three_hours_of_sun_runs_a_week(self):
        """§12.5's headline: 3 h of full-sun harvest (~5.4 kJ) covers a
        week at the 9 mW duty-cycled average (~5.4 kJ)."""
        harvest_3h_j = SOLAR_PEAK_W * 3 * 3600
        battery = Battery(capacity_j=harvest_3h_j, charge_j=harvest_3h_j)
        result = simulate_energy_budget(
            battery=battery,
            panel=SolarPanel(),
            profile=night_only(),  # worst case: no further harvest
            power=PowerModel(),
            duty=DutyCycle(active_s=10e-3, period_s=1.0),
            duration_s=6.8 * 86_400.0,
        )
        assert result.survived

    def test_continuous_active_mode_browns_out(self):
        """§12.5: 900 mW continuous cannot run on the 500 mW panel."""
        battery = Battery(capacity_j=1000.0, charge_j=1000.0)
        result = simulate_energy_budget(
            battery=battery,
            panel=SolarPanel(),
            profile=clear_day(),
            power=PowerModel(),
            duty=DutyCycle(active_s=1.0, period_s=1.0),
            duration_s=2 * 86_400.0,
        )
        assert not result.survived

    def test_duty_cycled_reader_survives_cloudy_weeks(self):
        battery = Battery(capacity_j=5_000.0, charge_j=2_500.0)
        result = simulate_energy_budget(
            battery=battery,
            panel=SolarPanel(),
            profile=cloudy_day(0.15),
            power=PowerModel(),
            duty=DutyCycle(active_s=10e-3, period_s=1.0),
            duration_s=14 * 86_400.0,
        )
        assert result.survived
        assert result.harvested_j > result.consumed_j * 0.5

    def test_energy_conservation(self):
        battery = Battery(capacity_j=1e9, charge_j=5_000.0, charge_efficiency=1.0)
        result = simulate_energy_budget(
            battery=battery,
            panel=SolarPanel(),
            profile=clear_day(),
            power=PowerModel(),
            duty=DutyCycle(active_s=10e-3, period_s=1.0),
            duration_s=86_400.0,
        )
        final = 5_000.0 + result.harvested_j - result.consumed_j
        assert result.final_charge_j == pytest.approx(final, rel=1e-6)
