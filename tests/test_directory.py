"""Unit tests for repro.sim.city.directory (the city-wide identity service)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.city import IdentityDirectory


def report(directory, tag_id, cfo_hz, t_s, station="A/pole-0", corridor="A", x_m=0.0):
    return directory.report(tag_id, cfo_hz, station, corridor, x_m, t_s)


class TestResolution:
    def test_report_then_resolve(self):
        directory = IdentityDirectory()
        report(directory, 7, 500e3, 1.0)
        assert directory.resolve(500.4e3, now_s=1.0) == 7
        assert directory.resolve(900e3, now_s=1.0) is None
        assert directory.summary()["hits"] == 1
        assert directory.summary()["misses"] == 1
        assert 7 in directory
        assert directory.ids() == [7]

    def test_bounds_are_mandatory(self):
        with pytest.raises(ConfigurationError):
            IdentityDirectory(max_entries=None)
        with pytest.raises(ConfigurationError):
            IdentityDirectory(max_age_s=None)

    def test_trail_is_bounded_and_ordered(self):
        directory = IdentityDirectory()
        for k in range(6):
            report(
                directory, 7, 500e3, float(k), station=f"A/pole-{k}", x_m=40.0 * k
            )
        trail = directory.trail(7)
        assert len(trail) == 4  # TRAIL_LENGTH
        assert [fix.t_s for fix in trail] == [2.0, 3.0, 4.0, 5.0]
        assert directory.last_fix(7).station == "A/pole-5"


class TestSpeedFromTrail:
    def test_cross_pole_fixes_yield_speed(self):
        directory = IdentityDirectory()
        assert report(directory, 7, 500e3, 0.0, station="A/pole-0", x_m=0.0) is None
        estimate = report(directory, 7, 500e3, 4.0, station="A/pole-1", x_m=52.0)
        assert estimate is not None
        assert estimate.speed_m_s == pytest.approx(13.0)
        assert directory.speed_estimate(7).speed_m_s == pytest.approx(13.0)

    def test_same_pole_reports_never_estimate(self):
        directory = IdentityDirectory()
        for t in (0.0, 1.0, 2.0):
            assert report(directory, 7, 500e3, t) is None
        assert directory.speed_estimate(7) is None

    def test_unlocalized_sightings_audit_but_never_estimate(self):
        """A sighting whose x is only the pole's own position (the
        round produced no §6 fix) belongs in the trail but would poison
        a speed ratio — it must never reach the estimator."""
        directory = IdentityDirectory()
        directory.report(7, 500e3, "A/pole-0", "A", 0.0, 0.0, localized=False)
        estimate = directory.report(
            7, 500e3, "A/pole-1", "A", 40.0, 4.0, localized=False
        )
        assert estimate is None
        assert directory.speed_estimate(7) is None
        assert len(directory.trail(7)) == 2  # the audit still has both

    def test_cross_corridor_reports_rebase(self):
        """Corridor frames are disjoint: a crossing must not difference
        positions across the mesh layout gap."""
        directory = IdentityDirectory()
        report(directory, 7, 500e3, 0.0, station="A/pole-1", corridor="A", x_m=80.0)
        estimate = directory.report(
            7, 500e3, "B/pole-0", "B", 1100.0, 5.0
        )
        assert estimate is None
        assert directory.speed_estimate(7) is None


class TestBoundsUnderConcurrentCorridorUpdates:
    """The mesh's corridors interleave their report() calls on one
    directory (the discrete-event equivalent of concurrent writers).
    LRU eviction and aging must keep the fingerprint index, the trails
    and the speed anchors consistent through any interleaving."""

    def test_lru_eviction_stays_consistent(self):
        directory = IdentityDirectory(max_entries=8)
        rng = np.random.default_rng(3)
        corridors = ("A", "B", "C")
        t = 0.0
        for step in range(400):
            tag_id = int(rng.integers(0, 30))
            corridor = corridors[step % len(corridors)]
            t += float(rng.uniform(0.0, 0.1))
            report(
                directory,
                tag_id,
                400e3 + 7e3 * tag_id,
                t,
                station=f"{corridor}/pole-{step % 2}",
                corridor=corridor,
                x_m=float(rng.uniform(0.0, 100.0)),
            )
            assert len(directory) <= 8
            directory.check_consistent()
        assert directory.summary()["evictions"] > 0

    def test_aging_drops_trails_and_anchors_together(self):
        directory = IdentityDirectory(max_age_s=10.0)
        report(directory, 7, 500e3, 0.0, station="A/pole-0", x_m=0.0)
        report(directory, 8, 600e3, 5.0, station="B/pole-0", corridor="B")
        # Tag 7 ages out at t=20; the report of tag 9 triggers the prune.
        report(directory, 9, 700e3, 20.0, station="C/pole-0", corridor="C")
        assert 7 not in directory
        assert directory.trail(7) == []
        directory.check_consistent()
        # An aged-out fingerprint can never claim a fresh spike.
        assert directory.resolve(500e3, now_s=21.0) is None
        # And the aged-out anchor cannot pair with a re-arrival: the
        # first post-expiry sighting starts a fresh trail.
        assert report(directory, 7, 500e3, 25.0, station="B/pole-1", corridor="B") is None
        assert len(directory.trail(7)) == 1

class TestResolveAging:
    """Regression: resolve() used to accept a call with no clock, which
    silently skipped the aging prune — an expired fingerprint could
    claim a fresh spike, the exact mis-attribution the bounds promise to
    prevent."""

    def test_resolve_requires_a_clock(self):
        directory = IdentityDirectory()
        report(directory, 7, 500e3, 0.0)
        with pytest.raises(TypeError):
            directory.resolve(500e3)

    def test_stale_account_cannot_steal_a_fresh_spike(self):
        """Tag 7's fingerprint expired *between* batched sweeps; a fresh
        spike at the same CFO must still resolve to nothing — the
        targeted per-candidate age check is all that stands between the
        corpse and the spike."""
        directory = IdentityDirectory(max_age_s=80.0)  # sweep interval: 10 s
        report(directory, 7, 500e3, 0.0)
        report(directory, 8, 600e3, 79.0)  # sweeps at 79; 7 survives (79 <= 80)
        # Next batched sweep is due at t=89; tag 7 expires at t=80.
        assert directory.resolve(500e3, now_s=85.0) is None
        assert 7 not in directory
        assert directory.trail(7) == []
        assert directory.speed_estimate(7) is None
        directory.check_consistent()

    def test_dead_neighbor_never_shadows_a_live_match(self):
        """The index nominates the *nearest* fingerprint; when that one
        is expired, resolve must fall through to the next-nearest live
        entry rather than reporting a miss."""
        directory = IdentityDirectory(tolerance_hz=3000.0, max_age_s=80.0)
        report(directory, 7, 500e3, 0.0)  # will expire
        report(directory, 8, 502e3, 79.0)  # fresh, further from the spike
        assert directory.resolve(500.5e3, now_s=85.0) == 8
        assert 7 not in directory

    def test_skewed_reader_clock_cannot_resurrect(self):
        """A resolve carrying an old timestamp (reader clock skew) must
        age against the newest clock the directory has seen, not travel
        back in time."""
        directory = IdentityDirectory(max_age_s=80.0)  # sweep interval: 10 s
        report(directory, 7, 500e3, 0.0)
        report(directory, 8, 600e3, 79.0)  # sweeps at 79; next due at 89
        # A miss elsewhere advances the directory clock past 7's expiry
        # (t=80) without running the batched sweep (85 < 89).
        assert directory.resolve(900e3, now_s=85.0) is None
        # The skewed reader says t=5 — when 7 would look fresh. The
        # directory must age against its own clock (85) instead.
        assert directory.resolve(500e3, now_s=5.0) is None
        assert 7 not in directory


class TestBoundsEdgeCases:
    def test_eviction_forgets_speed_anchor(self):
        directory = IdentityDirectory(max_entries=1)
        report(directory, 7, 500e3, 0.0, station="A/pole-0", x_m=0.0)
        report(directory, 8, 900e3, 1.0, station="A/pole-0", x_m=0.0)  # evicts 7
        assert 7 not in directory
        directory.check_consistent()
        # Tag 7 re-arrives at another pole: no stale pair, no estimate.
        assert (
            report(directory, 7, 500e3, 2.0, station="A/pole-1", x_m=40.0) is None
        )


class TestBatchedDelivery:
    """Fault-injection regressions for deltas delivered over a batched
    backhaul (``apply_delta`` / ``report(..., delivered_s=)``): late
    history must never resurrect an evicted entry or steal a fresher
    fingerprint, and delivery time — not emit time — must drive aging."""

    def test_delayed_batch_cannot_resurrect_evicted_entry(self):
        directory = IdentityDirectory(max_entries=1)
        report(directory, 7, 500e3, 10.0)
        report(directory, 8, 900e3, 20.0)  # LRU-evicts 7, tombstone at 20
        assert 7 not in directory
        # A batch emitted while 7 was still alive arrives after the
        # eviction: the tombstone rejects it.
        assert (
            directory.apply_delta(
                7, 500e3, "A/pole-0", "A", 0.0, 15.0, delivered_s=25.0
            )
            is None
        )
        assert 7 not in directory
        assert directory.late_drops == 1
        assert directory.resolve(500e3, now_s=25.0) is None
        directory.check_consistent()

    def test_fresh_report_after_tombstone_readmits(self):
        directory = IdentityDirectory(max_entries=1)
        report(directory, 7, 500e3, 10.0)
        report(directory, 8, 900e3, 20.0)  # evicts 7
        # A delta *emitted after* the eviction is legitimate history —
        # the car really was sighted again — and clears the tombstone.
        assert (
            directory.apply_delta(
                7, 500e3, "A/pole-1", "A", 40.0, 22.0, delivered_s=25.0
            )
            is not None
            or 7 in directory
        )
        assert directory.late_drops == 0

    def test_reordered_push_cannot_steal_fresher_fingerprint(self):
        directory = IdentityDirectory()
        report(directory, 7, 100e3, 20.0)  # the fresher fix, applied first
        # An older sighting of the same account (different measured CFO)
        # arrives late over the backhaul: it must not rewind the
        # fingerprint the index already holds.
        assert (
            directory.apply_delta(
                7, 90e3, "A/pole-0", "A", 0.0, 10.0, delivered_s=22.0
            )
            is None
        )
        assert directory.stale_drops == 1
        assert directory.resolve(100e3, now_s=22.0) == 7
        assert directory.resolve(90e3, now_s=22.0) is None
        assert directory.last_fix(7).t_s == 20.0

    def test_delta_already_aged_on_arrival_is_dropped(self):
        directory = IdentityDirectory(max_age_s=60.0)
        assert (
            directory.apply_delta(
                7, 500e3, "A/pole-0", "A", 0.0, 0.0, delivered_s=100.0
            )
            is None
        )
        assert directory.late_drops == 1
        assert 7 not in directory

    def test_delivery_time_drives_aging_not_emit_time(self):
        directory = IdentityDirectory(max_age_s=60.0)
        # Emitted at t=5, delivered at t=50: freshness counts from 50,
        # so the entry survives past 5 + 60.
        directory.apply_delta(7, 500e3, "A/pole-0", "A", 0.0, 5.0, delivered_s=50.0)
        assert directory.resolve(500e3, now_s=100.0) == 7
        assert directory.resolve(500e3, now_s=111.0) is None  # 50 + 60 passed

    def test_wired_reports_never_touch_the_guards(self):
        directory = IdentityDirectory(max_entries=1)
        report(directory, 7, 500e3, 10.0)
        report(directory, 8, 900e3, 20.0)  # evicts 7
        # The same out-of-order write a wired stream could produce
        # (clock skew aside, it cannot) — without delivered_s the guard
        # path is bypassed entirely, preserving pre-backhaul behavior.
        report(directory, 7, 500e3, 15.0)
        assert 7 in directory
        assert directory.late_drops == 0
        assert directory.stale_drops == 0
