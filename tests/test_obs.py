"""Unit tests for repro.obs: registry, tracer, report validation, and
the determinism contract (same-seed runs snapshot byte-identically;
disabled obs changes nothing)."""

import json

import pytest

from repro.obs import MetricsRegistry, Obs, SpanTracer, TraceError
from repro.obs.report import main as report_main, validate_metrics, validate_trace
from repro.sim.city import CityCorridor, CityMesh
from repro.sim.scenario import city_corridor_scene
from repro.sim.traffic import TrafficLight

LANES = (-1.75, -5.25)


def small_corridor(seed=17, obs=None):
    scene, trajectories = city_corridor_scene(
        n_poles=3,
        pole_spacing_m=35.0,
        n_cars=5,
        speed_range_m_s=(10.0, 16.0),
        entry_window_s=1.5,
        rng=seed,
    )
    return CityCorridor.build(
        scene, trajectories, lane_ys_m=LANES, rng=seed, max_queries=16, obs=obs
    )


def chain_mesh(seed=7, obs=None):
    mesh = CityMesh(rng=seed, handoff="push", obs=obs)
    mesh.add_node("u", light=TrafficLight(green_s=8.0, yellow_s=1.0, red_s=4.0))
    mesh.add_edge("A", dst="u", n_poles=2)
    mesh.add_edge("B", src="u", n_poles=2)
    mesh.add_traffic(
        [(("A", "B"), 1.0)], rate_per_s=0.5, speed_range_m_s=(10.0, 16.0)
    )
    return mesh


class TestMetricsRegistry:
    def test_counter_labels_make_distinct_series(self):
        reg = MetricsRegistry()
        reg.inc("air.query", station="p0")
        reg.inc("air.query", station="p0")
        reg.inc("air.query", station="p1")
        assert reg.counter("air.query", station="p0") == 2
        assert reg.counter("air.query", station="p1") == 1
        assert reg.counter("air.query") == 0  # unlabelled is its own series
        assert reg.total("air.query") == 3

    def test_gauge_overwrites(self):
        reg = MetricsRegistry()
        reg.set_gauge("pool.depth", 3)
        reg.set_gauge("pool.depth", 1)
        assert reg.snapshot()["gauges"] == {"pool.depth": 1}

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        for v in (0.001, 0.0015, 0.004, 2.0):
            reg.observe("round.duration_s", v)
        (summary,) = reg.snapshot()["histograms"].values()
        assert summary["count"] == 4
        assert summary["sum"] == pytest.approx(2.0065)
        assert summary["min"] == 0.001
        assert summary["max"] == 2.0
        assert sum(summary["buckets"].values()) == 4
        # 1-2-5 ladder: 0.001 lands in le_0.001, 0.0015 in le_0.002.
        assert summary["buckets"]["le_0.001"] == 1
        assert summary["buckets"]["le_0.002"] == 1

    def test_snapshot_key_rendering_sorted(self):
        reg = MetricsRegistry()
        reg.inc("m", station="p1", outcome="ok")
        keys = list(reg.snapshot()["counters"])
        assert keys == ["m{outcome=ok, station=p1}"]  # labels sorted

    def test_snapshot_json_independent_of_insertion_order(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("x")
        a.inc("y", kind="q")
        b.inc("y", kind="q")
        b.inc("x")
        assert a.snapshot_json() == b.snapshot_json()

    def test_write_round_trips(self, tmp_path):
        reg = MetricsRegistry()
        reg.inc("x", 3)
        path = tmp_path / "metrics.json"
        reg.write(path)
        assert json.loads(path.read_text())["counters"] == {"x": 3}

    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("air.query", 2, station="p0")
        b.inc("air.query", 3, station="p0")
        b.inc("air.query", station="p1")
        a.observe("round.duration_s", 0.001)
        b.observe("round.duration_s", 2.0)
        b.observe("round.duration_s", 0.004)
        a.merge(b)
        assert a.counter("air.query", station="p0") == 5
        assert a.counter("air.query", station="p1") == 1
        (summary,) = a.snapshot()["histograms"].values()
        assert summary["count"] == 3
        assert summary["min"] == 0.001
        assert summary["max"] == 2.0
        assert sum(summary["buckets"].values()) == 3

    def test_merge_gauges_last_writer_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.set_gauge("pool.depth", 3)
        b.set_gauge("pool.depth", 7)
        a.merge(b)
        assert a.snapshot()["gauges"] == {"pool.depth": 7}

    def test_merge_of_shards_matches_shared_registry(self):
        # The worker-aggregation contract: shard registries merged in a
        # fixed order snapshot identically to one shared registry.
        shared = MetricsRegistry()
        shards = [MetricsRegistry() for _ in range(3)]
        for i, shard in enumerate(shards):
            for reg in (shard, shared):
                reg.inc("air.query", i + 1, station=f"p{i}")
                reg.observe("round.duration_s", 0.001 * (i + 1), station=f"p{i}")
        merged = MetricsRegistry()
        for shard in shards:
            merged.merge(shard)
        assert merged.snapshot_json() == shared.snapshot_json()

    def test_merge_into_empty_is_a_copy(self):
        src = MetricsRegistry()
        src.inc("x", 2)
        src.set_gauge("g", 1.5)
        src.observe("h", 0.5)
        dst = MetricsRegistry()
        dst.merge(src)
        assert dst.snapshot_json() == src.snapshot_json()


class TestPhaseTimerMerge:
    """PhaseTimer lives in the bench harness (the library never reads
    the wall clock), so load it by path rather than via the package."""

    @pytest.fixture
    def phase_timer_cls(self):
        import importlib.util
        from pathlib import Path

        path = Path(__file__).parent.parent / "benchmarks" / "bench_helpers.py"
        spec = importlib.util.spec_from_file_location("_bench_helpers_for_test", path)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        return mod.PhaseTimer

    def test_merge_adds_seconds_and_counts(self, phase_timer_cls):
        a, b = phase_timer_cls(), phase_timer_cls()
        a._seconds, a._counts = {"count": 1.0}, {"count": 2}
        b._seconds, b._counts = {"count": 0.5, "decode": 2.0}, {"count": 1, "decode": 3}
        a.merge(b)
        taken = a.take()
        assert taken["phases"]["count"] == {
            "seconds": 1.5,
            "count": 3,
            "share": 1.5 / 3.5,
        }
        assert taken["phases"]["decode"]["count"] == 3

    def test_merge_order_independent(self, phase_timer_cls):
        shards = []
        for i in range(3):
            t = phase_timer_cls()
            t._seconds = {"count": float(i + 1), f"phase{i}": 0.25}
            t._counts = {"count": i + 1, f"phase{i}": 1}
            shards.append(t)
        merged = phase_timer_cls()
        for t in shards:
            merged.merge(t)
        reversed_merge = phase_timer_cls()
        for t in reversed(shards):
            reversed_merge.merge(t)
        assert merged.take() == reversed_merge.take()


class TestObsFacade:
    def test_labeled_view_shares_registry(self):
        obs = Obs()
        station = obs.labeled(station="p2")
        station.count("air.query")
        assert obs.metrics.counter("air.query", station="p2") == 1

    def test_labeled_merges_and_overrides(self):
        obs = Obs(labels={"station": "p0"})
        view = obs.labeled(station="p1")
        view.count("m", outcome="ok")
        assert view.labels == {"station": "p1"}
        assert obs.metrics.counter("m", station="p1", outcome="ok") == 1

    def test_station_label_names_the_default_track(self):
        obs = Obs(trace=True)
        obs.labeled(station="p3").span("round", 0.0, 0.5, outcome="clean")
        (event,) = obs.tracer.events
        assert event["cat"] == "p3"
        assert event["args"]["station"] == "p3"
        assert event["args"]["outcome"] == "clean"

    def test_tracing_disabled_by_default(self):
        obs = Obs()
        assert obs.tracer is None
        # Trace calls are no-ops, not errors.
        obs.begin("x", 0.0)
        obs.end(1.0)
        obs.span("y", 0.0, 1.0)
        obs.instant("z", 0.5)


class TestSpanTracer:
    def test_begin_end_nest_lifo(self):
        tracer = SpanTracer()
        tracer.begin("outer", 0.0, track="p0")
        tracer.begin("inner", 1.0, track="p0")
        tracer.end(2.0, track="p0")
        tracer.end(3.0, track="p0")
        inner, outer = tracer.events
        assert (inner["name"], inner["ts"], inner["dur"]) == ("inner", 1e6, 1e6)
        assert (outer["name"], outer["ts"], outer["dur"]) == ("outer", 0.0, 3e6)

    def test_tracks_do_not_interfere(self):
        tracer = SpanTracer()
        tracer.begin("a", 0.0, track="p0")
        tracer.begin("b", 0.0, track="p1")
        tracer.end(1.0, track="p0")
        tracer.end(2.0, track="p1")
        assert tracer.open_depth("p0") == 0 and tracer.open_depth("p1") == 0

    def test_end_without_begin_raises(self):
        with pytest.raises(TraceError, match="no open span"):
            SpanTracer().end(1.0)

    def test_time_reversed_end_raises(self):
        tracer = SpanTracer()
        tracer.begin("x", 5.0)
        with pytest.raises(TraceError, match="before start"):
            tracer.end(4.0)

    def test_time_reversed_span_raises(self):
        with pytest.raises(TraceError, match="before start"):
            SpanTracer().span("x", 2.0, 1.0)

    def test_export_with_unclosed_span_raises(self):
        tracer = SpanTracer()
        tracer.begin("x", 0.0)
        with pytest.raises(TraceError, match="unclosed"):
            tracer.to_chrome()

    def test_chrome_export_shape(self):
        tracer = SpanTracer()
        tracer.span("round", 0.0, 0.25, track="p0", outcome="clean")
        tracer.instant("identified", 0.1, track="p0", tag=7)
        doc = tracer.to_chrome()
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert meta[0]["args"]["name"] == "p0"
        span = next(e for e in doc["traceEvents"] if e["ph"] == "X")
        assert span["dur"] == 0.25e6
        instant = next(e for e in doc["traceEvents"] if e["ph"] == "i")
        assert instant["s"] == "t"
        assert validate_trace(doc) == []

    def test_timeline_text(self):
        tracer = SpanTracer()
        tracer.span("round", 0.0, 0.5, track="p0")
        text = tracer.timeline()
        assert "1 event(s) on 1 track(s)" in text
        assert "round" in text and "p0" in text

    def test_timeline_clips(self):
        tracer = SpanTracer()
        for i in range(5):
            tracer.instant("tick", float(i))
        assert "... 2 more event(s)" in tracer.timeline(max_rows=3)


class TestReportValidation:
    def test_validate_trace_rejects_malformed(self):
        assert validate_trace([]) != []
        assert validate_trace({"traceEvents": [{"ph": "Q"}]}) != []
        assert validate_trace({"traceEvents": [{"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": 0.0}]}) != []  # missing dur

    def test_validate_metrics(self):
        assert validate_metrics({"counters": {}, "gauges": {}, "histograms": {}}) == []
        assert validate_metrics({"counters": {}}) != []
        assert validate_metrics([]) != []

    def test_report_check_cli(self, tmp_path, capsys):
        reg = MetricsRegistry()
        reg.inc("x")
        tracer = SpanTracer()
        tracer.span("round", 0.0, 1.0, track="p0")
        metrics_path, trace_path = tmp_path / "m.json", tmp_path / "t.json"
        reg.write(metrics_path)
        tracer.write(trace_path)
        rc = report_main(
            ["--check", "--metrics", str(metrics_path), "--trace", str(trace_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "valid metrics snapshot" in out and "valid trace" in out

    def test_report_check_fails_on_bad_trace(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": [{"ph": "Q"}]}')
        assert report_main(["--check", "--trace", str(bad)]) == 1

    def test_report_render_cli(self, tmp_path, capsys):
        reg = MetricsRegistry()
        reg.inc("air.query", 4, station="p0")
        reg.observe("dwell_s", 0.5)
        path = tmp_path / "m.json"
        reg.write(path)
        assert report_main(["--metrics", str(path)]) == 0
        out = capsys.readouterr().out
        assert "air.query{station=p0}" in out and "count=1" in out


class TestDeterminism:
    def test_corridor_same_seed_snapshots_identical(self):
        runs = []
        for _ in range(2):
            obs = Obs(trace=True)
            small_corridor(seed=17, obs=obs).run(4.0)
            runs.append((obs.metrics.snapshot_json(), obs.tracer.to_json()))
        assert runs[0][0] == runs[1][0]  # metrics byte-identical
        assert runs[0][1] == runs[1][1]  # trace byte-identical
        # And the run actually recorded evidence.
        assert json.loads(runs[0][0])["counters"]
        assert len(json.loads(runs[0][1])["traceEvents"]) > 2

    def test_mesh_same_seed_snapshots_identical(self):
        runs = []
        for _ in range(2):
            obs = Obs(trace=True)
            chain_mesh(seed=7, obs=obs).run(10.0)
            runs.append((obs.metrics.snapshot_json(), obs.tracer.to_json()))
        assert runs[0] == runs[1]
        assert json.loads(runs[0][0])["counters"]

    def test_obs_does_not_perturb_simulation(self):
        # NaN summary fields (e.g. a mean over zero identifications)
        # serialize as the NaN token either way, so a string compare is
        # the honest bit-identity check.
        plain = small_corridor(seed=17).run(4.0)
        observed = small_corridor(seed=17, obs=Obs(trace=True)).run(4.0)
        dump = lambda r: json.dumps(r.summary(), sort_keys=True, default=str)
        assert dump(plain) == dump(observed)

    def test_obs_does_not_perturb_mesh(self):
        plain = chain_mesh(seed=7).run(10.0)
        observed = chain_mesh(seed=7, obs=Obs(trace=True)).run(10.0)
        dump = lambda r: json.dumps(r.summary(), sort_keys=True, default=str)
        assert dump(plain) == dump(observed)
