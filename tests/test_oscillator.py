"""Unit tests for repro.phy.oscillator and repro.datasets."""

import numpy as np
import pytest

from repro.constants import (
    CARRIER_MAX_HZ,
    CARRIER_MIN_HZ,
    CFO_SPAN_HZ,
    EMPIRICAL_CARRIER_MEAN_HZ,
    EMPIRICAL_CARRIER_STD_HZ,
    READER_LO_HZ,
)
from repro.datasets import empirical_carriers_hz, empirical_cfo_dataset, empirical_cfos_hz
from repro.errors import ConfigurationError
from repro.phy.oscillator import (
    EmpiricalCfoModel,
    Oscillator,
    TruncatedGaussianCfoModel,
    UniformCfoModel,
)


class TestOscillator:
    def test_cfo_relative_to_lo(self):
        osc = Oscillator(READER_LO_HZ + 300e3)
        assert osc.cfo_hz() == pytest.approx(300e3)

    def test_drift(self):
        osc = Oscillator(915e6, drift_hz_per_s=100.0)
        assert osc.carrier_at(2.0) == pytest.approx(915e6 + 200.0)

    def test_negative_carrier_rejected(self):
        with pytest.raises(ConfigurationError):
            Oscillator(-1.0)


class TestUniformModel:
    def test_within_band(self):
        carriers = UniformCfoModel().sample_carriers(1000, rng=1)
        assert carriers.min() >= CARRIER_MIN_HZ
        assert carriers.max() <= CARRIER_MAX_HZ

    def test_spans_band(self):
        carriers = UniformCfoModel().sample_carriers(5000, rng=2)
        assert carriers.max() - carriers.min() > 0.9 * CFO_SPAN_HZ

    def test_deterministic(self):
        a = UniformCfoModel().sample_carriers(10, rng=3)
        b = UniformCfoModel().sample_carriers(10, rng=3)
        assert np.array_equal(a, b)

    def test_invalid_band(self):
        with pytest.raises(ConfigurationError):
            UniformCfoModel(low_hz=915e6, high_hz=914e6)

    def test_sample_oscillators(self):
        oscillators = UniformCfoModel().sample_oscillators(5, rng=4)
        assert len(oscillators) == 5
        assert all(isinstance(o, Oscillator) for o in oscillators)


class TestTruncatedGaussianModel:
    def test_within_band(self):
        carriers = TruncatedGaussianCfoModel().sample_carriers(5000, rng=5)
        assert carriers.min() >= CARRIER_MIN_HZ
        assert carriers.max() <= CARRIER_MAX_HZ

    def test_matches_paper_statistics(self):
        """Footnote 7: mean 914.84 MHz, std 0.21 MHz (truncation shifts
        both slightly; tolerances account for that)."""
        carriers = TruncatedGaussianCfoModel().sample_carriers(50_000, rng=6)
        assert carriers.mean() == pytest.approx(EMPIRICAL_CARRIER_MEAN_HZ, abs=0.03e6)
        assert carriers.std() == pytest.approx(EMPIRICAL_CARRIER_STD_HZ, abs=0.04e6)

    def test_mean_outside_band_rejected(self):
        with pytest.raises(ConfigurationError):
            TruncatedGaussianCfoModel(mean_hz=916e6)

    def test_zero_std_rejected(self):
        with pytest.raises(ConfigurationError):
            TruncatedGaussianCfoModel(std_hz=0.0)


class TestEmpiricalModel:
    def test_draws_from_population(self):
        model = EmpiricalCfoModel(carriers_hz=(914.5e6, 914.9e6, 915.2e6))
        draws = model.sample_carriers(100, rng=7)
        assert set(np.unique(draws)) <= {914.5e6, 914.9e6, 915.2e6}

    def test_without_replacement_when_possible(self):
        model = EmpiricalCfoModel(carriers_hz=tuple(914.3e6 + 1e3 * i for i in range(50)))
        draws = model.sample_carriers(50, rng=8)
        assert np.unique(draws).size == 50

    def test_empty_population_rejected(self):
        with pytest.raises(ConfigurationError):
            EmpiricalCfoModel(carriers_hz=())


class TestDataset:
    def test_size_is_155(self):
        assert empirical_carriers_hz().size == 155

    def test_deterministic(self):
        assert np.array_equal(empirical_carriers_hz(), empirical_carriers_hz())

    def test_within_band(self):
        carriers = empirical_carriers_hz()
        assert carriers.min() >= CARRIER_MIN_HZ and carriers.max() <= CARRIER_MAX_HZ

    def test_cfos_relative_to_lo(self):
        cfos = empirical_cfos_hz()
        assert cfos.min() >= 0.0 and cfos.max() <= CFO_SPAN_HZ

    def test_statistics_near_paper(self):
        carriers = empirical_carriers_hz()
        assert carriers.mean() == pytest.approx(EMPIRICAL_CARRIER_MEAN_HZ, abs=0.06e6)
        assert carriers.std() == pytest.approx(EMPIRICAL_CARRIER_STD_HZ, abs=0.06e6)

    def test_model_wrapper(self):
        model = empirical_cfo_dataset()
        assert model.population_size == 155
