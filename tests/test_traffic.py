"""Unit tests for repro.sim.traffic, mobility, parking (Fig 12, §12.3, §12.2)."""

import numpy as np
import pytest

from repro.constants import READER_RANGE_M
from repro.errors import ConfigurationError
from repro.sim.mobility import ConstantSpeedTrajectory, DriveBy
from repro.sim.parking import ParkingStreet
from repro.sim.traffic import IntersectionSimulator, PoissonArrivals, TrafficLight


class TestTrafficLight:
    def test_phases(self):
        light = TrafficLight(green_s=30, yellow_s=5, red_s=25)
        assert light.phase(10.0) == "green"
        assert light.phase(32.0) == "yellow"
        assert light.phase(40.0) == "red"

    def test_cycle_wraps(self):
        light = TrafficLight(green_s=30, yellow_s=5, red_s=25)
        assert light.phase(70.0) == light.phase(10.0)

    def test_offset(self):
        light = TrafficLight(green_s=30, yellow_s=5, red_s=25, offset_s=10.0)
        assert light.phase(10.0) == "green"
        assert light.phase(5.0) == "red"  # 5 - 10 mod 60 = 55 -> red

    def test_is_go(self):
        light = TrafficLight(green_s=10, yellow_s=2, red_s=10)
        assert light.is_go(5.0)
        assert light.is_go(11.0)  # yellow still flows
        assert not light.is_go(15.0)

    def test_invalid_timing(self):
        with pytest.raises(ConfigurationError):
            TrafficLight(green_s=-1, yellow_s=0, red_s=10)


class TestPoissonArrivals:
    def test_rate_matches(self):
        arrivals = PoissonArrivals(rate_per_s=0.5, rng=np.random.default_rng(0))
        times = arrivals.arrivals_until(0.0, 4000.0)
        assert times.size == pytest.approx(2000, rel=0.1)

    def test_sorted(self):
        arrivals = PoissonArrivals(rate_per_s=1.0, rng=np.random.default_rng(1))
        times = arrivals.arrivals_until(0.0, 100.0)
        assert np.all(np.diff(times) >= 0)

    def test_zero_rate(self):
        assert PoissonArrivals(0.0).arrivals_until(0.0, 100.0).size == 0

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(-1.0)


class TestIntersectionSimulator:
    def _simulator(self, rate, seed=0, **kwargs):
        light = TrafficLight(green_s=20, yellow_s=3, red_s=37)
        return IntersectionSimulator(
            light=light,
            arrivals=PoissonArrivals(rate, rng=np.random.default_rng(seed)),
            rng=np.random.default_rng(seed + 1),
            **kwargs,
        )

    def test_queue_grows_during_red_drains_during_green(self):
        sim = self._simulator(rate=0.3, seed=2)
        samples = sim.simulate(duration_s=240.0, sample_period_s=1.0)
        red = [s.queued for s in samples if s.phase == "red"]
        green = [s.queued for s in samples if s.phase == "green"]
        assert np.mean(red) > np.mean(green)

    def test_busier_street_sees_more_cars(self):
        """Fig 12: street C carries ~10x street A's traffic."""
        quiet = self._simulator(rate=0.03, seed=3).simulate(600.0)
        busy = self._simulator(rate=0.3, seed=4).simulate(600.0)
        assert np.mean([s.in_range for s in busy]) > 4 * np.mean(
            [s.in_range for s in quiet]
        )

    def test_penetration_scales_observed_count(self):
        full = self._simulator(rate=0.3, seed=5, transponder_penetration=1.0)
        partial = self._simulator(rate=0.3, seed=5, transponder_penetration=0.5)
        n_full = np.mean([s.in_range for s in full.simulate(600.0)])
        n_partial = np.mean([s.in_range for s in partial.simulate(600.0)])
        assert n_partial < 0.75 * n_full

    def test_sample_cadence(self):
        sim = self._simulator(rate=0.1, seed=6)
        samples = sim.simulate(duration_s=10.0, sample_period_s=1.0)
        assert len(samples) == 11  # t = 0..10 inclusive
        assert samples[1].t_s - samples[0].t_s == pytest.approx(1.0)

    def test_invalid_duration(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            self._simulator(rate=0.1).simulate(duration_s=0.0)

    def test_bad_penetration_rejected(self):
        with pytest.raises(ConfigurationError):
            self._simulator(rate=0.1, transponder_penetration=1.5)


class TestMobility:
    def test_position_linear(self):
        trajectory = ConstantSpeedTrajectory(
            start_m=np.zeros(3), velocity_m_s=np.array([10.0, 0.0, 0.0])
        )
        assert np.allclose(trajectory.position(2.0), [20.0, 0.0, 0.0])

    def test_speed(self):
        trajectory = ConstantSpeedTrajectory(
            start_m=np.zeros(3), velocity_m_s=np.array([3.0, 4.0, 0.0])
        )
        assert trajectory.speed_m_s == pytest.approx(5.0)

    def test_closest_approach(self):
        trajectory = ConstantSpeedTrajectory(
            start_m=np.array([-50.0, 2.0, 0.0]), velocity_m_s=np.array([10.0, 0.0, 0.0])
        )
        t = trajectory.time_of_closest_approach(np.array([0.0, 0.0, 4.0]))
        assert t == pytest.approx(5.0)

    def test_stationary_rejected(self):
        trajectory = ConstantSpeedTrajectory(start_m=np.zeros(3), velocity_m_s=np.zeros(3))
        with pytest.raises(ConfigurationError):
            trajectory.time_of_closest_approach(np.ones(3))

    def test_drive_by_interval(self):
        trajectory = ConstantSpeedTrajectory(
            start_m=np.array([-100.0, 0.0, 1.0]), velocity_m_s=np.array([10.0, 0.0, 0.0])
        )
        drive = DriveBy(trajectory)
        interval = drive.in_range_interval(np.array([0.0, 0.0, 4.0]))
        assert interval is not None
        enter, leave = interval
        assert enter < 10.0 < leave
        # Chord length: ~2 * sqrt(range^2 - closest^2) / speed.
        assert leave - enter == pytest.approx(2 * READER_RANGE_M / 10.0, rel=0.05)

    def test_drive_by_out_of_range(self):
        trajectory = ConstantSpeedTrajectory(
            start_m=np.array([-100.0, 500.0, 1.0]), velocity_m_s=np.array([10.0, 0.0, 0.0])
        )
        assert DriveBy(trajectory).in_range_interval(np.zeros(3)) is None


class TestParking:
    def test_spot_layout(self):
        street = ParkingStreet(origin_m=np.array([2.0, -9.0, 0.0]), n_spots=6)
        first = street.spot(1)
        assert first.center_m[0] == pytest.approx(2.0 + 0.5 * street.spot_length_m)
        sixth = street.spot(6)
        assert sixth.center_m[0] > first.center_m[0]

    def test_transponder_height(self):
        street = ParkingStreet(origin_m=np.zeros(3))
        assert street.spot(1).transponder_position()[2] == pytest.approx(1.0)

    def test_occupancy_lifecycle(self):
        street = ParkingStreet(origin_m=np.zeros(3), n_spots=3)
        street.park(2)
        assert street.is_occupied(2)
        assert street.free_spots() == [1, 3]
        street.leave(2)
        assert not street.is_occupied(2)

    def test_double_park_rejected(self):
        street = ParkingStreet(origin_m=np.zeros(3))
        street.park(1)
        with pytest.raises(ConfigurationError):
            street.park(1)

    def test_leave_empty_rejected(self):
        street = ParkingStreet(origin_m=np.zeros(3))
        with pytest.raises(ConfigurationError):
            street.leave(1)

    def test_bad_spot_index(self):
        street = ParkingStreet(origin_m=np.zeros(3), n_spots=6)
        with pytest.raises(ConfigurationError):
            street.spot(7)
