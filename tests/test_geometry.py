"""Unit tests for repro.channel.geometry."""

import numpy as np
import pytest

from repro.channel.geometry import (
    RoadSegment,
    aoa_cone_conic,
    hyperbola_y,
    intersect_conics,
    spatial_angle_rad,
    unit,
)
from repro.errors import ConfigurationError, GeometryError


class TestBasics:
    def test_unit_normalizes(self):
        assert np.allclose(unit(np.array([3.0, 0.0, 4.0])), [0.6, 0.0, 0.8])

    def test_unit_zero_raises(self):
        with pytest.raises(GeometryError):
            unit(np.zeros(3))

    def test_spatial_angle_broadside(self):
        angle = spatial_angle_rad(np.array([0.0, 1.0, 0.0]), np.array([1.0, 0.0, 0.0]))
        assert angle == pytest.approx(np.pi / 2)

    def test_spatial_angle_endfire(self):
        angle = spatial_angle_rad(np.array([2.0, 0.0, 0.0]), np.array([1.0, 0.0, 0.0]))
        assert angle == pytest.approx(0.0)


class TestHyperbola:
    def test_eq15_identity(self):
        """(tan(alpha) x)^2 - y^2 = b^2 must hold on the returned curve."""
        alpha, b = np.deg2rad(70.0), 4.0
        x = np.array([3.0, 5.0, 8.0])
        y = hyperbola_y(alpha, b, x)
        assert np.allclose((np.tan(alpha) * x) ** 2 - y**2, b**2)

    def test_nan_inside_vertex_gap(self):
        y = hyperbola_y(np.deg2rad(45.0), 10.0, np.array([1.0]))
        assert np.isnan(y[0])


class TestAoAConic:
    def test_true_point_lies_on_conic(self):
        """Build the cone from a known tag and verify it passes through it."""
        apex = np.array([0.0, 0.0, 4.0])
        axis = np.array([1.0, 0.0, 0.0])
        tag = np.array([7.0, -4.0, 0.5])
        alpha = spatial_angle_rad(tag - apex, axis)
        conic = aoa_cone_conic(apex, axis, alpha, road_z_m=0.5)
        assert conic.evaluate(tag[0], tag[1]) == pytest.approx(0.0, abs=1e-9)

    def test_tilted_axis_conic(self):
        apex = np.array([1.0, 2.0, 5.0])
        axis = unit(np.array([1.0, 0.3, -0.5]))
        tag = np.array([9.0, -3.0, 1.0])
        alpha = spatial_angle_rad(tag - apex, axis)
        conic = aoa_cone_conic(apex, axis, alpha, road_z_m=1.0)
        assert conic.evaluate(tag[0], tag[1]) == pytest.approx(0.0, abs=1e-9)

    def test_untilted_matches_eq15(self):
        """With a road-parallel axis at the origin the conic reduces to
        the paper's hyperbola (Eq 15)."""
        b = 4.0
        apex = np.array([0.0, 0.0, b])
        alpha = np.deg2rad(75.0)
        conic = aoa_cone_conic(apex, np.array([1.0, 0.0, 0.0]), alpha, road_z_m=0.0)
        x = 6.0
        y_expected = hyperbola_y(alpha, b, np.array([x]))[0]
        roots = conic.y_roots(x)
        assert any(abs(abs(r) - y_expected) < 1e-9 for r in roots)

    def test_y_roots_count(self):
        apex = np.array([0.0, 0.0, 4.0])
        conic = aoa_cone_conic(apex, np.array([1.0, 0.0, 0.0]), np.deg2rad(80.0), 0.0)
        assert len(conic.y_roots(10.0)) == 2
        assert len(conic.y_roots(0.0)) == 0  # inside the vertex gap

    def test_nappe_sign_rejects_mirror(self):
        apex = np.array([0.0, 0.0, 4.0])
        axis = np.array([1.0, 0.0, 0.0])
        tag = np.array([7.0, -4.0, 0.0])
        alpha = spatial_angle_rad(tag - apex, axis)  # < 90 deg: +x side
        conic = aoa_cone_conic(apex, axis, alpha, 0.0)
        assert conic.on_correct_nappe(7.0, -4.0)
        assert not conic.on_correct_nappe(-7.0, -4.0)


class TestIntersectConics:
    def test_two_readers_localize_known_tag(self):
        tag = np.array([12.0, -3.0, 1.0])
        apex_a = np.array([0.0, 5.0, 4.0])
        apex_b = np.array([20.0, -5.0, 4.0])
        axis = np.array([1.0, 0.0, 0.0])
        conic_a = aoa_cone_conic(apex_a, axis, spatial_angle_rad(tag - apex_a, axis), 1.0)
        conic_b = aoa_cone_conic(apex_b, axis, spatial_angle_rad(tag - apex_b, axis), 1.0)
        points = intersect_conics(conic_a, conic_b, (-5.0, 30.0))
        assert any(np.allclose(p, tag[:2], atol=1e-3) for p in points)

    def test_empty_range_rejected(self):
        apex = np.array([0.0, 0.0, 4.0])
        conic = aoa_cone_conic(apex, np.array([1.0, 0.0, 0.0]), 1.0, 0.0)
        with pytest.raises(ConfigurationError):
            intersect_conics(conic, conic, (5.0, 5.0))


class TestRoadSegment:
    def test_contains(self):
        road = RoadSegment(0.0, 100.0, y_center_m=0.0, width_m=8.0)
        assert road.contains(np.array([50.0, 3.0]))
        assert not road.contains(np.array([50.0, 5.0]))
        assert road.contains(np.array([50.0, 5.0]), margin_m=2.0)

    def test_bounds(self):
        road = RoadSegment(0.0, 10.0, y_center_m=2.0, width_m=4.0)
        assert road.y_min_m == pytest.approx(0.0)
        assert road.y_max_m == pytest.approx(4.0)

    def test_surface_point(self):
        road = RoadSegment(0.0, 10.0, 0.0, 4.0, z_m=1.5)
        assert np.allclose(road.surface_point(3.0, 1.0), [3.0, 1.0, 1.5])

    def test_degenerate_rejected(self):
        with pytest.raises(ConfigurationError):
            RoadSegment(5.0, 5.0, 0.0, 4.0)
