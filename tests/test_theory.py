"""Unit tests for repro.core.theory (§5 closed forms)."""

import pytest

from repro.constants import CFO_BIN_COUNT
from repro.core.theory import (
    expected_count_naive,
    fft_resolution_hz,
    n_cfo_bins,
    p_no_miss_exact,
    p_no_miss_naive,
    p_no_miss_paper_bound,
    simulate_counting_accuracy,
    simulate_no_miss_probability,
)
from repro.errors import ConfigurationError
from repro.phy.oscillator import TruncatedGaussianCfoModel, UniformCfoModel


class TestConstants:
    def test_resolution(self):
        assert fft_resolution_hz(512e-6) == pytest.approx(1953.125)

    def test_bin_count(self):
        assert n_cfo_bins() == 615
        assert CFO_BIN_COUNT == 615

    def test_bad_window_rejected(self):
        with pytest.raises(ConfigurationError):
            fft_resolution_hz(0.0)


class TestNaiveProbability:
    """Eq 7 with N = 615: the paper quotes 98 %, 93 %, 73 %."""

    def test_paper_m5(self):
        assert p_no_miss_naive(5) == pytest.approx(0.98, abs=0.005)

    def test_paper_m10(self):
        assert p_no_miss_naive(10) == pytest.approx(0.93, abs=0.005)

    def test_paper_m20(self):
        assert p_no_miss_naive(20) == pytest.approx(0.73, abs=0.005)

    def test_trivial_cases(self):
        assert p_no_miss_naive(0) == 1.0
        assert p_no_miss_naive(1) == 1.0

    def test_more_than_bins_impossible(self):
        assert p_no_miss_naive(616) == 0.0

    def test_monotone_decreasing(self):
        values = [p_no_miss_naive(m) for m in range(1, 60)]
        assert all(a >= b for a, b in zip(values, values[1:]))


class TestUpgradedProbability:
    """Eq 9 with N = 615: at least 99.9 %, 99.9 %, 99.7 %."""

    def test_paper_m5(self):
        assert p_no_miss_paper_bound(5) >= 0.999

    def test_paper_m10(self):
        assert p_no_miss_paper_bound(10) >= 0.999

    def test_paper_m20(self):
        assert p_no_miss_paper_bound(20) == pytest.approx(0.997, abs=0.0005)

    def test_below_three_is_certain(self):
        assert p_no_miss_paper_bound(2) == 1.0

    def test_exact_at_least_bound(self):
        """The union bound must lower-bound the exact probability."""
        for m in (5, 10, 20, 30, 50):
            assert p_no_miss_exact(m) >= p_no_miss_paper_bound(m) - 1e-12

    def test_exact_below_one_for_large_m(self):
        assert p_no_miss_exact(50) < 1.0

    def test_upgraded_beats_naive(self):
        for m in (5, 10, 20, 40):
            assert p_no_miss_exact(m) > p_no_miss_naive(m)


class TestExpectedCount:
    def test_small_m_nearly_m(self):
        assert expected_count_naive(5) == pytest.approx(5.0, abs=0.05)

    def test_large_m_undercounts(self):
        assert expected_count_naive(100) < 95.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            expected_count_naive(-1)


class TestMonteCarlo:
    def test_uniform_matches_closed_form_naive(self):
        mc = simulate_no_miss_probability(
            UniformCfoModel(), m=10, estimator="naive", runs=4000, rng=1
        )
        assert mc == pytest.approx(p_no_miss_naive(10), abs=0.02)

    def test_uniform_matches_closed_form_upgraded(self):
        mc = simulate_no_miss_probability(
            UniformCfoModel(), m=20, estimator="upgraded", runs=4000, rng=2
        )
        assert mc == pytest.approx(p_no_miss_exact(20), abs=0.01)

    def test_empirical_distribution_worse_than_uniform(self):
        """§5: the measured (Gaussian-ish) CFO population packs more tags
        per bin than uniform — 95.3 % vs 99.7 % at m = 20."""
        gaussian = simulate_no_miss_probability(
            TruncatedGaussianCfoModel(), m=20, estimator="upgraded", runs=4000, rng=3
        )
        uniform = simulate_no_miss_probability(
            UniformCfoModel(), m=20, estimator="upgraded", runs=4000, rng=4
        )
        assert gaussian < uniform

    def test_empirical_m20_ballpark(self):
        """The paper reports 95.3 % for m = 20 on its 155-tag population."""
        value = simulate_no_miss_probability(
            TruncatedGaussianCfoModel(), m=20, estimator="upgraded", runs=4000, rng=5
        )
        assert 0.90 <= value <= 0.998

    def test_counting_accuracy_near_100(self):
        accuracy = simulate_counting_accuracy(UniformCfoModel(), m=10, runs=2000, rng=6)
        assert accuracy == pytest.approx(100.0, abs=0.5)

    def test_unknown_estimator_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate_no_miss_probability(UniformCfoModel(), m=5, estimator="magic")
