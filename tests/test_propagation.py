"""Unit tests for repro.channel.propagation and multipath and noise."""

import numpy as np
import pytest

from repro.channel.multipath import GroundBounce, MultipathChannel, PointScatterer
from repro.channel.noise import NoiseModel, add_awgn, thermal_noise_power_w
from repro.channel.propagation import LosChannel, friis_amplitude, propagation_delay_s
from repro.constants import WAVELENGTH_M
from repro.errors import ConfigurationError


class TestFriis:
    def test_inverse_distance(self):
        assert friis_amplitude(20.0) == pytest.approx(friis_amplitude(10.0) / 2.0)

    def test_reference_value(self):
        # lambda/(4 pi d) at d = lambda is 1/(4 pi).
        assert friis_amplitude(WAVELENGTH_M) == pytest.approx(1.0 / (4 * np.pi))

    def test_zero_distance_rejected(self):
        with pytest.raises(ConfigurationError):
            friis_amplitude(0.0)

    def test_delay(self):
        assert propagation_delay_s(299_792_458.0) == pytest.approx(1.0)


class TestLosChannel:
    def test_phase_encodes_path_length(self):
        channel = LosChannel()
        d = 10.0
        h = channel.coefficient(np.zeros(3), np.array([d, 0.0, 0.0]))
        expected_phase = (-2 * np.pi * d / WAVELENGTH_M) % (2 * np.pi)
        assert np.angle(h) % (2 * np.pi) == pytest.approx(expected_phase, abs=1e-9)

    def test_amplitude_is_friis(self):
        channel = LosChannel()
        h = channel.coefficient(np.zeros(3), np.array([15.0, 0.0, 0.0]))
        assert abs(h) == pytest.approx(friis_amplitude(15.0))

    def test_vectorized_matches_scalar(self):
        channel = LosChannel()
        rx = np.array([[10.0, 1.0, 2.0], [5.0, -2.0, 1.0]])
        vec = channel.coefficients(np.zeros(3), rx)
        for k in range(2):
            assert vec[k] == pytest.approx(channel.coefficient(np.zeros(3), rx[k]))

    def test_phase_difference_encodes_aoa(self):
        """The core of Eq 10: across a lambda/2 baseline, the channel
        phase difference is pi*cos(alpha)."""
        channel = LosChannel()
        d = WAVELENGTH_M / 2.0
        ant1 = np.array([-d / 2, 0.0, 0.0])
        ant2 = np.array([+d / 2, 0.0, 0.0])
        tag = np.array([300.0, 400.0, 0.0])  # far field
        alpha = np.arccos(tag[0] / np.linalg.norm(tag))
        h1 = channel.coefficient(tag, ant1)
        h2 = channel.coefficient(tag, ant2)
        measured = np.angle(h2 / h1)
        assert measured == pytest.approx(np.pi * np.cos(alpha), abs=1e-3)


class TestMultipath:
    def test_los_only_matches_los_channel(self):
        multi = MultipathChannel()
        los = LosChannel()
        tx, rx = np.array([10.0, -5.0, 1.0]), np.array([0.0, 0.0, 4.0])
        assert multi.coefficient(tx, rx) == pytest.approx(los.coefficient(tx, rx))

    def test_ground_bounce_path_length(self):
        bounce = GroundBounce(road_z_m=0.0, reflection_coefficient=-0.3)
        tx = np.array([0.0, 0.0, 1.0])
        rx = np.array([3.0, 0.0, 2.0])
        result = bounce.resolve(tx, rx, WAVELENGTH_M)
        # Image of tx is at z=-1; distance to rx = sqrt(9 + 9) = sqrt(18).
        assert result.path_length_m == pytest.approx(np.sqrt(18.0))

    def test_bounce_weaker_than_los(self):
        channel = MultipathChannel(paths=(GroundBounce(reflection_coefficient=-0.25),))
        tx, rx = np.array([15.0, -5.0, 1.0]), np.array([0.0, 0.0, 4.0])
        paths = channel.resolve_paths(tx, rx)
        assert paths[0].label == "los"
        assert abs(paths[1].coefficient) < abs(paths[0].coefficient)

    def test_scatterer_total_path(self):
        scatterer = PointScatterer(np.array([5.0, 0.0, 0.0]), reflectivity=0.1)
        result = scatterer.resolve(np.zeros(3), np.array([10.0, 0.0, 0.0]), WAVELENGTH_M)
        assert result.path_length_m == pytest.approx(10.0)

    def test_composite_is_sum_of_paths(self):
        channel = MultipathChannel(
            paths=(GroundBounce(), PointScatterer(np.array([5.0, 5.0, 1.0])))
        )
        tx, rx = np.array([12.0, -3.0, 1.0]), np.array([0.0, 0.0, 4.0])
        total = channel.coefficient(tx, rx)
        parts = sum(p.coefficient for p in channel.resolve_paths(tx, rx))
        assert total == pytest.approx(parts)

    def test_bad_scatterer_position(self):
        with pytest.raises(ConfigurationError):
            PointScatterer(np.array([1.0, 2.0]))


class TestNoise:
    def test_thermal_floor_magnitude(self):
        """kTB at 4 MHz with NF 7 dB is about -101 dBm."""
        power = thermal_noise_power_w(4e6, noise_figure_db=7.0)
        dbm = 10 * np.log10(power) + 30
        assert dbm == pytest.approx(-101.0, abs=0.5)

    def test_awgn_power(self):
        rng = np.random.default_rng(0)
        noisy = add_awgn(np.zeros(200_000, dtype=complex), 2.0, rng)
        assert np.mean(np.abs(noisy) ** 2) == pytest.approx(2.0, rel=0.02)

    def test_zero_noise_is_identity(self):
        samples = np.ones(16, dtype=complex)
        assert np.array_equal(add_awgn(samples, 0.0), samples)

    def test_negative_power_rejected(self):
        with pytest.raises(ConfigurationError):
            add_awgn(np.zeros(4, dtype=complex), -1.0)

    def test_noise_model_power(self):
        assert NoiseModel(noise_figure_db=0.0).power_w(1e6) == pytest.approx(
            thermal_noise_power_w(1e6, 0.0)
        )

    def test_bandwidth_scaling(self):
        assert thermal_noise_power_w(2e6) == pytest.approx(2 * thermal_noise_power_w(1e6))
