"""Shared fixtures: canonical tags, channels and collision scenes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.antenna import TriangleArray
from repro.channel.propagation import LosChannel
from repro.constants import DEFAULT_SAMPLE_RATE_HZ, EXPERIMENT_POLE_HEIGHT_M, READER_LO_HZ
from repro.phy.oscillator import Oscillator
from repro.phy.packet import TransponderPacket
from repro.phy.transponder import Transponder


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: whole-corridor simulations (seconds each); the fast CI "
        "tier deselects them with -m 'not slow', the nightly tier and "
        "the tier-1 gate run everything",
    )


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def fs():
    return DEFAULT_SAMPLE_RATE_HZ


@pytest.fixture
def pole_array():
    """A street-pole triangle array at the experiment height."""
    return TriangleArray.street_pole(np.array([0.0, 0.0, EXPERIMENT_POLE_HEIGHT_M]))


@pytest.fixture
def los_channel():
    return LosChannel()


def make_tag(
    cfo_hz: float,
    position_m=(5.0, -4.0, 1.0),
    seed: int = 0,
    lo_hz: float = READER_LO_HZ,
) -> Transponder:
    """A tag with a given CFO (relative to the reader LO) and position."""
    rng = np.random.default_rng(seed)
    return Transponder(
        packet=TransponderPacket.random(rng),
        oscillator=Oscillator(lo_hz + cfo_hz),
        position_m=np.asarray(position_m, dtype=np.float64),
        rng=rng,
    )


@pytest.fixture
def tag_factory():
    return make_tag
