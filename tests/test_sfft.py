"""Unit tests for repro.dsp.sfft."""

import numpy as np
import pytest

from repro.dsp.sfft import _bucketize, sparse_fft_peaks
from repro.errors import ConfigurationError, SpectrumError


def make_sparse_signal(n, tones, rng=None):
    """tones: list of (bin, amplitude)."""
    t = np.arange(n)
    x = np.zeros(n, dtype=complex)
    for k, a in tones:
        x += a * np.exp(2j * np.pi * k * t / n)
    if rng is not None:
        x += rng.normal(0, 1e-3, n) + 1j * rng.normal(0, 1e-3, n)
    return x


class TestExactlySparse:
    def test_single_tone_on_grid(self):
        x = make_sparse_signal(2048, [(300, 1.0)])
        tones = sparse_fft_peaks(x, max_tones=1, rng=0)
        assert len(tones) == 1
        assert tones[0].freq_bin == pytest.approx(300.0, abs=0.01)
        assert abs(tones[0].amplitude) == pytest.approx(1.0, rel=0.05)

    def test_single_tone_off_grid(self):
        """Phase-based location recovers *fractional* bins directly."""
        x = make_sparse_signal(2048, [(300.4, 1.0)])
        tones = sparse_fft_peaks(x, max_tones=1, rng=0)
        assert tones[0].freq_bin == pytest.approx(300.4, abs=0.2)

    def test_five_separated_tones(self):
        rng = np.random.default_rng(1)
        bins = [100, 400, 700, 1200, 1800]
        x = make_sparse_signal(2048, [(b, 1.0) for b in bins], rng)
        tones = sparse_fft_peaks(x, max_tones=5, rng=2)
        found = sorted(t.freq_bin for t in tones)
        assert len(found) == 5
        for f, b in zip(found, bins):
            assert f == pytest.approx(b, abs=0.5)

    def test_amplitude_ordering(self):
        x = make_sparse_signal(2048, [(100, 0.3), (900, 1.0)])
        tones = sparse_fft_peaks(x, max_tones=2, rng=0)
        assert abs(tones[0].amplitude) > abs(tones[1].amplitude)
        assert tones[0].freq_bin == pytest.approx(900, abs=0.5)

    def test_matches_full_fft(self):
        rng = np.random.default_rng(3)
        bins = [250, 800, 1500]
        x = make_sparse_signal(4096, [(b, rng.uniform(0.5, 2.0)) for b in bins], rng)
        tones = sparse_fft_peaks(x, max_tones=3, rng=4)
        full = np.fft.fft(x) / x.size
        for tone in tones:
            k = int(round(tone.freq_bin))
            assert abs(tone.amplitude) == pytest.approx(abs(full[k]), rel=0.05)

    def test_freq_hz_conversion(self):
        x = make_sparse_signal(2048, [(512, 1.0)])
        tone = sparse_fft_peaks(x, max_tones=1, rng=0)[0]
        assert tone.freq_hz(4e6, 2048) == pytest.approx(512 * 4e6 / 2048)


class TestValidation:
    def test_indivisible_buckets_rejected(self):
        with pytest.raises(ConfigurationError):
            sparse_fft_peaks(np.zeros(1000, dtype=complex), max_tones=2, n_buckets=64)

    def test_empty_input_rejected(self):
        with pytest.raises(SpectrumError):
            sparse_fft_peaks(np.zeros(0, dtype=complex), max_tones=1)

    def test_bucketize_short_capture_rejected(self):
        """Regression: a stride/shift combination that cannot fill every
        bucket used to return a short FFT whose buckets were misindexed;
        it must fail loudly instead."""
        x = np.ones(64, dtype=complex)
        with pytest.raises(SpectrumError, match="bucketization needs"):
            _bucketize(x, stride=8, n_buckets=16, shift=0)  # only 8 fit
        with pytest.raises(SpectrumError, match="bucketization needs"):
            _bucketize(x, stride=4, n_buckets=16, shift=4)  # shift eats one

    def test_bucketize_exact_fit_ok(self):
        x = np.exp(2j * np.pi * 5 * np.arange(64) / 64)
        buckets = _bucketize(x, stride=4, n_buckets=16, shift=0)
        assert buckets.shape == (16,)
        # A tone at bin 5 of 64 folds to bucket 5 of 16 under stride 4.
        assert int(np.argmax(np.abs(buckets))) == 5

    def test_short_captures_still_recover_tones(self):
        """The public pipeline never hands _bucketize an unfillable
        window, even for captures barely longer than the bucket count."""
        for n in (32, 48, 64):
            x = make_sparse_signal(n, [(7, 1.0)])
            tones = sparse_fft_peaks(x, max_tones=1, n_buckets=8, rng=0)
            assert len(tones) == 1
            assert tones[0].freq_bin == pytest.approx(7.0, abs=0.2)

    def test_noise_only_returns_few_or_none(self):
        rng = np.random.default_rng(5)
        x = (rng.normal(0, 1e-6, 2048) + 1j * rng.normal(0, 1e-6, 2048))
        tones = sparse_fft_peaks(x, max_tones=3, rng=6)
        # Nothing coherent to find; whatever comes back must be tiny.
        for tone in tones:
            assert abs(tone.amplitude) < 1e-6
